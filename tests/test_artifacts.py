"""Artifacts directory resolution."""


from repro import default_artifacts_dir


def test_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "custom"))
    path = default_artifacts_dir()
    assert path == tmp_path / "custom"
    assert path.is_dir()


def test_default_is_repo_artifacts(monkeypatch):
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    path = default_artifacts_dir()
    assert path.name == "artifacts"
    assert path.is_dir()
