"""Backend selection threads end-to-end but stays outside the cache digest.

The contract mirrors ``engine``: which backend executed a job is recorded
everywhere (sidecar, journal, outcome) for attribution, yet never enters
:func:`job_digest` — backends are bitwise-equal, so a cache entry trained
on one backend must be served verbatim to every other.
"""

import json

import numpy as np
import pytest

from repro.core import surrogate_fingerprint
from repro.experiments import (
    ExperimentConfig,
    ResultCache,
    RunJournal,
    execute_job,
    job_digest,
)
from repro.experiments.cli import _build_parser
from repro.experiments.jobs import JobKey

MICRO = ExperimentConfig(
    seeds=(1,), max_epochs=10, patience=10, n_mc_train=2, n_test=4, max_train=50,
)
KEY = JobKey("iris", True, True, 0.05, 1)


class TestDigestSharing:
    def test_backend_outside_training_fingerprint(self):
        assert "backend" not in MICRO.training_fingerprint()

    def test_outcomes_bitwise_across_backends(self, analytic_surrogates):
        reference = execute_job(KEY, MICRO, analytic_surrogates, backend="numpy")
        fused = execute_job(KEY, MICRO, analytic_surrogates, backend="fused")
        assert reference.backend == "numpy" and fused.backend == "fused"
        assert fused.val_loss == reference.val_loss
        assert fused.best_epoch == reference.best_epoch
        assert fused.epochs_run == reference.epochs_run
        for mine, ref in zip(fused.params.layers, reference.params.layers):
            np.testing.assert_array_equal(mine.theta, ref.theta)
            np.testing.assert_array_equal(mine.act_omega, ref.act_omega)
            np.testing.assert_array_equal(mine.neg_omega, ref.neg_omega)

    def test_cache_entry_shared_across_backends(self, tmp_path, analytic_surrogates):
        # A numpy-trained entry must be a hit for a fused-backend run: the
        # digest is computed from (key, config, surrogates, split) only.
        cache = ResultCache(tmp_path / "cache")
        fp = surrogate_fingerprint(analytic_surrogates)
        digest = job_digest(KEY, MICRO, fp)
        outcome = execute_job(KEY, MICRO, analytic_surrogates, backend="numpy")
        cache.store(digest, outcome, analytic_surrogates)

        restored = cache.load_outcome(digest)
        assert restored is not None and restored.cache_hit
        # The restored outcome reports the backend that *trained* it.
        assert restored.backend == "numpy"


class TestRecording:
    def test_sidecar_and_journal_record_backend(self, tmp_path, analytic_surrogates):
        outcome = execute_job(KEY, MICRO, analytic_surrogates, backend="fused")
        cache = ResultCache(tmp_path / "cache")
        fp = surrogate_fingerprint(analytic_surrogates)
        digest = job_digest(KEY, MICRO, fp)
        cache.store(digest, outcome, analytic_surrogates)
        assert cache.load_meta(digest)["backend"] == "fused"
        assert cache.load_outcome(digest).backend == "fused"

        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.record(outcome)
        assert RunJournal.read(journal.path)[0]["backend"] == "fused"

    def test_pre_backend_sidecar_defaults_to_numpy(
        self, tmp_path, analytic_surrogates
    ):
        # Sidecars written before backends existed carry no backend key;
        # those entries were necessarily trained on the numpy kernels.
        cache = ResultCache(tmp_path / "cache")
        fp = surrogate_fingerprint(analytic_surrogates)
        digest = job_digest(KEY, MICRO, fp)
        outcome = execute_job(KEY, MICRO, analytic_surrogates, backend="fused")
        cache.store(digest, outcome, analytic_surrogates)
        meta = json.loads(cache.meta_path(digest).read_text())
        del meta["backend"]
        cache.meta_path(digest).write_text(json.dumps(meta))
        assert cache.load_outcome(digest).backend == "numpy"


class TestCLI:
    def test_backend_flag_parses(self):
        args = _build_parser().parse_args(["table2", "--backend", "fused"])
        assert args.backend == "fused"

    def test_backend_defaults_to_numpy(self):
        args = _build_parser().parse_args(["table2"])
        assert args.backend == "numpy"

    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["table2", "--backend", "gpu"])
        assert "--backend" in capsys.readouterr().err
