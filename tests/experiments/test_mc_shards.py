"""The third parallelism tier: MC-evaluation sharding in the assembly pass.

``mc_shards`` must change *how fast* cells evaluate, never *what* they
contain: the assembled grid is bitwise identical at every shard count,
the flag stays outside the training cache digest, and the telemetry
report grows a shard-utilization section.
"""

import pytest

from repro.experiments import ExperimentConfig, run_table2_parallel
from repro.experiments import cli
from repro.experiments.report import _sharding_section

MICRO = ExperimentConfig(
    seeds=(1, 2), max_epochs=15, patience=15, n_mc_train=2, n_test=25, max_train=50,
)


def cells_signature(results):
    return [
        (c.dataset, c.setup.learnable, c.setup.variation_aware, c.eps_test,
         c.mean, c.std, c.best_seed, c.best_val_loss)
        for c in results
    ]


@pytest.mark.slow
class TestAssemblySharding:
    @pytest.fixture(scope="class")
    def unsharded(self, analytic_surrogates):
        return run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=1
        )

    def test_sharded_assembly_matches_bitwise(self, unsharded, analytic_surrogates):
        sharded = run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=1,
            mc_shards=2,
        )
        assert cells_signature(sharded) == cells_signature(unsharded)

    def test_pooled_sharded_assembly_matches_bitwise(self, unsharded,
                                                     analytic_surrogates):
        sharded = run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=2,
            mc_shards=2,
        )
        assert cells_signature(sharded) == cells_signature(unsharded)

    def test_config_default_feeds_runner(self, unsharded, analytic_surrogates):
        config = MICRO.with_overrides(mc_shards=2)
        sharded = run_table2_parallel(
            ["iris"], config, surrogates=analytic_surrogates, workers=1
        )
        assert cells_signature(sharded) == cells_signature(unsharded)


class TestCacheDigest:
    def test_mc_shards_outside_training_fingerprint(self):
        base = MICRO.training_fingerprint()
        assert MICRO.with_overrides(mc_shards=8).training_fingerprint() == base
        assert "mc_shards" not in base


class TestCli:
    def test_parses_mc_shards(self):
        args = cli._build_parser().parse_args(
            ["table2", "--datasets", "iris", "--mc-shards", "3"]
        )
        assert args.mc_shards == 3

    def test_defaults_to_profile_setting(self):
        args = cli._build_parser().parse_args(["table2", "--datasets", "iris"])
        assert args.mc_shards is None


class TestReportSection:
    @staticmethod
    def _span(name, pid=1, dur=0.5, **attrs):
        return {"kind": "span", "name": name, "pid": pid, "dur_s": dur,
                "attrs": attrs}

    def test_empty_without_sharding_events(self):
        assert _sharding_section([], {}) == []

    def test_renders_utilization_and_balanced_accounting(self):
        events = [
            self._span("mc.evaluate_sharded", shards=2, pooled=True),
            self._span("mc.shard", pid=11, start=0, stop=40),
            self._span("mc.shard", pid=12, start=40, stop=60),
        ]
        counters = {"shm.publish": 3, "shm.publish_bytes": 2e6,
                    "shm.map": 6, "shm.unlink": 3}
        lines = _sharding_section(events, counters)
        text = "\n".join(lines)
        assert lines[0] == "mc sharding:"
        assert "1 pooled" in text
        assert "11" in text and "40" in text
        assert "balanced" in text and "LEAK" not in text

    def test_flags_leaked_segments(self):
        lines = _sharding_section([], {"shm.publish": 4, "shm.unlink": 2})
        assert any("LEAK: 2 live" in line for line in lines)
