"""Command-line interface."""

import pytest

from repro.experiments import cli


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            cli.main(["cell", "--dataset", "mnist"])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            cli.main(["table2", "--profile", "gigantic"])


class TestCellCommand:
    def test_runs_one_cell(self, capsys, monkeypatch, analytic_surrogates):
        # Patch the bundle loader so the CLI test stays lightweight.
        monkeypatch.setattr(cli, "get_default_bundle", lambda **k: analytic_surrogates)
        monkeypatch.setitem(
            cli.PROFILES, "smoke",
            cli.PROFILES["smoke"].with_overrides(
                seeds=(1,), max_epochs=20, patience=20, n_mc_train=2,
                n_test=4, max_train=40,
            ),
        )
        code = cli.main(
            ["cell", "--dataset", "iris", "--learnable", "--epsilon", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "iris" in out and "±" in out

    def test_table2_single_dataset(self, capsys, monkeypatch, analytic_surrogates):
        monkeypatch.setattr(cli, "get_default_bundle", lambda **k: analytic_surrogates)
        monkeypatch.setitem(
            cli.PROFILES, "smoke",
            cli.PROFILES["smoke"].with_overrides(
                seeds=(1,), max_epochs=10, patience=10, n_mc_train=2,
                n_test=4, max_train=40,
            ),
        )
        code = cli.main(["table2", "--datasets", "iris"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Average" in out
        assert "accuracy" in out   # improvement summary lines
