"""Parallel engine: serial equivalence, resume-after-kill, CLI flags."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    ResultCache,
    RunJournal,
    run_table2,
    run_table2_parallel,
)
from repro.experiments import cli, parallel

MICRO = ExperimentConfig(
    seeds=(1, 2), max_epochs=15, patience=15, n_mc_train=2, n_test=6, max_train=50,
)


def cells_signature(results):
    return [
        (c.dataset, c.setup.learnable, c.setup.variation_aware, c.eps_test,
         c.mean, c.std, c.best_seed, c.best_val_loss)
        for c in results
    ]


@pytest.mark.slow
class TestEquivalence:
    @pytest.fixture(scope="class")
    def serial(self, analytic_surrogates):
        return run_table2(["iris"], MICRO, surrogates=analytic_surrogates)

    def test_workers1_no_cache_matches_serial(self, serial, analytic_surrogates):
        par = run_table2_parallel(["iris"], MICRO, surrogates=analytic_surrogates, workers=1)
        assert cells_signature(par) == cells_signature(serial)

    def test_two_workers_match_serial_bitwise(self, serial, analytic_surrogates, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        par = run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=2, cache=cache,
        )
        assert cells_signature(par) == cells_signature(serial)
        # 6 training groups × 2 seeds solved and persisted.
        assert len(cache) == 12


class TestResume:
    def test_prepopulated_cache_skips_all_training(self, analytic_surrogates, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        first = run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=1, cache=cache,
        )
        n_jobs = len(RunJournal.read(cache.journal_path))

        # Simulate resume-after-kill: a fresh invocation over the same cache
        # dir must never re-enter training.
        def boom(*args, **kwargs):
            raise AssertionError("execute_job called despite a full cache")

        monkeypatch.setattr(parallel, "execute_job", boom)
        second = run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=1, cache=cache,
        )
        assert cells_signature(second) == cells_signature(first)
        hits = RunJournal.read(cache.journal_path)[n_jobs:]
        assert len(hits) == n_jobs
        assert all(r["cache_hit"] for r in hits)

    def test_partial_cache_trains_only_missing(self, analytic_surrogates, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        one_seed = MICRO.with_overrides(seeds=(1,))
        run_table2_parallel(["iris"], one_seed, surrogates=analytic_surrogates,
                            workers=1, cache=cache)
        solved = len(RunJournal.read(cache.journal_path))

        run_table2_parallel(["iris"], MICRO, surrogates=analytic_surrogates,
                            workers=1, cache=cache)
        records = RunJournal.read(cache.journal_path)[solved:]
        hits = [r for r in records if r["cache_hit"]]
        fresh = [r for r in records if not r["cache_hit"]]
        # Seed-1 jobs replay from cache; only the seed-2 jobs train.
        assert len(hits) == 6
        assert len(fresh) == 6
        assert all(r["seed"] == 2 for r in fresh)

    def test_cache_invalidation_on_config_change(self, analytic_surrogates, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_table2_parallel(["iris"], MICRO, surrogates=analytic_surrogates,
                            workers=1, cache=cache)
        before = len(RunJournal.read(cache.journal_path))
        changed = MICRO.with_overrides(max_epochs=16)
        run_table2_parallel(["iris"], changed, surrogates=analytic_surrogates,
                            workers=1, cache=cache)
        records = RunJournal.read(cache.journal_path)[before:]
        assert all(not r["cache_hit"] for r in records)


class TestCLIFlags:
    def _trim_smoke(self, monkeypatch, analytic_surrogates):
        monkeypatch.setattr(cli, "get_default_bundle", lambda **k: analytic_surrogates)
        monkeypatch.setitem(
            cli.PROFILES, "smoke",
            cli.PROFILES["smoke"].with_overrides(
                seeds=(1,), max_epochs=10, patience=10, n_mc_train=2,
                n_test=4, max_train=40,
            ),
        )

    def test_workers_and_cache_dir(self, capsys, monkeypatch, analytic_surrogates, tmp_path):
        self._trim_smoke(monkeypatch, analytic_surrogates)
        cache_dir = tmp_path / "cache"
        code = cli.main(["table2", "--datasets", "iris", "--workers", "2",
                         "--cache-dir", str(cache_dir)])
        assert code == 0
        assert "Average" in capsys.readouterr().out
        assert (cache_dir / "journal.jsonl").exists()

    def test_no_cache_writes_nothing(self, capsys, monkeypatch, analytic_surrogates, tmp_path):
        self._trim_smoke(monkeypatch, analytic_surrogates)
        cache_dir = tmp_path / "cache"
        code = cli.main(["table2", "--datasets", "iris", "--no-cache",
                         "--cache-dir", str(cache_dir)])
        assert code == 0
        assert not cache_dir.exists()

    def test_resume_requires_existing_cache(self, capsys, monkeypatch, analytic_surrogates, tmp_path):
        self._trim_smoke(monkeypatch, analytic_surrogates)
        code = cli.main(["table2", "--datasets", "iris", "--resume",
                         "--cache-dir", str(tmp_path / "absent")])
        assert code == 2
        assert "no cache" in capsys.readouterr().err

    def test_resume_conflicts_with_no_cache(self, capsys, monkeypatch, analytic_surrogates):
        self._trim_smoke(monkeypatch, analytic_surrogates)
        code = cli.main(["table2", "--datasets", "iris", "--resume", "--no-cache"])
        assert code == 2

    def test_resume_over_populated_cache(self, capsys, monkeypatch, analytic_surrogates, tmp_path):
        self._trim_smoke(monkeypatch, analytic_surrogates)
        cache_dir = tmp_path / "cache"
        assert cli.main(["table2", "--datasets", "iris",
                         "--cache-dir", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert cli.main(["table2", "--datasets", "iris", "--resume",
                         "--cache-dir", str(cache_dir)]) == 0
        second = capsys.readouterr().out
        assert first == second
        records = RunJournal.read(cache_dir / "journal.jsonl")
        resumed = records[len(records) // 2:]
        assert resumed and all(r["cache_hit"] for r in resumed)
