"""Scenario sweeps end-to-end: training, lanes, cache digests, rendering.

The acceptance gates of the non-ideality pipeline at the harness level:

- the default scenario's cache digest is *pinned* to the historical
  5-element job payload (recorded caches keep hitting);
- non-default scenarios get distinct digests (and distinct results);
- stuck-at and correlated scenarios run train → MC eval → report grid
  through both the kernel and the lanes engine, with the lanes engine
  bitwise equal to serial kernel runs per lane.
"""

import hashlib
import json

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro.core import (
    PrintedNeuralNetwork,
    TrainConfig,
    evaluate_mc,
    snapshot_params,
    surrogate_fingerprint,
    train_pnn,
)
from repro.core.lanes import train_pnn_lanes
from repro.experiments import (
    ExperimentConfig,
    JobKey,
    ResultCache,
    RunJournal,
    enumerate_jobs,
    job_digest,
    render_scenario_grid,
    run_table2_parallel,
    split_by_scenario,
)
from repro.experiments.cache import CACHE_SCHEMA

MICRO = ExperimentConfig(
    seeds=(1, 2), max_epochs=10, patience=10, n_mc_train=2, n_test=4, max_train=50,
)

SCENARIO_GRID = ("stuck-1pct", "correlated")


class TestDigests:
    def test_default_digest_pinned_to_legacy_payload(self, analytic_surrogates):
        """Default-scenario digests hash the historical 5-element job tuple."""
        key = JobKey("iris", True, True, 0.1, 3)
        fingerprint = surrogate_fingerprint(analytic_surrogates)
        legacy_payload = {
            "schema": CACHE_SCHEMA,
            "job": ("iris", True, True, 0.1, 3),
            "train": MICRO.training_fingerprint(),
            "surrogates": fingerprint,
            "split_seed": 0,
        }
        blob = json.dumps(legacy_payload, sort_keys=True, default=str).encode()
        assert job_digest(key, MICRO, fingerprint) == hashlib.sha256(blob).hexdigest()

    def test_each_scenario_gets_a_distinct_digest(self, analytic_surrogates):
        fingerprint = surrogate_fingerprint(analytic_surrogates)
        digests = {
            scenario: job_digest(
                JobKey("iris", True, True, 0.1, 3, scenario), MICRO, fingerprint
            )
            for scenario in ("default", "gaussian", "stuck-1pct", "correlated")
        }
        assert len(set(digests.values())) == len(digests)


class TestEnumeration:
    def test_scenarios_fan_out_scenario_major(self):
        jobs = enumerate_jobs(["iris"], MICRO, scenarios=("default", "stuck-1pct"))
        default = [j for j in jobs if j.scenario == "default"]
        stuck = [j for j in jobs if j.scenario == "stuck-1pct"]
        assert len(default) == len(stuck) == 6 * len(MICRO.seeds)
        assert jobs[: len(default)] == default       # scenario-major order
        assert len(set(jobs)) == len(jobs)


@pytest.mark.slow
class TestScenarioTraining:
    @pytest.mark.parametrize("scenario", SCENARIO_GRID)
    def test_kernel_and_lanes_engines_bitwise_equal(
        self, scenario, analytic_surrogates, blob_data
    ):
        x_train, y_train, x_val, y_val = blob_data

        def build(seed):
            return PrintedNeuralNetwork(
                [2, 3, 2], analytic_surrogates, rng=np.random.default_rng(seed)
            )

        def config(seed):
            return TrainConfig(max_epochs=8, patience=8, epsilon=0.1,
                               n_mc_train=3, seed=seed, scenario=scenario)

        serial = []
        for seed in (1, 2):
            pnn = build(seed)
            result = train_pnn(pnn, x_train, y_train, x_val, y_val,
                               config(seed), engine="kernel")
            serial.append((result, snapshot_params(pnn)))

        lane_pnns = [build(1), build(2)]
        lane_results = train_pnn_lanes(
            lane_pnns, x_train, y_train, x_val, y_val, [config(1), config(2)]
        )
        for (s_result, s_params), l_result, l_pnn in zip(
            serial, lane_results, lane_pnns
        ):
            assert l_result.best_val_loss == s_result.best_val_loss
            assert l_result.history == s_result.history
            for sl, ll in zip(s_params.layers, snapshot_params(l_pnn).layers):
                assert_array_equal(ll.theta, sl.theta)
                assert_array_equal(ll.act_omega, sl.act_omega)
                assert_array_equal(ll.neg_omega, sl.neg_omega)

    def test_stuck_scenario_changes_training(self, analytic_surrogates, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        histories = {}
        for scenario in ("default", "stuck-1pct"):
            pnn = PrintedNeuralNetwork([2, 3, 2], analytic_surrogates,
                                       rng=np.random.default_rng(7))
            config = TrainConfig(max_epochs=5, patience=5, epsilon=0.1,
                                 n_mc_train=3, seed=3, scenario=scenario)
            result = train_pnn(pnn, x_train, y_train, x_val, y_val, config)
            histories[scenario] = result.history
        assert histories["default"] != histories["stuck-1pct"]

    def test_stuck_scenario_trains_defect_aware_at_eps_zero(
        self, analytic_surrogates, blob_data
    ):
        """Defects fire even at ε=0: the stuck scenario is never nominal."""
        x_train, y_train, x_val, y_val = blob_data
        histories = {}
        for scenario in ("default", "stuck-1pct"):
            pnn = PrintedNeuralNetwork([2, 3, 2], analytic_surrogates,
                                       rng=np.random.default_rng(7))
            config = TrainConfig(max_epochs=3, patience=3, epsilon=0.0,
                                 n_mc_train=3, seed=3, scenario=scenario)
            result = train_pnn(pnn, x_train, y_train, x_val, y_val, config)
            histories[scenario] = result.history
        assert histories["default"] != histories["stuck-1pct"]


class TestScenarioEvaluation:
    @pytest.fixture(scope="class")
    def design(self, analytic_surrogates, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = PrintedNeuralNetwork([2, 3, 2], analytic_surrogates,
                                   rng=np.random.default_rng(7))
        config = TrainConfig(max_epochs=10, patience=10, epsilon=0.1,
                             n_mc_train=3, seed=3)
        train_pnn(pnn, x_train, y_train, x_val, y_val, config)
        return snapshot_params(pnn), x_val, y_val

    @pytest.mark.parametrize("scenario", SCENARIO_GRID + ("gaussian",))
    def test_named_scenarios_evaluate_deterministically(self, design, scenario):
        params, x, y = design
        a = evaluate_mc(params, x, y, epsilon=0.1, n_test=12, seed=11,
                        scenario=scenario)
        b = evaluate_mc(params, x, y, epsilon=0.1, n_test=12, seed=11,
                        scenario=scenario)
        assert_array_equal(a.accuracies, b.accuracies)
        assert a.accuracies.shape == (12,)

    def test_scenarios_draw_distinct_noise(self, design):
        params, x, y = design
        streams = {
            scenario: evaluate_mc(params, x, y, epsilon=0.1, n_test=12, seed=11,
                                  scenario=scenario).accuracies.tobytes()
            for scenario in ("default", "gaussian", "stuck-1pct", "correlated")
        }
        assert len(set(streams.values())) > 1

    def test_unknown_scenario_rejected(self, design):
        params, x, y = design
        with pytest.raises(ValueError, match="known scenarios"):
            evaluate_mc(params, x, y, epsilon=0.1, n_test=4, scenario="nope")


@pytest.mark.slow
class TestScenarioSweepEndToEnd:
    @pytest.fixture(scope="class")
    def sweep(self, analytic_surrogates, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("scenario_cache"))
        results = run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=1,
            cache=cache, scenarios=("default", "stuck-1pct"),
        )
        return results, cache

    def test_results_cover_both_scenarios_in_order(self, sweep):
        results, _ = sweep
        buckets = split_by_scenario(results)
        assert list(buckets) == ["default", "stuck-1pct"]
        assert len(buckets["default"]) == len(buckets["stuck-1pct"]) == 8

    def test_default_cells_match_single_scenario_run(self, sweep, analytic_surrogates):
        results, _ = sweep
        reference = run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=1,
        )
        default = split_by_scenario(results)["default"]
        assert [
            (c.dataset, c.eps_test, c.mean, c.std, c.best_seed, c.best_val_loss)
            for c in default
        ] == [
            (c.dataset, c.eps_test, c.mean, c.std, c.best_seed, c.best_val_loss)
            for c in reference
        ]

    def test_cache_holds_disjoint_entries_per_scenario(self, sweep):
        _, cache = sweep
        # 6 groups × 2 seeds × 2 scenarios, no digest collisions.
        assert len(cache) == 24

    def test_journal_records_scenarios(self, sweep):
        _, cache = sweep
        records = RunJournal.read(cache.journal_path)
        scenarios = {record["scenario"] for record in records}
        assert scenarios == {"default", "stuck-1pct"}

    def test_scenario_grid_renders_sections(self, sweep):
        results, _ = sweep
        grid = render_scenario_grid(results)
        assert "=== scenario: default ===" in grid
        assert "=== scenario: stuck-1pct ===" in grid

    def test_single_scenario_grid_has_no_sections(self, sweep, analytic_surrogates):
        results, _ = sweep
        default_only = split_by_scenario(results)["default"]
        assert "=== scenario" not in render_scenario_grid(default_only)
