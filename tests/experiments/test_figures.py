"""Figure data series (Fig. 2 and Fig. 4)."""

import numpy as np

from repro.experiments.figures import (
    ascii_curves,
    figure2_series,
    figure4_left,
    figure4_right,
)
from repro.surrogate.model import TINY_LAYER_WIDTHS
from repro.surrogate.training import train_surrogate


class TestFigure2:
    def test_curve_families_shape(self):
        series = figure2_series(n_curves=3, n_points=15, seed=3)
        assert series.ptanh_curves.shape == (3, 15)
        assert series.negweight_curves.shape == (3, 15)
        assert series.omegas.shape == (3, 7)

    def test_ptanh_curves_expressive(self):
        series = figure2_series(n_curves=3, n_points=15, seed=3)
        swings = series.ptanh_curves.max(axis=1) - series.ptanh_curves.min(axis=1)
        assert np.all(swings >= 0.15)

    def test_negweight_curves_negative(self):
        series = figure2_series(n_curves=3, n_points=15, seed=3)
        assert np.all(series.negweight_curves <= 0.0)


class TestFigure4:
    def test_left_fit_quality(self):
        left = figure4_left(seed=5, n_points=21)
        assert left.rmse < 0.02
        assert left.fitted.shape == left.v_out.shape

    def test_right_scatter_structure(self, ptanh_dataset):
        result = train_surrogate(
            ptanh_dataset, widths=TINY_LAYER_WIDTHS, max_epochs=80, patience=80, seed=0
        )
        right = figure4_right(ptanh_dataset, result)
        assert set(right.true) == {"train", "val", "test"}
        for split in ("train", "val", "test"):
            assert right.true[split].shape == right.predicted[split].shape
        assert right.r2_test.shape == (4,)

    def test_right_predictions_correlate(self, ptanh_dataset):
        result = train_surrogate(
            ptanh_dataset, widths=TINY_LAYER_WIDTHS, max_epochs=200, patience=200, seed=0
        )
        right = figure4_right(ptanh_dataset, result)
        flat_true = right.true["train"].ravel()
        flat_pred = right.predicted["train"].ravel()
        # The tiny session fixture is deliberately small; the paper-scale
        # bundle reaches correlation > 0.97 (see EXPERIMENTS.md).
        assert np.corrcoef(flat_true, flat_pred)[0, 1] > 0.6


class TestAsciiRendering:
    def test_renders_all_curves(self):
        v = np.linspace(0, 1, 21)
        curves = np.stack([v, 1 - v])
        art = ascii_curves(v, curves)
        assert "a" in art and "b" in art
        assert "Vin" in art
