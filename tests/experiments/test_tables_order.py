"""Table-II column order and display names."""

from repro.datasets.registry import DISPLAY_NAMES
from repro.experiments.tables import TABLE2_COLUMNS


class TestColumnOrder:
    def test_eight_columns(self):
        assert len(TABLE2_COLUMNS) == 8

    def test_grouping_matches_paper(self):
        """Non-learnable block first, nominal before variation-aware,
        5% before 10% — the paper's left-to-right order."""
        expected = [
            (False, False, 0.05), (False, False, 0.10),
            (False, True, 0.05), (False, True, 0.10),
            (True, False, 0.05), (True, False, 0.10),
            (True, True, 0.05), (True, True, 0.10),
        ]
        assert list(TABLE2_COLUMNS) == expected

    def test_display_names_match_paper_rows(self):
        assert DISPLAY_NAMES["acute_inflammation"] == "Acute Inflammation"
        assert DISPLAY_NAMES["vertebral_3c"] == "Vertebral Column (3 cl.)"
        assert DISPLAY_NAMES["energy_y1"] == "Energy Efficiency (y1)"
        assert DISPLAY_NAMES["tictactoe"] == "Tic-Tac-Toe Endgame"
