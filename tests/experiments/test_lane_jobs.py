"""The lane tier of the experiment harness: grouping, execution, scheduling.

Pins the contracts documented in ``docs/TRAINING.md``:

- :func:`group_jobs_into_lanes` chunks same-group jobs deterministically
  and never mixes groups in one batch;
- :func:`execute_job_lanes` returns outcomes **bitwise identical** to
  per-job :func:`execute_job` calls (losses, epochs, parameter snapshots
  and cache digests);
- :func:`run_table2_parallel` produces identical cells at any lane width.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    enumerate_jobs,
    execute_job,
    execute_job_lanes,
    group_jobs_into_lanes,
    job_digest,
    run_table2_parallel,
)
from repro.core import surrogate_fingerprint

MICRO = ExperimentConfig(
    seeds=(1, 2, 3), max_epochs=15, patience=15, n_mc_train=2, n_test=6, max_train=50,
)


class TestGrouping:
    def test_batches_never_mix_groups(self):
        jobs = enumerate_jobs(["iris", "seeds"], MICRO)
        for batch in group_jobs_into_lanes(jobs, 8):
            assert len({key.group for key in batch}) == 1

    def test_batches_cover_all_jobs_exactly_once(self):
        jobs = enumerate_jobs(["iris"], MICRO)
        batches = group_jobs_into_lanes(jobs, 2)
        flattened = [key for batch in batches for key in batch]
        assert sorted(flattened) == sorted(jobs)
        assert len(flattened) == len(set(flattened))

    def test_lane_width_caps_batch_size(self):
        jobs = enumerate_jobs(["iris"], MICRO)
        assert all(len(b) <= 2 for b in group_jobs_into_lanes(jobs, 2))
        # 3 seeds at width 2 → one pair + one singleton per group.
        widths = sorted(len(b) for b in group_jobs_into_lanes(jobs, 2))
        assert set(widths) == {1, 2}

    def test_width_one_is_per_job_serial(self):
        jobs = enumerate_jobs(["iris"], MICRO)
        assert group_jobs_into_lanes(jobs, 1) == [[key] for key in jobs]

    def test_deterministic_first_appearance_order(self):
        jobs = enumerate_jobs(["iris"], MICRO)
        batches = group_jobs_into_lanes(jobs, 8)
        assert [batch[0].group for batch in batches] == [
            key.group for i, key in enumerate(jobs) if i % len(MICRO.seeds) == 0
        ]


@pytest.mark.slow
class TestLaneExecutionBitIdentity:
    @pytest.fixture(scope="class")
    def batch(self):
        jobs = enumerate_jobs(["iris"], MICRO)
        batches = group_jobs_into_lanes(jobs, 8)
        # A learnable + variation-aware group exercises every moving part.
        return next(b for b in batches if b[0].learnable and b[0].variation_aware)

    def test_outcomes_bitwise_equal_serial(self, analytic_surrogates, batch):
        serial = [execute_job(key, MICRO, analytic_surrogates) for key in batch]
        laned = execute_job_lanes(batch, MICRO, analytic_surrogates)
        fingerprint = surrogate_fingerprint(analytic_surrogates)
        assert len(laned) == len(serial)
        for s, l in zip(serial, laned):
            assert l.key == s.key
            assert l.topology == s.topology
            assert l.val_loss == s.val_loss       # exact — no tolerance
            assert l.best_epoch == s.best_epoch
            assert l.epochs_run == s.epochs_run
            for sl, ll in zip(s.params.layers, l.params.layers):
                np.testing.assert_array_equal(ll.theta, sl.theta)
                np.testing.assert_array_equal(ll.act_omega, sl.act_omega)
                np.testing.assert_array_equal(ll.neg_omega, sl.neg_omega)
            # The cache digest is engine-independent by design, so lane
            # outcomes land on the same cache entries as serial ones.
            assert (
                job_digest(l.key, MICRO, fingerprint)
                == job_digest(s.key, MICRO, fingerprint)
            )

    def test_width_one_batch_falls_through_to_serial(self, analytic_surrogates, batch):
        single = execute_job_lanes(batch[:1], MICRO, analytic_surrogates)
        reference = execute_job(batch[0], MICRO, analytic_surrogates)
        assert len(single) == 1
        assert single[0].val_loss == reference.val_loss
        assert single[0].epochs_run == reference.epochs_run

    def test_mixed_group_batch_rejected(self, analytic_surrogates):
        jobs = enumerate_jobs(["iris"], MICRO)
        mixed = [jobs[0], next(k for k in jobs if k.group != jobs[0].group)]
        with pytest.raises(ValueError, match="group"):
            execute_job_lanes(mixed, MICRO, analytic_surrogates)

    def test_empty_batch_returns_empty(self, analytic_surrogates):
        assert execute_job_lanes([], MICRO, analytic_surrogates) == []


@pytest.mark.slow
class TestSchedulerLaneWidths:
    def test_any_lane_width_same_cells(self, analytic_surrogates):
        def signature(results):
            return [
                (c.dataset, c.setup.learnable, c.setup.variation_aware, c.eps_test,
                 c.mean, c.std, c.best_seed, c.best_val_loss)
                for c in results
            ]

        wide = run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=1, lane_width=8
        )
        narrow = run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=1, lane_width=2
        )
        off = run_table2_parallel(
            ["iris"], MICRO, surrogates=analytic_surrogates, workers=1, lane_width=1
        )
        assert signature(wide) == signature(narrow) == signature(off)
