"""Result cache: digests, round-trips, invalidation, journal."""

import json

import numpy as np
import pytest

from repro.core import surrogate_fingerprint
from repro.experiments import (
    ExperimentConfig,
    ResultCache,
    RunJournal,
    execute_job,
    job_digest,
)
from repro.experiments.jobs import JobKey

MICRO = ExperimentConfig(
    seeds=(1,), max_epochs=12, patience=12, n_mc_train=2, n_test=4, max_train=50,
)
KEY = JobKey("iris", True, True, 0.05, 1)


class TestDigest:
    def test_stable(self, analytic_surrogates):
        fp = surrogate_fingerprint(analytic_surrogates)
        assert job_digest(KEY, MICRO, fp) == job_digest(KEY, MICRO, fp)
        assert len(job_digest(KEY, MICRO, fp)) == 64

    def test_changes_with_job_key(self, analytic_surrogates):
        fp = surrogate_fingerprint(analytic_surrogates)
        other = JobKey("iris", True, True, 0.05, 2)
        assert job_digest(KEY, MICRO, fp) != job_digest(other, MICRO, fp)

    def test_invalidated_by_training_config_change(self, analytic_surrogates):
        fp = surrogate_fingerprint(analytic_surrogates)
        changed = MICRO.with_overrides(max_epochs=13)
        assert job_digest(KEY, MICRO, fp) != job_digest(KEY, changed, fp)

    def test_not_invalidated_by_evaluation_budget(self, analytic_surrogates):
        # n_test and the seed list don't affect a trained design.
        fp = surrogate_fingerprint(analytic_surrogates)
        changed = MICRO.with_overrides(n_test=100, seeds=(1, 2, 3))
        assert job_digest(KEY, MICRO, fp) == job_digest(KEY, changed, fp)

    def test_invalidated_by_surrogates_and_split_seed(self, analytic_surrogates):
        fp = surrogate_fingerprint(analytic_surrogates)
        assert job_digest(KEY, MICRO, fp) != job_digest(KEY, MICRO, "deadbeef")
        assert job_digest(KEY, MICRO, fp) != job_digest(KEY, MICRO, fp, split_seed=1)


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def outcome(self, analytic_surrogates):
        return execute_job(KEY, MICRO, analytic_surrogates)

    def test_miss_then_hit(self, tmp_path, analytic_surrogates, outcome):
        cache = ResultCache(tmp_path / "cache")
        fp = surrogate_fingerprint(analytic_surrogates)
        digest = job_digest(KEY, MICRO, fp)
        assert not cache.contains(digest)
        assert cache.load_outcome(digest) is None

        cache.store(digest, outcome, analytic_surrogates)
        assert cache.contains(digest)
        assert len(cache) == 1

        restored = cache.load_outcome(digest)
        assert restored.key == KEY
        assert restored.cache_hit and restored.params is None
        assert restored.val_loss == outcome.val_loss
        assert restored.epochs_run == outcome.epochs_run

    def test_design_roundtrip_is_exact(self, tmp_path, analytic_surrogates, outcome):
        from repro.datasets import load_splits

        cache = ResultCache(tmp_path / "cache")
        fp = surrogate_fingerprint(analytic_surrogates)
        digest = job_digest(KEY, MICRO, fp)
        cache.store(digest, outcome, analytic_surrogates)

        loaded = cache.load_design(digest, analytic_surrogates)
        splits = load_splits("iris", seed=0, max_train=MICRO.max_train)
        np.testing.assert_array_equal(
            loaded.predict(splits.x_test), outcome.params.predict(splits.x_test)
        )

    def test_legacy_module_state_entry_loads(self, tmp_path, analytic_surrogates, outcome):
        # Entries written before the PNNParams refactor hold save_pnn module
        # state; load_design must rebuild + snapshot them transparently.
        from repro.core import PrintedNeuralNetwork, save_pnn
        from repro.core.params import PNNParams
        from repro.datasets import load_splits

        cache = ResultCache(tmp_path / "cache")
        fp = surrogate_fingerprint(analytic_surrogates)
        digest = job_digest(KEY, MICRO, fp)
        pnn = PrintedNeuralNetwork(
            list(outcome.topology), analytic_surrogates,
            per_neuron_activation=outcome.per_neuron_activation,
            rng=np.random.default_rng(KEY.seed),
        )
        save_pnn(pnn, cache.design_path(digest), surrogates=analytic_surrogates)

        loaded = cache.load_design(digest, analytic_surrogates)
        assert isinstance(loaded, PNNParams)
        splits = load_splits("iris", seed=0, max_train=MICRO.max_train)
        np.testing.assert_array_equal(
            loaded.predict(splits.x_test), pnn.predict(splits.x_test)
        )

    def test_config_change_misses(self, tmp_path, analytic_surrogates, outcome):
        cache = ResultCache(tmp_path / "cache")
        fp = surrogate_fingerprint(analytic_surrogates)
        cache.store(job_digest(KEY, MICRO, fp), outcome, analytic_surrogates)
        changed = MICRO.with_overrides(lr_theta=0.05)
        assert cache.load_outcome(job_digest(KEY, changed, fp)) is None


class TestJournal:
    def test_records_round_trip(self, tmp_path, analytic_surrogates):
        outcome = execute_job(KEY, MICRO, analytic_surrogates)
        outcome.digest = "abc123"
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.record(outcome)
        outcome.cache_hit = True
        journal.record(outcome)

        records = RunJournal.read(journal.path)
        assert len(records) == 2
        assert records[0]["cache_hit"] is False
        assert records[1]["cache_hit"] is True
        for record in records:
            assert record["dataset"] == "iris"
            assert record["seed"] == 1
            assert record["train_eps"] == 0.05
            assert record["epochs_run"] == outcome.epochs_run
            assert record["val_loss"] == outcome.val_loss
            assert record["digest"] == "abc123"
            assert record["wall_time"] >= 0.0

    def test_read_missing_is_empty(self, tmp_path):
        assert RunJournal.read(tmp_path / "nope.jsonl") == []

    def test_read_skips_truncated_final_line(self, tmp_path, analytic_surrogates):
        outcome = execute_job(KEY, MICRO, analytic_surrogates)
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.record(outcome)
        journal.record(outcome)
        # A worker killed mid-record leaves a torn final line; the reader
        # must warn and keep the complete records instead of crashing.
        with open(journal.path, "a") as handle:
            handle.write('{"ts": 1.0, "dataset": "ir')
        with pytest.warns(RuntimeWarning, match="truncated"):
            records = RunJournal.read(journal.path)
        assert len(records) == 2
        assert all(r["dataset"] == "iris" for r in records)

    def test_lines_are_plain_json(self, tmp_path, analytic_surrogates):
        outcome = execute_job(KEY, MICRO, analytic_surrogates)
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.record(outcome)
        line = (tmp_path / "journal.jsonl").read_text().strip()
        assert json.loads(line)["dataset"] == "iris"
