"""Experiment harness: setups, runner protocol, tables, ablation math."""

import pytest

from repro.experiments import (
    PROFILES,
    SETUPS,
    CellResult,
    ExperimentConfig,
    Setup,
    improvement_summary,
    profile_from_env,
    render_table2,
    render_table3,
    run_cell,
    run_dataset,
    summarize_table3,
)


def make_cell(dataset, learnable, va, eps, mean, std):
    return CellResult(
        dataset=dataset,
        setup=Setup(learnable=learnable, variation_aware=va),
        eps_test=eps,
        mean=mean,
        std=std,
        best_seed=1,
        best_val_loss=0.1,
    )


def synthetic_grid():
    """The paper's own Table III numbers as a result grid."""
    table3 = {
        (True, True, 0.05): (0.809, 0.023),
        (True, False, 0.05): (0.752, 0.095),
        (False, True, 0.05): (0.731, 0.053),
        (False, False, 0.05): (0.678, 0.085),
        (True, True, 0.10): (0.786, 0.029),
        (True, False, 0.10): (0.697, 0.130),
        (False, True, 0.10): (0.691, 0.080),
        (False, False, 0.10): (0.626, 0.118),
    }
    return [
        make_cell("iris", learnable, va, eps, mean, std)
        for (learnable, va, eps), (mean, std) in table3.items()
    ]


class TestConfig:
    def test_four_setups(self):
        assert len(SETUPS) == 4
        labels = {s.label for s in SETUPS}
        assert "learnable / variation-aware" in labels

    def test_paper_profile_matches_protocol(self):
        paper = PROFILES["paper"]
        assert paper.seeds == tuple(range(1, 11))
        assert paper.patience == 5000
        assert paper.n_mc_train == 20
        assert paper.n_test == 100
        assert paper.lr_theta == 0.1
        assert paper.lr_omega == 0.005

    def test_profile_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "fast")
        assert profile_from_env() is PROFILES["fast"]
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "nope")
        with pytest.raises(KeyError):
            profile_from_env()

    def test_with_overrides(self):
        config = PROFILES["smoke"].with_overrides(n_test=7)
        assert config.n_test == 7
        assert PROFILES["smoke"].n_test != 7


class TestRunner:
    @pytest.fixture(scope="class")
    def micro_config(self):
        return ExperimentConfig(
            seeds=(1,), max_epochs=25, patience=25, n_mc_train=3,
            n_test=6, max_train=60,
        )

    def test_run_cell_nominal(self, micro_config, analytic_surrogates):
        cell = run_cell(
            "iris", Setup(learnable=False, variation_aware=False), 0.05,
            micro_config, surrogates=analytic_surrogates,
        )
        assert 0.0 <= cell.mean <= 1.0
        assert cell.std >= 0.0
        assert cell.best_seed == 1

    def test_run_cell_reuses_trained_cache(self, micro_config, analytic_surrogates):
        trained = {}
        setup = Setup(learnable=False, variation_aware=False)
        first = run_cell("iris", setup, 0.05, micro_config,
                         surrogates=analytic_surrogates, trained=trained)
        assert len(trained) == 1
        second = run_cell("iris", setup, 0.10, micro_config,
                          surrogates=analytic_surrogates, trained=trained)
        # Nominal training shared across test epsilons → still one entry.
        assert len(trained) == 1

    def test_run_dataset_produces_full_grid(self, micro_config, analytic_surrogates):
        cells = run_dataset("iris", micro_config, surrogates=analytic_surrogates)
        assert len(cells) == 8     # 4 setups × 2 epsilons
        keys = {(c.setup.learnable, c.setup.variation_aware, c.eps_test) for c in cells}
        assert len(keys) == 8


class TestTables:
    def test_table2_contains_all_columns(self):
        text = render_table2(synthetic_grid())
        assert "Iris" in text
        assert "Average" in text
        assert text.count("±") >= 8

    def test_table3_summary_values(self):
        summary = summarize_table3(synthetic_grid())
        assert summary[(True, True, 0.05)][0] == pytest.approx(0.809)
        assert summary[(False, False, 0.10)][1] == pytest.approx(0.118)

    def test_table3_rendering(self):
        text = render_table3(synthetic_grid())
        assert "✓" in text and "✗" in text
        assert "0.809" in text

    def test_table2_handles_missing_cells(self):
        cells = [make_cell("iris", True, True, 0.05, 0.9, 0.01)]
        text = render_table2(cells)
        assert "—" in text


class TestAblation:
    def test_improvements_match_paper_arithmetic(self):
        """With the paper's own Table III numbers, the §IV-D claims follow."""
        summary = improvement_summary(synthetic_grid())
        # Paper: 19% and 26% accuracy improvement at 5% / 10% variation.
        assert summary[0.05].accuracy_gain == pytest.approx(0.193, abs=0.01)
        assert summary[0.10].accuracy_gain == pytest.approx(0.256, abs=0.01)
        # Paper: 73% and 75% robustness improvement.
        assert summary[0.05].robustness_gain == pytest.approx(0.73, abs=0.01)
        assert summary[0.10].robustness_gain == pytest.approx(0.756, abs=0.01)
        # Paper: contribution split 58/42 at 5%, 52/48 at 10%.
        assert summary[0.05].learnable_share == pytest.approx(0.58, abs=0.02)
        assert summary[0.10].learnable_share == pytest.approx(0.52, abs=0.02)

    def test_shares_sum_to_one(self):
        for improvement in improvement_summary(synthetic_grid()).values():
            assert improvement.learnable_share + improvement.variation_share == pytest.approx(1.0)

    def test_str_readable(self):
        text = str(list(improvement_summary(synthetic_grid()).values())[0])
        assert "accuracy" in text and "robustness" in text
