"""Runner protocol details against the trained tiny NN bundle."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run_cell
from repro.experiments.config import Setup


@pytest.fixture(scope="module")
def micro_config():
    return ExperimentConfig(
        seeds=(1, 2), max_epochs=30, patience=30, n_mc_train=3, n_test=6, max_train=60
    )


class TestSeedSelection:
    def test_best_seed_reported_from_candidates(self, micro_config, tiny_bundle):
        cell = run_cell(
            "iris", Setup(learnable=True, variation_aware=False), 0.05,
            micro_config, surrogates=tiny_bundle,
        )
        assert cell.best_seed in micro_config.seeds
        assert np.isfinite(cell.best_val_loss)

    def test_variation_aware_trains_per_epsilon(self, micro_config, tiny_bundle):
        trained = {}
        setup = Setup(learnable=False, variation_aware=True)
        run_cell("iris", setup, 0.05, micro_config,
                 surrogates=tiny_bundle, trained=trained)
        run_cell("iris", setup, 0.10, micro_config,
                 surrogates=tiny_bundle, trained=trained)
        # VA setups cannot share: one training per test epsilon.
        assert len(trained) == 2

    def test_nominal_cell_evaluated_at_test_epsilon(self, micro_config, tiny_bundle):
        setup = Setup(learnable=False, variation_aware=False)
        cell = run_cell("iris", setup, 0.10, micro_config, surrogates=tiny_bundle)
        # Under 10% variation an MC evaluation must produce spread unless
        # the classifier is degenerate; both are valid, so only bounds are
        # asserted here.
        assert 0.0 <= cell.mean <= 1.0
        assert 0.0 <= cell.std <= 0.5
