"""Job decomposition: keys, enumeration, dedup, deterministic execution."""

import numpy as np

from repro.core.params import PNNParams
from repro.experiments import ExperimentConfig, enumerate_jobs, execute_job
from repro.experiments.config import SETUPS, TEST_EPSILONS, Setup
from repro.experiments.jobs import (
    SPLIT_SEED,
    JobKey,
    iter_cells,
    train_epsilon,
)
from repro.experiments.runner import mc_evaluation_seed


MICRO = ExperimentConfig(
    seeds=(1, 2), max_epochs=15, patience=15, n_mc_train=2, n_test=4, max_train=50,
)


class TestJobKey:
    def test_hashable_and_ordered(self):
        a = JobKey("iris", True, True, 0.05, 1)
        b = JobKey("iris", True, True, 0.05, 2)
        assert hash(a) != hash(b) or a != b
        assert a < b
        assert a.astuple() == ("iris", True, True, 0.05, 1, "default")

    def test_setup_and_group(self):
        key = JobKey("iris", True, False, 0.0, 3)
        assert key.setup == Setup(learnable=True, variation_aware=False)
        assert key.group == ("iris", True, False, 0.0, "default")

    def test_scenario_defaults_for_positional_construction(self):
        # Pre-scenario call sites (and cached 5-element key lists) still
        # construct keys positionally; the scenario fills in last.
        key = JobKey(*("iris", True, True, 0.05, 1))
        assert key.scenario == "default"
        assert key == JobKey("iris", True, True, 0.05, 1, "default")

    def test_train_epsilon_rule(self):
        va = Setup(learnable=False, variation_aware=True)
        nominal = Setup(learnable=False, variation_aware=False)
        assert train_epsilon(va, 0.1) == 0.1
        assert train_epsilon(nominal, 0.1) == 0.0


class TestEnumeration:
    def test_cell_order_matches_serial_runner(self):
        cells = list(iter_cells(["iris", "seeds"]))
        assert len(cells) == 2 * len(SETUPS) * len(TEST_EPSILONS)
        assert cells[0] == ("iris", SETUPS[0], TEST_EPSILONS[0])
        assert cells[-1] == ("seeds", SETUPS[-1], TEST_EPSILONS[-1])

    def test_nominal_dedup(self):
        # 4 setups × 2 test ϵ → 6 training groups (nominal ones collapse).
        jobs = enumerate_jobs(["iris"], MICRO)
        assert len(jobs) == 6 * len(MICRO.seeds)
        assert len(set(jobs)) == len(jobs)
        nominal = [j for j in jobs if not j.variation_aware]
        assert all(j.train_eps == 0.0 for j in nominal)

    def test_deterministic(self):
        assert enumerate_jobs(["iris"], MICRO) == enumerate_jobs(["iris"], MICRO)


class TestExecution:
    def test_execute_matches_rerun_bitwise(self, analytic_surrogates):
        key = JobKey("iris", False, False, 0.0, 1)
        first = execute_job(key, MICRO, analytic_surrogates)
        second = execute_job(key, MICRO, analytic_surrogates)
        assert first.val_loss == second.val_loss
        assert first.epochs_run == second.epochs_run
        for a, b in zip(first.params.layers, second.params.layers):
            np.testing.assert_array_equal(a.theta, b.theta)
            np.testing.assert_array_equal(a.act_omega, b.act_omega)
            np.testing.assert_array_equal(a.neg_omega, b.neg_omega)

    def test_outcome_params_snapshot(self, analytic_surrogates):
        from repro.datasets import load_splits

        key = JobKey("iris", True, True, 0.05, 1)
        outcome = execute_job(key, MICRO, analytic_surrogates)
        assert isinstance(outcome.params, PNNParams)
        assert outcome.params.layer_sizes == outcome.topology
        splits = load_splits("iris", seed=SPLIT_SEED, max_train=MICRO.max_train)
        np.testing.assert_array_equal(
            outcome.params.predict(splits.x_test),
            execute_job(key, MICRO, analytic_surrogates).params.predict(splits.x_test),
        )


class TestEvaluationSeed:
    def test_identity_and_deterministic(self):
        # The MC-evaluation seed is derived from the winning training seed;
        # today's derivation is the (explicit) identity.
        assert mc_evaluation_seed(7) == 7
        assert mc_evaluation_seed(np.int64(7)) == 7
        assert isinstance(mc_evaluation_seed(np.int64(7)), int)
