"""Batched transfer-curve sweeps vs. the scalar reference loops."""

import numpy as np
import pytest

from repro.circuits import (
    ptanh_param_batch,
    ptanh_stamp_plan,
    simulate_negweight_curve,
    simulate_negweight_curve_batch,
    simulate_ptanh_curve,
    simulate_ptanh_curve_batch,
)
from repro.surrogate.sampling import sample_design_points


class TestBatchedCurves:
    def test_ptanh_batch_is_bitwise_identical_to_scalar(self):
        omegas = sample_design_points(12, seed=7)
        xs_b, ys_b, ok = simulate_ptanh_curve_batch(omegas, n_points=17)
        assert ok.all()
        for lane, omega in enumerate(omegas):
            xs, ys = simulate_ptanh_curve(omega, n_points=17)
            assert np.array_equal(xs, xs_b)
            assert np.array_equal(ys, ys_b[lane])

    def test_negweight_batch_is_bitwise_identical_to_scalar(self):
        omegas = sample_design_points(12, seed=9)
        xs_b, ys_b, ok = simulate_negweight_curve_batch(omegas, n_points=17)
        assert ok.all()
        for lane, omega in enumerate(omegas):
            xs, ys = simulate_negweight_curve(omega, n_points=17)
            assert np.array_equal(ys, ys_b[lane])

    def test_negweight_curves_are_negative_and_falling(self):
        omegas = sample_design_points(4, seed=1)
        _, ys, ok = simulate_negweight_curve_batch(omegas, n_points=11)
        assert ok.all()
        assert (ys <= 0).all()

    def test_batch_results_do_not_depend_on_batch_composition(self):
        """A lane's curve must not change when its batch mates change."""
        omegas = sample_design_points(8, seed=4)
        _, full, _ = simulate_ptanh_curve_batch(omegas, n_points=9)
        _, half, _ = simulate_ptanh_curve_batch(omegas[::2], n_points=9)
        assert np.array_equal(full[::2], half)

    def test_plan_is_cached_per_model(self):
        assert ptanh_stamp_plan() is ptanh_stamp_plan()


class TestParamBatchValidation:
    def test_omega_batch_shape_enforced(self):
        plan = ptanh_stamp_plan()
        with pytest.raises(ValueError, match=r"\(B, 7\)"):
            ptanh_param_batch(np.ones(7), plan)

    def test_nonpositive_resistances_rejected(self):
        plan = ptanh_stamp_plan()
        bad = np.ones((2, 7))
        bad[1, 0] = 0.0
        with pytest.raises(ValueError, match="positive"):
            ptanh_param_batch(bad, plan)

    def test_geometry_broadcast_to_both_transistors(self):
        plan = ptanh_stamp_plan()
        omegas = np.array([[200.0, 80.0, 1e5, 4e4, 1e5, 123.0, 45.0]])
        params = ptanh_param_batch(omegas, plan)
        assert params.widths.shape == (1, plan.n_egts)
        assert (params.widths == 123.0).all()
        assert (params.lengths == 45.0).all()
