"""Crossbar: the analytic Eq. 1 must match the solved netlist."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import CrossbarColumn, crossbar_netlist, crossbar_output
from repro.spice import solve_dc


def column(gs, gb=1e-5, gd=1e-5, vb=1.0):
    return CrossbarColumn(
        input_conductances=gs, bias_conductance=gb, down_conductance=gd, bias_voltage=vb
    )


class TestAnalytic:
    def test_weights_sum_below_one(self):
        col = column([1e-5, 2e-5, 3e-5])
        assert col.weights().sum() + col.bias_weight() < 1.0

    def test_equal_conductances_average(self):
        col = column([1e-5, 1e-5], gb=1e-5, gd=1e-5)
        out = crossbar_output(col, [0.2, 0.6])
        # All four branches weigh 1/4: (0.2 + 0.6 + 1.0·bias + 0·down)/4
        assert out == pytest.approx((0.2 + 0.6 + 1.0) / 4.0)

    def test_bias_only(self):
        col = column([0.0, 0.0], gb=2e-5, gd=2e-5)
        assert crossbar_output(col, [0.9, 0.9]) == pytest.approx(0.5)

    def test_output_bounded_by_inputs_and_bias(self):
        col = column([3e-5, 1e-5], gb=2e-5, gd=1e-5)
        out = crossbar_output(col, [0.3, 0.8])
        assert 0.0 <= out <= 1.0

    def test_rejects_negative_conductance(self):
        with pytest.raises(ValueError):
            column([-1e-5])

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ValueError):
            crossbar_output(column([1e-5, 1e-5]), [0.5])


class TestAgainstSolver:
    @given(
        gs=st.lists(st.floats(1e-6, 1e-4), min_size=1, max_size=5),
        voltages_seed=st.integers(0, 1000),
        gb=st.floats(1e-6, 1e-4),
        gd=st.floats(1e-6, 1e-4),
    )
    @settings(max_examples=40, deadline=None)
    def test_analytic_matches_netlist(self, gs, voltages_seed, gb, gd):
        rng = np.random.default_rng(voltages_seed)
        voltages = rng.uniform(0.0, 1.0, size=len(gs))
        col = column(gs, gb=gb, gd=gd)
        predicted = crossbar_output(col, voltages)
        netlist = crossbar_netlist(col, voltages)
        solved = solve_dc(netlist).voltage("vz")
        assert solved == pytest.approx(predicted, abs=1e-6)

    def test_zero_conductance_not_printed(self):
        col = column([1e-5, 0.0], gb=1e-5, gd=1e-5)
        netlist = crossbar_netlist(col, [0.5, 0.9])
        names = [r.name for r in netlist.resistors]
        assert "Rc1" not in names and "Rc0" in names

    def test_netlist_output_with_zero_branch_matches(self):
        col = column([1e-5, 0.0], gb=1e-5, gd=1e-5)
        predicted = crossbar_output(col, [0.5, 0.9])
        solved = solve_dc(crossbar_netlist(col, [0.5, 0.9])).voltage("vz")
        assert solved == pytest.approx(predicted, abs=1e-6)
