"""ptanh and negative-weight circuits: structure and transfer curves."""

import numpy as np
import pytest

from repro.circuits import (
    PTANH_NODES,
    build_ptanh_netlist,
    simulate_negweight_curve,
    simulate_ptanh_curve,
)
from repro.spice import solve_dc
from repro.surrogate.sampling import sample_design_points

#: A mid-range, expressive design point used across these tests.
OMEGA = np.array([200.0, 80.0, 100e3, 40e3, 100e3, 500.0, 30.0])


class TestNetlistStructure:
    def test_component_counts(self):
        netlist = build_ptanh_netlist(OMEGA)
        assert len(netlist.resistors) == 6     # R1..R5 + fixed stage-2 load
        assert len(netlist.transistors) == 2
        assert len(netlist.sources) == 2       # Vdd + Vin

    def test_resistor_values_match_omega(self):
        netlist = build_ptanh_netlist(OMEGA)
        values = {r.name: r.resistance for r in netlist.resistors}
        assert values["R1"] == 200.0
        assert values["R2"] == 80.0
        assert values["R3"] == 100e3
        assert values["R4"] == 40e3
        assert values["R5"] == 100e3

    def test_transistor_geometry(self):
        netlist = build_ptanh_netlist(OMEGA)
        for egt in netlist.transistors:
            assert egt.width == 500.0
            assert egt.length == 30.0

    def test_rejects_bad_omega(self):
        with pytest.raises(ValueError):
            build_ptanh_netlist(OMEGA[:5])
        bad = OMEGA.copy()
        bad[0] = -1.0
        with pytest.raises(ValueError):
            build_ptanh_netlist(bad)

    def test_solvable_at_operating_point(self):
        op = solve_dc(build_ptanh_netlist(OMEGA, vin=0.5))
        assert 0.0 <= op.voltage(PTANH_NODES["output"]) <= 1.0


class TestTransferCurves:
    def test_ptanh_rises_with_input(self):
        x, y = simulate_ptanh_curve(OMEGA, n_points=21)
        assert y[-1] > y[0]
        assert np.all(np.diff(y) >= -1e-9)   # monotone rising

    def test_ptanh_output_within_rails(self):
        _, y = simulate_ptanh_curve(OMEGA, n_points=21)
        assert np.all((y >= -1e-9) & (y <= 1.0 + 1e-9))

    def test_negweight_falls_and_is_negative(self):
        x, y = simulate_negweight_curve(OMEGA, n_points=21)
        assert np.all(y <= 0.0)
        assert np.all(np.diff(y) <= 1e-9)    # monotone falling

    def test_curves_respond_to_geometry(self):
        strong = OMEGA.copy(); strong[5], strong[6] = 800.0, 10.0
        weak = OMEGA.copy(); weak[5], weak[6] = 200.0, 70.0
        _, y_strong = simulate_ptanh_curve(strong, n_points=15)
        _, y_weak = simulate_ptanh_curve(weak, n_points=15)
        swing = lambda y: y.max() - y.min()   # noqa: E731
        assert swing(y_strong) != pytest.approx(swing(y_weak), abs=1e-3)

    def test_divider_shifts_trip_point(self):
        attenuating = OMEGA.copy(); attenuating[0], attenuating[1] = 400.0, 60.0
        passing = OMEGA.copy(); passing[0], passing[1] = 100.0, 90.0
        x, y_att = simulate_ptanh_curve(attenuating, n_points=31)
        _, y_pass = simulate_ptanh_curve(passing, n_points=31)
        trip = lambda y: x[np.argmax(np.diff(y))]   # noqa: E731
        assert trip(y_att) > trip(y_pass)

    def test_most_design_points_yield_expressive_curves(self):
        omegas = sample_design_points(24, seed=9)
        swings = []
        for omega in omegas:
            _, y = simulate_ptanh_curve(omega, n_points=15)
            swings.append(y.max() - y.min())
        assert np.mean(np.asarray(swings) > 0.1) > 0.5
