"""The examples must at least import cleanly and expose a main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        assert callable(getattr(module, "main", None)), f"{path.name} lacks main()"
        assert module.__doc__, f"{path.name} lacks a docstring"
    finally:
        sys.modules.pop(spec.name, None)


def test_at_least_four_examples_ship():
    assert len(EXAMPLES) >= 4
