"""build_surrogate_bundle: end-to-end pipeline behaviour."""

import numpy as np
import pytest

from repro.surrogate.pipeline import build_surrogate_bundle
from repro.surrogate.sampling import sample_design_points


@pytest.fixture(scope="module")
def mini_bundle(tmp_path_factory):
    return build_surrogate_bundle(
        n_points=48,
        sweep_points=15,
        widths=(10, 6, 4),
        max_epochs=40,
        patience=40,
        seed=1,
        cache_dir=tmp_path_factory.mktemp("bundle"),
    )


class TestBuildBundle:
    def test_contains_both_circuit_kinds(self, mini_bundle):
        assert mini_bundle.ptanh.kind == "ptanh"
        assert mini_bundle.negweight.kind == "negweight"

    def test_metrics_recorded(self, mini_bundle):
        assert np.isfinite(mini_bundle.ptanh.test_mse)
        assert np.isfinite(mini_bundle.negweight.test_mse)

    def test_eta_finite_across_design_space(self, mini_bundle):
        """Predictions stay finite everywhere (bounds need a trained bundle;
        the paper-scale check lives in the fig4 bench)."""
        omega = sample_design_points(12, seed=5)
        for surrogate in (mini_bundle.ptanh, mini_bundle.negweight):
            eta = surrogate.eta_numpy(omega)
            assert eta.shape == (12, 4)
            assert np.all(np.isfinite(eta))

    def test_normalizers_cover_training_ranges(self, mini_bundle):
        normalizer = mini_bundle.ptanh.input_normalizer
        assert normalizer.minimum.shape == (10,)
        assert np.all(normalizer.span > 0)

    def test_verbose_build_prints_progress(self, tmp_path, capsys):
        build_surrogate_bundle(
            n_points=16, sweep_points=11, widths=(10, 5, 4),
            max_epochs=5, patience=5, seed=2, cache_dir=tmp_path, verbose=True,
        )
        out = capsys.readouterr().out
        assert "building dataset" in out and "training MLP" in out
