"""Analytic fallback surrogate: structure, differentiability, calibration."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.surrogate import AnalyticSurrogate
from repro.surrogate.sampling import sample_design_points


class TestAnalyticSurrogate:
    def test_output_shape(self):
        surrogate = AnalyticSurrogate("ptanh")
        omega = sample_design_points(5, seed=0)
        assert surrogate.eta_numpy(omega).shape == (5, 4)

    def test_batched_shapes(self):
        surrogate = AnalyticSurrogate("ptanh")
        omega = np.tile(sample_design_points(2, seed=0), (3, 1, 1))
        assert surrogate.eta_from_omega(Tensor(omega)).shape == (3, 2, 4)

    def test_differentiable(self):
        surrogate = AnalyticSurrogate("ptanh")
        omega = Tensor(sample_design_points(3, seed=1))
        assert gradcheck(surrogate.eta_from_omega, [omega])

    def test_steepness_positive_and_bounded(self):
        surrogate = AnalyticSurrogate("ptanh")
        eta = surrogate.eta_numpy(sample_design_points(50, seed=2))
        assert np.all(eta[:, 3] >= 0.5) and np.all(eta[:, 3] <= 200.0)

    def test_wider_transistor_steeper_curve(self):
        surrogate = AnalyticSurrogate("ptanh")
        base = np.array([200, 80, 100e3, 40e3, 100e3, 300.0, 50.0])
        wide = base.copy(); wide[5] = 800.0; wide[6] = 10.0
        eta_base = surrogate.eta_numpy(base[None])[0]
        eta_wide = surrogate.eta_numpy(wide[None])[0]
        assert eta_wide[3] > eta_base[3]

    def test_stronger_divider_moves_trip_point_right(self):
        surrogate = AnalyticSurrogate("ptanh")
        base = np.array([200, 150, 100e3, 40e3, 100e3, 500.0, 30.0])
        attenuated = base.copy(); attenuated[1] = 30.0   # smaller k1
        assert (
            surrogate.eta_numpy(attenuated[None])[0][2]
            > surrogate.eta_numpy(base[None])[0][2]
        )

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            AnalyticSurrogate("sigmoid")


class TestCalibration:
    def test_calibration_reduces_error(self, ptanh_dataset):
        surrogate = AnalyticSurrogate("ptanh")
        raw_error = np.mean(
            (surrogate.eta_numpy(ptanh_dataset.omega) - ptanh_dataset.eta) ** 2
        )
        surrogate.calibrate(ptanh_dataset)
        calibrated_error = np.mean(
            (surrogate.eta_numpy(ptanh_dataset.omega) - ptanh_dataset.eta) ** 2
        )
        assert calibrated_error <= raw_error

    def test_calibration_requires_matching_kind(self, ptanh_dataset):
        with pytest.raises(ValueError):
            AnalyticSurrogate("negweight").calibrate(ptanh_dataset)

    def test_calibration_is_affine_per_output(self, ptanh_dataset):
        surrogate = AnalyticSurrogate("ptanh").calibrate(ptanh_dataset)
        assert surrogate.scale.shape == (4,)
        assert surrogate.shift.shape == (4,)
