"""Sobol QMC sampling of the design space."""

import numpy as np
import pytest

from repro.surrogate import DESIGN_SPACE, sample_design_points


class TestSampling:
    def test_shape_and_feasibility(self):
        omegas = sample_design_points(100, seed=0)
        assert omegas.shape == (100, 7)
        for omega in omegas:
            assert DESIGN_SPACE.contains(omega, atol=1e-9)

    def test_deterministic_given_seed(self):
        a = sample_design_points(32, seed=5)
        b = sample_design_points(32, seed=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = sample_design_points(32, seed=1)
        b = sample_design_points(32, seed=2)
        assert not np.allclose(a, b)

    def test_covers_the_box(self):
        """QMC points should span most of each marginal range."""
        omegas = sample_design_points(512, seed=0)
        spans = (omegas.max(axis=0) - omegas.min(axis=0)) / (
            DESIGN_SPACE.upper - DESIGN_SPACE.lower
        )
        # R2/R4 are products with clipping; the directly-sampled axes
        # (R1, R3, R5, W, L) must cover ≥ 90% of their range.
        for axis in (0, 2, 4, 5, 6):
            assert spans[axis] > 0.9

    def test_low_discrepancy_beats_iid_on_mean_error(self):
        """Sobol means converge faster than pseudo-random means."""
        omegas = sample_design_points(1024, seed=0)
        direct_axes = [0, 2, 4, 5, 6]
        centre = (DESIGN_SPACE.reduced_lower + DESIGN_SPACE.reduced_upper)[:5] / 2.0
        qmc_error = np.abs(omegas[:, direct_axes].mean(axis=0) - centre).max() / centre.max()
        assert qmc_error < 0.01

    def test_single_point(self):
        omegas = sample_design_points(1, seed=0)
        assert omegas.shape == (1, 7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sample_design_points(0)
