"""Surrogate bundles: differentiable ω → η map and (de)serialization."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.surrogate.io import bundle_cache_path, load_bundle, save_bundle
from repro.surrogate.pipeline import build_surrogate_bundle
from repro.surrogate.sampling import sample_design_points


class TestCircuitSurrogate:
    def test_eta_shapes(self, tiny_bundle):
        omega = sample_design_points(6, seed=0)
        eta = tiny_bundle.ptanh.eta_numpy(omega)
        assert eta.shape == (6, 4)

    def test_eta_batched_shapes(self, tiny_bundle):
        omega = np.tile(sample_design_points(2, seed=0), (5, 1, 1))
        eta = tiny_bundle.ptanh.eta_from_omega(Tensor(omega))
        assert eta.shape == (5, 2, 4)

    def test_differentiable_wrt_omega(self, tiny_bundle):
        omega = Tensor(sample_design_points(3, seed=1))
        assert gradcheck(tiny_bundle.ptanh.eta_from_omega, [omega])

    def test_predictions_near_simulated_truth(self, tiny_bundle, ptanh_dataset):
        """The trained surrogate must beat a constant predictor clearly."""
        predicted = tiny_bundle.ptanh.eta_numpy(ptanh_dataset.omega)
        truth = ptanh_dataset.eta
        residual = ((predicted - truth) ** 2).mean(axis=0)
        baseline = truth.var(axis=0) + 1e-12
        # Average skill across the four η outputs (the session fixture is a
        # deliberately tiny surrogate; the paper-scale bundle reaches ~0.05).
        assert (residual / baseline).mean() < 0.85

    def test_bundle_lookup(self, tiny_bundle):
        assert tiny_bundle.surrogate("ptanh") is tiny_bundle.ptanh
        assert tiny_bundle.surrogate("negweight") is tiny_bundle.negweight
        with pytest.raises(KeyError):
            tiny_bundle.surrogate("other")


class TestBundleIO:
    def test_save_load_round_trip(self, tiny_bundle, tmp_path):
        path = save_bundle(tiny_bundle, tmp_path / "bundle.npz")
        restored = load_bundle(path)
        omega = sample_design_points(5, seed=2)
        assert np.allclose(
            restored.ptanh.eta_numpy(omega), tiny_bundle.ptanh.eta_numpy(omega)
        )
        assert np.allclose(
            restored.negweight.eta_numpy(omega), tiny_bundle.negweight.eta_numpy(omega)
        )
        assert np.allclose(restored.space.lower, tiny_bundle.space.lower)

    def test_cache_path_deterministic(self, tmp_path):
        a = bundle_cache_path(tmp_path, 128, (10, 8, 4), 0)
        b = bundle_cache_path(tmp_path, 128, (10, 8, 4), 0)
        c = bundle_cache_path(tmp_path, 256, (10, 8, 4), 0)
        assert a == b and a != c

    def test_build_with_cache_reuses_file(self, tmp_path):
        kwargs = dict(
            n_points=32, sweep_points=15, widths=(10, 6, 4),
            max_epochs=20, patience=20, seed=0, cache_dir=tmp_path,
        )
        first = build_surrogate_bundle(**kwargs)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        second = build_surrogate_bundle(**kwargs)
        omega = sample_design_points(3, seed=3)
        assert np.allclose(
            first.ptanh.eta_numpy(omega), second.ptanh.eta_numpy(omega)
        )
