"""Surrogate MLP, its training loop and the dataset builder."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.surrogate import (
    PAPER_LAYER_WIDTHS,
    SurrogateMLP,
    train_surrogate,
)
from repro.surrogate.dataset_builder import SurrogateDataset, simulate_curve
from repro.surrogate.model import TINY_LAYER_WIDTHS
from repro.surrogate.training import r_squared, split_indices


class TestSurrogateMLP:
    def test_paper_architecture(self):
        assert PAPER_LAYER_WIDTHS == (10, 9, 9, 8, 8, 7, 7, 6, 6, 6, 5, 5, 5, 4)
        model = SurrogateMLP(rng=np.random.default_rng(0))
        # 13 Linear layers → 13 weight + 13 bias parameters.
        assert sum(1 for _ in model.parameters()) == 26

    def test_forward_shapes(self):
        model = SurrogateMLP(TINY_LAYER_WIDTHS, rng=np.random.default_rng(0))
        assert model(Tensor(np.zeros((7, 10)))).shape == (7, 4)
        assert model(Tensor(np.zeros((3, 2, 10)))).shape == (3, 2, 4)

    def test_differentiable_wrt_input(self):
        model = SurrogateMLP(TINY_LAYER_WIDTHS, rng=np.random.default_rng(1))
        x = Tensor(np.random.default_rng(2).uniform(size=(4, 10)))
        assert gradcheck(lambda x: model(x), [x])

    def test_parameter_gradients_match_finite_difference(self):
        model = SurrogateMLP(TINY_LAYER_WIDTHS, rng=np.random.default_rng(1))
        x = Tensor(np.random.default_rng(2).uniform(size=(4, 10)))

        def loss() -> float:
            return float(model(x).sum().data)

        model.zero_grad()
        model(x).sum().backward()
        weight = model.net[0].weight
        analytic = weight.grad[0, 0]
        h = 1e-6
        weight.data[0, 0] += h
        plus = loss()
        weight.data[0, 0] -= 2 * h
        minus = loss()
        weight.data[0, 0] += h
        assert analytic == pytest.approx((plus - minus) / (2 * h), rel=1e-4, abs=1e-8)

    def test_predict_without_tape(self):
        model = SurrogateMLP(TINY_LAYER_WIDTHS, rng=np.random.default_rng(0))
        out = model.predict(np.zeros((2, 10)))
        assert isinstance(out, np.ndarray) and out.shape == (2, 4)

    def test_rejects_wrong_io_widths(self):
        with pytest.raises(ValueError):
            SurrogateMLP((8, 4))
        with pytest.raises(ValueError):
            SurrogateMLP((10, 5))


class TestSplitsAndMetrics:
    def test_split_fractions(self):
        rng = np.random.default_rng(0)
        train, val, test = split_indices(100, rng)
        assert len(train) == 70 and len(val) == 20 and len(test) == 10

    def test_split_partitions_disjoint_and_complete(self):
        rng = np.random.default_rng(1)
        train, val, test = split_indices(57, rng)
        union = np.concatenate([train, val, test])
        assert len(np.unique(union)) == 57

    def test_split_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            split_indices(10, np.random.default_rng(0), fractions=(0.5, 0.5, 0.5))

    def test_r_squared_perfect_and_mean(self):
        target = np.random.default_rng(0).normal(size=(50, 2))
        assert np.allclose(r_squared(target, target), 1.0)
        mean_prediction = np.tile(target.mean(axis=0), (50, 1))
        assert np.allclose(r_squared(mean_prediction, target), 0.0, atol=1e-9)


class TestDatasetBuilder:
    def test_dataset_contents(self, ptanh_dataset):
        assert len(ptanh_dataset) > 40
        assert ptanh_dataset.omega.shape[1] == 7
        assert ptanh_dataset.eta.shape[1] == 4
        assert ptanh_dataset.kind == "ptanh"
        assert np.all(ptanh_dataset.rmse <= 0.05)

    def test_negweight_dataset(self, negweight_dataset):
        assert negweight_dataset.kind == "negweight"
        assert len(negweight_dataset) > 40

    def test_eta_within_identifiable_bounds(self, ptanh_dataset):
        from repro.surrogate.fitting import ETA_BOUNDS_HIGH, ETA_BOUNDS_LOW

        assert np.all(ptanh_dataset.eta >= ETA_BOUNDS_LOW)
        assert np.all(ptanh_dataset.eta <= ETA_BOUNDS_HIGH)

    def test_simulate_curve_dispatch(self):
        omega = np.array([200, 80, 100e3, 40e3, 100e3, 500, 30.0])
        x1, y1 = simulate_curve(omega, "ptanh", 9, None)
        x2, y2 = simulate_curve(omega, "negweight", 9, None)
        assert len(y1) == 9 and len(y2) == 9
        with pytest.raises(ValueError):
            simulate_curve(omega, "mystery", 9, None)

    def test_mismatched_pair_rejected(self):
        with pytest.raises(ValueError):
            SurrogateDataset(
                omega=np.zeros((3, 7)), eta=np.zeros((2, 4)), rmse=np.zeros(3), kind="ptanh"
            )


class TestTraining:
    def test_training_reduces_validation_loss(self, ptanh_dataset):
        result = train_surrogate(
            ptanh_dataset, widths=TINY_LAYER_WIDTHS, max_epochs=150, patience=150, seed=0
        )
        first_val = result.history[0][2]
        assert result.val_mse < first_val

    def test_early_stopping_restores_best(self, ptanh_dataset):
        result = train_surrogate(
            ptanh_dataset, widths=TINY_LAYER_WIDTHS, max_epochs=120, patience=20, seed=0
        )
        best_recorded = min(h[2] for h in result.history)
        assert result.val_mse <= best_recorded + 1e-6

    def test_metrics_reported(self, ptanh_dataset):
        result = train_surrogate(
            ptanh_dataset, widths=TINY_LAYER_WIDTHS, max_epochs=60, patience=60, seed=1
        )
        assert np.isfinite(result.train_mse)
        assert np.isfinite(result.test_mse)
        assert result.r2_per_eta.shape == (4,)
        assert set(result.splits) == {"train", "val", "test"}

    def test_minibatch_training_runs(self, ptanh_dataset):
        result = train_surrogate(
            ptanh_dataset, widths=TINY_LAYER_WIDTHS, max_epochs=20,
            patience=20, batch_size=16, seed=0,
        )
        assert len(result.history) == 20
