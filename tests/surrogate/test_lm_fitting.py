"""Levenberg-Marquardt and the η extraction (Fig. 4 left)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import least_squares

from repro.surrogate.fitting import (
    ETA_BOUNDS_HIGH,
    ETA_BOUNDS_LOW,
    canonicalize_eta,
    fit_ptanh,
    initial_guess,
    ptanh_curve,
    ptanh_jacobian,
)
from repro.surrogate.lm import levenberg_marquardt


class TestLevenbergMarquardt:
    def test_solves_linear_least_squares(self):
        design = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        target = np.array([1.0, 2.0, 3.0])
        result = levenberg_marquardt(lambda x: design @ x - target, np.zeros(2))
        assert np.allclose(result.x, [1.0, 2.0], atol=1e-8)

    def test_rosenbrock_valley(self):
        def residual(x):
            return np.array([10.0 * (x[1] - x[0] ** 2), 1.0 - x[0]])

        result = levenberg_marquardt(residual, np.array([-1.2, 1.0]), max_iter=500)
        assert np.allclose(result.x, [1.0, 1.0], atol=1e-6)

    def test_analytic_jacobian_used(self):
        calls = {"n": 0}

        def residual(x):
            return x - 3.0

        def jacobian(x):
            calls["n"] += 1
            return np.eye(len(x))

        result = levenberg_marquardt(residual, np.zeros(2), jacobian=jacobian)
        assert calls["n"] > 0
        assert np.allclose(result.x, [3.0, 3.0])

    def test_matches_scipy_on_tanh_fit(self):
        rng = np.random.default_rng(0)
        true_eta = np.array([0.5, 0.4, 0.45, 6.0])
        v_in = np.linspace(0, 1, 41)
        target = ptanh_curve(true_eta, v_in) + rng.normal(0, 1e-3, size=41)
        x0 = initial_guess(v_in, target)

        ours = levenberg_marquardt(
            lambda e: ptanh_curve(e, v_in) - target, x0,
            jacobian=lambda e: ptanh_jacobian(e, v_in),
        )
        scipy_fit = least_squares(lambda e: ptanh_curve(e, v_in) - target, x0)
        assert ours.cost == pytest.approx(0.5 * scipy_fit.cost * 2, rel=1e-3, abs=1e-9)
        assert np.allclose(ours.x, scipy_fit.x, atol=1e-3)


class TestPtanhJacobian:
    @given(
        eta1=st.floats(0.0, 1.0), eta2=st.floats(-0.5, 0.5),
        eta3=st.floats(0.0, 1.0), eta4=st.floats(0.5, 20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_jacobian_matches_finite_difference(self, eta1, eta2, eta3, eta4):
        eta = np.array([eta1, eta2, eta3, eta4])
        v_in = np.linspace(0, 1, 11)
        jac = ptanh_jacobian(eta, v_in)
        for j in range(4):
            h = 1e-7 * max(1.0, abs(eta[j]))
            shifted = eta.copy()
            shifted[j] += h
            numeric = (ptanh_curve(shifted, v_in) - ptanh_curve(eta, v_in)) / h
            assert np.allclose(jac[:, j], numeric, atol=1e-5)


class TestFitPtanh:
    @given(
        eta1=st.floats(0.3, 0.7), eta2=st.floats(0.15, 0.45),
        eta3=st.floats(0.25, 0.75), eta4=st.floats(2.0, 15.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovers_known_parameters(self, eta1, eta2, eta3, eta4):
        true_eta = np.array([eta1, eta2, eta3, eta4])
        v_in = np.linspace(0, 1, 41)
        fit = fit_ptanh(v_in, ptanh_curve(true_eta, v_in))
        assert fit.rmse < 1e-6
        assert np.allclose(fit.eta, true_eta, rtol=1e-2, atol=1e-3)

    def test_negated_form_recovers_inv(self):
        true_eta = np.array([0.6, 0.3, 0.5, 5.0])
        v_in = np.linspace(0, 1, 41)
        inv_curve = -ptanh_curve(true_eta, v_in)   # Eq. 3
        fit = fit_ptanh(v_in, inv_curve, negated=True)
        assert np.allclose(fit.eta, true_eta, atol=1e-4)

    def test_noise_tolerance(self):
        rng = np.random.default_rng(1)
        true_eta = np.array([0.5, 0.35, 0.5, 6.0])
        v_in = np.linspace(0, 1, 41)
        noisy = ptanh_curve(true_eta, v_in) + rng.normal(0, 5e-3, 41)
        fit = fit_ptanh(v_in, noisy)
        assert np.allclose(fit.eta, true_eta, atol=0.05)
        assert fit.rmse < 0.01

    def test_flat_curve_flagged_not_tanh_like(self):
        v_in = np.linspace(0, 1, 21)
        fit = fit_ptanh(v_in, np.full(21, 0.95))
        assert not fit.is_tanh_like

    def test_bounds_checked(self):
        assert np.all(ETA_BOUNDS_LOW < ETA_BOUNDS_HIGH)
        fit = fit_ptanh(np.linspace(0, 1, 21), np.linspace(0.1, 0.9, 21))
        assert fit.in_bounds == (
            np.all(fit.eta >= ETA_BOUNDS_LOW) and np.all(fit.eta <= ETA_BOUNDS_HIGH)
        )

    def test_canonicalize_resolves_sign_ambiguity(self):
        eta = np.array([0.5, 0.3, 0.5, -4.0])
        canonical = canonicalize_eta(eta)
        assert canonical[3] > 0
        v = np.linspace(0, 1, 9)
        assert np.allclose(ptanh_curve(eta, v), ptanh_curve(canonical, v))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_ptanh(np.ones(3), np.ones(3))          # too few points
        with pytest.raises(ValueError):
            fit_ptanh(np.ones(10), np.ones(9))          # length mismatch
