"""Design space (Table I): bounds, constraints, reduced parameterization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.surrogate import DESIGN_SPACE, DesignSpace
from repro.surrogate.design_space import OMEGA_NAMES, REDUCED_NAMES


class TestTableI:
    def test_bounds_match_paper(self):
        assert np.allclose(DESIGN_SPACE.lower, [10, 5, 10e3, 8e3, 10e3, 200, 10])
        assert np.allclose(DESIGN_SPACE.upper, [500, 250, 500e3, 400e3, 500e3, 800, 70])

    def test_names(self):
        assert OMEGA_NAMES == ("R1", "R2", "R3", "R4", "R5", "W", "L")
        assert REDUCED_NAMES == ("R1", "R3", "R5", "W", "L", "k1", "k2")

    def test_table_rendering_mentions_inequalities(self):
        table = DESIGN_SPACE.as_table()
        assert "R1 > R2" in table and "R3 > R4" in table

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace(lower=np.ones(7), upper=np.ones(7))
        with pytest.raises(ValueError):
            DesignSpace(lower=np.ones(3), upper=np.ones(3) * 2)


class TestMembership:
    def test_contains_valid_point(self):
        omega = np.array([200, 80, 100e3, 40e3, 100e3, 500, 30])
        assert DESIGN_SPACE.contains(omega)

    def test_rejects_out_of_box(self):
        omega = np.array([600, 80, 100e3, 40e3, 100e3, 500, 30])
        assert not DESIGN_SPACE.contains(omega)

    def test_rejects_inequality_violation(self):
        omega = np.array([50, 80, 100e3, 40e3, 100e3, 500, 30])   # R2 > R1
        assert not DESIGN_SPACE.contains(omega)
        omega2 = np.array([200, 80, 20e3, 40e3, 100e3, 500, 30])  # R4 > R3
        assert not DESIGN_SPACE.contains(omega2)

    def test_rejects_wrong_shape(self):
        assert not DESIGN_SPACE.contains(np.ones(5))

    def test_clip_restores_feasibility(self):
        omega = np.array([700, 900, 600e3, 700e3, 5e3, 1000, 5])
        clipped = DESIGN_SPACE.clip(omega)
        assert DESIGN_SPACE.contains(clipped, atol=1e-6)


class TestReduced:
    def test_assemble_single_point(self):
        reduced = np.array([200, 100e3, 100e3, 500, 30, 0.4, 0.4])
        omega = DESIGN_SPACE.assemble(reduced)
        assert omega.shape == (7,)
        assert omega[1] == pytest.approx(80.0)       # R2 = k1 R1
        assert omega[3] == pytest.approx(40e3)       # R4 = k2 R3

    def test_assemble_batch(self):
        reduced = np.tile([200, 100e3, 100e3, 500, 30, 0.4, 0.4], (5, 1))
        omega = DESIGN_SPACE.assemble(reduced)
        assert omega.shape == (5, 7)

    def test_assemble_clips_r2_r4(self):
        # k1·R1 = 0.94·500 = 470 > 250 must clip to the R2 bound.
        reduced = np.array([500, 500e3, 100e3, 500, 30, 0.94, 0.94])
        omega = DESIGN_SPACE.assemble(reduced)
        assert omega[1] == 250.0
        assert omega[3] == 400e3

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_assembled_points_always_feasible(self, seed):
        rng = np.random.default_rng(seed)
        reduced = rng.uniform(DESIGN_SPACE.reduced_lower, DESIGN_SPACE.reduced_upper)
        omega = DESIGN_SPACE.assemble(reduced)
        assert DESIGN_SPACE.contains(omega, atol=1e-9)
