"""Ratio extension and min-max normalization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, gradcheck
from repro.surrogate import FeatureNormalizer, extend_with_ratios
from repro.surrogate.features import FEATURE_NAMES


class TestExtendWithRatios:
    def test_feature_order(self):
        assert FEATURE_NAMES == ("R1", "R2", "R3", "R4", "R5", "W", "L", "k1", "k2", "k3")

    def test_ratios_computed(self):
        omega = np.array([200.0, 80.0, 100e3, 40e3, 100e3, 500.0, 30.0])
        extended = extend_with_ratios(omega[None, :])
        assert extended.shape == (1, 10)
        assert extended[0, 7] == pytest.approx(0.4)          # R2/R1
        assert extended[0, 8] == pytest.approx(0.4)          # R4/R3
        assert extended[0, 9] == pytest.approx(500 / 30)     # W/L

    def test_batch_shapes_preserved(self):
        omega = np.ones((4, 3, 7))
        assert extend_with_ratios(omega).shape == (4, 3, 10)

    def test_tensor_path_matches_numpy_path(self):
        rng = np.random.default_rng(0)
        omega = rng.uniform(1.0, 100.0, size=(5, 7))
        from_numpy = extend_with_ratios(omega)
        from_tensor = extend_with_ratios(Tensor(omega)).data
        assert np.allclose(from_numpy, from_tensor)

    def test_tensor_path_differentiable(self):
        omega = Tensor(np.random.default_rng(1).uniform(1.0, 10.0, size=(3, 7)))
        assert gradcheck(extend_with_ratios, [omega])

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            extend_with_ratios(np.ones((2, 6)))


class TestFeatureNormalizer:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.uniform(-5, 20, size=(30, 4))
        normalizer = FeatureNormalizer.fit(data)
        assert np.allclose(normalizer.denormalize(normalizer.normalize(data)), data)

    def test_normalized_range(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(3.0, 9.0, size=(50, 3))
        normalized = FeatureNormalizer.fit(data).normalize(data)
        assert normalized.min() >= 0.0 and normalized.max() <= 1.0

    def test_constant_feature_handled(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        normalizer = FeatureNormalizer.fit(data)
        out = normalizer.normalize(data)
        assert np.all(np.isfinite(out))

    def test_tensor_path_matches_numpy(self):
        rng = np.random.default_rng(2)
        data = rng.uniform(0, 10, size=(20, 5))
        normalizer = FeatureNormalizer.fit(data)
        assert np.allclose(
            normalizer.normalize(Tensor(data)).data, normalizer.normalize(data)
        )
        assert np.allclose(
            normalizer.denormalize(Tensor(data)).data, normalizer.denormalize(data)
        )

    def test_state_round_trip(self):
        normalizer = FeatureNormalizer(np.zeros(3), np.ones(3) * 2)
        restored = FeatureNormalizer.from_state(normalizer.state())
        assert np.allclose(restored.minimum, normalizer.minimum)
        assert np.allclose(restored.maximum, normalizer.maximum)

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            FeatureNormalizer(np.ones(2), np.ones(2))
