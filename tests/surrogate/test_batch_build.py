"""Lockstep η fitting and the two dataset-builder engines.

The headline property of the batched pipeline is *element-wise identity*:
``engine="batched"`` must reproduce the scalar reference loop exactly, not
merely to tolerance, for any chunk size.
"""

import numpy as np
import pytest

from repro.spice.mna import ConvergenceError
from repro.surrogate import dataset_builder
from repro.surrogate.dataset_builder import BuildStats, build_surrogate_dataset
from repro.surrogate.fitting import (
    FitResult,
    fit_ptanh,
    fit_ptanh_batch,
    initial_guess,
    initial_guess_batch,
    ptanh_curve,
    ptanh_curve_batch,
    ptanh_jacobian,
    ptanh_jacobian_batch,
)
from repro.surrogate.lm import levenberg_marquardt_batch


class TestBatchedCurveEvaluation:
    def test_curve_batch_matches_scalar_rows(self):
        v_in = np.linspace(0, 1, 21)
        etas = np.array([[0.5, 0.4, 0.5, 8.0], [0.2, -0.1, 0.7, 30.0]])
        stacked = ptanh_curve_batch(etas, v_in)
        for b, eta in enumerate(etas):
            assert np.array_equal(stacked[b], ptanh_curve(eta, v_in))

    def test_jacobian_batch_matches_scalar_rows(self):
        v_in = np.linspace(0, 1, 21)
        etas = np.array([[0.5, 0.4, 0.5, 8.0], [0.2, -0.1, 0.7, 30.0]])
        stacked = ptanh_jacobian_batch(etas, v_in)
        for b, eta in enumerate(etas):
            assert np.array_equal(stacked[b], ptanh_jacobian(eta, v_in))

    def test_initial_guess_batch_matches_scalar_rows(self):
        v_in = np.linspace(0, 1, 21)
        targets = np.stack([
            0.5 + 0.4 * np.tanh((v_in - 0.5) * 9.0),
            0.9 - 0.6 * np.tanh((v_in - 0.3) * 4.0),
            np.full(21, 0.73),                      # flat branch
        ])
        stacked = initial_guess_batch(v_in, targets)
        for b in range(len(targets)):
            assert np.array_equal(stacked[b], initial_guess(v_in, targets[b]))


class TestBatchedFit:
    def test_fit_batch_is_batch_size_invariant(self):
        """Batch-of-1 fits equal large-batch fits bit for bit."""
        v_in = np.linspace(0, 1, 33)
        rng = np.random.default_rng(3)
        etas = np.column_stack([
            rng.uniform(0.3, 0.7, 6),
            rng.uniform(0.1, 0.4, 6),
            rng.uniform(0.2, 0.8, 6),
            rng.uniform(2.0, 40.0, 6),
        ])
        curves = ptanh_curve_batch(etas, v_in) + 0.01 * rng.standard_normal((6, 33))
        together = fit_ptanh_batch(v_in, curves)
        for b in range(6):
            alone = fit_ptanh(v_in, curves[b])
            assert np.array_equal(alone.eta, together[b].eta)
            assert alone.rmse == together[b].rmse
            assert alone.swing == together[b].swing
            assert alone.converged == together[b].converged

    def test_negated_fit_batch_matches_scalar(self):
        v_in = np.linspace(0, 1, 33)
        curve = -(0.5 + 0.3 * np.tanh((v_in - 0.4) * 12.0))
        batch = fit_ptanh_batch(v_in, curve[None, :], negated=True)[0]
        alone = fit_ptanh(v_in, curve, negated=True)
        assert np.array_equal(alone.eta, batch.eta)

    def test_fit_batch_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match=r"\(B, n\)"):
            fit_ptanh_batch(np.linspace(0, 1, 9), np.zeros(9))
        with pytest.raises(ValueError, match="at least 5"):
            fit_ptanh_batch(np.linspace(0, 1, 3), np.zeros((2, 3)))

    def test_lm_batch_requires_stacked_inputs(self):
        with pytest.raises(ValueError, match=r"\(B, k\)"):
            levenberg_marquardt_batch(
                lambda x, lanes: x, np.zeros(4), lambda x, lanes: x
            )

    def test_lm_batch_solves_independent_quadratics(self):
        targets = np.array([[1.0, 2.0], [3.0, -1.0], [0.0, 5.0]])

        def residual(x, lanes):
            return x - targets[lanes]

        def jacobian(x, lanes):
            return np.broadcast_to(np.eye(2), (len(x), 2, 2))

        result = levenberg_marquardt_batch(residual, np.zeros((3, 2)), jacobian)
        assert result.converged.all()
        assert np.allclose(result.x, targets, atol=1e-8)


class TestQualityGateThresholds:
    """Exactly-at-threshold curves must be *kept* (gates are strict)."""

    def test_swing_exactly_at_threshold_is_tanh_like(self):
        fit = FitResult(
            eta=np.array([0.5, 0.01, 0.5, 5.0]), rmse=0.0, swing=0.02, converged=True
        )
        assert fit.is_tanh_like

    def test_rmse_exactly_at_threshold_is_tanh_like(self):
        fit = FitResult(
            eta=np.array([0.5, 0.3, 0.5, 5.0]), rmse=0.05, swing=0.6, converged=True
        )
        assert fit.is_tanh_like

    def test_just_past_either_threshold_is_rejected(self):
        low_swing = FitResult(
            eta=np.array([0.5, 0.3, 0.5, 5.0]),
            rmse=0.0,
            swing=np.nextafter(0.02, 0.0),
            converged=True,
        )
        high_rmse = FitResult(
            eta=np.array([0.5, 0.3, 0.5, 5.0]),
            rmse=np.nextafter(0.05, 1.0),
            swing=0.6,
            converged=True,
        )
        assert not low_swing.is_tanh_like
        assert not high_rmse.is_tanh_like


@pytest.mark.slow
class TestBuilderEngines:
    @pytest.mark.parametrize("kind", ["ptanh", "negweight"])
    def test_batched_engine_reproduces_scalar_exactly(self, kind):
        batched = build_surrogate_dataset(
            kind, n_points=48, sweep_points=21, seed=3, engine="batched"
        )
        scalar = build_surrogate_dataset(
            kind, n_points=48, sweep_points=21, seed=3, engine="scalar"
        )
        assert np.array_equal(batched.omega, scalar.omega)
        assert np.array_equal(batched.eta, scalar.eta)
        assert np.array_equal(batched.rmse, scalar.rmse)
        assert batched.stats == scalar.stats

    def test_results_are_chunk_size_invariant(self):
        reference = build_surrogate_dataset(
            "ptanh", n_points=40, sweep_points=21, seed=3, chunk_size=512
        )
        small_chunks = build_surrogate_dataset(
            "ptanh", n_points=40, sweep_points=21, seed=3, chunk_size=7
        )
        assert np.array_equal(reference.eta, small_chunks.eta)
        assert np.array_equal(reference.omega, small_chunks.omega)
        assert reference.stats == small_chunks.stats

    def test_stats_partition_the_sample(self):
        dataset = build_surrogate_dataset("ptanh", n_points=48, sweep_points=21, seed=3)
        stats = dataset.stats
        assert stats.n_sampled == 48
        assert stats.n_kept == len(dataset)
        assert stats.n_kept + stats.n_dropped == stats.n_sampled

    @pytest.mark.parametrize("engine", ["batched", "scalar"])
    def test_progress_emits_final_tick(self, engine):
        ticks = []
        build_surrogate_dataset(
            "ptanh",
            n_points=24,
            sweep_points=21,
            seed=3,
            engine=engine,
            chunk_size=10,
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert ticks[0] == (0, 24)
        assert ticks[-1] == (24, 24)
        done_values = [d for d, _ in ticks]
        assert done_values == sorted(done_values)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            build_surrogate_dataset("ptanh", n_points=8, engine="gpu")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown circuit kind"):
            build_surrogate_dataset("sigmoid", n_points=8)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            build_surrogate_dataset("ptanh", n_points=8, chunk_size=0)

    def test_convergence_errors_are_counted_and_skipped(self, monkeypatch):
        """Scalar engine: a design whose sweep diverges is dropped, not fatal."""
        real = dataset_builder.simulate_curve
        doomed = []

        def flaky(omega, kind, n_points, model):
            if not doomed:
                doomed.append(True)
                raise ConvergenceError("synthetic divergence")
            return real(omega, kind, n_points, model)

        monkeypatch.setattr(dataset_builder, "simulate_curve", flaky)
        dataset = build_surrogate_dataset(
            "ptanh", n_points=24, sweep_points=21, seed=3, engine="scalar"
        )
        assert dataset.stats.n_convergence_error == 1
        assert dataset.stats.n_sampled == 24

    def test_failed_lanes_are_counted_in_batched_engine(self, monkeypatch):
        real = dataset_builder.simulate_curve_batch

        def flaky(omega_batch, kind, n_points, model):
            v_in, curves, ok = real(omega_batch, kind, n_points, model)
            ok = ok.copy()
            ok[0] = False
            return v_in, curves, ok

        monkeypatch.setattr(dataset_builder, "simulate_curve_batch", flaky)
        dataset = build_surrogate_dataset(
            "ptanh", n_points=24, sweep_points=21, seed=3,
            engine="batched", chunk_size=12,
        )
        assert dataset.stats.n_convergence_error == 2  # one per chunk
        assert dataset.stats.n_kept + dataset.stats.n_dropped == 24


class TestBuildStats:
    def test_dropped_sums_buckets(self):
        stats = BuildStats(
            n_sampled=10,
            n_kept=4,
            n_convergence_error=1,
            n_low_swing=2,
            n_high_rmse=2,
            n_out_of_bounds=1,
        )
        assert stats.n_dropped == 6
