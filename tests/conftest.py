"""Shared fixtures for the test suite.

Heavy artifacts (circuit-simulation datasets, trained surrogates) are built
once per session at reduced scale so individual tests stay fast while still
exercising the genuine pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.surrogate.analytic import AnalyticSurrogate
from repro.surrogate.dataset_builder import build_surrogate_dataset
from repro.surrogate.model import TINY_LAYER_WIDTHS
from repro.surrogate.pipeline import CircuitSurrogate, SurrogateBundle
from repro.surrogate.design_space import DESIGN_SPACE
from repro.surrogate.training import train_surrogate


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def analytic_surrogates():
    """Fast differentiable surrogate pair (no training needed)."""
    return (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))


@pytest.fixture(scope="session")
def ptanh_dataset():
    """A small but real simulated (ω, η) dataset for the ptanh circuit."""
    return build_surrogate_dataset("ptanh", n_points=96, sweep_points=21, seed=3)


@pytest.fixture(scope="session")
def negweight_dataset():
    return build_surrogate_dataset("negweight", n_points=96, sweep_points=21, seed=3)


@pytest.fixture(scope="session")
def tiny_bundle(ptanh_dataset, negweight_dataset):
    """A genuinely-trained (small) NN surrogate bundle."""
    surrogates = {}
    for dataset in (ptanh_dataset, negweight_dataset):
        result = train_surrogate(
            dataset, widths=TINY_LAYER_WIDTHS, max_epochs=300, patience=100, seed=0
        )
        surrogates[dataset.kind] = CircuitSurrogate(
            model=result.model,
            input_normalizer=result.input_normalizer,
            eta_normalizer=result.eta_normalizer,
            kind=dataset.kind,
            test_mse=result.test_mse,
        )
    return SurrogateBundle(
        ptanh=surrogates["ptanh"], negweight=surrogates["negweight"], space=DESIGN_SPACE
    )


@pytest.fixture(scope="session")
def blob_data():
    """A small, well-separated 2-class problem in the 0..1 V input range."""
    rng = np.random.default_rng(0)
    n = 60
    x0 = rng.normal([0.3, 0.3], 0.07, size=(n, 2))
    x1 = rng.normal([0.7, 0.7], 0.07, size=(n, 2))
    x = np.clip(np.vstack([x0, x1]), 0.0, 1.0)
    y = np.r_[np.zeros(n, dtype=np.int64), np.ones(n, dtype=np.int64)]
    order = rng.permutation(len(x))
    x, y = x[order], y[order]
    return x[:80], y[:80], x[80:], y[80:]
