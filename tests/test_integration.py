"""End-to-end integration tests across all subsystems.

These mirror the paper's full pipeline at reduced scale: circuit simulation
→ surrogate training → pNN co-training → Monte-Carlo evaluation → export.
"""

import numpy as np
import pytest

from repro.core import (
    PrintedNeuralNetwork,
    TrainConfig,
    VariationModel,
    evaluate_mc,
    train_pnn,
)
from repro.datasets import load_splits
from repro.exporting import design_report, export_netlist_text
from repro.surrogate.design_space import DESIGN_SPACE

# Full-pipeline runs at reduced scale; excluded from the fast tier.
pytestmark = pytest.mark.slow


class TestFullPipelineWithTrainedSurrogate:
    """Uses the session-scoped tiny NN bundle (real sim → fit → train)."""

    def test_pnn_with_nn_surrogate_trains_on_blobs(self, tiny_bundle, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = PrintedNeuralNetwork([2, 3, 2], tiny_bundle, rng=np.random.default_rng(1))
        config = TrainConfig(max_epochs=300, patience=300, seed=1)
        result = train_pnn(pnn, x_train, y_train, x_val, y_val, config)
        accuracy = evaluate_mc(pnn, x_val, y_val, epsilon=0.0)
        assert accuracy.mean >= 0.85
        assert result.best_val_loss < result.history[0][2]

    def test_variation_aware_beats_nominal_in_robustness(self, tiny_bundle, blob_data):
        """The paper's core claim at miniature scale: variation-aware
        training yields a lower accuracy spread under fabrication noise."""
        x_train, y_train, x_val, y_val = blob_data
        results = {}
        for eps_train in (0.0, 0.15):
            pnn = PrintedNeuralNetwork(
                [2, 3, 2], tiny_bundle, rng=np.random.default_rng(3)
            )
            config = TrainConfig(
                epsilon=eps_train, n_mc_train=8, max_epochs=250, patience=250, seed=3
            )
            train_pnn(pnn, x_train, y_train, x_val, y_val, config)
            results[eps_train] = evaluate_mc(
                pnn, x_val, y_val, epsilon=0.15, n_test=40, seed=9
            )
        # Robustness (std) must improve; mean must not collapse.
        assert results[0.15].std <= results[0.0].std + 0.02
        assert results[0.15].mean >= results[0.0].mean - 0.05

    def test_learned_omega_moves_from_reference(self, tiny_bundle, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = PrintedNeuralNetwork([2, 3, 2], tiny_bundle, rng=np.random.default_rng(4))
        reference = pnn.layers[0].activation.printable_omega().numpy().copy()
        config = TrainConfig(max_epochs=150, patience=150, seed=4)
        train_pnn(pnn, x_train, y_train, x_val, y_val, config)
        learned = pnn.layers[0].activation.printable_omega().numpy()
        assert not np.allclose(reference, learned)
        assert DESIGN_SPACE.contains(learned[0], atol=1e-6)


class TestDatasetToExportFlow:
    def test_real_dataset_end_to_end(self, analytic_surrogates):
        splits = load_splits("acute_inflammation", seed=1)
        pnn = PrintedNeuralNetwork(
            [splits.n_features, 3, splits.n_classes],
            analytic_surrogates,
            rng=np.random.default_rng(1),
        )
        config = TrainConfig(max_epochs=200, patience=200, seed=1)
        train_pnn(pnn, splits.x_train, splits.y_train, splits.x_val, splits.y_val, config)
        accuracy = evaluate_mc(pnn, splits.x_test, splits.y_test, epsilon=0.0)
        # The rule-based dataset is learnable well above the 55% majority rate.
        assert accuracy.mean > 0.7

        report = design_report(pnn)
        assert report.total_printed_resistors > 0
        netlist = export_netlist_text(pnn)
        assert ".end" in netlist

    def test_mc_evaluation_consistent_with_manual_loop(self, analytic_surrogates):
        splits = load_splits("iris", seed=0, max_train=50)
        pnn = PrintedNeuralNetwork(
            [splits.n_features, 3, splits.n_classes],
            analytic_surrogates,
            rng=np.random.default_rng(0),
        )
        accuracy = evaluate_mc(pnn, splits.x_test, splits.y_test, epsilon=0.05,
                               n_test=10, seed=5)
        # Manual recomputation with the same variation stream.
        variation = VariationModel(0.05, seed=5)
        manual = []
        predictions = pnn.predict(splits.x_test, variation=variation, n_mc=10)
        manual = (predictions == splits.y_test).mean(axis=1)
        assert np.allclose(np.sort(accuracy.accuracies), np.sort(manual))


class TestReproducibility:
    def test_same_seed_same_training_trajectory(self, analytic_surrogates, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        losses = []
        for _ in range(2):
            pnn = PrintedNeuralNetwork(
                [2, 3, 2], analytic_surrogates, rng=np.random.default_rng(7)
            )
            config = TrainConfig(max_epochs=30, patience=30, epsilon=0.05,
                                 n_mc_train=4, seed=7)
            result = train_pnn(pnn, x_train, y_train, x_val, y_val, config)
            losses.append([h[1] for h in result.history])
        assert np.allclose(losses[0], losses[1])
