"""Cost model and sensitivity analysis."""

import numpy as np
import pytest

from repro.analysis import (
    estimate_cost,
    eta_sensitivity,
    variation_attribution,
)
from repro.analysis.sensitivity import _SelectiveVariation, format_sensitivity
from repro.core import PrintedNeuralNetwork
from repro.surrogate import AnalyticSurrogate


@pytest.fixture
def pnn():
    surrogates = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))
    return PrintedNeuralNetwork([3, 3, 2], surrogates, rng=np.random.default_rng(0))


class TestCost:
    def test_counts_consistent_with_report(self, pnn):
        from repro.exporting import design_report

        cost = estimate_cost(pnn)
        report = design_report(pnn)
        # Crossbar resistors plus 5 per nonlinear circuit instance.
        assert cost.n_resistors >= report.total_printed_resistors
        assert cost.n_transistors % 2 == 0        # two EGTs per circuit
        assert cost.n_transistors >= 2 * 2         # at least the activations

    def test_positive_area_and_power(self, pnn):
        cost = estimate_cost(pnn)
        assert cost.area_mm2 > 0
        assert cost.static_power_uw > 0

    def test_fewer_devices_when_no_negative_weights(self, pnn):
        for layer in pnn.layers:
            layer.theta.data = np.abs(layer.theta.data)
        cost = estimate_cost(pnn)
        assert cost.n_negweight_circuits == 0

    def test_summary_readable(self, pnn):
        text = estimate_cost(pnn).summary()
        assert "mm²" in text and "µW" in text


class TestEtaSensitivity:
    def test_jacobian_shape(self, pnn):
        omega = pnn.layers[0].activation.printable_omega().numpy()[0]
        jacobian = eta_sensitivity(pnn.layers[0].activation.surrogate, omega)
        assert jacobian.shape == (4, 7)
        assert np.all(np.isfinite(jacobian))

    def test_matches_finite_difference(self, pnn):
        surrogate = pnn.layers[0].activation.surrogate
        omega = pnn.layers[0].activation.printable_omega().numpy()[0]
        jacobian = eta_sensitivity(surrogate, omega)
        # Check one representative entry: ∂η3/∂ln R2 (the divider ratio
        # directly shifts the trip point).
        h = 1e-5 * omega[1]
        plus, minus = omega.copy(), omega.copy()
        plus[1] += h
        minus[1] -= h
        numeric = (
            (surrogate.eta_numpy(plus[None])[0, 2] - surrogate.eta_numpy(minus[None])[0, 2])
            / (2 * h)
            * omega[1]
        )
        assert jacobian[2, 1] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_trip_point_dominated_by_divider(self, pnn):
        """η3 must be most sensitive to the input divider (R1/R2)."""
        surrogate = pnn.layers[0].activation.surrogate
        omega = pnn.layers[0].activation.printable_omega().numpy()[0]
        jacobian = np.abs(eta_sensitivity(surrogate, omega))
        divider_sensitivity = jacobian[2, 0] + jacobian[2, 1]
        assert divider_sensitivity > jacobian[2, 4]   # ≫ R5's influence

    def test_format_table(self, pnn):
        omega = pnn.layers[0].activation.printable_omega().numpy()[0]
        jacobian = eta_sensitivity(pnn.layers[0].activation.surrogate, omega)
        text = format_sensitivity(jacobian)
        assert "eta3" in text and "R1" in text


class TestVariationAttribution:
    def test_groups_covered(self, pnn):
        x = np.random.default_rng(0).uniform(size=(40, 3))
        y = np.random.default_rng(1).integers(0, 2, size=40)
        results = variation_attribution(pnn, x, y, epsilon=0.1, n_test=10, seed=0)
        assert [r.group for r in results] == ["theta", "activation", "negweight", "all"]

    def test_all_group_at_least_as_disruptive(self, pnn):
        x = np.random.default_rng(2).uniform(size=(60, 3))
        y = np.random.default_rng(3).integers(0, 2, size=60)
        results = {r.group: r for r in variation_attribution(
            pnn, x, y, epsilon=0.15, n_test=20, seed=1
        )}
        single_max = max(
            results[g].std for g in ("theta", "activation", "negweight")
        )
        assert results["all"].std >= single_max - 0.03

    def test_selective_variation_cycle(self):
        selective = _SelectiveVariation(0.1, "activation", seed=0)
        theta = selective.sample(3, (4, 2))       # call 0 → theta
        act = selective.sample(3, (1, 7))          # call 1 → activation
        neg = selective.sample(3, (1, 7))          # call 2 → negweight
        assert np.all(theta == 1.0)
        assert np.any(act != 1.0)
        assert np.all(neg == 1.0)

    def test_selective_rejects_unknown_group(self):
        with pytest.raises(ValueError):
            _SelectiveVariation(0.1, "everything", seed=0)
