"""MNA solver: analytic linear circuits and nonlinear operating points."""

import numpy as np
import pytest

from repro.spice import (
    EGTModel,
    Netlist,
    NetlistError,
    dc_sweep,
    solve_dc,
)


class TestLinearCircuits:
    def test_voltage_divider(self):
        netlist = Netlist("divider")
        netlist.add_voltage_source("V1", "in", "0", 1.0)
        netlist.add_resistor("R1", "in", "mid", 3000.0)
        netlist.add_resistor("R2", "mid", "0", 1000.0)
        op = solve_dc(netlist)
        assert op.voltage("mid") == pytest.approx(0.25, rel=1e-9)

    def test_source_current(self):
        netlist = Netlist()
        netlist.add_voltage_source("V1", "a", "0", 2.0)
        netlist.add_resistor("R1", "a", "0", 1000.0)
        op = solve_dc(netlist)
        # The MNA current flows from + through the source; magnitude 2 mA.
        assert abs(op.source_currents["V1"]) == pytest.approx(2e-3, rel=1e-9)

    def test_superposition_two_sources(self):
        netlist = Netlist()
        netlist.add_voltage_source("Va", "a", "0", 1.0)
        netlist.add_voltage_source("Vb", "b", "0", 2.0)
        netlist.add_resistor("R1", "a", "out", 1000.0)
        netlist.add_resistor("R2", "b", "out", 1000.0)
        netlist.add_resistor("R3", "out", "0", 1000.0)
        op = solve_dc(netlist)
        assert op.voltage("out") == pytest.approx(1.0, rel=1e-9)

    def test_wheatstone_bridge_balanced(self):
        netlist = Netlist("bridge")
        netlist.add_voltage_source("V1", "top", "0", 1.0)
        for name, a, b in (
            ("R1", "top", "left"), ("R2", "top", "right"),
            ("R3", "left", "0"), ("R4", "right", "0"),
        ):
            netlist.add_resistor(name, a, b, 1000.0)
        netlist.add_resistor("Rg", "left", "right", 500.0)
        op = solve_dc(netlist)
        assert op.voltage("left") == pytest.approx(op.voltage("right"), abs=1e-9)

    def test_ground_voltage_is_zero(self):
        netlist = Netlist()
        netlist.add_voltage_source("V1", "a", "0", 1.0)
        netlist.add_resistor("R1", "a", "0", 100.0)
        assert solve_dc(netlist).voltage("0") == 0.0


class TestNonlinearCircuits:
    def _inverter(self, vin: float) -> Netlist:
        netlist = Netlist("inverter")
        netlist.add_voltage_source("Vdd", "vdd", "0", 1.0)
        netlist.add_voltage_source("Vin", "g", "0", vin)
        netlist.add_resistor("RL", "vdd", "d", 100e3)
        netlist.add_egt("T1", "d", "g", "0", 500, 30, EGTModel())
        return netlist

    def test_inverter_inverts(self):
        low = solve_dc(self._inverter(0.0)).voltage("d")
        high = solve_dc(self._inverter(1.0)).voltage("d")
        assert low > 0.9
        assert high < 0.3
        assert low > high

    def test_kcl_at_drain(self):
        """Resistor current must equal transistor current at the drain."""
        netlist = self._inverter(0.6)
        op = solve_dc(netlist)
        vd = op.voltage("d")
        resistor_current = (1.0 - vd) / 100e3
        egt = netlist.transistors[0]
        device_current, _, _ = egt.model.ids(0.6, vd, egt.width, egt.length)
        assert resistor_current == pytest.approx(device_current, rel=1e-5)

    def test_warm_start_converges_faster(self):
        netlist = self._inverter(0.55)
        cold = solve_dc(netlist)
        warm = solve_dc(netlist, initial=cold.voltages)
        assert warm.iterations <= cold.iterations

    def test_sweep_monotone_falling(self):
        netlist = self._inverter(0.0)
        xs, ys = dc_sweep(netlist, "Vin", np.linspace(0, 1, 21), output_node="d")
        assert np.all(np.diff(ys) <= 1e-9)

    def test_sweep_restores_source_value(self):
        netlist = self._inverter(0.33)
        dc_sweep(netlist, "Vin", [0.0, 0.5, 1.0], output_node="d")
        assert netlist.source("Vin").voltage == 0.33

    def test_sweep_accepts_generator(self):
        netlist = self._inverter(0.0)
        xs, ys = dc_sweep(netlist, "Vin", (v / 4 for v in range(5)), output_node="d")
        assert len(xs) == 5 and len(ys) == 5


class TestValidation:
    def test_empty_netlist_rejected(self):
        with pytest.raises(NetlistError):
            solve_dc(Netlist())

    def test_floating_node_rejected(self):
        netlist = Netlist()
        netlist.add_voltage_source("V1", "a", "0", 1.0)
        netlist.add_resistor("R1", "a", "0", 100.0)
        netlist.add_resistor("R2", "x", "y", 100.0)   # island
        with pytest.raises(NetlistError, match="not connected"):
            solve_dc(netlist)

    def test_no_ground_rejected(self):
        netlist = Netlist()
        netlist.add_voltage_source("V1", "a", "b", 1.0)
        netlist.add_resistor("R1", "a", "b", 100.0)
        with pytest.raises(NetlistError):
            solve_dc(netlist)

    def test_duplicate_device_name_rejected(self):
        netlist = Netlist()
        netlist.add_resistor("R1", "a", "0", 100.0)
        with pytest.raises(ValueError, match="duplicate"):
            netlist.add_resistor("R1", "b", "0", 100.0)

    def test_nonpositive_resistance_rejected(self):
        with pytest.raises(ValueError):
            Netlist().add_resistor("R1", "a", "0", 0.0)

    def test_unknown_source_lookup(self):
        netlist = Netlist()
        netlist.add_resistor("R1", "a", "0", 100.0)
        with pytest.raises(KeyError):
            netlist.source("Vmissing")

    def test_nodes_exclude_ground(self):
        netlist = Netlist()
        netlist.add_voltage_source("V1", "a", "0", 1.0)
        netlist.add_resistor("R1", "a", "b", 1.0)
        netlist.add_resistor("R2", "b", "0", 1.0)
        assert set(netlist.nodes()) == {"a", "b"}
