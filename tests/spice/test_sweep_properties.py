"""Property tests for DC sweeps of the printed circuits."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits import simulate_negweight_curve, simulate_ptanh_curve
from repro.surrogate.design_space import DESIGN_SPACE


def omega_strategy():
    """Feasible design points via the reduced parameterization."""
    return st.builds(
        lambda u: DESIGN_SPACE.assemble(
            DESIGN_SPACE.reduced_lower
            + np.asarray(u) * (DESIGN_SPACE.reduced_upper - DESIGN_SPACE.reduced_lower)
        ),
        st.lists(st.floats(0.01, 0.99), min_size=7, max_size=7),
    )


class TestSweepInvariants:
    @given(omega=omega_strategy())
    @settings(max_examples=12, deadline=None)
    def test_ptanh_monotone_rising_within_rails(self, omega):
        _, v_out = simulate_ptanh_curve(omega, n_points=13)
        assert np.all(np.diff(v_out) >= -1e-6)
        assert np.all((v_out >= -1e-6) & (v_out <= 1.0 + 1e-6))

    @given(omega=omega_strategy())
    @settings(max_examples=12, deadline=None)
    def test_negweight_monotone_falling_negative(self, omega):
        _, v_out = simulate_negweight_curve(omega, n_points=13)
        assert np.all(np.diff(v_out) <= 1e-6)
        assert np.all(v_out <= 1e-9)
        assert np.all(v_out >= -1.0 - 1e-6)

    @given(omega=omega_strategy())
    @settings(max_examples=8, deadline=None)
    def test_sweep_resolution_consistency(self, omega):
        """A denser sweep must agree with a coarse one at shared points."""
        x_coarse, y_coarse = simulate_ptanh_curve(omega, n_points=5)
        x_fine, y_fine = simulate_ptanh_curve(omega, n_points=9)
        shared = np.isin(np.round(x_fine, 9), np.round(x_coarse, 9))
        assert np.allclose(y_fine[shared], y_coarse, atol=1e-7)
