"""Property tests for DC sweeps of the printed circuits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import simulate_negweight_curve, simulate_ptanh_curve
from repro.circuits.ptanh import build_ptanh_netlist, ptanh_param_batch, ptanh_stamp_plan
from repro.spice import ConvergenceError, dc_sweep, dc_sweep_batch
from repro.spice import sweep as sweep_module
from repro.surrogate.design_space import DESIGN_SPACE


def omega_strategy():
    """Feasible design points via the reduced parameterization."""
    return st.builds(
        lambda u: DESIGN_SPACE.assemble(
            DESIGN_SPACE.reduced_lower
            + np.asarray(u) * (DESIGN_SPACE.reduced_upper - DESIGN_SPACE.reduced_lower)
        ),
        st.lists(st.floats(0.01, 0.99), min_size=7, max_size=7),
    )


class TestSweepInvariants:
    @given(omega=omega_strategy())
    @settings(max_examples=12, deadline=None)
    def test_ptanh_monotone_rising_within_rails(self, omega):
        _, v_out = simulate_ptanh_curve(omega, n_points=13)
        assert np.all(np.diff(v_out) >= -1e-6)
        assert np.all((v_out >= -1e-6) & (v_out <= 1.0 + 1e-6))

    @given(omega=omega_strategy())
    @settings(max_examples=12, deadline=None)
    def test_negweight_monotone_falling_negative(self, omega):
        _, v_out = simulate_negweight_curve(omega, n_points=13)
        assert np.all(np.diff(v_out) <= 1e-6)
        assert np.all(v_out <= 1e-9)
        assert np.all(v_out >= -1.0 - 1e-6)

    @given(omega=omega_strategy())
    @settings(max_examples=8, deadline=None)
    def test_sweep_resolution_consistency(self, omega):
        """A denser sweep must agree with a coarse one at shared points."""
        x_coarse, y_coarse = simulate_ptanh_curve(omega, n_points=5)
        x_fine, y_fine = simulate_ptanh_curve(omega, n_points=9)
        shared = np.isin(np.round(x_fine, 9), np.round(x_coarse, 9))
        assert np.allclose(y_fine[shared], y_coarse, atol=1e-7)


OMEGA = np.array([200.0, 80.0, 100e3, 40e3, 100e3, 500.0, 30.0])


class TestScalarSweepMechanics:
    def test_each_step_warm_starts_from_the_previous_solution(self, monkeypatch):
        """The sweep must pass step j's voltages as step j+1's initial."""
        seen_initials = []
        real_solve = sweep_module.solve_dc

        def spying_solve(netlist, initial=None, **kwargs):
            seen_initials.append(None if initial is None else dict(initial))
            return real_solve(netlist, initial=initial, **kwargs)

        monkeypatch.setattr(sweep_module, "solve_dc", spying_solve)
        netlist = build_ptanh_netlist(OMEGA)
        points = dc_sweep(netlist, "Vin", [0.0, 0.5, 1.0])

        assert seen_initials[0] is None
        assert seen_initials[1] == points[0].voltages
        assert seen_initials[2] == points[1].voltages

    def test_sweep_restores_the_source_voltage(self):
        netlist = build_ptanh_netlist(OMEGA, vin=0.25)
        dc_sweep(netlist, "Vin", [0.0, 1.0], output_node="out")
        assert netlist.source("Vin").voltage == 0.25

    def test_sweep_restores_voltage_even_when_a_step_diverges(self, monkeypatch):
        def exploding_solve(netlist, initial=None, **kwargs):
            raise ConvergenceError("synthetic divergence")

        monkeypatch.setattr(sweep_module, "solve_dc", exploding_solve)
        netlist = build_ptanh_netlist(OMEGA, vin=0.25)
        with pytest.raises(ConvergenceError):
            dc_sweep(netlist, "Vin", [0.0, 1.0])
        assert netlist.source("Vin").voltage == 0.25

    def test_values_accept_any_iterable_once(self):
        netlist = build_ptanh_netlist(OMEGA)
        xs, ys = dc_sweep(netlist, "Vin", iter([0.0, 0.5, 1.0]), output_node="out")
        assert np.array_equal(xs, [0.0, 0.5, 1.0])
        assert ys.shape == (3,)


class TestBatchedSweepMechanics:
    def test_failed_lane_is_masked_and_others_continue(self, monkeypatch):
        """A lane diverging mid-sweep maps to ok=False with NaN from there on,
        while the surviving lanes still match the scalar sweep."""
        plan = ptanh_stamp_plan()
        omegas = np.broadcast_to(OMEGA, (3, 7)).copy()
        params = ptanh_param_batch(omegas, plan)
        values = [0.0, 0.5, 1.0]

        real_solve = sweep_module.solve_dc_batch
        calls = []

        def sabotaging_solve(plan, params, **kwargs):
            solution = real_solve(plan, params, **kwargs)
            if len(calls) == 1:  # second sweep column: kill the middle lane
                solution.converged[1] = False
                solution.voltages[1] = np.nan
            calls.append(True)
            return solution

        monkeypatch.setattr(sweep_module, "solve_dc_batch", sabotaging_solve)
        xs, outputs, ok = dc_sweep_batch(plan, params, "Vin", values, output_node="out")

        assert list(ok) == [True, False, True]
        assert not np.isnan(outputs[1, 0])        # column before the failure
        assert np.isnan(outputs[1, 1:]).all()     # failed column onward
        reference = dc_sweep(build_ptanh_netlist(OMEGA), "Vin", values, output_node="out")[1]
        assert np.array_equal(outputs[0], reference)
        assert np.array_equal(outputs[2], reference)

    def test_batch_size_required_without_params(self):
        plan = ptanh_stamp_plan()
        with pytest.raises(ValueError, match="batch_size"):
            dc_sweep_batch(plan, None, "Vin", [0.0, 1.0])

    def test_full_voltage_trace_when_no_output_node(self):
        plan = ptanh_stamp_plan()
        params = ptanh_param_batch(np.broadcast_to(OMEGA, (2, 7)), plan)
        xs, volts, ok = dc_sweep_batch(plan, params, "Vin", [0.0, 1.0])
        assert volts.shape == (2, 2, plan.n_nodes)
        assert ok.all() and not np.isnan(volts).any()
