"""Compiled stamp plans and the batched Newton-Raphson solver.

The batched path must be a drop-in replacement for the scalar solver: the
acceptance bar is agreement to 1e-9 V across a QMC sample of the Table-I
design space, and the implementation actually achieves bitwise equality
(same float ops in the same order), which is asserted where it matters.
"""

import numpy as np
import pytest

from repro.circuits.ptanh import (
    PTANH_NODES,
    build_ptanh_netlist,
    ptanh_param_batch,
    ptanh_stamp_plan,
)
from repro.spice import (
    ConvergenceError,
    Netlist,
    ParamBatch,
    compile_netlist,
    solve_dc,
    solve_dc_batch,
)
from repro.spice.egt import EGTModel, id_gm_gds
from repro.surrogate.sampling import sample_design_points

OMEGA = np.array([200.0, 80.0, 100e3, 40e3, 100e3, 500.0, 30.0])


class TestCompileNetlist:
    def test_plan_mirrors_netlist_structure(self):
        netlist = build_ptanh_netlist(OMEGA)
        plan = compile_netlist(netlist)
        assert plan.nodes == tuple(netlist.nodes())
        assert plan.n_resistors == len(netlist.resistors)
        assert plan.n_sources == len(netlist.sources)
        assert plan.n_egts == len(netlist.transistors)
        assert plan.size == plan.n_nodes + plan.n_sources
        assert plan.resistor_names == tuple(r.name for r in netlist.resistors)

    def test_device_columns_follow_insertion_order(self):
        netlist = build_ptanh_netlist(OMEGA)
        plan = compile_netlist(netlist)
        for j, resistor in enumerate(netlist.resistors):
            assert plan.res_resistance[j] == resistor.resistance
            assert plan.res_a[j] == plan.node_index(resistor.node_a)
            assert plan.res_b[j] == plan.node_index(resistor.node_b)
        for k, egt in enumerate(netlist.transistors):
            assert plan.egt_d[k] == plan.node_index(egt.drain)
            assert plan.egt_g[k] == plan.node_index(egt.gate)
            assert plan.egt_s[k] == plan.node_index(egt.source)

    def test_ground_encodes_as_minus_one(self):
        plan = compile_netlist(build_ptanh_netlist(OMEGA))
        assert plan.node_index("0") == -1
        assert (plan.egt_s == -1).all()  # both EGT sources sit on ground

    def test_index_lookups_raise_for_unknown_names(self):
        plan = compile_netlist(build_ptanh_netlist(OMEGA))
        with pytest.raises(KeyError):
            plan.source_index("nope")
        with pytest.raises(KeyError):
            plan.resistor_index("nope")

    def test_realize_round_trips_the_solution(self):
        netlist = build_ptanh_netlist(OMEGA, vin=0.4)
        plan = compile_netlist(netlist)
        rebuilt = plan.realize()
        direct = solve_dc(netlist)
        again = solve_dc(rebuilt)
        assert direct.voltages == again.voltages
        assert direct.source_currents == again.source_currents

    def test_realize_applies_lane_params_and_source_overrides(self):
        plan = ptanh_stamp_plan()
        omegas = np.stack([OMEGA, OMEGA * [2, 1, 1, 1, 1, 1, 1]])
        params = ptanh_param_batch(omegas, plan)
        lane1 = plan.realize(params, lane=1, source_voltages={"Vin": 0.3})
        reference = build_ptanh_netlist(omegas[1], vin=0.3)
        assert solve_dc(lane1).voltages == solve_dc(reference).voltages


class TestParamBatch:
    def test_batch_size_consistency_enforced(self):
        with pytest.raises(ValueError, match="inconsistent batch sizes"):
            ParamBatch(resistances=np.ones((3, 6)), widths=np.ones((2, 2)))

    def test_arrays_must_be_two_dimensional(self):
        with pytest.raises(ValueError, match="must be a"):
            ParamBatch(resistances=np.ones(6))

    def test_take_restricts_lanes(self):
        params = ParamBatch(
            resistances=np.arange(12.0).reshape(4, 3) + 1.0,
            widths=np.ones((4, 2)),
        )
        sub = params.take(np.array([0, 2]))
        assert sub.batch_size == 2
        assert np.array_equal(sub.resistances, params.resistances[[0, 2]])
        assert sub.lengths is None

    def test_empty_batch_has_no_size(self):
        assert ParamBatch().batch_size is None


class TestVectorizedEGTModel:
    """The numpy kernel and the scalar model API must agree exactly."""

    def test_scalar_method_matches_vectorized_kernel(self):
        model = EGTModel()
        vgs = np.linspace(-0.5, 1.5, 41)
        vds = np.linspace(-1.0, 1.0, 41)
        beta = model.beta(500.0, 30.0)
        grid_vgs, grid_vds = np.meshgrid(vgs, vds)
        current, gm, gds = id_gm_gds(
            grid_vgs,
            grid_vds,
            beta,
            model.v_threshold,
            model.phi,
            model.channel_lambda,
        )
        for i in range(0, 41, 5):
            for j in range(0, 41, 5):
                scalar = model.ids(grid_vgs[i, j], grid_vds[i, j], 500.0, 30.0)
                assert scalar == (current[i, j], gm[i, j], gds[i, j])

    def test_all_overdrive_branches_covered(self):
        model = EGTModel()
        # z > 30 (strong on), z < -30 (deep off), and the smooth middle.
        vgs = np.array([model.v_threshold + 31 * model.phi,
                        model.v_threshold - 31 * model.phi,
                        model.v_threshold + 0.1])
        current, gm, gds = id_gm_gds(
            vgs, np.full(3, 0.5), model.beta(500.0, 30.0),
            model.v_threshold, model.phi, model.channel_lambda,
        )
        assert np.all(np.isfinite(current))
        assert current[0] > current[2] > current[1] >= 0.0

    def test_reverse_vds_symmetry(self):
        """vds < 0 swaps drain and source: I(vgs, -vds) = -I(vgs - vds, vds)."""
        model = EGTModel()
        beta = model.beta(500.0, 30.0)
        args = (model.v_threshold, model.phi, model.channel_lambda)
        fwd, _, _ = id_gm_gds(0.9, 0.4, beta, *args)
        rev, _, _ = id_gm_gds(0.9 - 0.4, -0.4, beta, *args)
        assert rev == -fwd


class TestSolveDCBatchAgainstScalar:
    def test_qmc_sample_matches_scalar_within_1e9(self):
        """Acceptance property: ≤1e-9 V over a Table-I QMC sample."""
        plan = ptanh_stamp_plan()
        omegas = sample_design_points(24, seed=11)
        params = ptanh_param_batch(omegas, plan)
        solution = solve_dc_batch(plan, params)
        assert solution.converged.all()
        for lane, omega in enumerate(omegas):
            scalar = solve_dc(build_ptanh_netlist(omega))
            for i, name in enumerate(plan.nodes):
                assert abs(solution.voltages[lane, i] - scalar.voltages[name]) <= 1e-9

    def test_lanes_are_bitwise_identical_to_scalar(self):
        plan = ptanh_stamp_plan()
        omegas = sample_design_points(8, seed=5)
        params = ptanh_param_batch(omegas, plan)
        solution = solve_dc_batch(plan, params)
        for lane, omega in enumerate(omegas):
            scalar = solve_dc(build_ptanh_netlist(omega))
            point = solution.operating_point(lane)
            assert point.voltages == scalar.voltages
            assert point.source_currents == scalar.source_currents
            assert point.iterations == scalar.iterations

    def test_vin_batch_overrides_per_lane(self):
        plan = ptanh_stamp_plan()
        omegas = np.broadcast_to(OMEGA, (5, 7))
        params = ptanh_param_batch(omegas, plan)
        vins = np.linspace(0.0, 1.0, 5)
        solution = solve_dc_batch(plan, params, vin_batch={"Vin": vins})
        out = solution.voltage(PTANH_NODES["output"])
        for lane, vin in enumerate(vins):
            scalar = solve_dc(build_ptanh_netlist(OMEGA, vin=float(vin)))
            assert out[lane] == scalar.voltages[PTANH_NODES["output"]]
        # the curve should rise tanh-like with the input
        assert out[-1] > out[0]

    def test_warm_start_matches_scalar_warm_start(self):
        plan = ptanh_stamp_plan()
        omegas = np.broadcast_to(OMEGA, (3, 7))
        params = ptanh_param_batch(omegas, plan)
        cold = solve_dc_batch(plan, params)
        warm = solve_dc_batch(plan, params, initial=cold.voltages)
        netlist = build_ptanh_netlist(OMEGA)
        scalar_cold = solve_dc(netlist)
        scalar_warm = solve_dc(netlist, initial=scalar_cold.voltages)
        assert warm.iterations[0] == scalar_warm.iterations
        assert warm.operating_point(0).voltages == scalar_warm.voltages
        assert warm.iterations[0] < cold.iterations[0]

    def test_mixed_convergence_masks_match_scalar_outcomes(self):
        """Lanes whose scalar solve would raise get converged=False."""
        plan = ptanh_stamp_plan()
        omegas = sample_design_points(12, seed=2)
        params = ptanh_param_batch(omegas, plan)
        iters = solve_dc_batch(plan, params).iterations
        assert iters.min() < iters.max(), "need heterogeneous iteration counts"
        cap = int((iters.min() + iters.max()) // 2)

        solution = solve_dc_batch(plan, params, max_iter=cap, fallback=False)
        for lane, omega in enumerate(omegas):
            netlist = build_ptanh_netlist(omega)
            try:
                scalar = solve_dc(netlist, max_iter=cap)
                assert solution.converged[lane]
                assert solution.operating_point(lane).voltages == scalar.voltages
            except ConvergenceError:
                assert not solution.converged[lane]
                assert np.isnan(solution.voltages[lane]).all()
                with pytest.raises(ConvergenceError):
                    solution.operating_point(lane)

    def test_scalar_fallback_rescues_slow_lanes(self):
        """With fallback on, a max_iter cap alone cannot fail a lane that
        the scalar path (same cap, warm start retry) would solve."""
        plan = ptanh_stamp_plan()
        omegas = sample_design_points(12, seed=2)
        params = ptanh_param_batch(omegas, plan)
        iters = solve_dc_batch(plan, params).iterations
        cap = int((iters.min() + iters.max()) // 2)
        rescued = solve_dc_batch(plan, params, max_iter=cap, fallback=True)
        assert np.array_equal(rescued.converged, iters <= cap)


class TestSolveDCBatchValidation:
    def test_batch_size_required(self):
        plan = ptanh_stamp_plan()
        with pytest.raises(ValueError, match="cannot infer the batch size"):
            solve_dc_batch(plan)

    def test_inconsistent_batch_sizes_rejected(self):
        plan = ptanh_stamp_plan()
        params = ptanh_param_batch(np.broadcast_to(OMEGA, (3, 7)), plan)
        with pytest.raises(ValueError, match="inconsistent batch sizes"):
            solve_dc_batch(plan, params, vin_batch={"Vin": np.zeros(4)})

    def test_template_values_used_without_params(self):
        plan = ptanh_stamp_plan()
        solution = solve_dc_batch(plan, batch_size=2)
        assert solution.converged.all()
        scalar = solve_dc(plan.realize())
        assert solution.operating_point(0).voltages == scalar.voltages
        assert solution.operating_point(1).voltages == scalar.voltages

    def test_nonpositive_resistances_rejected(self):
        plan = ptanh_stamp_plan()
        bad = ParamBatch(resistances=np.zeros((1, plan.n_resistors)))
        with pytest.raises(ValueError, match="positive"):
            solve_dc_batch(plan, bad)

    def test_wrong_initial_shape_rejected(self):
        plan = ptanh_stamp_plan()
        with pytest.raises(ValueError, match="initial must have shape"):
            solve_dc_batch(plan, batch_size=2, initial=np.zeros((2, 3)))

    def test_linear_plan_without_transistors(self):
        netlist = Netlist("linear")
        netlist.add_voltage_source("V1", "a", "0", 1.0)
        netlist.add_resistor("R1", "a", "b", 1e3)
        netlist.add_resistor("R2", "b", "0", 1e3)
        plan = compile_netlist(netlist)
        solution = solve_dc_batch(plan, batch_size=3)
        assert solution.converged.all()
        assert np.allclose(solution.voltage("a"), 1.0)
        assert np.allclose(solution.voltage("b"), 0.5)
