"""EGT compact model: physical sanity and derivative correctness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice.egt import EGTModel

MODEL = EGTModel()


class TestBasicBehaviour:
    def test_off_below_threshold(self):
        current, _, _ = MODEL.ids(vgs=-0.5, vds=0.5, width=400, length=30)
        assert current < 1e-9

    def test_on_above_threshold(self):
        current, _, _ = MODEL.ids(vgs=0.8, vds=0.8, width=400, length=30)
        assert current > 1e-6

    def test_current_increases_with_vgs(self):
        currents = [
            MODEL.ids(vgs, 0.5, 400, 30)[0] for vgs in np.linspace(0.0, 1.0, 9)
        ]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    def test_current_increases_with_vds(self):
        currents = [
            MODEL.ids(0.6, vds, 400, 30)[0] for vds in np.linspace(0.0, 1.0, 9)
        ]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    def test_zero_vds_zero_current(self):
        current, _, _ = MODEL.ids(vgs=0.7, vds=0.0, width=400, length=30)
        assert current == pytest.approx(0.0, abs=1e-15)

    def test_geometry_scaling(self):
        wide, _, _ = MODEL.ids(0.6, 0.6, width=800, length=10)
        narrow, _, _ = MODEL.ids(0.6, 0.6, width=200, length=70)
        assert wide / narrow == pytest.approx((800 / 10) / (200 / 70), rel=1e-9)

    def test_beta_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            MODEL.beta(0.0, 30.0)
        with pytest.raises(ValueError):
            MODEL.beta(400.0, -1.0)


class TestSymmetry:
    def test_odd_in_vds(self):
        """Id(vgs, -vds) must equal -Id(vgd, vds) with roles swapped."""
        forward, _, _ = MODEL.ids(vgs=0.5, vds=0.3, width=400, length=30)
        # Swap: with vgs measured from the new source (= old drain).
        backward, _, _ = MODEL.ids(vgs=0.5 - (-0.3), vds=0.3, width=400, length=30)
        reported, _, _ = MODEL.ids(vgs=0.5, vds=-0.3, width=400, length=30)
        assert reported == pytest.approx(-backward, rel=1e-12)

    def test_continuity_at_vds_zero(self):
        just_above, _, _ = MODEL.ids(0.6, 1e-9, 400, 30)
        just_below, _, _ = MODEL.ids(0.6, -1e-9, 400, 30)
        assert abs(just_above - just_below) < 1e-12


class TestDerivatives:
    @given(
        vgs=st.floats(-0.3, 1.0),
        vds=st.floats(-0.8, 0.8),
        width=st.floats(200, 800),
        length=st.floats(10, 70),
    )
    @settings(max_examples=80, deadline=None)
    def test_gm_matches_finite_difference(self, vgs, vds, width, length):
        h = 1e-7
        _, gm, _ = MODEL.ids(vgs, vds, width, length)
        plus, _, _ = MODEL.ids(vgs + h, vds, width, length)
        minus, _, _ = MODEL.ids(vgs - h, vds, width, length)
        numeric = (plus - minus) / (2 * h)
        assert gm == pytest.approx(numeric, rel=1e-4, abs=1e-12)

    @given(
        vgs=st.floats(-0.3, 1.0),
        vds=st.floats(-0.8, 0.8),
        width=st.floats(200, 800),
        length=st.floats(10, 70),
    )
    @settings(max_examples=80, deadline=None)
    def test_gds_matches_finite_difference(self, vgs, vds, width, length):
        h = 1e-7
        _, _, gds = MODEL.ids(vgs, vds, width, length)
        plus, _, _ = MODEL.ids(vgs, vds + h, width, length)
        minus, _, _ = MODEL.ids(vgs, vds - h, width, length)
        numeric = (plus - minus) / (2 * h)
        assert gds == pytest.approx(numeric, rel=1e-4, abs=1e-12)
