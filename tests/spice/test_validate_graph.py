"""Netlist connectivity graph."""

import networkx as nx
import pytest

from repro.spice import EGTModel, Netlist
from repro.spice.validate import NetlistError, connectivity_graph, validate_netlist


def inverter_netlist():
    netlist = Netlist("inv")
    netlist.add_voltage_source("Vdd", "vdd", "0", 1.0)
    netlist.add_voltage_source("Vin", "g", "0", 0.5)
    netlist.add_resistor("RL", "vdd", "d", 100e3)
    netlist.add_egt("T1", "d", "g", "0", 400, 30, EGTModel())
    return netlist


class TestConnectivityGraph:
    def test_nodes_and_edges(self):
        graph = connectivity_graph(inverter_netlist())
        assert set(graph.nodes) == {"0", "vdd", "g", "d"}
        assert graph.has_edge("vdd", "d")        # load resistor
        assert graph.has_edge("d", "0")          # EGT channel
        assert graph.has_edge("g", "0")          # gate reference edge

    def test_edge_device_attribution(self):
        graph = connectivity_graph(inverter_netlist())
        assert graph.edges["vdd", "d"]["device"] == "RL"

    def test_connected_single_component(self):
        graph = connectivity_graph(inverter_netlist())
        assert nx.number_connected_components(graph) == 1


class TestValidate:
    def test_valid_netlist_passes(self):
        validate_netlist(inverter_netlist())

    def test_error_lists_floating_nodes(self):
        netlist = inverter_netlist()
        netlist.add_resistor("Rfloat", "island_a", "island_b", 1e3)
        with pytest.raises(NetlistError) as excinfo:
            validate_netlist(netlist)
        assert "island_a" in str(excinfo.value)

    def test_repr(self):
        assert "R=1" in repr(inverter_netlist())
