"""Cross-module consistency: the pNN math must equal the circuit physics.

The printed layer's weighted sum is an abstraction of the resistor
crossbar; these tests close the loop between ``repro.core`` (training
math), ``repro.circuits`` (analytic circuit model) and ``repro.spice``
(solved netlist).
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.circuits import CrossbarColumn, crossbar_netlist, crossbar_output
from repro.core import LearnableNonlinearCircuit, PrintedLayer
from repro.spice import solve_dc
from repro.surrogate import AnalyticSurrogate
from repro.surrogate.design_space import DESIGN_SPACE


def make_layer(n_in, n_out, seed=0):
    rng = np.random.default_rng(seed)
    activation = LearnableNonlinearCircuit(
        AnalyticSurrogate("ptanh"), DESIGN_SPACE, "ptanh", rng=rng
    )
    negation = LearnableNonlinearCircuit(
        AnalyticSurrogate("negweight"), DESIGN_SPACE, "negweight", rng=rng
    )
    return PrintedLayer(
        n_in, n_out, activation=activation, negation=negation,
        apply_activation=False, rng=rng,
    )


class TestLayerVsCrossbar:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_positive_theta_matches_analytic_crossbar(self, seed):
        """For all-positive θ the layer output IS Eq. 1."""
        layer = make_layer(3, 1, seed=seed)
        layer.theta.data = np.abs(layer.theta.data)
        theta = layer.printable_theta()[:, 0]

        rng = np.random.default_rng(seed + 10)
        voltages = rng.uniform(0.0, 1.0, size=3)
        column = CrossbarColumn(
            input_conductances=theta[:3],
            bias_conductance=theta[3],
            down_conductance=theta[4],
        )
        expected = crossbar_output(column, voltages)
        out = layer.forward(Tensor(voltages.reshape(1, 1, 3))).data[0, 0, 0]
        assert out == pytest.approx(expected, rel=1e-9)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_positive_theta_matches_solved_netlist(self, seed):
        """...and the solved physical netlist agrees with both."""
        layer = make_layer(2, 1, seed=seed)
        layer.theta.data = np.abs(layer.theta.data)
        theta = layer.printable_theta()[:, 0]

        # The surrogate conductances are dimensionless; the netlist check
        # uses the export scale (weights g/G are scale invariant).
        from repro.exporting.report import PHYSICAL_SCALE

        voltages = np.array([0.35, 0.8])
        column = CrossbarColumn(
            input_conductances=theta[:2] * PHYSICAL_SCALE,
            bias_conductance=theta[2] * PHYSICAL_SCALE,
            down_conductance=theta[3] * PHYSICAL_SCALE,
        )
        solved = solve_dc(crossbar_netlist(column, voltages)).voltage("vz")
        out = layer.forward(Tensor(voltages.reshape(1, 1, 2))).data[0, 0, 0]
        assert out == pytest.approx(solved, abs=1e-6)

    def test_scale_invariance_of_the_weighted_sum(self):
        """Multiplying a whole column by a constant leaves V_z unchanged —
        the physical reason surrogate conductances are dimensionless."""
        layer = make_layer(3, 2, seed=5)
        layer.theta.data = np.abs(layer.theta.data)
        x = Tensor(np.random.default_rng(0).uniform(size=(1, 4, 3)))
        before = layer.forward(x).data
        layer.theta.data = layer.theta.data * 3.7
        layer.theta.data = np.clip(layer.theta.data, 0.01, 10.0)  # stay printable
        after = layer.forward(x).data
        assert np.allclose(before, after, atol=1e-9)


class TestActivationVsCircuitSim:
    def test_learned_activation_matches_its_own_circuit(self):
        """The η the pNN uses must describe the circuit that ω builds.

        Round trip: take the layer's printable ω, sweep the *physical*
        circuit with the DC solver, fit η to that sweep, and compare with
        the surrogate's prediction the pNN trained against.  The NN
        surrogate carries regression error, so the analytic surrogate used
        here is calibrated on a sample first.
        """
        from repro.circuits import simulate_ptanh_curve
        from repro.surrogate import build_surrogate_dataset, fit_ptanh

        dataset = build_surrogate_dataset("ptanh", n_points=64, sweep_points=21, seed=21)
        surrogate = AnalyticSurrogate("ptanh").calibrate(dataset)
        rng = np.random.default_rng(1)
        activation = LearnableNonlinearCircuit(surrogate, DESIGN_SPACE, "ptanh", rng=rng)

        omega = activation.printable_omega().numpy()[0]
        v_in, v_out = simulate_ptanh_curve(omega, n_points=21)
        fitted = fit_ptanh(v_in, v_out).eta
        predicted = activation.eta().data[0, 0]
        # Calibrated first-order physics: centre and amplitude within ~0.2 V.
        assert predicted[0] == pytest.approx(fitted[0], abs=0.2)
        assert predicted[1] == pytest.approx(fitted[1], abs=0.2)
        assert predicted[2] == pytest.approx(fitted[2], abs=0.25)
