"""Telemetry layer: schema, spans, merge determinism, run identity."""

import json
import multiprocessing
import os

import pytest

from repro import telemetry
from repro.experiments import ExperimentConfig, enumerate_jobs, run_table2_parallel
from repro.telemetry import (
    EVENT_KINDS,
    NullTelemetry,
    merge_events,
    read_events,
    read_manifest,
    summarize_events,
)
from repro.telemetry.core import TELEMETRY_ENV

MICRO = ExperimentConfig(
    seeds=(1,), max_epochs=12, patience=12, n_mc_train=2, n_test=4, max_train=50,
)


@pytest.fixture()
def tel(tmp_path):
    """An enabled sink in a tmp dir, guaranteed torn down afterwards."""
    sink = telemetry.enable(tmp_path / "tel", manifest={"profile": "test"})
    try:
        yield sink
    finally:
        telemetry.disable()


@pytest.fixture(autouse=True)
def _no_leaked_sink():
    """No test may leak an active sink (or the env var) into the suite."""
    yield
    telemetry.disable()


class TestSchema:
    def test_record_round_trip(self, tel):
        tel.count("cache.hit", 3)
        tel.gauge("pool.workers", 2.0)
        tel.event("job.done", dataset="iris", seed=1)
        with tel.span("outer", phase="x"):
            pass
        events = read_events(tel.directory)

        by_kind = {e["kind"] for e in events}
        assert by_kind == {"span", "event", "count", "gauge"}
        assert set(EVENT_KINDS) == {"span", "event", "count", "gauge"}
        for record in events:
            assert set(record) >= {"kind", "name", "pid", "seq", "ts"}
            assert record["pid"] == os.getpid()
        # JSONL on disk: one standalone JSON object per line.
        (path,) = tel.directory.glob("events-*.jsonl")
        for line in path.read_text().splitlines():
            assert json.loads(line)["kind"] in EVENT_KINDS

    def test_summarize_aggregates(self, tel):
        tel.count("hits", 2)
        tel.count("hits", 5)
        tel.gauge("g", 1.0)
        tel.gauge("g", 7.5)
        tel.event("done")
        tel.event("done")
        with tel.span("work"):
            pass
        summary = summarize_events(read_events(tel.directory))
        assert summary["counters"]["hits"] == 7
        assert summary["gauges"]["g"] == 7.5
        assert summary["events"]["done"] == 2
        stat = summary["spans"]["work"]
        assert stat["count"] == 1
        assert stat["total_s"] == stat["max_s"] == stat["mean_s"]

    def test_manifest_written_and_merged(self, tel):
        manifest = read_manifest(tel.directory)
        assert manifest["profile"] == "test"
        assert {"created_at", "git_sha", "python", "argv"} <= set(manifest)
        created = manifest["created_at"]
        # A second enable over the same dir refines, never clobbers.
        telemetry.enable(tel.directory, manifest={"datasets": ["iris"]})
        refined = read_manifest(tel.directory)
        assert refined["profile"] == "test"
        assert refined["datasets"] == ["iris"]
        assert refined["created_at"] == created

    def test_truncated_line_skipped_with_warning(self, tel):
        tel.count("ok", 1)
        (path,) = tel.directory.glob("events-*.jsonl")
        with open(path, "a") as handle:
            handle.write('{"kind": "count", "name": "torn", "n"')  # no newline
        with pytest.warns(RuntimeWarning, match="truncated"):
            events = read_events(tel.directory)
        names = [e["name"] for e in events]
        assert "ok" in names and "torn" not in names


class TestSpans:
    def test_nesting_path_depth_and_monotonic_timing(self, tel):
        with tel.span("outer"):
            with tel.span("inner"):
                sum(range(1000))
        spans = {e["name"]: e for e in read_events(tel.directory)
                 if e["kind"] == "span"}
        outer, inner = spans["outer"], spans["inner"]
        assert outer["depth"] == 0 and outer["path"] == "outer"
        assert inner["depth"] == 1 and inner["path"] == "outer/inner"
        assert 0.0 <= inner["dur_s"] <= outer["dur_s"]
        # The inner span starts after — and is recorded before — the outer.
        assert inner["ts"] >= outer["ts"]
        assert inner["seq"] < outer["seq"]

    def test_seq_strictly_increasing_per_process(self, tel):
        for i in range(5):
            tel.count("c", i)
        seqs = [e["seq"] for e in read_events(tel.directory)]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_exception_still_records_span(self, tel):
        with pytest.raises(ValueError):
            with tel.span("doomed"):
                raise ValueError("boom")
        spans = [e for e in read_events(tel.directory) if e["kind"] == "span"]
        assert [s["name"] for s in spans] == ["doomed"]


class TestNullSink:
    def test_get_returns_null_when_disabled(self):
        telemetry.disable()
        tel = telemetry.get()
        assert isinstance(tel, NullTelemetry)
        assert tel.enabled is False

    def test_null_span_is_one_shared_noop(self):
        telemetry.disable()
        tel = telemetry.get()
        a, b = tel.span("x", k=1), tel.span("y")
        assert a is b
        with a:
            pass
        assert tel.count("c") is None
        assert tel.event("e") is None
        assert tel.gauge("g", 1.0) is None

    def test_env_var_resolution(self, tmp_path):
        telemetry.disable()
        os.environ[TELEMETRY_ENV] = str(tmp_path / "from_env")
        try:
            tel = telemetry.get()
            assert tel.enabled
            tel.count("joined")
        finally:
            telemetry.disable()
        events = read_events(tmp_path / "from_env")
        assert any(e["name"] == "joined" for e in events)


def _fake_log(directory, pid, records):
    with open(directory / f"events-{pid}.jsonl", "w") as handle:
        for seq, (ts, name) in enumerate(records):
            handle.write(json.dumps(
                {"kind": "event", "name": name, "pid": pid, "seq": seq,
                 "ts": ts, "attrs": {}},
                sort_keys=True) + "\n")


def _worker_count(n):
    telemetry.get().count("child.work", n)


class TestMerge:
    RECORDS_A = [(10.0, "a0"), (10.5, "a1"), (11.0, "tie")]
    RECORDS_B = [(10.2, "b0"), (11.0, "tie"), (12.0, "b1")]

    def test_merge_is_deterministic_regardless_of_write_order(self, tmp_path):
        first, second = tmp_path / "one", tmp_path / "two"
        for directory, order in ((first, (111, 222)), (second, (222, 111))):
            directory.mkdir()
            by_pid = {111: self.RECORDS_A, 222: self.RECORDS_B}
            for pid in order:
                _fake_log(directory, pid, by_pid[pid])
            merge_events(directory)
        assert (first / "events.jsonl").read_bytes() == \
            (second / "events.jsonl").read_bytes()

    def test_merge_total_order(self, tmp_path):
        _fake_log(tmp_path, 111, self.RECORDS_A)
        _fake_log(tmp_path, 222, self.RECORDS_B)
        merge_events(tmp_path)
        merged = read_events(tmp_path)
        keys = [(e["ts"], e["pid"], e["seq"]) for e in merged]
        assert keys == sorted(keys)
        # Same-ts tie between processes breaks on pid — deterministically.
        ties = [e["pid"] for e in merged if e["name"] == "tie"]
        assert ties == [111, 222]

    def test_remerge_is_idempotent_and_extends(self, tmp_path):
        _fake_log(tmp_path, 111, self.RECORDS_A)
        merge_events(tmp_path)
        once = (tmp_path / "events.jsonl").read_bytes()
        merge_events(tmp_path)
        assert (tmp_path / "events.jsonl").read_bytes() == once
        _fake_log(tmp_path, 222, self.RECORDS_B)
        merge_events(tmp_path)
        assert len(read_events(tmp_path)) == 6

    def test_forked_children_write_per_pid_files(self, tel):
        tel.count("parent.work")
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_worker_count, args=(i,)) for i in (1, 2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        files = sorted(tel.directory.glob("events-*.jsonl"))
        assert len(files) == 3  # parent + two forked children
        tel.merge()
        events = read_events(tel.directory)
        starts = [e for e in events if e["name"] == "process.start"]
        assert len(starts) == 3
        # Each forked child reopened its own file and reset its sequence.
        child = [e for e in events if e["name"] == "child.work"]
        assert {e["pid"] for e in child} & {p.pid for p in procs}
        summary = summarize_events(events)
        assert summary["counters"]["child.work"] == 3  # 1 + 2


class TestRunIdentity:
    def _signature(self, results):
        return [
            (c.dataset, c.setup.learnable, c.setup.variation_aware, c.eps_test,
             c.mean, c.std, c.best_seed, c.best_val_loss)
            for c in results
        ]

    def test_table2_bitwise_identical_with_telemetry_on_and_off(
            self, analytic_surrogates, tmp_path):
        telemetry.disable()
        plain = run_table2_parallel(["iris"], MICRO,
                                    surrogates=analytic_surrogates, workers=1)
        telemetry.enable(tmp_path / "tel")
        try:
            traced = run_table2_parallel(["iris"], MICRO,
                                         surrogates=analytic_surrogates,
                                         workers=1)
        finally:
            telemetry.disable()
        assert self._signature(traced) == self._signature(plain)
        # ... and the traced run actually produced an audited event stream.
        summary = summarize_events(read_events(tmp_path / "tel"))
        assert summary["events"]["job.done"] == len(enumerate_jobs(["iris"], MICRO))
        assert summary["events"]["table2.done"] == 1
        assert (tmp_path / "tel" / "events.jsonl").exists()
