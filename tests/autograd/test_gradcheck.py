"""The gradient checker must catch wrong gradients, not just pass right ones."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.autograd import functional as F
from repro.autograd.gradcheck import numerical_gradient


def test_passes_for_correct_gradient():
    assert gradcheck(lambda x: x * x, [Tensor([1.0, 2.0])])


def test_fails_for_wrong_gradient():
    def bad_op(x: Tensor) -> Tensor:
        data = x.data * 2.0

        def backward(grad):
            x._accumulate(grad * 3.0)  # wrong: claims d(2x)/dx = 3

        return Tensor._from_op(data, (x,), backward, "bad")

    with pytest.raises(AssertionError, match="gradcheck failed"):
        gradcheck(bad_op, [Tensor([1.0, 2.0])])


def test_numerical_gradient_of_quadratic():
    x = Tensor([3.0])
    grad = numerical_gradient(lambda x: x * x, [x], 0)
    assert np.allclose(grad, [6.0], atol=1e-4)


def test_multi_input_indexing():
    a, b = Tensor([2.0]), Tensor([5.0])
    grad_a = numerical_gradient(lambda a, b: a * b, [a, b], 0)
    grad_b = numerical_gradient(lambda a, b: a * b, [a, b], 1)
    assert np.allclose(grad_a, [5.0], atol=1e-4)
    assert np.allclose(grad_b, [2.0], atol=1e-4)


def test_gradcheck_through_composite_model():
    rng = np.random.default_rng(0)
    w1 = Tensor(rng.normal(size=(3, 5)))
    w2 = Tensor(rng.normal(size=(5, 2)))
    x = Tensor(rng.normal(size=(4, 3)))

    def model(x, w1, w2):
        return F.tanh(F.tanh(x @ w1) @ w2)

    assert gradcheck(model, [x, w1, w2])
