"""Tests for the Tensor class: graph mechanics, arithmetic, reductions."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled


class TestConstruction:
    def test_wraps_lists_as_float64(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.data.dtype == np.float64
        assert t.shape == (2, 2)

    def test_copy_semantics_from_tensor(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        b.data[0] = 99.0
        # Construction from a tensor re-wraps the same buffer contents.
        assert b.data[0] == 99.0

    def test_requires_grad_flag(self):
        assert Tensor([1.0], requires_grad=True).requires_grad
        assert not Tensor([1.0]).requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item_scalar(self):
        assert Tensor([[3.5]]).item() == 3.5

    def test_item_nonscalar_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()


class TestBackwardMechanics:
    def test_simple_chain(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x * x   # d/dx x³ = 3x²
        y.backward()
        assert np.isclose(x.grad, 12.0)

    def test_gradient_accumulates_across_uses(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * 2 + x * 5
        y.backward()
        assert np.isclose(x.grad, 7.0)

    def test_diamond_graph(self):
        x = Tensor(2.0, requires_grad=True)
        a = x * 3
        b = x + 1
        y = a * b   # y = 3x(x+1) = 3x² + 3x, dy/dx = 6x + 3 = 15
        y.backward()
        assert np.isclose(x.grad, 15.0)

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_seed_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3).backward(np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [3.0, 30.0])

    def test_backward_on_nongrad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_zero_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3).detach() * 4
        assert not y.requires_grad

    def test_deep_chain_does_not_overflow(self):
        # The topological sort is iterative; 5000-deep chains must work.
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(5000):
            y = y * 1.0001
        y.backward()
        assert x.grad is not None


class TestNoGrad:
    def test_no_grad_disables_taping(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()


class TestArithmetic:
    def test_add_sub_mul_div_values(self):
        a, b = Tensor([4.0, 9.0]), Tensor([2.0, 3.0])
        assert np.allclose((a + b).data, [6, 12])
        assert np.allclose((a - b).data, [2, 6])
        assert np.allclose((a * b).data, [8, 27])
        assert np.allclose((a / b).data, [2, 3])

    def test_reflected_operators(self):
        a = Tensor([2.0])
        assert np.allclose((3 + a).data, [5])
        assert np.allclose((3 - a).data, [1])
        assert np.allclose((3 * a).data, [6])
        assert np.allclose((3 / a).data, [1.5])

    def test_neg_and_pow(self):
        a = Tensor([2.0, -3.0])
        assert np.allclose((-a).data, [-2, 3])
        assert np.allclose((a ** 2).data, [4, 9])

    def test_pow_gradient(self):
        x = Tensor([3.0], requires_grad=True)
        (x ** 3).backward(np.array([1.0]))
        assert np.allclose(x.grad, [27.0])

    def test_div_gradient(self):
        x = Tensor([2.0], requires_grad=True)
        y = Tensor([4.0], requires_grad=True)
        (x / y).backward(np.array([1.0]))
        assert np.allclose(x.grad, [0.25])
        assert np.allclose(y.grad, [-2.0 / 16.0])

    def test_comparisons_return_numpy(self):
        a = Tensor([1.0, 3.0])
        assert isinstance(a > 2, np.ndarray)
        assert list(a > 2) == [False, True]
        assert list(a >= 3) == [False, True]
        assert list(a < 2) == [True, False]
        assert list(a <= 1) == [True, False]


class TestMatmul:
    def test_matrix_matrix(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0], [6.0]])
        assert np.allclose((a @ b).data, [[17.0], [39.0]])

    def test_vector_vector(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        out = a @ b
        assert np.isclose(out.data, 11.0)

    def test_batched(self):
        a = Tensor(np.ones((4, 2, 3)))
        b = Tensor(np.ones((4, 3, 5)))
        assert (a @ b).shape == (4, 2, 5)

    def test_broadcast_batch(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones((4, 3, 5)))
        assert (a @ b).shape == (4, 2, 5)

    def test_matmul_rejects_scalars(self):
        with pytest.raises(ValueError):
            Tensor(2.0) @ Tensor(3.0)


class TestShaping:
    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.T.shape == (4, 3, 2)

    def test_transpose_with_axes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose(1, 0, 2).shape == (3, 2, 4)

    def test_reshape(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_getitem_slice(self):
        t = Tensor(np.arange(10.0))
        assert np.allclose(t[2:5].data, [2, 3, 4])

    def test_getitem_gradient_scatters(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x[1:3].sum().backward()
        assert np.allclose(x.grad, [0, 1, 1, 0])

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5


class TestReductions:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum().item() == 6.0
        assert t.sum(axis=0).shape == (3,)
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_gradient_divides(self):
        x = Tensor(np.ones((4,)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, [0.25] * 4)

    def test_max_forward(self):
        t = Tensor([[1.0, 5.0], [3.0, 2.0]])
        assert t.max().item() == 5.0
        assert np.allclose(t.max(axis=0).data, [3.0, 5.0])

    def test_max_gradient_splits_ties(self):
        x = Tensor([2.0, 2.0, 1.0], requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5, 0.0])

    def test_min_matches_numpy(self):
        data = np.array([[3.0, -1.0], [0.5, 7.0]])
        assert np.allclose(Tensor(data).min(axis=1).data, data.min(axis=1))
