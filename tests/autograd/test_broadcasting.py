"""Property-based tests for broadcasting and gradient shape handling."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, gradcheck
from repro.autograd import functional as F
from repro.autograd.tensor import unbroadcast


def shapes_broadcastable():
    """Pairs of shapes that numpy can broadcast together."""
    base = st.lists(st.integers(1, 4), min_size=0, max_size=3)

    @st.composite
    def pair(draw):
        target = tuple(draw(base))
        # Derive a second shape by dropping leading axes and/or setting 1s.
        drop = draw(st.integers(0, len(target)))
        other = list(target[drop:])
        for i in range(len(other)):
            if draw(st.booleans()):
                other[i] = 1
        return target, tuple(other)

    return pair()


class TestUnbroadcast:
    @given(shapes_broadcastable())
    @settings(max_examples=60, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, shapes):
        target, small = shapes
        rng = np.random.default_rng(0)
        grad = rng.normal(size=np.broadcast_shapes(target, small))
        reduced = unbroadcast(grad, small)
        assert reduced.shape == small

    @given(shapes_broadcastable())
    @settings(max_examples=60, deadline=None)
    def test_unbroadcast_preserves_total_sum(self, shapes):
        target, small = shapes
        rng = np.random.default_rng(1)
        grad = rng.normal(size=np.broadcast_shapes(target, small))
        reduced = unbroadcast(grad, small)
        assert np.isclose(reduced.sum(), grad.sum())

    def test_identity_when_shapes_match(self):
        grad = np.ones((2, 3))
        assert unbroadcast(grad, (2, 3)) is grad


class TestBroadcastGradients:
    @given(shapes_broadcastable())
    @settings(max_examples=30, deadline=None)
    def test_add_gradcheck_under_broadcast(self, shapes):
        target, small = shapes
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=target))
        b = Tensor(rng.normal(size=small))
        assert gradcheck(lambda a, b: a + b, [a, b])

    @given(shapes_broadcastable())
    @settings(max_examples=30, deadline=None)
    def test_mul_gradcheck_under_broadcast(self, shapes):
        target, small = shapes
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=target))
        b = Tensor(rng.normal(size=small) + 2.0)
        assert gradcheck(lambda a, b: a * b, [a, b])

    def test_scalar_broadcast_gradient(self):
        x = Tensor(5.0, requires_grad=True)
        y = Tensor(np.ones((3, 4)), requires_grad=True)
        (x * y).sum().backward()
        assert np.isclose(x.grad, 12.0)
        assert np.allclose(y.grad, 5.0)

    def test_batched_matmul_broadcast_gradient(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(5, 2, 3)))
        w = Tensor(rng.normal(size=(3, 4)))
        assert gradcheck(lambda x, w: x @ w, [x, w])

    def test_mc_axis_pattern_from_pnn(self):
        """The exact broadcast pattern the printed layer uses."""
        rng = np.random.default_rng(5)
        x = Tensor(rng.uniform(size=(1, 6, 4)))          # (1, batch, in)
        theta = Tensor(rng.normal(size=(4, 3)))          # (in, out)
        eps = Tensor(rng.uniform(0.9, 1.1, size=(7, 4, 3)))

        def forward(x, theta, eps):
            t = theta.reshape(1, 4, 3) * eps
            return x @ t

        assert gradcheck(forward, [x, theta, eps])


class TestElementwiseProperties:
    @given(st.lists(st.floats(-3, 3), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_tanh_bounded(self, values):
        out = F.tanh(Tensor(values)).data
        assert np.all(np.abs(out) <= 1.0)

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_in_unit_interval(self, values):
        out = F.sigmoid(Tensor(values)).data
        assert np.all((out >= 0.0) & (out <= 1.0))

    @given(
        st.lists(st.floats(-10, 10), min_size=2, max_size=12),
        st.floats(-2, 0),
        st.floats(0.1, 2),
    )
    @settings(max_examples=50, deadline=None)
    def test_clip_result_in_range(self, values, low, high):
        out = F.clip(Tensor(values), low, high).data
        assert np.all((out >= low) & (out <= high))
