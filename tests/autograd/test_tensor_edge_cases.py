"""Edge cases of the tensor engine surfaced by the pNN workloads."""

import numpy as np

from repro.autograd import Tensor, gradcheck
from repro.autograd import functional as F


class TestMixedRequiresGrad:
    def test_grad_only_flows_to_tracked_inputs(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([3.0])                      # not tracked
        (a * b).backward(np.array([1.0]))
        assert np.allclose(a.grad, [3.0])
        assert b.grad is None

    def test_constant_subgraph_pruned(self):
        a = Tensor([1.0])
        b = Tensor([2.0])
        out = a + b
        assert not out.requires_grad
        assert out._backward is None


class TestNumericalEdges:
    def test_zero_batch_forward(self):
        x = Tensor(np.zeros((0, 3)))
        w = Tensor(np.ones((3, 2)))
        assert (x @ w).shape == (0, 2)

    def test_single_element_reductions(self):
        t = Tensor([[5.0]])
        assert t.sum().item() == 5.0
        assert t.mean().item() == 5.0
        assert t.max().item() == 5.0

    def test_large_values_through_tanh(self):
        out = F.tanh(Tensor([1e6, -1e6])).data
        assert np.allclose(out, [1.0, -1.0])

    def test_division_by_small_denominator_finite_grad(self):
        x = Tensor([1.0], requires_grad=True)
        d = Tensor([1e-12], requires_grad=True)
        (x / d).backward(np.array([1.0]))
        assert np.all(np.isfinite(x.grad))
        assert np.all(np.isfinite(d.grad))

    def test_pow_fractional_on_positive(self):
        x = Tensor(np.array([4.0, 9.0]))
        assert gradcheck(lambda x: x ** 0.5, [x])


class TestAccumulationSemantics:
    def test_second_backward_accumulates(self):
        x = Tensor(2.0, requires_grad=True)
        (x * 3).backward()
        (x * 3).backward()
        assert np.isclose(x.grad, 6.0)

    def test_intermediate_grads_available(self):
        x = Tensor(2.0, requires_grad=True)
        mid = x * 3
        (mid * 4).backward()
        assert np.isclose(mid.grad, 4.0)
        assert np.isclose(x.grad, 12.0)

    def test_reused_tensor_in_two_losses(self):
        w = Tensor(np.ones(3), requires_grad=True)
        loss = (w * 2).sum() + (w * w).sum()
        loss.backward()
        assert np.allclose(w.grad, 2.0 + 2.0 * np.ones(3))


class TestShapesFromThePNN:
    def test_concat_along_last_axis_with_mc_dim(self):
        x = Tensor(np.ones((4, 5, 3)), requires_grad=True)
        ones = Tensor(np.ones((4, 5, 1)))
        zeros = Tensor(np.zeros((4, 5, 1)))
        out = F.concatenate([x, ones, zeros], axis=-1)
        assert out.shape == (4, 5, 5)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_reshape_minus_one(self):
        t = Tensor(np.arange(24.0).reshape(2, 3, 4))
        assert t.reshape(6, -1).shape == (6, 4)

    def test_getitem_with_ellipsis(self):
        t = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        out = t[..., 0:2]
        assert out.shape == (2, 3, 2)
        out.sum().backward()
        assert t.grad.sum() == 12.0
