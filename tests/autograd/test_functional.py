"""Tests for the differentiable functions: values + gradcheck everywhere."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.autograd import functional as F


def randt(*shape, seed=0, shift=0.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) + shift)


class TestValues:
    def test_exp_log_sqrt(self):
        x = Tensor([1.0, 4.0])
        assert np.allclose(F.exp(x).data, np.exp([1, 4]))
        assert np.allclose(F.log(x).data, np.log([1, 4]))
        assert np.allclose(F.sqrt(x).data, [1, 2])

    def test_tanh_sigmoid_match_numpy(self):
        x = randt(7, seed=1)
        assert np.allclose(F.tanh(x).data, np.tanh(x.data))
        assert np.allclose(F.sigmoid(x).data, 1 / (1 + np.exp(-x.data)))

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([-800.0, 800.0])
        out = F.sigmoid(x).data
        assert np.all(np.isfinite(out))
        assert np.allclose(out, [0.0, 1.0])

    def test_softplus_extreme_values_stable(self):
        out = F.softplus(Tensor([-800.0, 0.0, 800.0])).data
        assert np.all(np.isfinite(out))
        assert np.isclose(out[1], np.log(2.0))
        assert np.isclose(out[2], 800.0)

    def test_relu_leaky_abs_sign(self):
        x = Tensor([-2.0, 0.0, 3.0])
        assert np.allclose(F.relu(x).data, [0, 0, 3])
        assert np.allclose(F.leaky_relu(x, 0.1).data, [-0.2, 0, 3])
        assert np.allclose(F.abs(x).data, [2, 0, 3])
        assert np.allclose(F.sign(x).data, [-1, 0, 1])

    def test_clip(self):
        x = Tensor([-2.0, 0.5, 2.0])
        assert np.allclose(F.clip(x, -1, 1).data, [-1, 0.5, 1])

    def test_where_and_maximum(self):
        a, b = Tensor([1.0, 5.0]), Tensor([4.0, 2.0])
        assert np.allclose(F.where(a.data > 2, a, b).data, [4, 5])
        assert np.allclose(F.maximum(a, b).data, [4, 5])

    def test_concat_stack_broadcast(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 1)))
        assert F.concatenate([a, b], axis=1).shape == (2, 3)
        assert F.stack([a, a], axis=0).shape == (2, 2, 2)
        assert F.broadcast_to(b, (2, 5)).shape == (2, 5)

    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(randt(4, 5, seed=2)).data
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert np.all(out > 0)

    def test_softmax_shift_invariant(self):
        x = randt(3, 4, seed=3)
        shifted = Tensor(x.data + 1000.0)
        assert np.allclose(F.softmax(x).data, F.softmax(shifted).data)

    def test_log_softmax_consistent_with_softmax(self):
        x = randt(3, 4, seed=4)
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_cross_entropy_matches_manual(self):
        logits = randt(5, 3, seed=5)
        targets = np.array([0, 2, 1, 1, 0])
        manual = -np.mean(
            np.log(F.softmax(logits).data[np.arange(5), targets])
        )
        assert np.isclose(F.cross_entropy(logits, targets).item(), manual)

    def test_take_along_last_axis(self):
        x = Tensor(np.arange(12.0).reshape(3, 4))
        idx = np.array([0, 3, 2])
        assert np.allclose(F.take_along_last_axis(x, idx).data, [0, 7, 10])

    def test_mse_loss(self):
        a, b = Tensor([1.0, 2.0]), np.array([0.0, 0.0])
        assert np.isclose(F.mse_loss(a, b).item(), 2.5)


class TestGradients:
    @pytest.mark.parametrize(
        "func",
        [
            F.exp,
            F.tanh,
            F.sigmoid,
            F.softplus,
            lambda x: F.leaky_relu(x, 0.1),
            F.softmax,
            F.log_softmax,
        ],
        ids=["exp", "tanh", "sigmoid", "softplus", "leaky_relu", "softmax", "log_softmax"],
    )
    def test_smooth_elementwise(self, func):
        assert gradcheck(func, [randt(3, 4, seed=11)])

    def test_log_sqrt_positive_domain(self):
        x = Tensor(np.random.default_rng(3).uniform(0.5, 2.0, size=6))
        assert gradcheck(F.log, [x])
        assert gradcheck(F.sqrt, [x])

    def test_abs_away_from_zero(self):
        x = Tensor(np.array([-2.0, -0.7, 0.9, 1.5]))
        assert gradcheck(F.abs, [x])

    def test_clip_gradient_masks_outside(self):
        x = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        F.clip(x, -1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_clip_ste_gradient_passes_through(self):
        x = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        F.clip_ste(x, -1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0, 1.0])

    def test_where_gradient_routes(self):
        a = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        F.where(np.array([True, False]), a, b).sum().backward()
        assert np.allclose(a.grad, [1, 0])
        assert np.allclose(b.grad, [0, 1])

    def test_concatenate_gradient(self):
        assert gradcheck(
            lambda a, b: F.concatenate([a, b], axis=1),
            [randt(2, 3, seed=6), randt(2, 2, seed=7)],
        )

    def test_stack_gradient(self):
        assert gradcheck(lambda a, b: F.stack([a, b], axis=0), [randt(3, seed=8), randt(3, seed=9)])

    def test_broadcast_to_gradient_sums(self):
        x = Tensor(np.array([[1.0], [2.0]]), requires_grad=True)
        F.broadcast_to(x, (2, 5)).sum().backward()
        assert np.allclose(x.grad, [[5.0], [5.0]])

    def test_cross_entropy_gradient(self):
        targets = np.array([0, 2, 1])
        assert gradcheck(lambda x: F.cross_entropy(x, targets), [randt(3, 3, seed=10)])

    def test_take_along_gradient(self):
        idx = np.array([1, 0])
        assert gradcheck(lambda x: F.take_along_last_axis(x, idx), [randt(2, 3, seed=12)])

    def test_maximum_gradient_off_ties(self):
        a = Tensor(np.array([1.0, 5.0]))
        b = Tensor(np.array([4.0, 2.0]))
        assert gradcheck(F.maximum, [a, b])

    def test_sign_gradient_is_zero(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        F.sign(x).sum().backward()
        assert np.allclose(x.grad, [0.0, 0.0])


class TestProjectPrintable:
    def test_forward_snaps_small_to_zero(self):
        x = Tensor(np.array([0.004, -0.004, 0.006, 0.5, 20.0, -20.0]))
        out = F.project_printable_ste(x, 0.01, 10.0).data
        assert np.allclose(out, [0.0, 0.0, 0.01, 0.5, 10.0, -10.0])

    def test_forward_preserves_in_range(self):
        x = Tensor(np.array([0.01, 10.0, -0.01, -10.0, 1.0]))
        out = F.project_printable_ste(x, 0.01, 10.0).data
        assert np.allclose(out, x.data)

    def test_result_always_in_printable_set(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(scale=20.0, size=500))
        out = np.abs(F.project_printable_ste(x, 0.01, 10.0).data)
        nonzero = out[out > 0]
        assert np.all((nonzero >= 0.01 - 1e-15) & (nonzero <= 10.0 + 1e-15))

    def test_gradient_is_identity(self):
        x = Tensor(np.array([0.001, 50.0, -0.3]), requires_grad=True)
        F.project_printable_ste(x, 0.01, 10.0).sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0, 1.0])

    def test_sign_preserved(self):
        x = Tensor(np.array([-5.0, 5.0]))
        out = F.project_printable_ste(x, 0.01, 10.0).data
        assert out[0] < 0 < out[1]
