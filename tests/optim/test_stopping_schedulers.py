"""Early stopping and LR schedules."""

import math

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import Adam, CosineAnnealingLR, EarlyStopping, SGD, StepLR


class TestEarlyStopping:
    def test_tracks_best(self):
        stopper = EarlyStopping(patience=3)
        assert stopper.update(1.0, epoch=0)
        assert not stopper.update(1.5, epoch=1)
        assert stopper.update(0.5, epoch=2)
        assert stopper.best_epoch == 2
        assert stopper.best_value == 0.5

    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, epoch=0)
        stopper.update(1.1, epoch=1)
        assert not stopper.should_stop
        stopper.update(1.2, epoch=2)
        assert stopper.should_stop

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, 0)
        stopper.update(1.1, 1)
        stopper.update(0.9, 2)
        stopper.update(1.0, 3)
        assert not stopper.should_stop

    def test_min_delta_requires_real_improvement(self):
        stopper = EarlyStopping(patience=10, min_delta=0.1)
        stopper.update(1.0, 0)
        assert not stopper.update(0.95, 1)   # too small to count
        assert stopper.update(0.85, 2)

    def test_keeps_best_state(self):
        stopper = EarlyStopping(patience=5)
        stopper.update(1.0, 0, state={"w": np.array([1.0])})
        stopper.update(2.0, 1, state={"w": np.array([2.0])})
        assert stopper.best_state["w"][0] == 1.0

    def test_rejects_bad_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)

    def test_lazy_state_fn_called_only_on_improvement(self):
        calls = []

        def snapshot():
            calls.append(len(calls))
            return {"w": np.array([float(len(calls))])}

        stopper = EarlyStopping(patience=10)
        assert stopper.update(1.0, 0, state_fn=snapshot)      # best → snapshot
        assert not stopper.update(2.0, 1, state_fn=snapshot)  # worse → skipped
        assert not stopper.update(1.5, 2, state_fn=snapshot)  # worse → skipped
        assert stopper.update(0.5, 3, state_fn=snapshot)      # best → snapshot
        assert calls == [0, 1]
        assert stopper.best_state["w"][0] == 2.0

    def test_state_and_state_fn_are_exclusive(self):
        stopper = EarlyStopping(patience=2)
        with pytest.raises(ValueError):
            stopper.update(1.0, 0, state={"w": np.zeros(1)}, state_fn=dict)


class TestSchedulers:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.zeros(1))], lr=lr)

    def test_step_lr_decays(self):
        optimizer = self._optimizer(lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            scheduler.step()
            lrs.append(optimizer.param_groups[0]["lr"])
        # Epochs 1..5 → decade drops at epochs 2 and 4.
        assert lrs == [1.0, 0.1, 0.1, pytest.approx(0.01), pytest.approx(0.01)]

    def test_cosine_endpoints(self):
        optimizer = self._optimizer(lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.0)
        for _ in range(5):
            scheduler.step()
        mid = optimizer.param_groups[0]["lr"]
        assert math.isclose(mid, 0.5, rel_tol=1e-9)
        for _ in range(5):
            scheduler.step()
        assert optimizer.param_groups[0]["lr"] == pytest.approx(0.0)

    def test_cosine_monotone_decreasing(self):
        optimizer = self._optimizer(lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=20)
        previous = 1.0
        for _ in range(20):
            scheduler.step()
            current = optimizer.param_groups[0]["lr"]
            assert current <= previous + 1e-12
            previous = current

    def test_scheduler_applies_to_all_groups(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        optimizer = Adam([{"params": [a], "lr": 1.0}, {"params": [b], "lr": 0.1}])
        scheduler = StepLR(optimizer, step_size=1, gamma=0.5)
        scheduler.step()
        assert optimizer.param_groups[0]["lr"] == 0.5
        assert optimizer.param_groups[1]["lr"] == pytest.approx(0.05)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._optimizer(), t_max=0)
