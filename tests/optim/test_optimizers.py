"""Optimizers: convergence, parameter groups, state handling."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, RawParameter


def quadratic_loss(param: Parameter, target: np.ndarray) -> Tensor:
    diff = param - Tensor(target)
    return (diff * diff).sum()


def minimize(optimizer, param, target, steps=300):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(param, target)
        loss.backward()
        optimizer.step()
    return param.data


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        target = np.array([1.0, -2.0, 0.5])
        minimize(SGD([param], lr=0.1), param, target)
        assert np.allclose(param.data, target, atol=1e-6)

    def test_momentum_converges(self):
        param = Parameter(np.zeros(3))
        target = np.array([1.0, -2.0, 0.5])
        minimize(SGD([param], lr=0.02, momentum=0.9), param, target)
        assert np.allclose(param.data, target, atol=1e-4)

    def test_skips_params_without_grad(self):
        param = Parameter(np.ones(2))
        SGD([param], lr=0.1).step()  # no backward happened
        assert np.allclose(param.data, [1.0, 1.0])

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_rejects_non_parameters(self):
        with pytest.raises(TypeError):
            SGD([Tensor(np.zeros(1), requires_grad=True)], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        target = np.array([1.0, -2.0, 0.5])
        minimize(Adam([param], lr=0.05), param, target, steps=600)
        assert np.allclose(param.data, target, atol=1e-4)

    def test_first_step_size_is_lr(self):
        # Adam's bias correction makes the very first update ≈ lr·sign(grad).
        param = Parameter(np.array([0.0]))
        optimizer = Adam([param], lr=0.01)
        quadratic_loss(param, np.array([1.0])).backward()
        optimizer.step()
        assert np.isclose(abs(param.data[0]), 0.01, rtol=1e-6)

    def test_scale_invariance_of_updates(self):
        # Tiny but consistent gradients should still move parameters ~lr.
        p1, p2 = Parameter(np.array([0.0])), Parameter(np.array([0.0]))
        opt1, opt2 = Adam([p1], lr=0.01), Adam([p2], lr=0.01)
        for _ in range(10):
            for p, opt, scale in ((p1, opt1, 1.0), (p2, opt2, 1e-6)):
                opt.zero_grad()
                p.grad = np.array([scale])
                opt.step()
        # sqrt(v̂) ≈ 1e-6 is comparable to eps = 1e-8, costing ~1% step size.
        assert np.isclose(p1.data[0], p2.data[0], rtol=2e-2)

    def test_weight_decay_shrinks_solution(self):
        target = np.array([1.0])
        plain = Parameter(np.zeros(1))
        decayed = Parameter(np.zeros(1))
        minimize(Adam([plain], lr=0.05), plain, target, steps=800)
        minimize(Adam([decayed], lr=0.05, weight_decay=1.0), decayed, target, steps=800)
        assert abs(decayed.data[0]) < abs(plain.data[0])

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))


class TestParameterGroups:
    def test_per_group_learning_rates(self):
        fast = Parameter(np.array([0.0]))
        slow = Parameter(np.array([0.0]))
        optimizer = Adam(
            [{"params": [fast], "lr": 0.1}, {"params": [slow], "lr": 0.001}]
        )
        for _ in range(3):
            optimizer.zero_grad()
            loss = quadratic_loss(fast, np.array([1.0])) + quadratic_loss(
                slow, np.array([1.0])
            )
            loss.backward()
            optimizer.step()
        assert abs(fast.data[0]) > abs(slow.data[0]) * 10

    def test_groups_share_defaults(self):
        p = Parameter(np.zeros(1))
        optimizer = Adam([{"params": [p]}], lr=0.5)
        assert optimizer.param_groups[0]["lr"] == 0.5

    def test_zero_grad_covers_all_groups(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        optimizer = SGD([{"params": [a]}, {"params": [b]}], lr=0.1)
        a.grad = np.ones(1)
        b.grad = np.ones(1)
        optimizer.zero_grad()
        assert a.grad is None and b.grad is None


class TestRawParameter:
    """Graph-free parameters: the kernel training engine's update targets."""

    def test_accepted_by_optimizers(self):
        raw = RawParameter(np.zeros(3), name="theta")
        Adam([raw], lr=0.1)
        SGD([{"params": [raw], "lr": 0.1}])

    def test_adam_updates_match_parameter_updates(self):
        # Identical hand-set gradients must produce identical trajectories
        # through the Tensor-wrapped and the raw array paths.
        taped = Parameter(np.array([0.3, -0.2]))
        raw = RawParameter(np.array([0.3, -0.2]))
        opt_taped = Adam([taped], lr=0.05)
        opt_raw = Adam([raw], lr=0.05)
        rng = np.random.default_rng(0)
        for _ in range(25):
            grad = rng.normal(size=2)
            opt_taped.zero_grad()
            opt_raw.zero_grad()
            taped.grad = grad.copy()
            raw.grad = grad.copy()
            opt_taped.step()
            opt_raw.step()
        np.testing.assert_array_equal(raw.data, taped.data)

    def test_none_grad_skipped(self):
        raw = RawParameter(np.ones(2))
        Adam([raw], lr=0.5).step()
        np.testing.assert_array_equal(raw.data, np.ones(2))

    def test_zero_grad_resets(self):
        raw = RawParameter(np.ones(2))
        raw.grad = np.ones(2)
        optimizer = SGD([raw], lr=0.1)
        optimizer.zero_grad()
        assert raw.grad is None
        assert raw.shape == (2,)
