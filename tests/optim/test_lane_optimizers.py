"""Lane-stacked optimizer state vs per-lane serial optimizers, bit for bit.

Adam's and SGD's updates are elementwise, so one stacked step over a
``(L, ...)`` parameter must equal ``L`` independent per-lane steps exactly
(no tolerance).  ``compact(keep)`` is a gather: surviving lanes' moments
are byte-identical before and after, so a run that compacts mid-stream
still finishes bitwise equal to the serial lanes that ran start to end.
"""

import numpy as np
import pytest

from repro.optim import Adam, LaneAdam, LaneSGD, RawParameter, SGD


def lane_grads(rng, n_lanes, shape, steps):
    """Deterministic per-step, per-lane gradients ``(steps, L, *shape)``."""
    return rng.normal(size=(steps, n_lanes, *shape))


def run_stacked(opt_cls, data, grads, keep_at=None, keep=None, **kwargs):
    """Run a stacked optimizer, optionally compacting after ``keep_at`` steps.

    Returns the final stacked data (in surviving-lane order when compacted).
    """
    param = RawParameter(data.copy(), "p")
    optimizer = opt_cls([{"params": [param], "lr": 0.05}], **kwargs)
    lanes = list(range(data.shape[0]))
    for step, grad in enumerate(grads):
        if keep_at is not None and step == keep_at:
            param.data = param.data[keep]
            optimizer.compact(keep)
            lanes = [lanes[i] for i in keep]
        param.grad = grad[lanes]
        optimizer.step()
    return param.data, lanes


def run_serial(opt_cls, data, grads, lane, steps=None, **kwargs):
    """Run one lane's slice through the serial optimizer."""
    param = RawParameter(data[lane].copy(), "p")
    optimizer = opt_cls([{"params": [param], "lr": 0.05}], **kwargs)
    for grad in grads[:steps]:
        param.grad = grad[lane]
        optimizer.step()
    return param.data


@pytest.mark.parametrize(
    "stacked_cls,serial_cls,kwargs",
    [
        (LaneAdam, Adam, {}),
        (LaneSGD, SGD, {"momentum": 0.9}),
        (LaneSGD, SGD, {}),
    ],
)
class TestStackedEqualsSerial:
    def test_stacked_step_equals_per_lane_steps(self, stacked_cls, serial_cls, kwargs):
        rng = np.random.default_rng(11)
        data = rng.normal(size=(4, 3, 5))
        grads = lane_grads(rng, 4, (3, 5), steps=7)
        stacked, lanes = run_stacked(stacked_cls, data, grads, **kwargs)
        for position, lane in enumerate(lanes):
            serial = run_serial(serial_cls, data, grads, lane, **kwargs)
            np.testing.assert_array_equal(stacked[position], serial)

    def test_compact_preserves_survivor_state(self, stacked_cls, serial_cls, kwargs):
        """Compact after 3 of 8 steps; survivors must still match serial."""
        rng = np.random.default_rng(23)
        data = rng.normal(size=(5, 2, 4))
        grads = lane_grads(rng, 5, (2, 4), steps=8)
        keep = [0, 2, 4]
        stacked, lanes = run_stacked(
            stacked_cls, data, grads, keep_at=3, keep=keep, **kwargs
        )
        assert lanes == keep
        for position, lane in enumerate(lanes):
            serial = run_serial(serial_cls, data, grads, lane, **kwargs)
            np.testing.assert_array_equal(stacked[position], serial)


class TestCompactBookkeeping:
    def test_adam_step_counter_survives_compaction(self):
        param = RawParameter(np.zeros((3, 2)), "p")
        optimizer = LaneAdam([{"params": [param], "lr": 0.05}])
        for _ in range(4):
            param.grad = np.ones((3, 2))
            optimizer.step()
        state = optimizer._state[id(param)]
        assert state["step"] == 4
        param.data = param.data[[0, 2]]
        optimizer.compact([0, 2])
        state = optimizer._state[id(param)]
        assert state["step"] == 4                 # survivors stepped 4 times
        assert state["m"].shape == (2, 2)
        assert state["v"].shape == (2, 2)

    def test_compact_before_first_step_is_noop(self):
        param = RawParameter(np.zeros((3, 2)), "p")
        for optimizer in (
            LaneAdam([{"params": [param], "lr": 0.05}]),
            LaneSGD([{"params": [param], "lr": 0.05}], momentum=0.9),
        ):
            optimizer.compact([0, 1])             # no state yet; must not raise

    def test_sgd_velocity_gathered(self):
        param = RawParameter(np.zeros((3, 2)), "p")
        optimizer = LaneSGD([{"params": [param], "lr": 0.05}], momentum=0.9)
        param.grad = np.arange(6, dtype=float).reshape(3, 2)
        optimizer.step()
        before = optimizer._velocity[id(param)].copy()
        param.data = param.data[[1, 2]]
        optimizer.compact([1, 2])
        np.testing.assert_array_equal(optimizer._velocity[id(param)], before[[1, 2]])
