"""Dataset container invariants."""

import numpy as np
import pytest

from repro.datasets.base import Dataset


def toy():
    return Dataset(
        name="toy",
        x=np.arange(12.0).reshape(6, 2),
        y=np.array([0, 1, 0, 1, 2, 2]),
        n_classes=3,
        feature_names=("a", "b"),
        class_names=("x", "y", "z"),
    )


class TestDataset:
    def test_counts(self):
        dataset = toy()
        assert dataset.n_samples == 6
        assert dataset.n_features == 2
        assert list(dataset.class_counts()) == [2, 2, 2]

    def test_shuffle_preserves_pairs(self):
        dataset = toy()
        shuffled = dataset.shuffled(np.random.default_rng(0))
        # Each row must keep its original label: recover by matching rows.
        for row, label in zip(shuffled.x, shuffled.y):
            original_idx = np.flatnonzero((dataset.x == row).all(axis=1))[0]
            assert dataset.y[original_idx] == label

    def test_shuffle_changes_order(self):
        dataset = toy()
        shuffled = dataset.shuffled(np.random.default_rng(3))
        assert not np.array_equal(shuffled.x, dataset.x)

    def test_rejects_label_out_of_range(self):
        with pytest.raises(ValueError):
            Dataset(name="bad", x=np.zeros((2, 2)), y=np.array([0, 5]), n_classes=3)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(name="bad", x=np.zeros((3, 2)), y=np.array([0, 1]), n_classes=2)
        with pytest.raises(ValueError):
            Dataset(name="bad", x=np.zeros(3), y=np.array([0, 1, 0]), n_classes=2)

    def test_repr(self):
        assert "n=6" in repr(toy())
