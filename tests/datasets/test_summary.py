"""Dataset summary rendering."""

from repro.datasets.registry import DISPLAY_NAMES
from repro.datasets.summary import summarize_datasets


class TestSummary:
    def test_all_datasets_listed(self):
        text = summarize_datasets()
        for display in DISPLAY_NAMES.values():
            assert display in text

    def test_subset(self):
        text = summarize_datasets(["iris", "seeds"])
        assert "Iris" in text and "Seeds" in text
        assert "Pendigits" not in text

    def test_majority_rate_sane(self):
        text = summarize_datasets(["balance_scale"])
        # Balance Scale's majority class is 288/625 ≈ 0.46.
        assert "0.46" in text
