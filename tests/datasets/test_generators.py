"""Every dataset generator: published sizes, balances and structure."""

import numpy as np
import pytest

from repro.datasets import DATASET_NAMES, load_dataset
from repro.datasets.generators import (
    balance_scale,
    energy_efficiency,
    pendigits,
    tictactoe,
)
from repro.datasets.generators.acute_inflammation import bladder_rule
from repro.datasets.generators.tictactoe import _terminal_boards, winner

#: Published (n_samples, n_features, n_classes) per dataset.
EXPECTED_SHAPES = {
    "acute_inflammation": (120, 6, 2),
    "balance_scale": (625, 4, 3),
    "breast_cancer": (683, 9, 2),
    "cardiotocography": (2126, 21, 3),
    "energy_y1": (768, 8, 3),
    "energy_y2": (768, 8, 3),
    "iris": (150, 4, 3),
    "mammographic_mass": (830, 5, 2),
    "pendigits": (10990, 16, 10),
    "seeds": (210, 7, 3),
    "tictactoe": (958, 9, 2),
    "vertebral_2c": (310, 6, 2),
    "vertebral_3c": (310, 6, 3),
}


class TestAllGenerators:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_shape_matches_published(self, name):
        dataset = load_dataset(name, seed=0)
        n, d, c = EXPECTED_SHAPES[name]
        assert dataset.n_samples == n
        assert dataset.n_features == d
        assert dataset.n_classes == c

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_every_class_present(self, name):
        dataset = load_dataset(name, seed=0)
        assert np.all(dataset.class_counts() > 0)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_features_finite(self, name):
        dataset = load_dataset(name, seed=0)
        assert np.all(np.isfinite(dataset.x))

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_deterministic_given_seed(self, name):
        a = load_dataset(name, seed=3)
        b = load_dataset(name, seed=3)
        assert np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_feature_names_match_width(self, name):
        dataset = load_dataset(name, seed=0)
        assert len(dataset.feature_names) == dataset.n_features


class TestExactDatasets:
    def test_balance_scale_class_counts(self):
        dataset = balance_scale.generate()
        assert list(dataset.class_counts()) == [288, 49, 288]

    def test_balance_scale_rule_holds_per_row(self):
        dataset = balance_scale.generate()
        torque_left = dataset.x[:, 0] * dataset.x[:, 1]
        torque_right = dataset.x[:, 2] * dataset.x[:, 3]
        expected = np.where(
            torque_left > torque_right, 0, np.where(torque_left == torque_right, 1, 2)
        )
        assert np.array_equal(dataset.y, expected)

    def test_tictactoe_known_totals(self):
        boards = _terminal_boards()
        outcomes = {"x": 0, "o": 0, "": 0}
        for board in boards:
            outcomes[winner(board)] += 1
        assert len(boards) == 958
        assert outcomes["x"] == 626
        assert outcomes["o"] == 316
        assert outcomes[""] == 16

    def test_tictactoe_positive_rate(self):
        dataset = tictactoe.generate()
        assert dataset.class_counts()[1] == 626

    def test_tictactoe_boards_are_legal(self):
        dataset = tictactoe.generate()
        x_count = (dataset.x == 2.0).sum(axis=1)
        o_count = (dataset.x == 1.0).sum(axis=1)
        # X moves first: X count equals O count or exceeds it by one.
        assert np.all((x_count - o_count >= 0) & (x_count - o_count <= 1))

    def test_energy_grid_is_full_factorial(self):
        dataset = energy_efficiency.generate_y1()
        # 12 shapes × 4 orientations × (1 + 3·5) glazing cases = 768.
        assert dataset.n_samples == 768
        unique_rows = np.unique(dataset.x, axis=0)
        assert len(unique_rows) == 768

    def test_energy_y1_y2_differ(self):
        y1 = energy_efficiency.generate_y1()
        y2 = energy_efficiency.generate_y2()
        assert np.array_equal(y1.x, y2.x)
        assert not np.array_equal(y1.y, y2.y)

    def test_acute_rule_vectorized_consistency(self):
        dataset = load_dataset("acute_inflammation", seed=0)
        recomputed = np.array([bladder_rule(row) for row in dataset.x])
        assert np.array_equal(recomputed, dataset.y)

    def test_acute_classes_roughly_balanced(self):
        dataset = load_dataset("acute_inflammation", seed=0)
        positive_rate = dataset.class_counts()[1] / dataset.n_samples
        assert 0.3 < positive_rate < 0.7


@pytest.mark.slow
class TestStatisticalGenerators:
    def test_iris_class_means_match_published(self):
        dataset = load_dataset("iris", seed=0)
        setosa = dataset.x[dataset.y == 0]
        virginica = dataset.x[dataset.y == 2]
        assert abs(setosa[:, 2].mean() - 1.46) < 0.15      # petal length
        assert abs(virginica[:, 2].mean() - 5.55) < 0.3

    def test_breast_cancer_grades_in_range(self):
        dataset = load_dataset("breast_cancer", seed=0)
        assert dataset.x.min() >= 1 and dataset.x.max() <= 10
        benign = dataset.x[dataset.y == 0].mean()
        malignant = dataset.x[dataset.y == 1].mean()
        assert malignant > benign + 2.0

    def test_cardiotocography_imbalance(self):
        dataset = load_dataset("cardiotocography", seed=0)
        counts = dataset.class_counts()
        assert list(counts) == [1655, 295, 176]

    def test_vertebral_identity_holds(self):
        dataset = load_dataset("vertebral_3c", seed=0)
        incidence = dataset.x[:, 0]
        tilt = dataset.x[:, 1]
        slope = dataset.x[:, 3]
        assert np.allclose(incidence, tilt + slope, atol=1e-9)

    def test_vertebral_2c_merges_pathologies(self):
        dataset = load_dataset("vertebral_2c", seed=0)
        assert list(dataset.class_counts()) == [210, 100]

    def test_seeds_compactness_definition(self):
        dataset = load_dataset("seeds", seed=0)
        area, perimeter, compactness = dataset.x[:, 0], dataset.x[:, 1], dataset.x[:, 2]
        assert np.allclose(compactness, 4 * np.pi * area / perimeter**2, rtol=1e-9)

    def test_pendigits_coordinates_in_tablet_range(self):
        dataset = load_dataset("pendigits", seed=0)
        assert dataset.x.min() >= 0 and dataset.x.max() <= 100

    def test_pendigits_classes_distinguishable(self):
        """Nearest-centroid accuracy must be far above chance."""
        dataset = load_dataset("pendigits", seed=0)
        rng = np.random.default_rng(0)
        idx = rng.choice(dataset.n_samples, size=2000, replace=False)
        x, y = dataset.x[idx], dataset.y[idx]
        centroids = np.stack([x[y == c].mean(axis=0) for c in range(10)])
        predictions = np.argmin(
            ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2), axis=1
        )
        assert (predictions == y).mean() > 0.6

    def test_mammographic_latent_orders_classes(self):
        dataset = load_dataset("mammographic_mass", seed=0)
        benign_birads = dataset.x[dataset.y == 0][:, 0].mean()
        malignant_birads = dataset.x[dataset.y == 1][:, 0].mean()
        assert malignant_birads > benign_birads


class TestResampling:
    def test_pendigits_resample_uniform_arclength(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        resampled = pendigits._resample(points, 5)
        deltas = np.sqrt((np.diff(resampled, axis=0) ** 2).sum(axis=1))
        assert np.allclose(deltas, deltas[0], rtol=1e-6)

    def test_pendigits_degenerate_stroke(self):
        points = np.zeros((3, 2))
        resampled = pendigits._resample(points, 8)
        assert resampled.shape == (8, 2)
