"""Splits, scaling and the registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    DATASET_NAMES,
    MinMaxScaler,
    load_dataset,
    load_splits,
    stratified_split,
)
from repro.datasets.preprocessing import scale_splits
from repro.datasets.registry import DISPLAY_NAMES


class TestStratifiedSplit:
    def test_partition_disjoint_and_complete(self):
        dataset = load_dataset("iris", seed=0)
        splits = stratified_split(dataset, seed=0)
        total = sum(splits.sizes())
        assert total == dataset.n_samples

    def test_fractions_respected(self):
        dataset = load_dataset("balance_scale", seed=0)
        splits = stratified_split(dataset, seed=0)
        n_train, n_val, n_test = splits.sizes()
        assert abs(n_train / dataset.n_samples - 0.6) < 0.02
        assert abs(n_val / dataset.n_samples - 0.2) < 0.02

    def test_stratification_keeps_class_balance(self):
        dataset = load_dataset("cardiotocography", seed=0)
        splits = stratified_split(dataset, seed=0)
        full_balance = dataset.class_counts() / dataset.n_samples
        train_balance = np.bincount(splits.y_train, minlength=3) / len(splits.y_train)
        assert np.allclose(full_balance, train_balance, atol=0.02)

    def test_every_class_in_train(self):
        for name in ("vertebral_3c", "pendigits", "balance_scale"):
            splits = stratified_split(load_dataset(name, seed=1), seed=1)
            assert len(np.unique(splits.y_train)) == splits.n_classes

    def test_different_seeds_differ(self):
        dataset = load_dataset("iris", seed=0)
        a = stratified_split(dataset, seed=1)
        b = stratified_split(dataset, seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            stratified_split(load_dataset("iris", seed=0), seed=0, fractions=(0.5, 0.1, 0.1))


class TestMinMaxScaler:
    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_train_data_lands_in_unit_box(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(scale=10.0, size=(30, 4))
        scaled = MinMaxScaler().fit_transform(x)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0

    def test_test_data_clipped(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [1.0]]))
        out = scaler.transform(np.array([[-5.0], [0.5], [9.0]]))
        assert np.allclose(out.ravel(), [0.0, 0.5, 1.0])

    def test_constant_feature_safe(self):
        scaler = MinMaxScaler().fit(np.full((5, 1), 3.0))
        out = scaler.transform(np.full((2, 1), 3.0))
        assert np.all(np.isfinite(out))

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_scale_splits_uses_train_statistics(self):
        splits = stratified_split(load_dataset("seeds", seed=0), seed=0)
        scaled = scale_splits(splits)
        assert scaled.x_train.min() == pytest.approx(0.0)
        assert scaled.x_train.max() == pytest.approx(1.0)
        # Validation/test stay within [0, 1] thanks to clipping.
        assert scaled.x_val.min() >= 0.0 and scaled.x_val.max() <= 1.0


class TestRegistry:
    def test_thirteen_datasets(self):
        assert len(DATASET_NAMES) == 13

    def test_display_names_cover_all(self):
        assert set(DISPLAY_NAMES) == set(DATASET_NAMES)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")

    def test_load_splits_scaled_by_default(self):
        splits = load_splits("iris", seed=0)
        assert splits.x_train.min() >= 0.0 and splits.x_train.max() <= 1.0

    def test_load_splits_max_train_caps(self):
        splits = load_splits("pendigits", seed=0, max_train=500)
        assert len(splits.x_train) == 500
        # Validation and test splits are untouched.
        assert len(splits.x_val) > 500

    def test_loaded_dataset_is_shuffled(self):
        dataset = load_dataset("balance_scale", seed=0)
        # The raw enumeration is ordered; after shuffling the first rows
        # must not be the lexicographic prefix (1,1,1,·).
        assert not np.array_equal(dataset.x[:5, 0], np.ones(5))
