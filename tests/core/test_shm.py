"""The shared-memory data plane: publish/map round trips and accounting.

Contracts under test (:mod:`repro.core.shm`):

- every mapped view is a **zero-copy**, read-only window onto the
  published segment, byte-equal to the source arrays;
- the store is the single owner of its segments — publish/unlink counts
  balance, ``close()`` is idempotent, cache keys dedupe publishes;
- payload handles (params, ε streams with and without stuck-at
  overrides) rebuild exactly the structures the serial loop consumes;
- attaching from a child process never steals the creator's segment
  (the Python ≤ 3.12 resource-tracker pitfall).
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro.core import PrintedNeuralNetwork, kernels, snapshot_params
from repro.core.evaluation import draw_variation_samples
from repro.core.shm import (
    SharedArrayStore,
    map_block,
    map_epsilons,
    map_evaluation,
    map_params,
    publish_epsilons,
    publish_evaluation,
    publish_params,
)
from repro.core.variation import Perturbation, VariationModel, build_scenario_model


@pytest.fixture()
def store():
    with SharedArrayStore() as s:
        yield s


def _params(analytic_surrogates, sizes=(4, 3, 3), seed=7):
    pnn = PrintedNeuralNetwork(
        list(sizes), analytic_surrogates, rng=np.random.default_rng(seed)
    )
    return snapshot_params(pnn)


class TestBlocks:
    def test_roundtrip_is_zero_copy_and_equal(self, store):
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal((5, 3)), np.arange(7, dtype=np.int64)]
        block = store.publish(arrays, label="test")
        mapped = map_block(block)
        for source, view in zip(arrays, mapped.arrays):
            assert_array_equal(view, source)
            assert not view.flags.owndata          # a window, not a copy
            assert not view.flags.writeable
        mapped.close()

    def test_publish_counts_and_close_balances(self):
        store = SharedArrayStore()
        store.publish([np.zeros(4)], label="a")
        store.publish([np.ones(2)], label="b")
        assert store.publish_count == 2
        assert store.live_segments == 2
        store.close()
        assert store.unlink_count == 2
        assert store.live_segments == 0
        store.close()                              # idempotent
        assert store.unlink_count == 2

    def test_cache_key_dedupes(self, store):
        arrays = [np.arange(6.0)]
        first = store.publish(arrays, label="ds", cache_key=("dataset", "iris"))
        second = store.publish(arrays, label="ds", cache_key=("dataset", "iris"))
        assert first is second
        assert store.publish_count == 1

    def test_unpublish_unlinks_segment(self, store):
        block = store.publish([np.arange(3.0)], label="gone")
        store.unpublish(block)
        assert store.unlink_count == 1
        with pytest.raises(FileNotFoundError):
            map_block(block)

    def test_close_is_idempotent_and_clears_views(self, store):
        block = store.publish([np.full(8, 2.5)], label="held")
        mapped = map_block(block)
        copied = np.array(mapped.arrays[0])        # copy out before closing
        mapped.close()
        mapped.close()                             # second close is a no-op
        assert mapped.arrays == ()
        assert_array_equal(copied, np.full(8, 2.5))


class TestPayloads:
    def test_params_roundtrip_predicts_identically(self, store, analytic_surrogates):
        params = _params(analytic_surrogates)
        x = np.random.default_rng(1).uniform(0.0, 1.0, (9, 4))
        handle = publish_params(store, params)
        rebuilt, mapped = map_params(handle)
        for ours, theirs in zip(params.layers, rebuilt.layers):
            assert_array_equal(theirs.theta, ours.theta)
            assert_array_equal(theirs.act_omega, ours.act_omega)
            assert_array_equal(theirs.neg_omega, ours.neg_omega)
        assert_array_equal(kernels.predict(rebuilt, x), kernels.predict(params, x))
        mapped.close()

    def test_adopted_arrays_are_zero_copy(self, store, analytic_surrogates):
        params = _params(analytic_surrogates)
        rebuilt, mapped = map_params(publish_params(store, params))
        assert not rebuilt.layers[0].theta.flags.owndata
        mapped.close()

    @pytest.mark.parametrize("scenario", ["default", "stuck-1pct", "correlated"])
    def test_epsilons_roundtrip(self, store, analytic_surrogates, scenario):
        params = _params(analytic_surrogates)
        if scenario == "default":
            variation = VariationModel(0.1, seed=3)
        else:
            variation = build_scenario_model(scenario, 0.1, seed=3)
        epsilons = draw_variation_samples(params, variation, 40)
        handle = publish_epsilons(store, epsilons)
        rebuilt, mapped = map_epsilons(handle)
        assert len(rebuilt) == len(epsilons)
        for ours, theirs in zip(epsilons, rebuilt):
            for eps, eps_back in zip(ours, theirs):
                assert type(eps_back) is type(eps)
                if isinstance(eps, Perturbation):
                    assert_array_equal(eps_back.scale, eps.scale)
                    if eps.override_mask is None:
                        assert eps_back.override_mask is None
                    else:
                        assert_array_equal(eps_back.override_mask,
                                           eps.override_mask)
                        assert_array_equal(eps_back.override_value,
                                           eps.override_value)
                else:
                    assert_array_equal(eps_back, eps)
        mapped.close()

    def test_evaluation_payload_roundtrip(self, store, analytic_surrogates):
        params = _params(analytic_surrogates)
        rng = np.random.default_rng(5)
        x = rng.uniform(0.0, 1.0, (11, 4))
        y = rng.integers(0, 3, 11)
        epsilons = draw_variation_samples(params, VariationModel(0.1, seed=2), 20)
        payload = publish_evaluation(store, params, x, y, epsilons,
                                     dataset_key=("dataset", "toy"))
        mapping = map_evaluation(payload)
        assert_array_equal(mapping.x, x)
        assert_array_equal(mapping.y, y)
        assert_array_equal(
            kernels.predict(mapping.params, mapping.x),
            kernels.predict(params, x),
        )
        mapping.close()

    def test_dataset_block_cached_across_publishes(self, store, analytic_surrogates):
        params = _params(analytic_surrogates)
        rng = np.random.default_rng(5)
        x = rng.uniform(0.0, 1.0, (11, 4))
        y = rng.integers(0, 3, 11)
        epsilons = draw_variation_samples(params, VariationModel(0.1, seed=2), 20)
        first = publish_evaluation(store, params, x, y, epsilons,
                                   dataset_key=("dataset", "toy"))
        second = publish_evaluation(store, params, x, y, epsilons,
                                    dataset_key=("dataset", "toy"))
        assert first.dataset is second.dataset
        assert first.params.block is not second.params.block


def _child_maps(block):
    mapped = map_block(block)
    total = float(sum(view.sum() for view in mapped.arrays))
    mapped.close()
    return total


class TestCrossProcess:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_child_attach_leaves_segment_alive(self, store, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        block = store.publish([np.ones(16)], label="xproc")
        ctx = multiprocessing.get_context(method)
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            assert pool.submit(_child_maps, block).result() == 16.0
            # A second child proves the first didn't unlink it on exit.
            assert pool.submit(_child_maps, block).result() == 16.0
        mapped = map_block(block)               # and the parent still can map
        assert_array_equal(mapped.arrays[0], np.ones(16))
        mapped.close()
