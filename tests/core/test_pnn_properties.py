"""Property-based invariants of the printed network forward pass."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.core import PrintedNeuralNetwork, VariationModel
from repro.surrogate import AnalyticSurrogate

SURROGATES = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))


def build_pnn(n_in, n_hidden, n_out, seed):
    return PrintedNeuralNetwork(
        [n_in, n_hidden, n_out], SURROGATES, rng=np.random.default_rng(seed)
    )


class TestForwardInvariants:
    @given(
        n_in=st.integers(1, 6),
        n_out=st.integers(2, 4),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_outputs_finite_and_rail_bounded(self, n_in, n_out, seed):
        """Activation outputs are η1 ± η2 — within ±2 V of the rails."""
        pnn = build_pnn(n_in, 3, n_out, seed)
        x = np.random.default_rng(seed).uniform(size=(8, n_in))
        out = pnn.forward(x).data
        assert np.all(np.isfinite(out))
        assert np.all(np.abs(out) <= 2.0)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_all_zero_column_stays_finite(self, seed):
        """A column whose conductances all snap to zero must not blow up."""
        pnn = build_pnn(3, 3, 2, seed)
        pnn.layers[0].theta.data[:, 0] = 1e-9   # below the printable floor
        out = pnn.forward(np.random.default_rng(seed).uniform(size=(4, 3))).data
        assert np.all(np.isfinite(out))

    @given(seed=st.integers(0, 30), epsilon=st.sampled_from([0.05, 0.1, 0.2]))
    @settings(max_examples=15, deadline=None)
    def test_variation_forward_finite(self, seed, epsilon):
        pnn = build_pnn(3, 3, 2, seed)
        out = pnn.forward(
            np.random.default_rng(seed).uniform(size=(5, 3)),
            variation=VariationModel(epsilon, seed=seed),
            n_mc=4,
        ).data
        assert np.all(np.isfinite(out))

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_forward_deterministic_without_variation(self, seed):
        pnn = build_pnn(2, 3, 2, seed)
        x = np.random.default_rng(seed).uniform(size=(6, 2))
        assert np.array_equal(pnn.forward(x).data, pnn.forward(x).data)

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_batch_rows_independent(self, seed):
        """Each row's output must not depend on the rest of the batch."""
        pnn = build_pnn(2, 3, 2, seed)
        x = np.random.default_rng(seed).uniform(size=(5, 2))
        full = pnn.forward(x).data[0]
        single = pnn.forward(x[2:3]).data[0, 0]
        assert np.allclose(full[2], single)

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_crossbar_output_convex_for_positive_theta(self, seed):
        """With all-positive θ, V_z is a convex combination of inputs ∪ {0, 1}."""
        pnn = build_pnn(3, 3, 2, seed)
        layer = pnn.layers[0]
        layer.theta.data = np.abs(layer.theta.data)
        layer.apply_activation = False
        x = np.random.default_rng(seed).uniform(size=(1, 7, 3))
        v_z = layer.forward(Tensor(x)).data
        assert np.all(v_z >= -1e-9)
        assert np.all(v_z <= 1.0 + 1e-9)

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_gradients_finite(self, seed):
        pnn = build_pnn(3, 3, 2, seed)
        out = pnn.forward(np.random.default_rng(seed).uniform(size=(6, 3)))
        out.sum().backward()
        for _, param in pnn.named_parameters():
            assert param.grad is not None
            assert np.all(np.isfinite(param.grad))
