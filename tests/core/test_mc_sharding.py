"""Sharded MC evaluation: bitwise identity with the serial path.

The tentpole contract of the sharding PR: for every shard count, chunk
size, scenario, backend, and pool start method, ``evaluate_mc_sharded``
returns byte-for-byte the accuracies of serial ``evaluate_mc`` — the
shards consume the *same* pre-drawn ε blocks the serial loop consumes,
so the merged stream is the serial stream.  Every equality below is
``assert_array_equal``; never ``allclose``.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import telemetry
from repro.core import (
    SAMPLE_BLOCK,
    PrintedNeuralNetwork,
    evaluate_mc,
    evaluate_mc_sharded,
    plan_shards,
    snapshot_params,
)
from repro.core.shm import SharedArrayStore
from repro.telemetry import read_events

SCENARIOS = ("default", "stuck-1pct", "correlated")


@pytest.fixture(scope="module")
def workload(analytic_surrogates):
    pnn = PrintedNeuralNetwork(
        [4, 3, 3], analytic_surrogates, rng=np.random.default_rng(7)
    )
    params = snapshot_params(pnn)
    rng = np.random.default_rng(42)
    x = rng.uniform(0.0, 1.0, (23, 4))
    y = rng.integers(0, 3, 23)
    return params, x, y


class TestPlanShards:
    def test_boundaries_align_to_blocks(self):
        spans = plan_shards(70, 3)
        assert spans == [(0, 40), (40, 60), (60, 70)]
        for start, _ in spans[1:]:
            assert start % SAMPLE_BLOCK == 0

    def test_clamps_to_block_count(self):
        # 100 rows = 5 blocks: more shards than blocks collapse to 5.
        spans = plan_shards(100, 8)
        assert len(spans) == 5
        assert all(stop - start == SAMPLE_BLOCK for start, stop in spans)

    def test_single_block_single_shard(self):
        assert plan_shards(20, 4) == [(0, 20)]
        assert plan_shards(7, 3) == [(0, 7)]

    def test_spans_partition_the_range(self):
        for n_test in (20, 60, 70, 100, 230):
            for shards in (1, 2, 3, 7, 16):
                spans = plan_shards(n_test, shards)
                assert spans[0][0] == 0 and spans[-1][1] == n_test
                for (_, stop), (start, _) in zip(spans, spans[1:]):
                    assert stop == start
                assert all(stop > start for start, stop in spans)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            plan_shards(0, 2)


class TestBitwiseIdentity:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_inline_matches_serial(self, workload, backend, scenario, shards):
        params, x, y = workload
        kwargs = dict(epsilon=0.1, n_test=70, seed=3, scenario=scenario)
        serial = evaluate_mc(params, x, y, backend=backend, **kwargs)
        sharded = evaluate_mc_sharded(
            params, x, y, backend=backend, shards=shards, **kwargs
        )
        assert_array_equal(sharded.accuracies, serial.accuracies)

    @pytest.mark.parametrize("batch_mc", [1, 7, 23, None])
    def test_invariant_to_shard_chunk_size(self, workload, batch_mc):
        params, x, y = workload
        kwargs = dict(epsilon=0.1, n_test=70, seed=3, scenario="stuck-1pct")
        serial = evaluate_mc(params, x, y, **kwargs)
        sharded = evaluate_mc_sharded(
            params, x, y, shards=3, batch_mc=batch_mc, **kwargs
        )
        assert_array_equal(sharded.accuracies, serial.accuracies)

    def test_non_dividing_n_test(self, workload):
        # 47 rows: a ragged final block, spans (0, 40), (40, 47).
        params, x, y = workload
        serial = evaluate_mc(params, x, y, epsilon=0.05, n_test=47, seed=9)
        sharded = evaluate_mc_sharded(
            params, x, y, epsilon=0.05, n_test=47, seed=9, shards=2
        )
        assert_array_equal(sharded.accuracies, serial.accuracies)

    def test_nominal_early_return(self, workload):
        params, x, y = workload
        serial = evaluate_mc(params, x, y, epsilon=0.0, n_test=50, seed=0)
        sharded = evaluate_mc_sharded(
            params, x, y, epsilon=0.0, n_test=50, seed=0, shards=4
        )
        assert sharded.accuracies.shape == (1,)
        assert_array_equal(sharded.accuracies, serial.accuracies)


class TestPooled:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_pool_matches_serial(self, workload, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        params, x, y = workload
        kwargs = dict(epsilon=0.1, n_test=70, seed=3, scenario="correlated")
        serial = evaluate_mc(params, x, y, backend="fused", **kwargs)
        ctx = multiprocessing.get_context(method)
        with ProcessPoolExecutor(max_workers=2, mp_context=ctx) as pool:
            sharded = evaluate_mc_sharded(
                params, x, y, backend="fused", shards=3, pool=pool, **kwargs
            )
        assert_array_equal(sharded.accuracies, serial.accuracies)


class TestAccounting:
    def test_external_store_balances_and_caches_dataset(self, workload):
        params, x, y = workload
        with SharedArrayStore() as store:
            for seed in (1, 2):
                evaluate_mc_sharded(
                    params, x, y, epsilon=0.1, n_test=40, seed=seed,
                    shards=2, store=store, dataset_key=("dataset", "toy"),
                )
            # dataset published once, params + ε per call (unpublished after)
            assert store.publish_count == 5
            assert store.unlink_count == 4
            assert store.live_segments == 1       # the cached dataset block
        assert store.unlink_count == 5
        assert store.live_segments == 0

    def test_owned_store_leaves_nothing(self, workload):
        params, x, y = workload
        evaluate_mc_sharded(params, x, y, epsilon=0.1, n_test=40, seed=1,
                            shards=2)
        # The call owns its store and closes it; nothing to assert beyond
        # "no exception" — the shard spans telemetry test below checks the
        # publish/unlink counters balance.

    def test_telemetry_spans_and_counters(self, workload, tmp_path):
        params, x, y = workload
        telemetry.enable(tmp_path / "tel", manifest={"profile": "test"})
        try:
            evaluate_mc_sharded(params, x, y, epsilon=0.1, n_test=60, seed=3,
                                shards=3)
            events = read_events(tmp_path / "tel")
        finally:
            telemetry.disable()
        spans = [e for e in events if e["kind"] == "span"]
        outer = [e for e in spans if e["name"] == "mc.evaluate_sharded"]
        shards = [e for e in spans if e["name"] == "mc.shard"]
        assert len(outer) == 1 and outer[0]["attrs"]["shards"] == 3
        assert outer[0]["attrs"]["pooled"] is False
        assert [(s["attrs"]["start"], s["attrs"]["stop"]) for s in shards] \
            == [(0, 20), (20, 40), (40, 60)]
        counts = {}
        for e in events:
            if e["kind"] == "count":
                counts[e["name"]] = counts.get(e["name"], 0) + e["n"]
        assert counts["shm.publish"] == counts["shm.unlink"] > 0
        assert counts["shm.map"] >= 1
