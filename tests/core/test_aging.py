"""Aging extension: drift model, composite disturbances, lifetime sweep."""

import numpy as np
import pytest

from repro.core import PrintedNeuralNetwork, TrainConfig, train_pnn
from repro.core.aging import (
    AgingModel,
    CompositeVariation,
    evaluate_lifetime,
)
from repro.core.variation import VariationModel
from repro.surrogate import AnalyticSurrogate


def make_pnn(seed=0):
    surrogates = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))
    return PrintedNeuralNetwork([2, 3, 2], surrogates, rng=np.random.default_rng(seed))


class TestAgingModel:
    def test_fresh_device_unaged(self):
        model = AgingModel(drift_rate=0.1, spread=0.0, fixed_time=0.0, seed=0)
        assert model.is_nominal
        assert np.allclose(model.decay_factor(np.array(0.0)), 1.0)

    def test_decay_monotone_in_time(self):
        model = AgingModel(drift_rate=0.1, seed=0)
        times = np.linspace(0, 5, 11)
        factors = model.decay_factor(times)
        assert np.all(np.diff(factors) <= 0)
        assert np.all(factors > 0)

    def test_decay_floor(self):
        model = AgingModel(drift_rate=5.0, seed=0)
        assert model.decay_factor(np.array(1e6)) >= 0.05

    def test_sample_shape_and_bounds(self):
        model = AgingModel(drift_rate=0.05, time_horizon=1.0, spread=0.02, seed=1)
        sample = model.sample(8, (4, 3))
        assert sample.shape == (8, 4, 3)
        # Worst case: max drift at T times max negative jitter.
        worst = model.decay_factor(np.array(1.0)) * (1 - 0.02)
        assert np.all(sample >= worst - 1e-12)
        assert np.all(sample <= 1.02 + 1e-12)

    def test_fixed_time_removes_age_randomness(self):
        model = AgingModel(drift_rate=0.1, spread=0.0, fixed_time=0.5, seed=0)
        sample = model.sample(5, (3,))
        assert np.allclose(sample, sample[0])

    def test_at_time_pins_age(self):
        model = AgingModel(drift_rate=0.1, time_horizon=2.0, seed=0)
        pinned = model.at_time(1.5)
        assert pinned.fixed_time == 1.5
        assert pinned.drift_rate == model.drift_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            AgingModel(drift_rate=-0.1)
        with pytest.raises(ValueError):
            AgingModel(tau=0.0)
        with pytest.raises(ValueError):
            AgingModel(spread=1.0)
        with pytest.raises(ValueError):
            AgingModel(seed=0).sample(0, (2,))


class TestCompositeVariation:
    def test_combines_models(self):
        aging = AgingModel(drift_rate=0.2, spread=0.0, fixed_time=1.0, seed=0)
        variation = VariationModel(0.0, seed=0)
        composite = CompositeVariation(aging, variation)
        sample = composite.sample(4, (2,))
        expected = aging.decay_factor(np.array(1.0))
        assert np.allclose(sample, expected)

    def test_nominal_only_if_all_nominal(self):
        nominal = VariationModel(0.0, seed=0)
        noisy = VariationModel(0.1, seed=0)
        assert CompositeVariation(nominal, nominal).is_nominal
        assert not CompositeVariation(nominal, noisy).is_nominal

    def test_requires_models(self):
        with pytest.raises(ValueError):
            CompositeVariation()


@pytest.mark.slow
class TestLifetime:
    def test_accuracy_degrades_with_age(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn(seed=1)
        config = TrainConfig(max_epochs=200, patience=200, seed=1)
        train_pnn(pnn, x_train, y_train, x_val, y_val, config)

        aging = AgingModel(drift_rate=0.25, spread=0.03, seed=2)
        points = evaluate_lifetime(
            pnn, x_val, y_val, aging, times=(0.0, 2.0, 20.0), n_test=15, seed=2
        )
        assert len(points) == 3
        assert points[0].mean >= points[-1].mean - 0.05   # fresh ≥ heavily aged

    def test_aging_aware_training_via_override(self, blob_data):
        """Aging models slot into train_pnn through the variation override."""
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn(seed=3)
        aging = AgingModel(drift_rate=0.15, spread=0.02, time_horizon=2.0, seed=3)
        config = TrainConfig(max_epochs=80, patience=80, n_mc_train=4, seed=3)
        result = train_pnn(
            pnn, x_train, y_train, x_val, y_val, config,
            variation=aging,
            val_variation=AgingModel(drift_rate=0.15, spread=0.02,
                                     time_horizon=2.0, seed=99),
        )
        assert len(result.history) > 0
