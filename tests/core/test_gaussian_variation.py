"""Gaussian variation model (extension)."""

import numpy as np
import pytest

from repro.core.variation import GaussianVariationModel, VariationModel


class TestGaussianVariation:
    def test_nominal(self):
        model = GaussianVariationModel(0.0, seed=0)
        assert model.is_nominal
        assert np.all(model.sample(3, (2,)) == 1.0)

    def test_variance_matched_to_uniform(self):
        """σ = ϵ/√3 gives the same variance as U[1−ϵ, 1+ϵ]."""
        epsilon = 0.10
        gaussian = GaussianVariationModel(epsilon, seed=0).sample(4000, (10,))
        uniform = VariationModel(epsilon, seed=0).sample(4000, (10,))
        assert gaussian.std() == pytest.approx(uniform.std(), rel=0.05)

    def test_truncation_at_three_sigma(self):
        model = GaussianVariationModel(0.3, seed=1)
        sample = model.sample(500, (20,))
        assert np.all(sample >= 1.0 - 3 * model.sigma - 1e-12)
        assert np.all(sample <= 1.0 + 3 * model.sigma + 1e-12)

    def test_mean_close_to_one(self):
        sample = GaussianVariationModel(0.1, seed=2).sample(2000, (5,))
        assert abs(sample.mean() - 1.0) < 0.005

    def test_works_inside_pnn_forward(self):
        from repro.core import PrintedNeuralNetwork
        from repro.surrogate import AnalyticSurrogate

        pnn = PrintedNeuralNetwork(
            [2, 3, 2],
            (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight")),
            rng=np.random.default_rng(0),
        )
        out = pnn.forward(
            np.random.default_rng(1).uniform(size=(4, 2)),
            variation=GaussianVariationModel(0.1, seed=3),
            n_mc=6,
        )
        assert out.shape == (6, 4, 2)
        assert np.std(out.data, axis=0).max() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianVariationModel(-0.1)
        with pytest.raises(ValueError):
            GaussianVariationModel(0.1, seed=0).sample(0, (2,))
