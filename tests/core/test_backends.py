"""The execution-backend registry and the fused backend's bitwise contract.

The registry's house rule (see :mod:`repro.core.backends`): a backend is a
*performance* choice, never a *numerical* one.  Every check here therefore
uses ``assert_array_equal`` / ``==`` — a backend that is merely close does
not belong in the registry.
"""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_BACKEND,
    PrintedNeuralNetwork,
    TrainConfig,
    backend_names,
    evaluate_mc,
    get_backend,
    kernels,
    numba_version,
    snapshot_params,
    train_pnn,
    train_pnn_lanes,
)
from repro.core.backends import Backend, FusedEvalDriver
from repro.core.evaluation import draw_variation_samples
from repro.core.grad_kernels import KernelNetwork
from repro.core.lanes import LaneNetwork
from repro.core.variation import VariationModel, build_scenario_model


def make_pnn(surrogates, per_neuron=False, sizes=(4, 3, 3), seed=7):
    pnn = PrintedNeuralNetwork(
        list(sizes), surrogates, per_neuron_activation=per_neuron,
        rng=np.random.default_rng(seed),
    )
    nudge = np.random.default_rng(1)
    for param in pnn.parameters():
        param.data = param.data + 0.05 * nudge.standard_normal(param.data.shape)
    return pnn


class TestRegistry:
    def test_registered_names_and_default(self):
        assert backend_names() == ("numpy", "fused")
        assert DEFAULT_BACKEND == "numpy"

    def test_get_backend_roundtrip(self):
        for name in backend_names():
            entry = get_backend(name)
            assert isinstance(entry, Backend)
            assert entry.name == name
            assert entry.description
            assert callable(entry.make_eval_driver)
        assert get_backend("fused").fused
        assert not get_backend("numpy").fused

    def test_unknown_backend_lists_valid_names(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'.*fused.*numpy"):
            get_backend("gpu")

    def test_numba_never_required(self):
        # The JIT tier is strictly opt-in: with numba absent the fused
        # backend must still register and report no compiled tier.
        version = numba_version()
        assert version is None or isinstance(version, str)

    def test_kernel_network_rejects_unknown_backend(self, analytic_surrogates):
        pnn = make_pnn(analytic_surrogates)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            KernelNetwork.from_pnn(pnn, backend="gpu")

    def test_train_config_rejects_unknown_backend(
        self, analytic_surrogates, blob_data
    ):
        x_train, y_train, x_val, y_val = blob_data
        pnn = PrintedNeuralNetwork(
            [2, 3, 2], analytic_surrogates, rng=np.random.default_rng(0)
        )
        config = TrainConfig(max_epochs=1, seed=0, backend="gpu")
        with pytest.raises(ValueError, match="unknown backend"):
            train_pnn(pnn, x_train, y_train, x_val, y_val, config)


class TestFusedEvalDriver:
    def test_input_validation_matches_reference(self, analytic_surrogates):
        params = snapshot_params(make_pnn(analytic_surrogates))
        with pytest.raises(ValueError, match="expected a .batch, features. input"):
            FusedEvalDriver(params, np.zeros(4))
        with pytest.raises(ValueError, match="features"):
            FusedEvalDriver(params, np.zeros((5, 3)))

    @pytest.mark.parametrize("scenario", ["gaussian", "stuck-1pct", "correlated"])
    def test_scenario_epsilons_bitwise(self, analytic_surrogates, scenario):
        # stuck-1pct exercises the Perturbation (override-mask) θ path,
        # the others the plain multiplicative path with non-uniform draws.
        params = snapshot_params(make_pnn(analytic_surrogates))
        x = np.random.default_rng(2).uniform(0.0, 1.0, size=(9, 4))
        model = build_scenario_model(scenario, 0.1, seed=3)
        epsilons = draw_variation_samples(params, model, n_test=6)
        fused = FusedEvalDriver(params, x)
        reference = kernels.network_forward(params, x, epsilons=epsilons)
        np.testing.assert_array_equal(fused.forward(epsilons), reference)

    def test_scratch_is_reused_across_chunks(self, analytic_surrogates):
        params = snapshot_params(make_pnn(analytic_surrogates))
        x = np.random.default_rng(4).uniform(0.0, 1.0, size=(9, 4))
        model = VariationModel(0.1, seed=9)
        driver = FusedEvalDriver(params, x)
        driver.forward(draw_variation_samples(params, model, n_test=5))
        stable = driver.workspace.nbytes()
        assert stable > 0
        # Same chunk shape again: not a single new scratch byte.
        driver.forward(draw_variation_samples(params, model, n_test=5))
        assert driver.workspace.nbytes() == stable


class TestTrainingBitwise:
    """Full training trajectories are bitwise-identical across backends."""

    @pytest.fixture(scope="class")
    def reference_run(self, analytic_surrogates, blob_data):
        return self._train("numpy", analytic_surrogates, blob_data)

    @staticmethod
    def _train(backend, surrogates, blob_data, engine="kernel"):
        x_train, y_train, x_val, y_val = blob_data
        pnn = PrintedNeuralNetwork(
            [2, 3, 2], surrogates, rng=np.random.default_rng(21)
        )
        config = TrainConfig(
            max_epochs=15, patience=15, epsilon=0.05, n_mc_train=3, seed=5,
            backend=backend,
        )
        result = train_pnn(
            pnn, x_train, y_train, x_val, y_val, config, engine=engine
        )
        return pnn, result

    def _assert_same_run(self, run, reference):
        pnn, result = run
        ref_pnn, ref_result = reference
        assert result.history == ref_result.history
        assert result.best_epoch == ref_result.best_epoch
        assert result.best_val_loss == ref_result.best_val_loss
        state, ref_state = pnn.state_dict(), ref_pnn.state_dict()
        assert state.keys() == ref_state.keys()
        for name in state:
            np.testing.assert_array_equal(state[name], ref_state[name])

    def test_backend_trajectories_match(
        self, analytic_surrogates, blob_data, reference_run, backend
    ):
        run = self._train(backend, analytic_surrogates, blob_data)
        self._assert_same_run(run, reference_run)

    def test_lane_engine_matches(
        self, analytic_surrogates, blob_data, reference_run, backend
    ):
        run = self._train(backend, analytic_surrogates, blob_data, engine="lanes")
        self._assert_same_run(run, reference_run)

    def test_lane_stack_trains_bitwise_on_fused(
        self, analytic_surrogates, blob_data
    ):
        x_train, y_train, x_val, y_val = blob_data

        def train_pair(backend):
            pnns = [
                PrintedNeuralNetwork(
                    [2, 3, 2], analytic_surrogates, rng=np.random.default_rng(s)
                )
                for s in (31, 32)
            ]
            configs = [
                TrainConfig(
                    max_epochs=12, patience=12, epsilon=0.05, n_mc_train=2,
                    seed=s, backend=backend,
                )
                for s in (31, 32)
            ]
            results = train_pnn_lanes(
                pnns, x_train, y_train, x_val, y_val, configs
            )
            return pnns, results

        ref_pnns, ref_results = train_pair("numpy")
        fused_pnns, fused_results = train_pair("fused")
        for pnn, result, ref_pnn, ref_result in zip(
            fused_pnns, fused_results, ref_pnns, ref_results
        ):
            self._assert_same_run((pnn, result), (ref_pnn, ref_result))


class TestBackendPlumbing:
    """The fused tier actually engages where it is selected."""

    def test_kernel_network_threads_workspace(self, analytic_surrogates):
        pnn = make_pnn(analytic_surrogates)
        assert KernelNetwork.from_pnn(pnn)._fws is None
        fused = KernelNetwork.from_pnn(pnn, backend="fused")
        assert fused._fws is fused.workspace

    def test_lane_network_threads_workspace(self, analytic_surrogates):
        pnn = make_pnn(analytic_surrogates)
        assert LaneNetwork.from_pnns([pnn])._fws is None
        fused = LaneNetwork.from_pnns([pnn], backend="fused")
        assert fused._fws is fused.workspace

    def test_evaluate_mc_selects_driver_class(
        self, analytic_surrogates, monkeypatch
    ):
        pnn = make_pnn(analytic_surrogates, sizes=(2, 3, 2), seed=3)
        x = np.random.default_rng(0).uniform(0.0, 1.0, size=(8, 2))
        y = np.random.default_rng(1).integers(0, 2, 8)
        seen = []
        original = FusedEvalDriver.forward

        def spy(self, epsilons=None):
            seen.append(type(self).__name__)
            return original(self, epsilons)

        monkeypatch.setattr(FusedEvalDriver, "forward", spy)
        evaluate_mc(
            snapshot_params(pnn), x, y, epsilon=0.1, n_test=3, seed=2,
            backend="fused",
        )
        assert seen and set(seen) == {"FusedEvalDriver"}
