"""Hand-derived backward kernels vs autograd and finite differences.

The contract of :mod:`repro.core.grad_kernels` is *agreement*: for every
point in the {learnable} × {nominal, ε>0} × {shared, per-neuron} ×
{analytic, MLP surrogate} × {margin, ce} × {registered backend} grid, the
kernel engine's loss
must equal the autograd loss and its raw-parameter gradients must match the
taped backward pass to ~1e-8 (observed agreement is float64 rounding).
Finite differences pin the same gradients independently of both engines.
"""

import numpy as np
import pytest

from repro.core import PrintedNeuralNetwork, snapshot_params
from repro.core.grad_kernels import (
    KernelNetwork,
    Workspace,
    ce_loss_fwd,
    margin_loss_fwd,
    reassemble_omega_fwd,
)
from repro.core.losses import make_loss
from repro.core.variation import VariationModel

AGREEMENT_TOL = 1e-8


def make_pnn(surrogates, per_neuron=False, seed=7):
    """A small network nudged off its symmetric initialization."""
    pnn = PrintedNeuralNetwork(
        [4, 3, 3], surrogates, per_neuron_activation=per_neuron,
        rng=np.random.default_rng(seed),
    )
    rng = np.random.default_rng(seed + 1)
    for layer in pnn.layers:
        layer.theta.data = layer.theta.data + rng.normal(0, 0.05, layer.theta.data.shape)
        layer.activation.w_raw.data = (
            layer.activation.w_raw.data + rng.normal(0, 0.3, layer.activation.w_raw.data.shape)
        )
        layer.negation.w_raw.data = (
            layer.negation.w_raw.data + rng.normal(0, 0.3, layer.negation.w_raw.data.shape)
        )
    return pnn


def draw_epsilons(pnn, epsilon, n_mc, seed=11):
    if epsilon == 0.0:
        return None
    vm = VariationModel(epsilon, seed=seed)
    return [
        (
            vm.sample(n_mc, (layer.in_features + 2, layer.out_features)),
            vm.sample(n_mc, (layer.activation.n_circuits, 7)),
            vm.sample(n_mc, (layer.negation.n_circuits, 7)),
        )
        for layer in pnn.layers
    ]


def autograd_reference(pnn, x, y, loss_name, epsilons):
    """Loss and raw-parameter gradients from the taped engine."""
    loss_fn = make_loss(loss_name)
    for param in pnn.parameters():
        param.grad = None
    loss = loss_fn(pnn.forward(x, epsilons=epsilons), y)
    loss.backward()
    grads = [
        (layer.theta.grad, layer.activation.w_raw.grad, layer.negation.w_raw.grad)
        for layer in pnn.layers
    ]
    return loss.item(), grads


def assert_grids_match(pnn, x, y, loss_name, epsilons, backend="numpy"):
    ref_loss, ref_grads = autograd_reference(pnn, x, y, loss_name, epsilons)
    net = KernelNetwork.from_pnn(pnn, backend=backend)
    arrays = KernelNetwork.extract_arrays(pnn)
    value, grads = net.loss_and_grads(arrays, x, y, loss=loss_name, epsilons=epsilons)
    assert value == pytest.approx(ref_loss, rel=1e-12)
    for i in range(len(pnn.layers)):
        mine = (grads[i].theta, grads[i].w_act, grads[i].w_neg)
        for name, reference, ours in zip(("theta", "w_act", "w_neg"), ref_grads[i], mine):
            scale = max(float(np.abs(reference).max()), 1e-12)
            diff = float(np.abs(reference - ours).max())
            assert diff / scale <= AGREEMENT_TOL, (
                f"layer {i} {name}: rel grad divergence {diff / scale:.2e}"
            )


@pytest.fixture(scope="module")
def batch():
    gen = np.random.default_rng(0)
    return gen.uniform(0, 1, (9, 4)), gen.integers(0, 3, 9)


class TestAutogradAgreement:
    """End-to-end VJP agreement over the full configuration grid."""

    @pytest.mark.parametrize("loss_name", ["margin", "ce"])
    @pytest.mark.parametrize("epsilon", [0.0, 0.1])
    @pytest.mark.parametrize("per_neuron", [False, True])
    def test_analytic_grid(
        self, analytic_surrogates, batch, per_neuron, epsilon, loss_name, backend
    ):
        x, y = batch
        pnn = make_pnn(analytic_surrogates, per_neuron=per_neuron)
        epsilons = draw_epsilons(pnn, epsilon, n_mc=5)
        assert_grids_match(pnn, x, y, loss_name, epsilons, backend=backend)

    @pytest.mark.parametrize("epsilon", [0.0, 0.1])
    @pytest.mark.parametrize("per_neuron", [False, True])
    def test_mlp_grid(self, tiny_bundle, batch, per_neuron, epsilon, backend):
        x, y = batch
        pnn = make_pnn(tiny_bundle, per_neuron=per_neuron)
        epsilons = draw_epsilons(pnn, epsilon, n_mc=5)
        assert_grids_match(pnn, x, y, "margin", epsilons, backend=backend)

    def test_without_output_activation(self, analytic_surrogates, batch):
        x, y = batch
        pnn = PrintedNeuralNetwork(
            [4, 3, 3], analytic_surrogates, activation_on_output=False,
            rng=np.random.default_rng(7),
        )
        epsilons = draw_epsilons(pnn, 0.1, n_mc=4)
        ref_loss, ref_grads = autograd_reference(pnn, x, y, "margin", epsilons)
        net = KernelNetwork.from_pnn(pnn)
        arrays = KernelNetwork.extract_arrays(pnn)
        value, grads = net.loss_and_grads(arrays, x, y, loss="margin", epsilons=epsilons)
        assert value == pytest.approx(ref_loss, rel=1e-12)
        # The output layer's activation never ran: its 𝔴 must get no grad,
        # exactly like the taped path (autograd leaves .grad at None).
        assert grads[-1].w_act is None
        assert ref_grads[-1][1] is None
        scale = max(float(np.abs(ref_grads[-1][0]).max()), 1e-12)
        assert float(np.abs(ref_grads[-1][0] - grads[-1].theta).max()) / scale <= AGREEMENT_TOL

    def test_need_omega_grads_off_skips_omega(self, analytic_surrogates, batch):
        x, y = batch
        pnn = make_pnn(analytic_surrogates)
        net = KernelNetwork.from_pnn(pnn)
        arrays = KernelNetwork.extract_arrays(pnn)
        _, grads = net.loss_and_grads(arrays, x, y, need_omega_grads=False)
        assert all(g.w_act is None and g.w_neg is None for g in grads)
        assert all(g.theta is not None for g in grads)


class TestFiniteDifferences:
    """Central differences pin the kernel gradients without any autograd."""

    def test_end_to_end_gradcheck(self, analytic_surrogates):
        rng = np.random.default_rng(2)
        pnn = make_pnn(analytic_surrogates, seed=3)
        # Keep every θ strictly inside (g_min, g_max) so the straight-
        # through projection is locally the identity and finite differences
        # see the same function the STE backward assumes.
        for layer in pnn.layers:
            shape = layer.theta.data.shape
            magnitude = rng.uniform(0.1, 2.0, shape)
            layer.theta.data = magnitude * np.where(rng.uniform(size=shape) < 0.5, -1.0, 1.0)
        net = KernelNetwork.from_pnn(pnn)
        arrays = KernelNetwork.extract_arrays(pnn)
        # Same interior requirement for the R2 = k1·R1 / R4 = k2·R3 clips.
        space = pnn.space
        for _, w_act, w_neg in arrays:
            for w in (w_act, w_neg):
                omega, _ = reassemble_omega_fwd(w, space)
                assert np.all(omega[:, 1] > space.lower[1]) and np.all(omega[:, 1] < space.upper[1])
                assert np.all(omega[:, 3] > space.lower[3]) and np.all(omega[:, 3] < space.upper[3])

        x = rng.uniform(0, 1, (6, 4))
        y = rng.integers(0, 3, 6)
        epsilons = draw_epsilons(pnn, 0.1, n_mc=3, seed=13)

        def loss_of(flat_arrays):
            value, _ = margin_loss_fwd(
                net.forward(flat_arrays, x, epsilons=epsilons)[0], y
            )
            return value

        _, grads = net.loss_and_grads(arrays, x, y, loss="margin", epsilons=epsilons)
        step = 1e-6
        for li, (theta, w_act, w_neg) in enumerate(arrays):
            analytic = (grads[li].theta, grads[li].w_act, grads[li].w_neg)
            for array, grad in zip((theta, w_act, w_neg), analytic):
                flat = array.ravel()
                # Spot-check a handful of coordinates per parameter tensor.
                for idx in rng.choice(flat.size, size=min(5, flat.size), replace=False):
                    original = flat[idx]
                    flat[idx] = original + step
                    up = loss_of(arrays)
                    flat[idx] = original - step
                    down = loss_of(arrays)
                    flat[idx] = original
                    numeric = (up - down) / (2 * step)
                    assert numeric == pytest.approx(grad.ravel()[idx], rel=1e-4, abs=1e-7)


class TestLossKernels:
    def test_margin_matches_autograd(self, rng):
        voltages = rng.uniform(0, 1, (4, 7, 3))
        targets = rng.integers(0, 3, 7)
        value, _ = margin_loss_fwd(voltages, targets)
        from repro.autograd.tensor import Tensor

        reference = make_loss("margin")(Tensor(voltages), targets).item()
        assert value == pytest.approx(reference, rel=1e-12)

    def test_ce_matches_autograd(self, rng):
        voltages = rng.uniform(0, 1, (4, 7, 3))
        targets = rng.integers(0, 3, 7)
        value, _ = ce_loss_fwd(voltages, targets)
        from repro.autograd.tensor import Tensor

        reference = make_loss("ce")(Tensor(voltages), targets).item()
        assert value == pytest.approx(reference, rel=1e-12)


class TestEngineInfrastructure:
    def test_workspace_reuses_buffers(self):
        ws = Workspace()
        first = ws.buf("a", (3, 4))
        again = ws.buf("a", (3, 4))
        assert first is again
        resized = ws.buf("a", (5, 4))
        assert resized is not first and resized.shape == (5, 4)
        assert ws.nbytes() > 0

    def test_repeated_epochs_allocate_nothing_new(self, analytic_surrogates):
        pnn = make_pnn(analytic_surrogates)
        net = KernelNetwork.from_pnn(pnn)
        arrays = KernelNetwork.extract_arrays(pnn)
        x = np.random.default_rng(0).uniform(0, 1, (9, 4))
        y = np.random.default_rng(1).integers(0, 3, 9)
        epsilons = draw_epsilons(pnn, 0.1, n_mc=5)
        net.loss_and_grads(arrays, x, y, epsilons=epsilons)
        stable = net.workspace.nbytes()
        value1, _ = net.loss_and_grads(arrays, x, y, epsilons=epsilons)
        value2, _ = net.loss_and_grads(arrays, x, y, epsilons=epsilons)
        assert net.workspace.nbytes() == stable
        assert value1 == value2

    def test_snapshot_matches_module_snapshot(self, analytic_surrogates):
        pnn = make_pnn(analytic_surrogates)
        net = KernelNetwork.from_pnn(pnn)
        arrays = KernelNetwork.extract_arrays(pnn)
        reference = snapshot_params(pnn)
        mine = net.snapshot(arrays)
        assert mine.layer_sizes == tuple(reference.layer_sizes)
        for a, b in zip(mine.layers, reference.layers):
            np.testing.assert_array_equal(a.theta, b.theta)
            np.testing.assert_array_equal(a.act_omega, b.act_omega)
            np.testing.assert_array_equal(a.neg_omega, b.neg_omega)
            assert a.apply_activation == b.apply_activation

    def test_forward_matches_kernel_inference_path(self, analytic_surrogates):
        from repro.core import kernels

        pnn = make_pnn(analytic_surrogates)
        net = KernelNetwork.from_pnn(pnn)
        arrays = KernelNetwork.extract_arrays(pnn)
        x = np.random.default_rng(5).uniform(0, 1, (11, 4))
        epsilons = draw_epsilons(pnn, 0.1, n_mc=4)
        engine_out, _ = net.forward(arrays, x, epsilons=epsilons)
        reference = kernels.network_forward(snapshot_params(pnn), x, epsilons=epsilons)
        np.testing.assert_allclose(engine_out, reference, rtol=0, atol=1e-12)
