"""Margin loss with more than two classes (pendigits has ten)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.core import MarginLoss


class TestMultiClassMargin:
    def test_counts_every_violating_competitor(self):
        loss = MarginLoss(margin=0.3)
        # True class 0 at 0.5; competitors at 0.5 and 0.4: shortfalls 0.3, 0.2.
        v = Tensor(np.array([[[0.5, 0.5, 0.4]]]))
        expected = 0.3**2 + 0.2**2
        assert loss(v, np.array([0])).item() == pytest.approx(expected)

    def test_satisfied_multiclass_is_zero(self):
        loss = MarginLoss(margin=0.2)
        v = Tensor(np.array([[[0.9, 0.1, 0.2, 0.3]]]))
        assert loss(v, np.array([0])).item() == 0.0

    def test_batch_averaging(self):
        loss = MarginLoss(margin=0.3)
        good = [0.9, 0.0, 0.0]
        bad = [0.4, 0.5, 0.0]
        v = Tensor(np.array([[good, bad]]))
        per_sample_bad = 0.4**2 + (0.3 - 0.4)**2 * 0   # competitor1 0.4, competitor2 0.3-0.4<0
        # competitor 1: 0.3 - (0.4 - 0.5) = 0.4 → 0.16; competitor 2: 0.3 - 0.4 = -0.1 → 0.
        assert loss(v, np.array([0, 0])).item() == pytest.approx((0.0 + 0.16) / 2.0)

    def test_gradcheck_ten_classes(self):
        targets = np.random.default_rng(0).integers(0, 10, size=6)
        v = Tensor(np.random.default_rng(1).uniform(0.0, 1.0, size=(2, 6, 10)))
        loss = MarginLoss(margin=0.3)
        assert gradcheck(lambda v: loss(v, targets), [v])

    def test_ten_class_argmax_training_signal(self):
        """Gradient must single out exactly the violating competitors."""
        loss = MarginLoss(margin=0.3)
        v = Tensor(np.array([[[0.5, 0.6, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]]]),
                   requires_grad=True)
        loss(v, np.array([0])).backward()
        grad = v.grad[0, 0]
        assert grad[0] < 0          # push true class up
        assert grad[1] > 0          # push the violating class down
        assert np.allclose(grad[3:], grad[3])   # non-violators get equal (small) pushes
