"""Core-package fixtures: the execution-backend axis.

Every backend registered in :mod:`repro.core.backends` promises *bitwise*
equality with the historical ``"numpy"`` reference.  The equivalence and
gradcheck suites parametrize over this fixture so each backend is held to
exactly the same agreements the reference passes — adding a backend to the
registry automatically subjects it to the full suite.
"""

import pytest

from repro.core.backends import backend_names


@pytest.fixture(params=backend_names())
def backend(request):
    """Name of one registered execution backend (``numpy``, ``fused``, ...)."""
    return request.param
