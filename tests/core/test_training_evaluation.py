"""pNN training (nominal + variation-aware) and Monte-Carlo evaluation."""

import numpy as np
import pytest

from repro.core import (
    MonteCarloAccuracy,
    PrintedNeuralNetwork,
    TrainConfig,
    evaluate_mc,
    train_pnn,
)
from repro.surrogate import AnalyticSurrogate


def make_pnn(sizes, seed=0):
    surrogates = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))
    return PrintedNeuralNetwork(sizes, surrogates, rng=np.random.default_rng(seed))


class TestTrainConfig:
    def test_variation_aware_flag(self):
        assert not TrainConfig(epsilon=0.0).variation_aware
        assert TrainConfig(epsilon=0.05).variation_aware


class TestNominalTraining:
    @pytest.mark.slow
    def test_learns_separable_blobs(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn((2, 3, 2), seed=1)
        config = TrainConfig(max_epochs=400, patience=400, epsilon=0.0, seed=1)
        result = train_pnn(pnn, x_train, y_train, x_val, y_val, config)
        accuracy = evaluate_mc(pnn, x_val, y_val, epsilon=0.0)
        assert accuracy.mean > 0.9
        assert result.best_val_loss < result.history[0][2]

    def test_restores_best_epoch_parameters(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn((2, 3, 2), seed=2)
        config = TrainConfig(max_epochs=150, patience=30, epsilon=0.0, seed=2)
        result = train_pnn(pnn, x_train, y_train, x_val, y_val, config)
        from repro.core.training import _validation_loss
        from repro.core.losses import make_loss

        final_val = _validation_loss(pnn, x_val, y_val, make_loss("margin"), config)
        assert final_val == pytest.approx(result.best_val_loss, abs=1e-9)

    def test_early_stopping_truncates(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn((2, 3, 2), seed=3)
        config = TrainConfig(max_epochs=4000, patience=10, epsilon=0.0, seed=3)
        result = train_pnn(pnn, x_train, y_train, x_val, y_val, config)
        assert result.epochs_run < 4000

    def test_non_learnable_keeps_w_fixed(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn((2, 3, 2), seed=4)
        w_before = [p.data.copy() for p in pnn.nonlinear_parameters()]
        config = TrainConfig(
            max_epochs=60, patience=60, epsilon=0.0, learnable_nonlinear=False, seed=4
        )
        train_pnn(pnn, x_train, y_train, x_val, y_val, config)
        for before, param in zip(w_before, pnn.nonlinear_parameters()):
            assert np.array_equal(before, param.data)

    def test_learnable_changes_w(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn((2, 3, 2), seed=5)
        w_before = [p.data.copy() for p in pnn.nonlinear_parameters()]
        config = TrainConfig(max_epochs=60, patience=60, epsilon=0.0, seed=5)
        train_pnn(pnn, x_train, y_train, x_val, y_val, config)
        changed = any(
            not np.array_equal(before, param.data)
            for before, param in zip(w_before, pnn.nonlinear_parameters())
        )
        assert changed


class TestVariationAwareTraining:
    @pytest.mark.slow
    def test_runs_and_learns(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn((2, 3, 2), seed=6)
        config = TrainConfig(
            max_epochs=200, patience=200, epsilon=0.10, n_mc_train=5, seed=6
        )
        result = train_pnn(pnn, x_train, y_train, x_val, y_val, config)
        accuracy = evaluate_mc(pnn, x_val, y_val, epsilon=0.10, n_test=20, seed=0)
        assert accuracy.mean > 0.8
        assert result.best_val_loss < result.history[0][2]

    def test_uses_margin_or_ce(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        for loss in ("margin", "ce"):
            pnn = make_pnn((2, 3, 2), seed=7)
            config = TrainConfig(max_epochs=30, patience=30, loss=loss, seed=7)
            result = train_pnn(pnn, x_train, y_train, x_val, y_val, config)
            assert len(result.history) == 30


class TestEvaluation:
    def test_nominal_single_sample(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn((2, 3, 2), seed=8)
        accuracy = evaluate_mc(pnn, x_val, y_val, epsilon=0.0, n_test=100)
        assert len(accuracy.accuracies) == 1
        assert accuracy.std == 0.0

    def test_mc_sample_count(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn((2, 3, 2), seed=9)
        accuracy = evaluate_mc(pnn, x_val, y_val, epsilon=0.1, n_test=23, batch_mc=7)
        assert len(accuracy.accuracies) == 23

    def test_deterministic_given_seed(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn((2, 3, 2), seed=10)
        a = evaluate_mc(pnn, x_val, y_val, epsilon=0.1, n_test=10, seed=42)
        b = evaluate_mc(pnn, x_val, y_val, epsilon=0.1, n_test=10, seed=42)
        assert np.array_equal(a.accuracies, b.accuracies)

    def test_accuracies_in_unit_interval(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn((2, 3, 2), seed=11)
        accuracy = evaluate_mc(pnn, x_val, y_val, epsilon=0.15, n_test=15)
        assert np.all((accuracy.accuracies >= 0) & (accuracy.accuracies <= 1))

    def test_str_format(self):
        accuracy = MonteCarloAccuracy(np.array([0.5, 0.7]))
        assert "0.600" in str(accuracy)
