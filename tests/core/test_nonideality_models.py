"""Unit tests for the composable non-ideality pipeline.

Covers the :class:`~repro.core.variation.Perturbation` container and its
combinators, the concrete non-ideality models (stuck-at defects,
correlated variation, composition), the ``apply_nonideality``
forward/backward kernels, the scenario registry, and the autograd-engine
guard for override-carrying models.
"""

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro.core.grad_kernels import apply_nonideality_bwd
from repro.core.kernels import apply_nonideality
from repro.core.variation import (
    DEFAULT_SCENARIO,
    SCENARIOS,
    ComposedModel,
    CorrelatedVariationModel,
    GaussianVariationModel,
    NonIdealityModel,
    Perturbation,
    StuckAtModel,
    VariationModel,
    build_scenario_model,
    eps_concat,
    eps_stack,
    model_has_overrides,
    scenario_names,
)


class TestPerturbation:
    def test_shape_and_ndim_proxy_scale(self):
        p = Perturbation(np.ones((4, 2, 3)))
        assert p.shape == (4, 2, 3)
        assert p.ndim == 3

    def test_getitem_slices_every_field(self):
        scale = np.arange(24.0).reshape(4, 2, 3)
        mask = scale > 12
        value = scale * 2
        p = Perturbation(scale, mask, value)[1:3]
        assert_array_equal(p.scale, scale[1:3])
        assert_array_equal(p.override_mask, mask[1:3])
        assert_array_equal(p.override_value, value[1:3])

    def test_getitem_keeps_absent_overrides_absent(self):
        p = Perturbation(np.ones((4, 2)))[:2]
        assert p.override_mask is None and p.override_value is None


class TestCombinators:
    def test_all_ndarray_concat_is_plain_concatenate(self):
        parts = [np.full((2, 3), i, dtype=float) for i in range(3)]
        out = eps_concat(parts, axis=0)
        assert isinstance(out, np.ndarray)
        assert_array_equal(out, np.concatenate(parts, axis=0))

    def test_mixed_concat_zero_fills_missing_masks(self):
        bare = np.full((2, 3), 2.0)
        masked = Perturbation(
            np.ones((2, 3)),
            np.array([[True, False, False], [False, False, True]]),
            np.full((2, 3), 9.0),
        )
        out = eps_concat([bare, masked], axis=0)
        assert isinstance(out, Perturbation)
        assert out.shape == (4, 3)
        assert not out.override_mask[:2].any()
        assert_array_equal(out.override_mask[2:], masked.override_mask)
        assert_array_equal(out.override_value[2:], masked.override_value)

    def test_stack_adds_lane_axis(self):
        parts = [np.full((2, 3), float(i)) for i in range(4)]
        out = eps_stack(parts, axis=0)
        assert isinstance(out, np.ndarray)
        assert out.shape == (4, 2, 3)


class TestStuckAtModel:
    def test_sample_raises_type_error(self):
        with pytest.raises(TypeError, match="sample_perturbation"):
            StuckAtModel(seed=0).sample(4, (2, 3))

    def test_defect_rates_and_values(self):
        model = StuckAtModel(p_stuck_on=0.25, p_stuck_off=0.25,
                             g_min=0.01, g_max=10.0, seed=0)
        p = model.sample_perturbation(200, (8, 8), role="theta")
        assert isinstance(p, Perturbation)
        rate = p.override_mask.mean()
        assert 0.45 < rate < 0.55
        stuck = p.override_value[p.override_mask]
        assert set(np.unique(stuck)) <= {0.01, 10.0}
        assert_array_equal(p.scale, np.ones_like(p.scale))

    def test_nominal_when_probabilities_zero(self):
        model = StuckAtModel(p_stuck_on=0.0, p_stuck_off=0.0, seed=0)
        assert model.is_nominal and not model.has_overrides
        out = model.sample_perturbation(3, (2, 2), role="theta")
        assert isinstance(out, np.ndarray)
        assert_array_equal(out, np.ones((3, 2, 2)))

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            StuckAtModel(p_stuck_on=0.7, p_stuck_off=0.7)
        with pytest.raises(ValueError):
            StuckAtModel(p_stuck_on=-0.1)
        with pytest.raises(ValueError):
            StuckAtModel(g_min=1.0, g_max=0.5)


class TestCorrelatedVariationModel:
    def test_within_draw_correlation_exceeds_iid(self):
        corr = CorrelatedVariationModel(0.1, correlation=0.9, seed=0)
        iid = VariationModel(0.1, seed=0)
        draws_corr = corr.sample(500, (6, 6)).reshape(500, -1)
        draws_iid = iid.sample(500, (6, 6)).reshape(500, -1)
        # Shared per-draw factors make devices of one draw move together:
        # the variance of per-draw means shrinks ~1/n for i.i.d. draws but
        # stays O(ρσ²) under correlation.
        assert draws_corr.mean(axis=1).var() > 5 * draws_iid.mean(axis=1).var()

    def test_clip_bounds(self):
        model = CorrelatedVariationModel(0.3, correlation=0.5, seed=0)
        draws = model.sample(100, (4, 4))
        assert draws.min() >= 1.0 - 3 * model.sigma
        assert draws.max() <= 1.0 + 3 * model.sigma

    def test_invalid_correlation_rejected(self):
        with pytest.raises(ValueError):
            CorrelatedVariationModel(0.1, correlation=1.5)


class TestComposedModel:
    def test_needs_at_least_one_model(self):
        with pytest.raises(ValueError):
            ComposedModel()

    def test_multiplicative_composition_matches_product(self):
        a = VariationModel(0.1, seed=1)
        b = GaussianVariationModel(0.05, seed=2)
        composed = ComposedModel(VariationModel(0.1, seed=1),
                                 GaussianVariationModel(0.05, seed=2))
        assert_array_equal(
            composed.sample(5, (3, 3)),
            np.ones((5, 3, 3)) * a.sample(5, (3, 3)) * b.sample(5, (3, 3)),
        )

    def test_later_override_wins(self):
        first = StuckAtModel(p_stuck_on=1.0, p_stuck_off=0.0, g_max=10.0, seed=0)
        second = StuckAtModel(p_stuck_on=0.0, p_stuck_off=1.0, g_min=0.01, seed=0)
        p = ComposedModel(first, second).sample_perturbation(2, (2, 2), role="theta")
        assert isinstance(p, Perturbation)
        assert p.override_mask.all()
        assert_array_equal(p.override_value, np.full((2, 2, 2), 0.01))

    def test_no_override_components_return_bare_array(self):
        composed = ComposedModel(VariationModel(0.1, seed=1))
        out = composed.sample_perturbation(3, (2, 2), role="theta")
        assert isinstance(out, np.ndarray)

    def test_protocol_flags(self):
        composed = ComposedModel(VariationModel(0.0, seed=1), StuckAtModel(seed=2))
        assert isinstance(composed, NonIdealityModel)
        assert not composed.is_nominal           # defects fire even at ε=0
        assert model_has_overrides(composed)
        nominal = ComposedModel(VariationModel(0.0), StuckAtModel(0.0, 0.0))
        assert nominal.is_nominal


class TestApplyNonideality:
    def test_bare_array_is_plain_multiply(self):
        nominal = np.arange(6.0).reshape(2, 3)
        eps = np.linspace(0.9, 1.1, 12).reshape(2, 2, 3)
        assert_array_equal(apply_nonideality(nominal, eps), nominal * eps)

    def test_override_pins_sign_preserving_magnitude(self):
        nominal = np.array([[1.0, -2.0], [3.0, -4.0]])
        scale = np.full((1, 2, 2), 1.5)
        mask = np.array([[[True, True], [False, False]]])
        value = np.full((1, 2, 2), 10.0)
        out = apply_nonideality(nominal, Perturbation(scale, mask, value))
        assert_array_equal(out[0, 0], [10.0, -10.0])     # sign kept
        assert_array_equal(out[0, 1], [4.5, -6.0])       # scaled elsewhere

    def test_bwd_matches_legacy_for_bare_arrays(self):
        d_eff = np.arange(12.0).reshape(2, 2, 3)
        eps = np.linspace(0.9, 1.1, 12).reshape(2, 2, 3)
        assert_array_equal(
            apply_nonideality_bwd(d_eff, eps, axis=0),
            (d_eff * eps).sum(axis=0),
        )

    def test_bwd_zeroes_gradient_through_stuck_devices(self):
        d_eff = np.ones((2, 2, 3))
        scale = np.full((2, 2, 3), 2.0)
        mask = np.zeros((2, 2, 3), dtype=bool)
        mask[:, 0, 0] = True
        grad = apply_nonideality_bwd(d_eff, Perturbation(scale, mask, np.ones_like(scale)), axis=0)
        assert grad[0, 0] == 0.0
        assert_array_equal(grad[0, 1:], np.full(2, 4.0))

    def test_finite_difference_through_override(self):
        # d(apply)/d(nominal) is scale off-mask and 0 on-mask (the override
        # magnitude does not depend on the nominal value).
        nominal = np.array([2.0, -3.0])
        scale = np.array([[1.2, 0.8]])
        mask = np.array([[False, True]])
        value = np.array([[5.0, 5.0]])
        p = Perturbation(scale, mask, value)
        h = 1e-6
        for i, expected in enumerate([1.2, 0.0]):
            bumped = nominal.copy()
            bumped[i] += h
            num = (apply_nonideality(bumped, p) - apply_nonideality(nominal, p))[0, i] / h
            assert num == pytest.approx(expected, abs=1e-6)


class TestScenarioRegistry:
    def test_default_builds_no_model(self):
        assert build_scenario_model(DEFAULT_SCENARIO, 0.1, seed=0) is None

    def test_known_scenarios(self):
        assert set(scenario_names()) == {"default", "gaussian", "stuck-1pct", "correlated"}
        assert isinstance(build_scenario_model("gaussian", 0.1, seed=0),
                          GaussianVariationModel)
        stuck = build_scenario_model("stuck-1pct", 0.1, seed=0)
        assert isinstance(stuck, ComposedModel)
        assert model_has_overrides(stuck)
        assert isinstance(build_scenario_model("correlated", 0.1, seed=0),
                          CorrelatedVariationModel)

    def test_unknown_scenario_message_lists_choices(self):
        with pytest.raises(ValueError, match="known scenarios"):
            build_scenario_model("nope", 0.1)

    def test_registry_descriptions_present(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description


class TestAutogradEngineGuard:
    def test_autograd_rejects_override_models(self, analytic_surrogates, blob_data):
        from repro.core import PrintedNeuralNetwork, TrainConfig, train_pnn

        x_train, y_train, x_val, y_val = blob_data
        pnn = PrintedNeuralNetwork([2, 3, 2], analytic_surrogates,
                                   rng=np.random.default_rng(0))
        config = TrainConfig(max_epochs=2, patience=2, epsilon=0.1,
                             n_mc_train=2, seed=0, scenario="stuck-1pct")
        with pytest.raises(ValueError, match="multiplicative"):
            train_pnn(pnn, x_train, y_train, x_val, y_val, config,
                      engine="autograd")
