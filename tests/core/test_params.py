"""PNNParams snapshots: immutability, decoupling, versioned serialization."""

import numpy as np
import pytest

from repro.core import (
    PNN_PARAMS_VERSION,
    PNNParams,
    PrintedNeuralNetwork,
    load_params,
    load_pnn,
    save_params,
    save_pnn,
    snapshot_params,
    surrogate_fingerprint,
)
from repro.core.params import LayerParams, SurrogateParams


def make_pnn(surrogates, seed=0, sizes=(4, 3, 3), per_neuron=False):
    return PrintedNeuralNetwork(
        list(sizes), surrogates, per_neuron_activation=per_neuron,
        rng=np.random.default_rng(seed),
    )


class TestSnapshot:
    def test_structure(self, analytic_surrogates):
        params = snapshot_params(make_pnn(analytic_surrogates, per_neuron=True))
        assert isinstance(params, PNNParams)
        assert params.layer_sizes == (4, 3, 3)
        assert params.per_neuron_activation
        assert len(params.layers) == 2
        assert params.layers[0].theta.shape == (6, 3)
        assert params.layers[0].act_omega.shape == (3, 7)   # per-neuron: one per output
        assert params.layers[0].neg_omega.shape == (1, 7)
        assert params.act_surrogate.backend == "analytic"

    def test_mlp_surrogate_snapshot(self, tiny_bundle):
        params = snapshot_params(make_pnn(tiny_bundle))
        assert params.act_surrogate.backend == "mlp"
        assert len(params.act_surrogate.weights) == len(params.act_surrogate.biases)
        assert params.act_surrogate.weights[0].shape[0] == 10   # ratio-extended ω
        assert params.act_surrogate.weights[-1].shape[1] == 4   # η1..η4

    def test_arrays_are_frozen(self, analytic_surrogates):
        params = snapshot_params(make_pnn(analytic_surrogates))
        with pytest.raises(ValueError):
            params.layers[0].theta[0, 0] = 1.0

    def test_decoupled_from_later_training(self, analytic_surrogates):
        pnn = make_pnn(analytic_surrogates, seed=3)
        params = snapshot_params(pnn)
        theta_before = params.layers[0].theta.copy()
        for param in pnn.parameters():
            param.data = param.data + 0.1
        np.testing.assert_array_equal(params.layers[0].theta, theta_before)

    def test_content_digest_tracks_content(self, analytic_surrogates):
        a = snapshot_params(make_pnn(analytic_surrogates, seed=1))
        b = snapshot_params(make_pnn(analytic_surrogates, seed=1))
        c = snapshot_params(make_pnn(analytic_surrogates, seed=2))
        assert a.content_digest() == b.content_digest()
        assert a.content_digest() != c.content_digest()

    def test_version_refusal(self, analytic_surrogates):
        params = snapshot_params(make_pnn(analytic_surrogates))
        with pytest.raises(ValueError, match="version"):
            PNNParams(
                layer_sizes=params.layer_sizes,
                per_neuron_activation=params.per_neuron_activation,
                activation_on_output=params.activation_on_output,
                layers=params.layers,
                act_surrogate=params.act_surrogate,
                neg_surrogate=params.neg_surrogate,
                version=PNN_PARAMS_VERSION + 1,
            )


class TestValidation:
    def test_layer_shape_mismatch(self, analytic_surrogates):
        params = snapshot_params(make_pnn(analytic_surrogates))
        with pytest.raises(ValueError, match="does not match"):
            PNNParams(
                layer_sizes=(5, 3, 3),          # wrong input width
                per_neuron_activation=params.per_neuron_activation,
                activation_on_output=params.activation_on_output,
                layers=params.layers,
                act_surrogate=params.act_surrogate,
                neg_surrogate=params.neg_surrogate,
            )

    def test_surrogate_backend_requirements(self):
        with pytest.raises(ValueError, match="scale and shift"):
            SurrogateParams(kind="ptanh", backend="analytic")
        with pytest.raises(ValueError, match="weights/biases"):
            SurrogateParams(kind="ptanh", backend="mlp")

    def test_layer_omega_shape(self):
        with pytest.raises(ValueError, match="act_omega"):
            LayerParams(
                theta=np.zeros((4, 2)),
                act_omega=np.zeros((1, 6)),
                neg_omega=np.zeros((1, 7)),
                apply_activation=True,
            )


class TestSerializationRoundTrip:
    @pytest.mark.parametrize("fixture_name", ["analytic_surrogates", "tiny_bundle"])
    def test_exact_roundtrip(self, request, tmp_path, fixture_name):
        surrogates = request.getfixturevalue(fixture_name)
        pnn = make_pnn(surrogates, seed=5, per_neuron=True)
        params = snapshot_params(pnn)
        path = save_params(params, tmp_path / "design.npz", surrogates=surrogates)

        loaded = load_params(path, surrogates, strict_fingerprint=True)
        assert loaded.content_digest() == params.content_digest()
        x = np.random.default_rng(8).uniform(0.0, 1.0, size=(7, 4))
        np.testing.assert_array_equal(loaded.predict(x), params.predict(x))

    def test_fingerprint_strictness(self, tmp_path, analytic_surrogates, tiny_bundle):
        params = snapshot_params(make_pnn(analytic_surrogates))
        path = save_params(params, tmp_path / "d.npz", surrogates=analytic_surrogates)
        with pytest.raises(ValueError, match="mismatch"):
            load_params(path, tiny_bundle, strict_fingerprint=True)
        # Non-strict load ignores provenance (snapshot is self-contained).
        loaded = load_params(path, tiny_bundle, strict_fingerprint=False)
        assert loaded.content_digest() == params.content_digest()

    def test_refuses_legacy_module_state(self, tmp_path, analytic_surrogates):
        pnn = make_pnn(analytic_surrogates)
        path = save_pnn(pnn, tmp_path / "legacy.npz", surrogates=analytic_surrogates)
        with pytest.raises(ValueError, match="load_pnn"):
            load_params(path, analytic_surrogates)

    def test_legacy_path_still_works(self, tmp_path, analytic_surrogates):
        pnn = make_pnn(analytic_surrogates, seed=9)
        path = save_pnn(pnn, tmp_path / "legacy.npz", surrogates=analytic_surrogates)
        rebuilt = load_pnn(path, analytic_surrogates, strict_fingerprint=True)
        assert (
            snapshot_params(rebuilt).content_digest()
            == snapshot_params(pnn).content_digest()
        )

    def test_fingerprint_recorded(self, tmp_path, analytic_surrogates):
        params = snapshot_params(make_pnn(analytic_surrogates))
        path = save_params(params, tmp_path / "d.npz", surrogates=analytic_surrogates)
        with np.load(path) as archive:
            assert "params_version" in archive.files
            recorded = bytes(archive["surrogate_fingerprint"]).decode()
        assert recorded == surrogate_fingerprint(analytic_surrogates)
