"""Property test: any design round-trips through save/load bit-exactly."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import PrintedNeuralNetwork
from repro.core.serialization import load_pnn, save_pnn
from repro.surrogate import AnalyticSurrogate

SURROGATES = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))


@given(
    n_in=st.integers(1, 6),
    n_hidden=st.integers(1, 5),
    n_out=st.integers(2, 5),
    per_neuron=st.booleans(),
    act_on_output=st.booleans(),
    seed=st.integers(0, 100),
)
@settings(max_examples=20, deadline=None)
def test_save_load_round_trip(tmp_path_factory, n_in, n_hidden, n_out,
                              per_neuron, act_on_output, seed):
    pnn = PrintedNeuralNetwork(
        [n_in, n_hidden, n_out], SURROGATES,
        per_neuron_activation=per_neuron,
        activation_on_output=act_on_output,
        rng=np.random.default_rng(seed),
    )
    path = tmp_path_factory.mktemp("designs") / "design.npz"
    save_pnn(pnn, path)
    restored = load_pnn(path, SURROGATES)

    for (name_a, param_a), (name_b, param_b) in zip(
        pnn.named_parameters(), restored.named_parameters()
    ):
        assert name_a == name_b
        assert np.array_equal(param_a.data, param_b.data)

    x = np.random.default_rng(seed + 1).uniform(size=(3, n_in))
    assert np.array_equal(pnn.forward(x).data, restored.forward(x).data)
