"""Equivalence of the autograd Module path and the stateless kernel path.

The refactor's core guarantee: a frozen :class:`~repro.core.params.PNNParams`
snapshot evaluated through :mod:`repro.core.kernels` produces the same output
voltages as the live autograd network — across variation levels, activation
sharing modes, and both surrogate backends — and Monte-Carlo evaluation is
invariant to the compute chunk size ``batch_mc``.
"""

import numpy as np
import pytest

from repro.autograd.tensor import no_grad
from repro.core import (
    SAMPLE_BLOCK,
    PrintedNeuralNetwork,
    TrainConfig,
    evaluate_mc,
    evaluate_mc_autograd,
    kernels,
    snapshot_params,
    train_pnn,
)
from repro.core.variation import VariationModel

#: The property-test tolerance from the PR acceptance criteria.  In practice
#: both paths execute the identical op sequence and agree exactly.
TOLERANCE = 1e-9


def make_pnn(surrogates, per_neuron, sizes=(4, 3, 3), seed=7):
    pnn = PrintedNeuralNetwork(
        list(sizes), surrogates, per_neuron_activation=per_neuron,
        rng=np.random.default_rng(seed),
    )
    # Nudge parameters off the init point so the test is non-degenerate.
    nudge = np.random.default_rng(1)
    for param in pnn.parameters():
        param.data = param.data + 0.05 * nudge.standard_normal(param.data.shape)
    return pnn


class TestForwardEquivalence:
    """Module forward vs kernel ``network_forward`` on identical ε streams."""

    @pytest.mark.parametrize("per_neuron", [False, True])
    @pytest.mark.parametrize("epsilon", [0.0, 0.05, 0.10])
    def test_analytic_surrogate(self, analytic_surrogates, per_neuron, epsilon):
        self._check(analytic_surrogates, per_neuron, epsilon)

    @pytest.mark.parametrize("per_neuron", [False, True])
    @pytest.mark.parametrize("epsilon", [0.0, 0.05, 0.10])
    def test_nn_surrogate(self, tiny_bundle, per_neuron, epsilon):
        self._check(tiny_bundle, per_neuron, epsilon)

    @staticmethod
    def _check(surrogates, per_neuron, epsilon):
        pnn = make_pnn(surrogates, per_neuron)
        params = snapshot_params(pnn)
        x = np.random.default_rng(42).uniform(0.0, 1.0, size=(11, 4))
        n_mc = 4 if epsilon > 0 else 1

        with no_grad():
            module_out = pnn.forward(
                x, variation=VariationModel(epsilon, seed=5), n_mc=n_mc
            ).data
        kernel_out = kernels.network_forward(
            params, x, variation=VariationModel(epsilon, seed=5), n_mc=n_mc
        )

        assert kernel_out.shape == module_out.shape == (n_mc, 11, 3)
        assert np.abs(kernel_out - module_out).max() <= TOLERANCE

    def test_predict_delegates_to_kernels(self, analytic_surrogates):
        pnn = make_pnn(analytic_surrogates, per_neuron=False)
        x = np.random.default_rng(3).uniform(0.0, 1.0, size=(9, 4))
        np.testing.assert_array_equal(
            pnn.predict(x, variation=VariationModel(0.1, seed=2), n_mc=3),
            snapshot_params(pnn).predict(x, variation=VariationModel(0.1, seed=2), n_mc=3),
        )


class TestBackendDrivers:
    """Each registered backend's eval driver vs ``network_forward`` — bitwise."""

    @pytest.mark.parametrize("per_neuron", [False, True])
    @pytest.mark.parametrize("epsilon", [0.0, 0.10])
    def test_driver_matches_reference(
        self, analytic_surrogates, backend, per_neuron, epsilon
    ):
        from repro.core.backends import get_backend
        from repro.core.evaluation import draw_variation_samples

        pnn = make_pnn(analytic_surrogates, per_neuron)
        params = snapshot_params(pnn)
        x = np.random.default_rng(8).uniform(0.0, 1.0, size=(13, 4))
        epsilons = None
        if epsilon > 0:
            epsilons = draw_variation_samples(
                params, VariationModel(epsilon, seed=6), n_test=5
            )
        driver = get_backend(backend).make_eval_driver(params, x)
        reference = kernels.network_forward(params, x, epsilons=epsilons)
        # Twice: warm scratch buffers must not change a single bit.
        for _ in range(2):
            np.testing.assert_array_equal(driver.forward(epsilons), reference)
        np.testing.assert_array_equal(
            driver.predict(epsilons), reference.argmax(axis=-1)
        )


@pytest.fixture(scope="module")
def trained_blob_pnn(blob_data):
    """A briefly-trained network so MC accuracies actually vary with ε."""
    from repro.surrogate import AnalyticSurrogate

    x_train, y_train, x_val, y_val = blob_data

    pnn = PrintedNeuralNetwork(
        [2, 3, 2],
        (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight")),
        rng=np.random.default_rng(13),
    )
    config = TrainConfig(max_epochs=60, patience=60, epsilon=0.0, seed=13)
    train_pnn(pnn, x_train, y_train, x_val, y_val, config)
    return pnn


class TestChunkInvariance:
    """``evaluate_mc`` must be exactly invariant to ``batch_mc``."""

    def test_batch_mc_does_not_change_results(self, trained_blob_pnn, blob_data, backend):
        _, _, x_val, y_val = blob_data
        params = snapshot_params(trained_blob_pnn)
        reference = evaluate_mc(
            params, x_val, y_val, epsilon=0.1, n_test=23, seed=11, batch_mc=20,
            backend=backend,
        )
        # Non-degenerate: variation must actually move some accuracies.
        assert len(set(reference.accuracies.tolist())) > 1
        for batch_mc in (1, 7, 23, 64):
            other = evaluate_mc(
                params, x_val, y_val, epsilon=0.1, n_test=23, seed=11,
                batch_mc=batch_mc, backend=backend,
            )
            np.testing.assert_array_equal(other.accuracies, reference.accuracies)

    def test_backends_agree_bitwise(self, trained_blob_pnn, blob_data, backend):
        _, _, x_val, y_val = blob_data
        params = snapshot_params(trained_blob_pnn)
        reference = evaluate_mc(
            params, x_val, y_val, epsilon=0.1, n_test=23, seed=11, backend="numpy"
        )
        other = evaluate_mc(
            params, x_val, y_val, epsilon=0.1, n_test=23, seed=11, backend=backend
        )
        np.testing.assert_array_equal(other.accuracies, reference.accuracies)

    def test_matches_autograd_reference_at_sample_block(
        self, trained_blob_pnn, blob_data
    ):
        # At batch_mc == SAMPLE_BLOCK both paths consume the variation
        # stream in identical blocks, so agreement is bit-for-bit.
        _, _, x_val, y_val = blob_data
        kernel = evaluate_mc(
            trained_blob_pnn, x_val, y_val, epsilon=0.1,
            n_test=2 * SAMPLE_BLOCK + 3, seed=4, batch_mc=SAMPLE_BLOCK,
        )
        autograd = evaluate_mc_autograd(
            trained_blob_pnn, x_val, y_val, epsilon=0.1,
            n_test=2 * SAMPLE_BLOCK + 3, seed=4, batch_mc=SAMPLE_BLOCK,
        )
        np.testing.assert_array_equal(kernel.accuracies, autograd.accuracies)

    def test_nominal_paths_agree(self, trained_blob_pnn, blob_data):
        _, _, x_val, y_val = blob_data
        kernel = evaluate_mc(trained_blob_pnn, x_val, y_val, epsilon=0.0)
        autograd = evaluate_mc_autograd(trained_blob_pnn, x_val, y_val, epsilon=0.0)
        np.testing.assert_array_equal(kernel.accuracies, autograd.accuracies)
