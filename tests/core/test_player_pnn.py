"""Printed layer and full pNN: Eq. 1 forward, routing, MC axis, gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import (
    ConductanceConfig,
    LearnableNonlinearCircuit,
    PrintedLayer,
    PrintedNeuralNetwork,
    VariationModel,
)
from repro.surrogate import AnalyticSurrogate
from repro.surrogate.design_space import DESIGN_SPACE


def make_layer(n_in=3, n_out=2, seed=0, apply_activation=True):
    rng = np.random.default_rng(seed)
    activation = LearnableNonlinearCircuit(
        AnalyticSurrogate("ptanh"), DESIGN_SPACE, "ptanh", rng=rng
    )
    negation = LearnableNonlinearCircuit(
        AnalyticSurrogate("negweight"), DESIGN_SPACE, "negweight", rng=rng
    )
    return PrintedLayer(
        n_in, n_out, activation=activation, negation=negation,
        apply_activation=apply_activation, rng=rng,
    )


def make_pnn(sizes=(3, 3, 2), seed=0, **kwargs):
    surrogates = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))
    return PrintedNeuralNetwork(sizes, surrogates, rng=np.random.default_rng(seed), **kwargs)


class TestPrintedLayer:
    def test_output_shape(self):
        layer = make_layer()
        out = layer.forward(Tensor(np.random.default_rng(0).uniform(size=(1, 5, 3))))
        assert out.shape == (1, 5, 2)

    def test_theta_shape_includes_bias_and_down(self):
        layer = make_layer(n_in=4, n_out=3)
        assert layer.theta.shape == (6, 3)

    def test_all_positive_theta_is_weighted_average(self):
        """With every θ ≥ 0 the crossbar output is a convex combination of
        the inputs and the 1 V bias — it must stay in [0, 1]."""
        layer = make_layer(apply_activation=False)
        layer.theta.data = np.abs(layer.theta.data)
        x = Tensor(np.random.default_rng(1).uniform(size=(1, 20, 3)))
        out = layer.forward(x).data
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_eq1_weighted_sum_matches_manual(self):
        layer = make_layer(n_in=2, n_out=1, apply_activation=False)
        layer.theta.data = np.array([[0.5], [0.3], [0.2], [0.1]])  # in0,in1,b,d
        x = np.array([[0.4, 0.8]])
        out = layer.forward(Tensor(x.reshape(1, 1, 2))).data[0, 0, 0]
        total = 0.5 + 0.3 + 0.2 + 0.1
        expected = (0.5 * 0.4 + 0.3 * 0.8 + 0.2 * 1.0) / total
        assert out == pytest.approx(expected, rel=1e-9)

    def test_negative_theta_routes_through_negation(self):
        layer = make_layer(n_in=1, n_out=1, apply_activation=False)
        layer.theta.data = np.array([[-0.5], [0.3], [0.1]])
        x = Tensor(np.full((1, 1, 1), 0.5))
        out = layer.forward(x).data[0, 0, 0]
        # The negated input contributes negatively → output below the
        # bias-only level.
        layer.theta.data = np.array([[0.0], [0.3], [0.1]])
        bias_only = layer.forward(x).data[0, 0, 0]
        assert out < bias_only

    def test_down_row_never_routed_through_negation(self):
        layer = make_layer(n_in=1, n_out=1, apply_activation=False)
        base = np.array([[0.5], [0.3], [0.2]])
        layer.theta.data = base.copy()
        x = Tensor(np.full((1, 1, 1), 0.5))
        positive_down = layer.forward(x).data[0, 0, 0]
        layer.theta.data = base * np.array([[1.0], [1.0], [-1.0]])
        negative_down = layer.forward(x).data[0, 0, 0]
        assert positive_down == pytest.approx(negative_down, rel=1e-12)

    def test_mc_axis_with_variation(self):
        layer = make_layer()
        variation = VariationModel(0.1, seed=0)
        eps_theta = variation.sample(7, (5, 2))
        eps_act = variation.sample(7, (1, 7))
        eps_neg = variation.sample(7, (1, 7))
        x = Tensor(np.random.default_rng(2).uniform(size=(7, 4, 3)))
        out = layer.forward(x, eps_theta, eps_act, eps_neg)
        assert out.shape == (7, 4, 2)
        assert np.std(out.data, axis=0).max() > 0   # samples differ

    def test_gradients_reach_theta_and_w(self):
        layer = make_layer()
        x = Tensor(np.random.default_rng(3).uniform(size=(1, 6, 3)))
        layer.forward(x).sum().backward()
        assert layer.theta.grad is not None and np.any(layer.theta.grad != 0)
        assert layer.activation.w_raw.grad is not None
        assert layer.negation.w_raw.grad is not None

    def test_rejects_wrong_input_ndim(self):
        with pytest.raises(ValueError):
            make_layer().forward(Tensor(np.zeros((5, 3))))

    def test_rejects_wrong_eps_shape(self):
        layer = make_layer()
        x = Tensor(np.zeros((1, 2, 3)))
        with pytest.raises(ValueError):
            layer.forward(x, epsilon_theta=np.ones((1, 3, 3)))

    def test_kind_validation(self):
        rng = np.random.default_rng(0)
        ptanh = LearnableNonlinearCircuit(
            AnalyticSurrogate("ptanh"), DESIGN_SPACE, "ptanh", rng=rng
        )
        neg = LearnableNonlinearCircuit(
            AnalyticSurrogate("negweight"), DESIGN_SPACE, "negweight", rng=rng
        )
        with pytest.raises(ValueError):
            PrintedLayer(2, 2, activation=neg, negation=neg)
        with pytest.raises(ValueError):
            PrintedLayer(2, 2, activation=ptanh, negation=ptanh)

    def test_printable_theta_in_printable_set(self):
        layer = make_layer()
        config = ConductanceConfig()
        printed = np.abs(layer.printable_theta())
        nonzero = printed[printed > 0]
        assert np.all((nonzero >= config.g_min) & (nonzero <= config.g_max))


class TestPrintedNeuralNetwork:
    def test_forward_shape(self):
        pnn = make_pnn((4, 3, 3))
        out = pnn.forward(np.random.default_rng(0).uniform(size=(10, 4)))
        assert out.shape == (1, 10, 3)

    def test_forward_with_variation_shape(self):
        pnn = make_pnn((4, 3, 2))
        out = pnn.forward(
            np.random.default_rng(0).uniform(size=(6, 4)),
            variation=VariationModel(0.1, seed=1),
            n_mc=8,
        )
        assert out.shape == (8, 6, 2)

    def test_nominal_variation_collapses_to_one_sample(self):
        pnn = make_pnn()
        out = pnn.forward(
            np.zeros((2, 3)), variation=VariationModel(0.0, seed=0), n_mc=16
        )
        assert out.shape[0] == 1

    def test_parameter_groups_split(self):
        pnn = make_pnn((4, 3, 2))
        thetas = pnn.theta_parameters()
        nonlinear = pnn.nonlinear_parameters()
        assert len(thetas) == 2          # two layers
        assert len(nonlinear) == 4       # activation + negation per layer
        all_params = list(pnn.parameters())
        assert len(all_params) == len(thetas) + len(nonlinear)

    def test_predict_argmax(self):
        pnn = make_pnn((2, 3, 2))
        predictions = pnn.predict(np.random.default_rng(0).uniform(size=(5, 2)))
        assert predictions.shape == (1, 5)
        assert set(np.unique(predictions)).issubset({0, 1})

    def test_per_neuron_activation_option(self):
        pnn = make_pnn((3, 3, 2), per_neuron_activation=True)
        assert pnn.layers[0].activation.n_circuits == 3
        out = pnn.forward(np.random.default_rng(0).uniform(size=(4, 3)))
        assert out.shape == (1, 4, 2)

    def test_no_activation_on_output_option(self):
        pnn = make_pnn((3, 3, 2), activation_on_output=False)
        assert pnn.layers[-1].apply_activation is False
        assert pnn.layers[0].apply_activation is True

    def test_rejects_bad_inputs(self):
        pnn = make_pnn((3, 3, 2))
        with pytest.raises(ValueError):
            pnn.forward(np.zeros((5, 7)))       # wrong feature count
        with pytest.raises(ValueError):
            pnn.forward(np.zeros(3))            # wrong ndim
        with pytest.raises(ValueError):
            make_pnn((3,))                      # too few layers

    def test_state_dict_round_trip_preserves_outputs(self):
        pnn_a = make_pnn((3, 3, 2), seed=1)
        pnn_b = make_pnn((3, 3, 2), seed=2)
        x = np.random.default_rng(0).uniform(size=(4, 3))
        pnn_b.load_state_dict(pnn_a.state_dict())
        assert np.allclose(pnn_a.forward(x).data, pnn_b.forward(x).data)

    def test_gradients_flow_to_every_parameter(self):
        pnn = make_pnn((3, 3, 2))
        out = pnn.forward(np.random.default_rng(1).uniform(size=(6, 3)))
        out.sum().backward()
        for name, param in pnn.named_parameters():
            assert param.grad is not None, name
