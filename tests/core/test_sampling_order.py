"""The canonical (θ, act, neg) sampling order is pinned for every model.

``kernels.sample_layer_epsilons`` defines the evaluation noise stream:
per layer it draws crossbar θ, then activation ω, then negative-weight ω,
in that order, from one shared model.  Recorded results depend on this
3-cycle, and :class:`repro.analysis.sensitivity._SelectiveVariation`
identifies component groups by position in it.  These tests pin (a) the
role order and shapes handed to protocol models, (b) the bare-``sample``
fallback for duck-typed legacy models, and (c) the exact RNG consumption
of every concrete model class against manual, canonical-order
reconstructions — with exact equality throughout.
"""

from types import SimpleNamespace
from typing import Sequence

import numpy as np
from numpy.testing import assert_array_equal

from repro.core.aging import AgingModel
from repro.core.kernels import sample_layer_epsilons
from repro.core.variation import (
    ComposedModel,
    CorrelatedVariationModel,
    GaussianVariationModel,
    NonIdealityModel,
    Perturbation,
    StuckAtModel,
    VariationModel,
)

N_MC = 4
THETA_SHAPE = (5, 6)
N_ACT = 3
N_NEG = 2


def make_layer():
    """A minimal stand-in exposing the shapes the sampler reads."""
    return SimpleNamespace(
        theta=np.zeros(THETA_SHAPE),
        act_omega=np.zeros((N_ACT, 7)),
        neg_omega=np.zeros((N_NEG, 7)),
    )


class RecordingProtocolModel(NonIdealityModel):
    """Protocol model that logs every draw request."""

    def __init__(self):
        self.calls = []

    @property
    def is_nominal(self) -> bool:
        return False

    def sample(self, n_mc: int, shape: Sequence[int]) -> np.ndarray:
        self.calls.append(("sample", tuple(shape)))
        return np.ones((n_mc, *tuple(shape)))

    def sample_perturbation(self, n_mc, shape, role="theta"):
        self.calls.append((role, tuple(shape)))
        return np.ones((n_mc, *tuple(shape)))


class RecordingLegacyModel:
    """Duck-typed pre-protocol sampler: only ``sample``, no roles."""

    def __init__(self):
        self.calls = []
        self.is_nominal = False

    def sample(self, n_mc, shape):
        self.calls.append(tuple(shape))
        return np.ones((n_mc, *tuple(shape)))


class TestCanonicalOrder:
    def test_protocol_models_get_roles_in_theta_act_neg_order(self):
        model = RecordingProtocolModel()
        sample_layer_epsilons(model, N_MC, make_layer())
        assert model.calls == [
            ("theta", THETA_SHAPE),
            ("act", (N_ACT, 7)),
            ("neg", (N_NEG, 7)),
        ]

    def test_legacy_models_fall_back_to_bare_sample_same_order(self):
        model = RecordingLegacyModel()
        sample_layer_epsilons(model, N_MC, make_layer())
        assert model.calls == [THETA_SHAPE, (N_ACT, 7), (N_NEG, 7)]

    def test_two_layers_repeat_the_cycle(self):
        model = RecordingProtocolModel()
        sample_layer_epsilons(model, N_MC, make_layer())
        sample_layer_epsilons(model, N_MC, make_layer())
        roles = [role for role, _ in model.calls]
        assert roles == ["theta", "act", "neg"] * 2


class TestStreamConsumption:
    """Exact RNG reconstruction per model class, in canonical order."""

    def test_uniform_variation(self):
        triple = sample_layer_epsilons(VariationModel(0.1, seed=5), N_MC, make_layer())
        rng = np.random.default_rng(5)
        for eps, shape in zip(triple, (THETA_SHAPE, (N_ACT, 7), (N_NEG, 7))):
            assert isinstance(eps, np.ndarray)
            assert_array_equal(eps, rng.uniform(0.9, 1.1, size=(N_MC, *shape)))

    def test_gaussian_variation(self):
        model = GaussianVariationModel(0.1, seed=5)
        triple = sample_layer_epsilons(model, N_MC, make_layer())
        rng = np.random.default_rng(5)
        for eps, shape in zip(triple, (THETA_SHAPE, (N_ACT, 7), (N_NEG, 7))):
            draws = rng.normal(1.0, model.sigma, size=(N_MC, *shape))
            expected = np.clip(draws, 1.0 - 3 * model.sigma, 1.0 + 3 * model.sigma)
            assert_array_equal(eps, expected)

    def test_stuck_at_consumes_rng_only_for_theta(self):
        model = StuckAtModel(p_stuck_on=0.3, p_stuck_off=0.3, seed=5)
        first = sample_layer_epsilons(model, N_MC, make_layer())
        second = sample_layer_epsilons(model, N_MC, make_layer())
        rng = np.random.default_rng(5)
        for triple in (first, second):
            assert isinstance(triple[0], Perturbation)
            draw = rng.uniform(size=(N_MC, *THETA_SHAPE))
            assert_array_equal(triple[0].override_mask, draw < 0.6)
            assert_array_equal(triple[0].scale, np.ones((N_MC, *THETA_SHAPE)))
            # ω slots are untouched and draw nothing from the stream.
            assert isinstance(triple[1], np.ndarray)
            assert isinstance(triple[2], np.ndarray)
            assert_array_equal(triple[1], np.ones((N_MC, N_ACT, 7)))
            assert_array_equal(triple[2], np.ones((N_MC, N_NEG, 7)))

    def test_correlated_variation(self):
        model = CorrelatedVariationModel(0.1, correlation=0.5, seed=5)
        triple = sample_layer_epsilons(model, N_MC, make_layer())
        rng = np.random.default_rng(5)
        rho, sigma = 0.5, model.sigma
        for eps, shape in zip(triple, (THETA_SHAPE, (N_ACT, 7), (N_NEG, 7))):
            rows, cols = shape
            expected = np.ones((N_MC, *shape))
            for amplitude, part_shape in (
                (np.sqrt(rho / 2.0) * sigma, (N_MC, 1, 1)),
                (np.sqrt(rho / 4.0) * sigma, (N_MC, rows, 1)),
                (np.sqrt(rho / 4.0) * sigma, (N_MC, 1, cols)),
                (np.sqrt(1.0 - rho) * sigma, (N_MC, *shape)),
            ):
                expected = expected + amplitude * rng.standard_normal(part_shape)
            expected = np.clip(expected, 1.0 - 3 * sigma, 1.0 + 3 * sigma)
            assert_array_equal(eps, expected)

    def test_composed_draws_components_in_listed_order_per_role(self):
        model = ComposedModel(
            VariationModel(0.1, seed=5),
            StuckAtModel(p_stuck_on=0.3, p_stuck_off=0.0, seed=7),
        )
        triple = sample_layer_epsilons(model, N_MC, make_layer())
        eps_rng = np.random.default_rng(5)
        defect_rng = np.random.default_rng(7)
        theta = triple[0]
        assert isinstance(theta, Perturbation)
        assert_array_equal(
            theta.scale, eps_rng.uniform(0.9, 1.1, size=(N_MC, *THETA_SHAPE))
        )
        assert_array_equal(
            theta.override_mask,
            defect_rng.uniform(size=(N_MC, *THETA_SHAPE)) < 0.3,
        )
        # ω slots: only the ε component draws, so they stay bare arrays
        # continuing the ε stream exactly where θ left it.
        for eps, shape in zip(triple[1:], ((N_ACT, 7), (N_NEG, 7))):
            assert isinstance(eps, np.ndarray)
            assert_array_equal(eps, eps_rng.uniform(0.9, 1.1, size=(N_MC, *shape)))

    def test_aging_model(self):
        model = AgingModel(drift_rate=0.05, spread=0.02, seed=5)
        triple = sample_layer_epsilons(model, N_MC, make_layer())
        rng = np.random.default_rng(5)
        reference = AgingModel(drift_rate=0.05, spread=0.02, rng=rng)
        for eps, shape in zip(triple, (THETA_SHAPE, (N_ACT, 7), (N_NEG, 7))):
            assert_array_equal(eps, reference.sample(N_MC, shape))
