"""Printable-conductance constraint and the variation model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.core import ConductanceConfig, VariationModel
from repro.core.variation import PAPER_EPSILONS


class TestConductanceConfig:
    def test_defaults_valid(self):
        config = ConductanceConfig()
        assert 0 < config.g_min < config.g_max

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            ConductanceConfig(g_min=1.0, g_max=0.5)
        with pytest.raises(ValueError):
            ConductanceConfig(g_min=0.0, g_max=1.0)

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_projection_lands_in_printable_set(self, seed):
        config = ConductanceConfig()
        rng = np.random.default_rng(seed)
        theta = Tensor(rng.normal(scale=15.0, size=64))
        projected = np.abs(config.project(theta).data)
        nonzero = projected[projected > 0]
        assert np.all(nonzero >= config.g_min)
        assert np.all(nonzero <= config.g_max)

    def test_projection_identity_inside_band(self):
        config = ConductanceConfig()
        theta = Tensor(np.array([0.5, -2.0, 0.01, -10.0]))
        assert np.allclose(config.project(theta).data, theta.data)

    def test_projection_straight_through_gradient(self):
        config = ConductanceConfig()
        theta = Tensor(np.array([100.0, -0.0001]), requires_grad=True)
        config.project(theta).sum().backward()
        assert np.allclose(theta.grad, [1.0, 1.0])

    def test_init_theta_within_band(self):
        config = ConductanceConfig()
        theta = config.init_theta((100, 5), np.random.default_rng(0))
        assert theta.shape == (100, 5)
        magnitudes = np.abs(theta)
        assert np.all(magnitudes >= config.g_min)
        assert np.all(magnitudes <= 1.0)

    def test_init_theta_mixed_signs(self):
        theta = ConductanceConfig().init_theta((200,), np.random.default_rng(1))
        assert (theta > 0).any() and (theta < 0).any()


class TestVariationModel:
    def test_paper_epsilons(self):
        assert PAPER_EPSILONS == (0.0, 0.05, 0.10)

    def test_nominal_returns_exact_ones(self):
        model = VariationModel(0.0, seed=0)
        sample = model.sample(3, (4, 2))
        assert sample.shape == (3, 4, 2)
        assert np.all(sample == 1.0)

    @given(epsilon=st.sampled_from([0.05, 0.10, 0.3]), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_samples_within_band(self, epsilon, seed):
        model = VariationModel(epsilon, seed=seed)
        sample = model.sample(10, (6,))
        assert np.all(sample >= 1.0 - epsilon)
        assert np.all(sample <= 1.0 + epsilon)

    def test_mean_close_to_one(self):
        model = VariationModel(0.10, seed=3)
        sample = model.sample(200, (50,))
        assert abs(sample.mean() - 1.0) < 0.005

    def test_deterministic_with_seed(self):
        a = VariationModel(0.1, seed=7).sample(4, (3,))
        b = VariationModel(0.1, seed=7).sample(4, (3,))
        assert np.array_equal(a, b)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            VariationModel(-0.1)
        with pytest.raises(ValueError):
            VariationModel(1.0)

    def test_rejects_bad_n_mc(self):
        with pytest.raises(ValueError):
            VariationModel(0.05, seed=0).sample(0, (3,))
