"""Learnable nonlinear circuit module (the Fig. 5 processing chain)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.core import LearnableNonlinearCircuit
from repro.surrogate import AnalyticSurrogate
from repro.surrogate.design_space import DESIGN_SPACE


@pytest.fixture
def act_circuit():
    return LearnableNonlinearCircuit(
        AnalyticSurrogate("ptanh"), DESIGN_SPACE, "ptanh", rng=np.random.default_rng(0)
    )


@pytest.fixture
def neg_circuit():
    return LearnableNonlinearCircuit(
        AnalyticSurrogate("negweight"), DESIGN_SPACE, "negweight",
        rng=np.random.default_rng(0),
    )


class TestPrintableOmega:
    def test_default_is_mid_range(self, act_circuit):
        omega = act_circuit.printable_omega().numpy()[0]
        centre_r1 = (DESIGN_SPACE.lower[0] + DESIGN_SPACE.upper[0]) / 2
        assert omega[0] == pytest.approx(centre_r1, rel=0.01)

    def test_always_feasible(self, act_circuit):
        for value in (-10.0, -1.0, 0.0, 1.0, 10.0):
            act_circuit.w_raw.data[:] = value
            omega = act_circuit.printable_omega().numpy()[0]
            assert DESIGN_SPACE.contains(omega, atol=1e-6), omega

    def test_respects_divider_inequalities_at_extremes(self, act_circuit):
        rng = np.random.default_rng(0)
        for _ in range(20):
            act_circuit.w_raw.data[:] = rng.normal(scale=4.0, size=(1, 7))
            omega = act_circuit.printable_omega().numpy()[0]
            assert omega[1] <= omega[0] + 1e-9
            assert omega[3] <= omega[2] + 1e-9

    def test_differentiable_chain(self, act_circuit):
        # Gradients must flow from the printable ω back to the raw 𝔴.
        act_circuit.w_raw.zero_grad()
        act_circuit.printable_omega().sum().backward()
        assert act_circuit.w_raw.grad is not None
        assert np.any(act_circuit.w_raw.grad != 0)

    def test_per_neuron_shape(self):
        circuit = LearnableNonlinearCircuit(
            AnalyticSurrogate("ptanh"), DESIGN_SPACE, "ptanh",
            n_circuits=3, rng=np.random.default_rng(1),
        )
        assert circuit.printable_omega().shape == (3, 7)


class TestEta:
    def test_nominal_shape(self, act_circuit):
        assert act_circuit.eta().shape == (1, 1, 4)

    def test_variation_shape(self, act_circuit):
        eps = np.random.default_rng(0).uniform(0.9, 1.1, size=(5, 1, 7))
        assert act_circuit.eta(eps).shape == (5, 1, 4)

    def test_variation_changes_eta(self, act_circuit):
        eps = np.random.default_rng(0).uniform(0.9, 1.1, size=(5, 1, 7))
        etas = act_circuit.eta(eps).data
        assert np.std(etas, axis=0).max() > 0

    def test_rejects_bad_eps_shape(self, act_circuit):
        with pytest.raises(ValueError):
            act_circuit.eta(np.ones((5, 2, 7)))

    def test_gradient_reaches_w(self, act_circuit):
        act_circuit.w_raw.zero_grad()
        act_circuit.eta().sum().backward()
        assert np.any(act_circuit.w_raw.grad != 0)


class TestTransfer:
    def test_ptanh_formula(self, act_circuit):
        eta = Tensor(np.array([[[0.5, 0.3, 0.4, 5.0]]]))
        voltage = Tensor(np.linspace(0, 1, 7).reshape(1, 7, 1))
        out = act_circuit.transfer(voltage, eta).data
        expected = 0.5 + 0.3 * np.tanh((voltage.data - 0.4) * 5.0)
        assert np.allclose(out, expected)

    def test_negweight_is_negated(self, neg_circuit):
        eta = Tensor(np.array([[[0.5, 0.3, 0.4, 5.0]]]))
        voltage = Tensor(np.linspace(0, 1, 7).reshape(1, 7, 1))
        out = neg_circuit.transfer(voltage, eta).data
        expected = -(0.5 + 0.3 * np.tanh((voltage.data - 0.4) * 5.0))
        assert np.allclose(out, expected)

    def test_forward_monotone_for_activation(self, act_circuit):
        voltage = Tensor(np.linspace(0, 1, 11).reshape(1, 11, 1))
        out = act_circuit.forward(voltage).data[0, :, 0]
        assert np.all(np.diff(out) >= -1e-9)

    def test_forward_antitone_for_negation(self, neg_circuit):
        voltage = Tensor(np.linspace(0, 1, 11).reshape(1, 11, 1))
        out = neg_circuit.forward(voltage).data[0, :, 0]
        assert np.all(np.diff(out) <= 1e-9)

    def test_per_neuron_transfer_broadcasts(self):
        circuit = LearnableNonlinearCircuit(
            AnalyticSurrogate("ptanh"), DESIGN_SPACE, "ptanh",
            n_circuits=4, rng=np.random.default_rng(2),
        )
        voltage = Tensor(np.random.default_rng(0).uniform(size=(2, 5, 4)))
        assert circuit.forward(voltage).shape == (2, 5, 4)

    def test_full_chain_gradcheck(self, act_circuit):
        # Finite-difference check through the whole ω → η → transfer chain
        # w.r.t. the voltage input (𝔴 gradients are checked above).
        voltage = Tensor(np.random.default_rng(1).uniform(0.2, 0.8, size=(1, 4, 2)))
        assert gradcheck(lambda v: act_circuit.forward(v), [voltage])

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            LearnableNonlinearCircuit(
                AnalyticSurrogate("ptanh"), DESIGN_SPACE, "relu"
            )

    def test_invalid_circuit_count_rejected(self):
        with pytest.raises(ValueError):
            LearnableNonlinearCircuit(
                AnalyticSurrogate("ptanh"), DESIGN_SPACE, "ptanh", n_circuits=0
            )
