"""Saving and loading trained pNN designs."""

import numpy as np
import pytest

from repro.core import ConductanceConfig, PrintedNeuralNetwork
from repro.core.serialization import load_pnn, save_pnn
from repro.surrogate import AnalyticSurrogate


@pytest.fixture
def surrogates():
    return (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))


@pytest.fixture
def pnn(surrogates):
    return PrintedNeuralNetwork(
        [4, 3, 2], surrogates, rng=np.random.default_rng(0)
    )


class TestRoundTrip:
    def test_outputs_identical_after_reload(self, pnn, surrogates, tmp_path):
        path = save_pnn(pnn, tmp_path / "design.npz")
        restored = load_pnn(path, surrogates)
        x = np.random.default_rng(1).uniform(size=(6, 4))
        assert np.allclose(pnn.forward(x).data, restored.forward(x).data)

    def test_structure_preserved(self, surrogates, tmp_path):
        original = PrintedNeuralNetwork(
            [3, 5, 2], surrogates,
            conductance=ConductanceConfig(g_min=0.02, g_max=5.0),
            per_neuron_activation=True,
            activation_on_output=False,
            rng=np.random.default_rng(2),
        )
        path = save_pnn(original, tmp_path / "design.npz")
        restored = load_pnn(path, surrogates)
        assert restored.layer_sizes == [3, 5, 2]
        assert restored.layers[0].activation.n_circuits == 5
        assert restored.layers[-1].apply_activation is False
        assert restored.layers[0].conductance.g_min == 0.02

    def test_fingerprint_guard(self, pnn, surrogates, tmp_path):
        path = save_pnn(pnn, tmp_path / "design.npz", surrogates=surrogates)
        # Same surrogates: loads.
        load_pnn(path, surrogates, strict_fingerprint=True)
        # Different calibration: rejected.
        other = (
            AnalyticSurrogate("ptanh"),
            AnalyticSurrogate("negweight"),
        )
        other[0].scale = other[0].scale * 2.0
        with pytest.raises(ValueError, match="surrogate mismatch"):
            load_pnn(path, other, strict_fingerprint=True)

    def test_fingerprint_missing_rejected_in_strict_mode(self, pnn, surrogates, tmp_path):
        path = save_pnn(pnn, tmp_path / "design.npz")   # no fingerprint
        with pytest.raises(ValueError, match="without a surrogate fingerprint"):
            load_pnn(path, surrogates, strict_fingerprint=True)

    def test_nn_bundle_fingerprint(self, tiny_bundle, tmp_path):
        pnn = PrintedNeuralNetwork([2, 3, 2], tiny_bundle, rng=np.random.default_rng(3))
        path = save_pnn(pnn, tmp_path / "design.npz", surrogates=tiny_bundle)
        restored = load_pnn(path, tiny_bundle, strict_fingerprint=True)
        x = np.random.default_rng(4).uniform(size=(3, 2))
        assert np.allclose(pnn.forward(x).data, restored.forward(x).data)
