"""The kernel training engine vs the autograd engine, epoch for epoch.

``train_pnn(engine="kernel")`` must reproduce the taped loop exactly: the
same train/validation loss at every epoch (≤1e-9 relative — observed
agreement is float64 rounding), the same early-stopping decision, and the
same restored best-epoch parameters.  Both engines share one variation RNG
stream contract (canonical per-layer θ/act/neg draws, one 3-cycle per
layer per epoch), which these tests pin as well.
"""

import numpy as np
import pytest

from repro.core import PrintedNeuralNetwork, TrainConfig, train_pnn
from repro.core.aging import AgingModel
from repro.core.losses import make_loss
from repro.core.training import (
    VALIDATION_SEED_OFFSET,
    _validation_loss,
    draw_epoch_epsilons,
)
from repro.core.variation import VariationModel

HISTORY_RTOL = 1e-9


def make_pnn(analytic_surrogates, seed=7):
    return PrintedNeuralNetwork(
        [2, 3, 2], analytic_surrogates, rng=np.random.default_rng(seed)
    )


def train_both(analytic_surrogates, blob_data, config):
    x_train, y_train, x_val, y_val = blob_data
    results, networks = {}, {}
    for engine in ("autograd", "kernel"):
        pnn = make_pnn(analytic_surrogates)
        results[engine] = train_pnn(
            pnn, x_train, y_train, x_val, y_val, config, engine=engine
        )
        networks[engine] = pnn
    return results, networks


def assert_histories_match(results):
    reference = np.array([(t, v) for _, t, v in results["autograd"].history])
    kernel = np.array([(t, v) for _, t, v in results["kernel"].history])
    assert reference.shape == kernel.shape
    np.testing.assert_allclose(kernel, reference, rtol=HISTORY_RTOL, atol=0)
    assert results["kernel"].best_epoch == results["autograd"].best_epoch
    assert results["kernel"].best_val_loss == pytest.approx(
        results["autograd"].best_val_loss, rel=HISTORY_RTOL
    )


@pytest.mark.slow
class TestTrajectoryEquivalence:
    @pytest.mark.parametrize(
        "epsilon,learnable,loss",
        [
            (0.0, True, "margin"),
            (0.1, True, "margin"),
            (0.1, False, "margin"),
            (0.1, True, "ce"),
        ],
    )
    def test_loss_histories_agree(self, analytic_surrogates, blob_data, epsilon, learnable, loss):
        config = TrainConfig(
            max_epochs=30, patience=30, epsilon=epsilon, n_mc_train=8,
            learnable_nonlinear=learnable, loss=loss, seed=5,
        )
        results, networks = train_both(analytic_surrogates, blob_data, config)
        assert_histories_match(results)
        # The restored best-epoch designs must match too.
        reference = networks["autograd"].state_dict()
        trained = networks["kernel"].state_dict()
        # atol floor: coordinates with ~zero gradient wander at the 1e-10
        # level under Adam's eps, identically-shaped noise in both engines.
        for name in reference:
            np.testing.assert_allclose(
                trained[name], reference[name], rtol=1e-8, atol=1e-9
            )

    def test_early_stopping_same_epoch(self, analytic_surrogates, blob_data):
        config = TrainConfig(max_epochs=200, patience=5, epsilon=0.0, seed=3)
        results, _ = train_both(analytic_surrogates, blob_data, config)
        assert results["kernel"].epochs_run == results["autograd"].epochs_run
        assert_histories_match(results)


class TestKernelEngineBehaviour:
    def test_unknown_engine_rejected(self, analytic_surrogates, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn(analytic_surrogates)
        with pytest.raises(ValueError, match="engine"):
            train_pnn(pnn, x_train, y_train, x_val, y_val, TrainConfig(max_epochs=1),
                      engine="numpy")

    def test_non_learnable_keeps_w_fixed(self, analytic_surrogates, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn(analytic_surrogates)
        before = [
            (layer.activation.w_raw.data.copy(), layer.negation.w_raw.data.copy())
            for layer in pnn.layers
        ]
        theta_before = [layer.theta.data.copy() for layer in pnn.layers]
        config = TrainConfig(max_epochs=10, patience=10, learnable_nonlinear=False, seed=0)
        train_pnn(pnn, x_train, y_train, x_val, y_val, config, engine="kernel")
        for layer, (w_act, w_neg) in zip(pnn.layers, before):
            np.testing.assert_array_equal(layer.activation.w_raw.data, w_act)
            np.testing.assert_array_equal(layer.negation.w_raw.data, w_neg)
        assert any(
            not np.array_equal(layer.theta.data, ref)
            for layer, ref in zip(pnn.layers, theta_before)
        ), "theta should still train"

    def test_variation_override_objects_supported(self, analytic_surrogates, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn(analytic_surrogates)
        config = TrainConfig(max_epochs=5, patience=5, seed=1, n_mc_train=4)
        aging = AgingModel(drift_rate=0.05, time_horizon=2.0, seed=9)
        result = train_pnn(
            pnn, x_train, y_train, x_val, y_val, config,
            variation=aging,
            val_variation=AgingModel(drift_rate=0.05, time_horizon=2.0, seed=10),
            engine="kernel",
        )
        assert len(result.history) == 5
        assert np.isfinite(result.best_val_loss)

    def test_module_left_at_best_epoch_params(self, analytic_surrogates, blob_data):
        """The returned module must hold the best epoch's design, not the last."""
        x_train, y_train, x_val, y_val = blob_data
        config = TrainConfig(max_epochs=40, patience=40, epsilon=0.1, n_mc_train=6, seed=2)
        results, networks = train_both(analytic_surrogates, blob_data, config)
        loss_fn = make_loss(config.loss)
        for engine, pnn in networks.items():
            best = results[engine].best_val_loss
            restored = _validation_loss(pnn, x_val, y_val, loss_fn, config)
            assert restored == pytest.approx(best, rel=1e-9), engine


class TestValidationSampleHoisting:
    """Satellite regression: the fixed validation ε stream is unchanged."""

    def test_hoisted_samples_match_legacy_per_epoch_draws(self, analytic_surrogates):
        pnn = make_pnn(analytic_surrogates)
        config = TrainConfig(epsilon=0.1, n_mc_train=6, seed=17)
        # The legacy loop rebuilt this model every epoch; identical seeds
        # mean identical draws epoch after epoch.
        epoch_draws = [
            draw_epoch_epsilons(
                VariationModel(config.epsilon, seed=config.seed + VALIDATION_SEED_OFFSET),
                config.n_mc_train,
                pnn,
            )
            for _ in range(3)
        ]
        for later in epoch_draws[1:]:
            for (a1, a2, a3), (b1, b2, b3) in zip(epoch_draws[0], later):
                np.testing.assert_array_equal(a1, b1)
                np.testing.assert_array_equal(a2, b2)
                np.testing.assert_array_equal(a3, b3)

    def test_validation_loss_identical_across_epochs(self, analytic_surrogates, blob_data):
        _, _, x_val, y_val = blob_data
        pnn = make_pnn(analytic_surrogates)
        config = TrainConfig(epsilon=0.1, n_mc_train=6, seed=17)
        loss_fn = make_loss("margin")
        first = _validation_loss(pnn, x_val, y_val, loss_fn, config)
        second = _validation_loss(pnn, x_val, y_val, loss_fn, config)
        assert first == second

    def test_validation_loss_positional_signature_stable(self, analytic_surrogates, blob_data):
        _, _, x_val, y_val = blob_data
        pnn = make_pnn(analytic_surrogates)
        config = TrainConfig(epsilon=0.0, seed=0)
        value = _validation_loss(pnn, x_val, y_val, make_loss("margin"), config)
        assert np.isfinite(value)


class TestTrainEpsilonStream:
    def test_kernel_engine_consumes_stream_like_module_forward(self, analytic_surrogates):
        """draw_epoch_epsilons mirrors PrintedNeuralNetwork.forward's draws."""
        pnn = make_pnn(analytic_surrogates)
        reference = VariationModel(0.1, seed=4)
        seen = []
        original = reference.sample

        def recording(n_mc, shape):
            sample = original(n_mc, shape)
            seen.append(sample)
            return sample

        reference.sample = recording
        pnn.forward(np.zeros((3, 2)), variation=reference, n_mc=5)
        drawn = draw_epoch_epsilons(VariationModel(0.1, seed=4), 5, pnn)
        flat = [array for triple in drawn for array in triple]
        assert len(flat) == len(seen)
        for mine, module in zip(flat, seen):
            np.testing.assert_array_equal(mine, module)
