"""Lane-batched lockstep training vs serial kernel runs, bit for bit.

These tests pin the lane engine's central contract (see
``docs/TRAINING.md``): lane ``l`` of ``train_pnn_lanes`` reproduces the
serial ``train_pnn(engine="kernel")`` run for the same seed **bitwise** —
the exact per-epoch ``(train_loss, val_loss)`` history (``==``, no
tolerance), the exact early-stop epoch, and byte-identical trained
parameters — including when lanes early-stop at different epochs and the
active stack shrinks mid-run.
"""

import numpy as np
import pytest

from repro.core import PrintedNeuralNetwork, TrainConfig, train_pnn, train_pnn_lanes
from repro.core.aging import AgingModel
from repro.core.lanes import LaneNetwork

SEEDS = (1, 2, 3)


def make_pnn(surrogates, seed, per_neuron=False):
    return PrintedNeuralNetwork(
        [2, 3, 2],
        surrogates,
        per_neuron_activation=per_neuron,
        rng=np.random.default_rng(seed),
    )


def make_config(seed, **overrides):
    defaults = dict(
        max_epochs=25, patience=25, epsilon=0.1, n_mc_train=5,
        learnable_nonlinear=True, loss="margin",
    )
    defaults.update(overrides)
    return TrainConfig(seed=seed, **defaults)


def run_serial(surrogates, blob_data, configs, per_neuron=False):
    x_train, y_train, x_val, y_val = blob_data
    results, states = [], []
    for config in configs:
        pnn = make_pnn(surrogates, config.seed, per_neuron)
        results.append(
            train_pnn(pnn, x_train, y_train, x_val, y_val, config, engine="kernel")
        )
        states.append(pnn.state_dict())
    return results, states


def run_lanes(surrogates, blob_data, configs, per_neuron=False):
    x_train, y_train, x_val, y_val = blob_data
    pnns = [make_pnn(surrogates, config.seed, per_neuron) for config in configs]
    results = train_pnn_lanes(pnns, x_train, y_train, x_val, y_val, configs)
    return results, [pnn.state_dict() for pnn in pnns]


def assert_bitwise_equal(serial, lanes):
    serial_results, serial_states = serial
    lane_results, lane_states = lanes
    assert len(serial_results) == len(lane_results)
    for s, l in zip(serial_results, lane_results):
        assert l.history == s.history          # exact float equality, per epoch
        assert l.best_epoch == s.best_epoch
        assert l.epochs_run == s.epochs_run
        assert l.best_val_loss == s.best_val_loss
    for s, l in zip(serial_states, lane_states):
        assert s.keys() == l.keys()
        for name in s:
            np.testing.assert_array_equal(l[name], s[name], err_msg=name)


@pytest.mark.slow
class TestLaneBitIdentity:
    """The property grid: surrogate family × activation mode × loss × ϵ."""

    @pytest.mark.parametrize(
        "per_neuron,loss,epsilon,learnable",
        [
            (False, "margin", 0.1, True),
            (True, "margin", 0.1, True),
            (False, "ce", 0.1, True),
            (True, "ce", 0.1, False),
            (False, "margin", 0.0, True),
        ],
    )
    def test_analytic_lanes_bitwise_equal_serial(
        self, analytic_surrogates, blob_data, per_neuron, loss, epsilon, learnable
    ):
        configs = [
            make_config(seed, loss=loss, epsilon=epsilon, learnable_nonlinear=learnable)
            for seed in SEEDS
        ]
        assert_bitwise_equal(
            run_serial(analytic_surrogates, blob_data, configs, per_neuron),
            run_lanes(analytic_surrogates, blob_data, configs, per_neuron),
        )

    @pytest.mark.parametrize(
        "per_neuron,loss",
        [(False, "margin"), (True, "ce")],
    )
    def test_mlp_surrogate_lanes_bitwise_equal_serial(
        self, tiny_bundle, blob_data, per_neuron, loss
    ):
        configs = [make_config(seed, loss=loss, max_epochs=15) for seed in SEEDS]
        assert_bitwise_equal(
            run_serial(tiny_bundle, blob_data, configs, per_neuron),
            run_lanes(tiny_bundle, blob_data, configs, per_neuron),
        )

    def test_staggered_early_stops(self, analytic_surrogates, blob_data):
        """Lanes stopping at different epochs shrink the stack mid-run and
        still finish bitwise equal to their serial counterparts."""
        configs = [
            make_config(seed, max_epochs=120, patience=5, loss="ce") for seed in SEEDS
        ]
        serial = run_serial(analytic_surrogates, blob_data, configs)
        lanes = run_lanes(analytic_surrogates, blob_data, configs)
        assert_bitwise_equal(serial, lanes)
        epochs = {result.epochs_run for result in serial[0]}
        assert len(epochs) > 1, (
            "fixture regression: staggered-stop test needs lanes stopping at "
            f"different epochs, got {epochs}"
        )

    def test_gather_invariance(self, analytic_surrogates, blob_data):
        """A lane's result must not depend on its stack mates."""
        configs = [make_config(seed, max_epochs=20) for seed in SEEDS]
        full = run_lanes(analytic_surrogates, blob_data, configs)
        pair = run_lanes(analytic_surrogates, blob_data, configs[:2])
        assert_bitwise_equal(
            (full[0][:2], full[1][:2]),
            pair,
        )

    def test_single_lane_equals_serial(self, analytic_surrogates, blob_data):
        configs = [make_config(7, max_epochs=15)]
        assert_bitwise_equal(
            run_serial(analytic_surrogates, blob_data, configs),
            run_lanes(analytic_surrogates, blob_data, configs),
        )


class TestLaneEngineDispatch:
    def test_engine_lanes_matches_engine_kernel(self, analytic_surrogates, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        config = make_config(4, max_epochs=10)
        reference = make_pnn(analytic_surrogates, 4)
        ref_result = train_pnn(
            reference, x_train, y_train, x_val, y_val, config, engine="kernel"
        )
        pnn = make_pnn(analytic_surrogates, 4)
        result = train_pnn(
            pnn, x_train, y_train, x_val, y_val, config, engine="lanes"
        )
        assert result.history == ref_result.history
        assert result.best_epoch == ref_result.best_epoch
        for name, value in reference.state_dict().items():
            np.testing.assert_array_equal(pnn.state_dict()[name], value)

    def test_engine_lanes_rejects_variation_overrides(
        self, analytic_surrogates, blob_data
    ):
        x_train, y_train, x_val, y_val = blob_data
        pnn = make_pnn(analytic_surrogates, 0)
        aging = AgingModel(drift_rate=0.05, time_horizon=2.0, seed=9)
        with pytest.raises(ValueError, match="variation"):
            train_pnn(
                pnn, x_train, y_train, x_val, y_val,
                TrainConfig(max_epochs=2), variation=aging, engine="lanes",
            )


class TestLaneValidation:
    def test_mismatched_configs_rejected(self, analytic_surrogates, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnns = [make_pnn(analytic_surrogates, seed) for seed in (1, 2)]
        configs = [make_config(1), make_config(2, epsilon=0.2)]
        with pytest.raises(ValueError, match="epsilon"):
            train_pnn_lanes(pnns, x_train, y_train, x_val, y_val, configs)

    def test_config_count_mismatch_rejected(self, analytic_surrogates, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        pnns = [make_pnn(analytic_surrogates, seed) for seed in (1, 2)]
        with pytest.raises(ValueError, match="config"):
            train_pnn_lanes(pnns, x_train, y_train, x_val, y_val, [make_config(1)])

    def test_mismatched_topologies_rejected(self, analytic_surrogates):
        a = make_pnn(analytic_surrogates, 1)
        b = PrintedNeuralNetwork(
            [2, 4, 2], analytic_surrogates, rng=np.random.default_rng(2)
        )
        with pytest.raises(ValueError, match="layer sizes"):
            LaneNetwork.from_pnns([a, b])

    def test_mismatched_surrogate_objects_rejected(self, analytic_surrogates):
        from repro.surrogate.analytic import AnalyticSurrogate

        a = make_pnn(analytic_surrogates, 1)
        b = make_pnn((AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight")), 2)
        with pytest.raises(ValueError, match="surrogate"):
            LaneNetwork.from_pnns([a, b])

    def test_empty_lane_list_returns_empty(self, blob_data):
        x_train, y_train, x_val, y_val = blob_data
        assert train_pnn_lanes([], x_train, y_train, x_val, y_val, []) == []
