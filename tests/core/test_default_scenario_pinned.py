"""The default ε-only scenario is pinned bit-for-bit to recorded results.

The composable non-ideality pipeline (``repro.core.variation``) carries a
hard compatibility gate: the default scenario must execute the exact same
floating-point instruction sequence — and consume the RNG streams in the
exact same order — as the pre-refactor multiplicative-ε code.  This module
freezes a {surrogate} × {activation sharing} × {ε} grid of training and
Monte-Carlo evaluation results captured *before* the refactor, as float
hex strings, and checks them with exact equality (``assert_array_equal``
and ``==`` — never ``allclose``).

If one of these tests fails, the change under test re-rolled the noise
stream or altered the arithmetic of the default path; every recorded
Table-II number is invalid.  Do not loosen the comparison — revert the
change or consciously re-record (see docs/TRAINING.md §"The ε-stream
contract").
"""

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro.core import (
    DEFAULT_SCENARIO,
    PrintedNeuralNetwork,
    TrainConfig,
    evaluate_mc,
    snapshot_params,
    train_pnn,
)

# Captured at commit 0e44cff (pre-pipeline), python floats serialized with
# float.hex() — exact, no rounding.  Recipe: the grid loop in
# TestDefaultScenarioPinned below.
RECORDED = {
    ("analytic", False, 0.0): {
        "best_val_loss": "0x1.117e230331072p-4",
        "last_train": "0x1.103770ee0c8dap-4",
        "last_val": "0x1.117e230331072p-4",
        "accuracies": ["0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.d99999999999ap-1", "0x1.f333333333333p-1", "0x1.f333333333333p-1", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1"],
    },
    ("analytic", False, 0.1): {
        "best_val_loss": "0x1.5d0bc18ffa7f3p-5",
        "last_train": "0x1.b900ebceba75ap-5",
        "last_val": "0x1.5d0bc18ffa7f3p-5",
        "accuracies": ["0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0"],
    },
    ("analytic", True, 0.0): {
        "best_val_loss": "0x1.8d0ec2c30b263p-9",
        "last_train": "0x1.58738e700b186p-9",
        "last_val": "0x1.3718e2f335be6p-8",
        "accuracies": ["0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.d99999999999ap-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0"],
    },
    ("analytic", True, 0.1): {
        "best_val_loss": "0x1.1a22177ace86dp-7",
        "last_train": "0x1.b2981deb97d93p-7",
        "last_val": "0x1.517752d1a01d1p-7",
        "accuracies": ["0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0"],
    },
    ("mlp", False, 0.0): {
        "best_val_loss": "0x1.35e076e1218b2p-4",
        "last_train": "0x1.d158458ec9abap-5",
        "last_val": "0x1.35e076e1218b2p-4",
        "accuracies": ["0x1.8000000000000p-2"] * 23,
    },
    ("mlp", False, 0.1): {
        "best_val_loss": "0x1.30c98b6144926p-4",
        "last_train": "0x1.dd268eef8f283p-5",
        "last_val": "0x1.30c98b6144926p-4",
        "accuracies": ["0x1.8000000000000p-2"] * 23,
    },
    ("mlp", True, 0.0): {
        "best_val_loss": "0x1.eee3b22692b0bp-6",
        "last_train": "0x1.bb91ea3664853p-6",
        "last_val": "0x1.1f9078a0b91cap-5",
        "accuracies": ["0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.e666666666666p-1", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.f333333333333p-1", "0x1.f333333333333p-1", "0x1.f333333333333p-1", "0x1.f333333333333p-1"],
    },
    ("mlp", True, 0.1): {
        "best_val_loss": "0x1.1a2117fda3b4cp-5",
        "last_train": "0x1.88b241fad8ea4p-5",
        "last_val": "0x1.3ab7277f24c63p-5",
        "accuracies": ["0x1.6666666666666p-1", "0x1.c000000000000p-1", "0x1.6666666666666p-1", "0x1.0000000000000p+0", "0x1.0000000000000p+0", "0x1.c000000000000p-1", "0x1.4000000000000p-1", "0x1.a666666666666p-1", "0x1.c000000000000p-1", "0x1.4000000000000p-1", "0x1.b333333333333p-1", "0x1.d99999999999ap-1", "0x1.d99999999999ap-1", "0x1.d99999999999ap-1", "0x1.b333333333333p-1", "0x1.b333333333333p-1", "0x1.4cccccccccccdp-1", "0x1.4cccccccccccdp-1", "0x1.e666666666666p-1", "0x1.e666666666666p-1", "0x1.0000000000000p+0", "0x1.e666666666666p-1", "0x1.d99999999999ap-1"],
    },
}


def _unhex(value):
    return float.fromhex(value)


@pytest.mark.parametrize(
    "sur_name,per_neuron,eps",
    sorted(RECORDED),
    ids=lambda v: str(v).replace(".", "_") if not isinstance(v, str) else v,
)
def test_default_scenario_bit_identical_to_recorded(
    sur_name, per_neuron, eps, analytic_surrogates, tiny_bundle, blob_data
):
    """Training + MC evaluation on the default path match the recording."""
    x_train, y_train, x_val, y_val = blob_data
    surrogates = analytic_surrogates if sur_name == "analytic" else tiny_bundle
    pnn = PrintedNeuralNetwork(
        [2, 3, 2], surrogates,
        per_neuron_activation=per_neuron,
        rng=np.random.default_rng(7),
    )
    config = TrainConfig(max_epochs=25, patience=25, epsilon=eps,
                         n_mc_train=5, seed=3)
    assert config.scenario == DEFAULT_SCENARIO
    result = train_pnn(pnn, x_train, y_train, x_val, y_val, config)
    recorded = RECORDED[(sur_name, per_neuron, eps)]
    assert result.best_val_loss == _unhex(recorded["best_val_loss"])
    assert result.history[-1][1] == _unhex(recorded["last_train"])
    assert result.history[-1][2] == _unhex(recorded["last_val"])

    mc = evaluate_mc(
        snapshot_params(pnn), x_val, y_val, epsilon=0.1, n_test=23, seed=11
    )
    expected = np.asarray([_unhex(a) for a in recorded["accuracies"]])
    assert_array_equal(mc.accuracies, expected)

    # Passing the scenario explicitly must take the identical branch.
    mc_named = evaluate_mc(
        snapshot_params(pnn), x_val, y_val, epsilon=0.1, n_test=23, seed=11,
        scenario=DEFAULT_SCENARIO,
    )
    assert_array_equal(mc_named.accuracies, expected)
