"""pNN losses: margin loss and voltage cross-entropy."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import MarginLoss, make_loss
from repro.core.losses import VoltageCrossEntropy


def voltages(*rows):
    """Build a (1, batch, classes) voltage tensor."""
    return Tensor(np.asarray(rows, dtype=np.float64)[None, :, :])


class TestMarginLoss:
    def test_zero_when_margin_satisfied(self):
        loss = MarginLoss(margin=0.3)
        out = loss(voltages([0.9, 0.1], [0.0, 0.8]), np.array([0, 1]))
        assert out.item() == pytest.approx(0.0)

    def test_penalizes_margin_violation(self):
        loss = MarginLoss(margin=0.3)
        out = loss(voltages([0.6, 0.5]), np.array([0]))
        # shortfall = 0.3 − 0.1 = 0.2 → squared 0.04
        assert out.item() == pytest.approx(0.04)

    def test_wrong_prediction_costs_more_than_weak_margin(self):
        loss = MarginLoss(margin=0.3)
        weak = loss(voltages([0.6, 0.5]), np.array([0])).item()
        wrong = loss(voltages([0.4, 0.7]), np.array([0])).item()
        assert wrong > weak

    def test_true_class_not_self_penalized(self):
        loss = MarginLoss(margin=0.3)
        # One class only appears via the masked diagonal; a two-class case
        # where the other voltage is far below: exact zero loss expected.
        out = loss(voltages([0.9, 0.0]), np.array([0]))
        assert out.item() == 0.0

    def test_averages_over_mc_axis(self):
        loss = MarginLoss(margin=0.3)
        good = np.array([[[0.9, 0.0]]])
        bad = np.array([[[0.4, 0.7]]])
        stacked = Tensor(np.concatenate([good, bad], axis=0))
        single_bad = loss(Tensor(bad), np.array([0])).item()
        combined = loss(stacked, np.array([0])).item()
        assert combined == pytest.approx(single_bad / 2.0)

    def test_gradient_pushes_true_class_up(self):
        loss = MarginLoss(margin=0.3)
        v = Tensor(np.array([[[0.5, 0.5]]]), requires_grad=True)
        loss(v, np.array([0])).backward()
        assert v.grad[0, 0, 0] < 0      # increase the true voltage
        assert v.grad[0, 0, 1] > 0      # decrease the competitor

    def test_shape_validation(self):
        loss = MarginLoss()
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros((2, 3))), np.array([0, 1]))
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros((1, 2, 3))), np.array([0]))

    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            MarginLoss(margin=0.0)


class TestVoltageCrossEntropy:
    def test_decreases_with_separation(self):
        loss = VoltageCrossEntropy()
        close = loss(voltages([0.51, 0.49]), np.array([0])).item()
        separated = loss(voltages([0.9, 0.1]), np.array([0])).item()
        assert separated < close

    def test_temperature_sharpens(self):
        sharp = VoltageCrossEntropy(temperature=0.05)
        soft = VoltageCrossEntropy(temperature=0.5)
        v = voltages([0.7, 0.3])
        assert sharp(v, np.array([0])).item() < soft(v, np.array([0])).item()

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValueError):
            VoltageCrossEntropy(temperature=0.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            VoltageCrossEntropy()(Tensor(np.zeros((2, 3))), np.array([0]))


class TestFactory:
    def test_known_losses(self):
        assert isinstance(make_loss("margin"), MarginLoss)
        assert isinstance(make_loss("ce"), VoltageCrossEntropy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_loss("hinge")
