"""Module system: registration, traversal, state dicts, train/eval."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


class TwoLayer(nn.Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.fc1 = nn.Linear(3, 4, rng=rng)
        self.fc2 = nn.Linear(4, 2, rng=rng)
        self.scale = nn.Parameter(np.ones(1))

    def forward(self, x):
        from repro.autograd import functional as F

        return self.fc2(F.tanh(self.fc1(x))) * self.scale


class TestRegistration:
    def test_parameters_discovered_recursively(self):
        model = TwoLayer()
        names = dict(model.named_parameters())
        assert set(names) == {
            "scale", "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"
        }

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_named_modules(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_parameters_always_require_grad(self):
        from repro.autograd import no_grad

        with no_grad():
            p = nn.Parameter(np.zeros(3))
        assert p.requires_grad


class TestState:
    def test_state_dict_roundtrip(self):
        model_a, model_b = TwoLayer(), TwoLayer()
        model_b.fc1.weight.data += 1.0
        model_b.load_state_dict(model_a.state_dict())
        assert np.allclose(model_b.fc1.weight.data, model_a.fc1.weight.data)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["fc1.weight"] += 100.0
        assert not np.allclose(model.fc1.weight.data, state["fc1.weight"])

    def test_load_rejects_missing_keys(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_wrong_shape(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestTrainingState:
    def test_train_eval_propagates(self):
        model = TwoLayer()
        model.eval()
        assert not model.training and not model.fc1.training
        model.train()
        assert model.training and model.fc2.training

    def test_zero_grad_clears_all(self):
        model = TwoLayer()
        out = model(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)
