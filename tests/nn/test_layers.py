"""Linear, activations, containers, losses and initializers."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, gradcheck
from repro.nn import init


class TestLinear:
    def test_shapes(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 4)))).data.sum() == 0.0

    def test_matches_manual_computation(self):
        layer = nn.Linear(2, 2, rng=np.random.default_rng(1))
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_gradcheck(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(2))
        x = Tensor(np.random.default_rng(3).normal(size=(4, 3)))
        assert gradcheck(lambda x, w, b: x @ w + b, [x, layer.weight, layer.bias])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_batched_leading_dims(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((7, 5, 4))))
        assert out.shape == (7, 5, 3)


class TestActivationsAndContainers:
    def test_sequential_applies_in_order(self):
        model = nn.Sequential(
            nn.Linear(2, 2, rng=np.random.default_rng(0)), nn.Tanh(), nn.Identity()
        )
        out = model(Tensor(np.ones((1, 2))))
        assert np.all(np.abs(out.data) <= 1.0)

    def test_sequential_len_iter_getitem(self):
        model = nn.Sequential(nn.Tanh(), nn.ReLU(), nn.Sigmoid())
        assert len(model) == 3
        assert isinstance(model[1], nn.ReLU)
        assert [type(m).__name__ for m in model] == ["Tanh", "ReLU", "Sigmoid"]

    def test_sequential_registers_parameters(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(0)), nn.Tanh())
        assert model.num_parameters() == 6

    @pytest.mark.parametrize(
        "module,reference",
        [
            (nn.Tanh(), np.tanh),
            (nn.ReLU(), lambda v: np.maximum(v, 0)),
            (nn.Sigmoid(), lambda v: 1 / (1 + np.exp(-v))),
        ],
        ids=["tanh", "relu", "sigmoid"],
    )
    def test_activation_values(self, module, reference):
        values = np.linspace(-2, 2, 9)
        assert np.allclose(module(Tensor(values)).data, reference(values))

    def test_leaky_relu_slope(self):
        module = nn.LeakyReLU(0.2)
        assert np.allclose(module(Tensor([-1.0])).data, [-0.2])

    def test_softplus_positive(self):
        out = nn.Softplus()(Tensor(np.linspace(-5, 5, 11))).data
        assert np.all(out > 0)


class TestLosses:
    def test_mse_zero_for_exact(self):
        loss = nn.MSELoss()(Tensor([1.0, 2.0]), np.array([1.0, 2.0]))
        assert loss.item() == 0.0

    def test_ce_decreases_with_confidence(self):
        loss_fn = nn.CrossEntropyLoss()
        weak = loss_fn(Tensor([[1.0, 0.0]]), np.array([0]))
        strong = loss_fn(Tensor([[5.0, 0.0]]), np.array([0]))
        assert strong.item() < weak.item()


class TestInit:
    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= bound)

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((400, 400), rng)
        assert abs(w.std() - np.sqrt(2.0 / 800)) < 5e-4

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 8), rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 64))

    def test_uniform_range(self):
        rng = np.random.default_rng(0)
        w = init.uniform((1000,), rng, -0.5, 0.25)
        assert w.min() >= -0.5 and w.max() <= 0.25
