"""Tiling compiler: placement semantics, edge cases, conservation laws."""

import numpy as np
import pytest

from repro.core import PrintedNeuralNetwork
from repro.core.params import snapshot_params
from repro.exporting import TileSpec, TilingError, compile_tiling, design_report
from repro.exporting.tiling import RAIL_ROWS, iter_tile_devices
from repro.surrogate import AnalyticSurrogate

SURROGATES = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))


def make_pnn(sizes, seed=0):
    return PrintedNeuralNetwork(sizes, SURROGATES, rng=np.random.default_rng(seed))


class TestTileSpec:
    def test_unbounded_default(self):
        spec = TileSpec()
        assert spec.is_unbounded
        assert spec.data_rows_per_tile is None

    def test_rows_must_leave_data_rows(self):
        with pytest.raises(TilingError):
            TileSpec(max_rows=RAIL_ROWS)
        TileSpec(max_rows=RAIL_ROWS + 1)  # smallest legal tile

    def test_invalid_cols_and_policy(self):
        with pytest.raises(TilingError):
            TileSpec(max_cols=0)
        with pytest.raises(TilingError):
            TileSpec(bias_policy="everywhere")
        with pytest.raises(TilingError):
            TileSpec(inverter_budget=-1)


class TestUnboundedCompile:
    def test_single_tile_per_layer(self):
        pnn = make_pnn([3, 3, 2])
        tiled = compile_tiling(pnn)
        assert tiled.is_untiled
        for layer in tiled.layers:
            assert layer.n_tiles == 1
            assert layer.summing_columns == ()
        # the single tile carries exactly the report matrix
        report = design_report(pnn)
        for layer, lr in zip(tiled.layers, report.layers):
            tile = layer.tiles[0]
            np.testing.assert_array_equal(tile.resistances, lr.crossbar_resistances)
        assert tiled.n_devices == report.total_printed_resistors

    def test_accepts_params_snapshot_and_report(self):
        pnn = make_pnn([3, 3, 2])
        by_pnn = compile_tiling(pnn)
        by_params = compile_tiling(snapshot_params(pnn))
        by_report = compile_tiling(design_report(pnn))
        assert by_pnn.n_devices == by_params.n_devices == by_report.n_devices


class TestBoundedCompile:
    def test_layer_wider_than_one_tile(self):
        # layer 0 crossbar: 8 rows (6 data + rails) x 10 cols → 2 col blocks
        pnn = make_pnn([6, 10, 4])
        tiled = compile_tiling(pnn, TileSpec(max_rows=8, max_cols=8))
        layer0 = tiled.layers[0]
        assert (layer0.n_row_blocks, layer0.n_col_blocks) == (1, 2)
        assert layer0.tiles[0].col_stop == 8
        assert layer0.tiles[1].col_start == 8 and layer0.tiles[1].col_stop == 10
        # layer 1: 10 data rows over 6-row blocks → 2 row blocks
        layer1 = tiled.layers[1]
        assert (layer1.n_row_blocks, layer1.n_col_blocks) == (2, 1)
        assert len(layer1.summing_columns) == 4

    def test_exact_fit_boundary(self):
        # 6 data rows into tiles of exactly 6 data rows → one block, and
        # one more input would spill into a second block.
        spec = TileSpec(max_rows=8, max_cols=16)
        assert compile_tiling(make_pnn([6, 4, 2]), spec).layers[0].n_row_blocks == 1
        assert compile_tiling(make_pnn([7, 4, 2]), spec).layers[0].n_row_blocks == 2

    def test_device_conservation_policy_first(self):
        pnn = make_pnn([6, 10, 4])
        report = design_report(pnn)
        tiled = compile_tiling(pnn, TileSpec(max_rows=8, max_cols=8))
        assert tiled.n_devices == report.total_printed_resistors

    def test_bias_rows_duplicated_under_split(self):
        pnn = make_pnn([6, 10, 4])
        report = design_report(pnn)
        tiled = compile_tiling(
            pnn, TileSpec(max_rows=8, max_cols=8, bias_policy="split")
        )
        # layer 1 has 2 row blocks x 1 col block: its 2x4 rail devices are
        # printed once more than in the flat design.
        extra = 2 * 4
        assert tiled.n_devices == report.total_printed_resistors + extra

    def test_split_rails_conserve_conductance(self):
        pnn = make_pnn([6, 10, 4])
        report = design_report(pnn)
        tiled = compile_tiling(
            pnn, TileSpec(max_rows=8, max_cols=8, bias_policy="split")
        )
        flat = report.layers[1].crossbar_resistances
        layer = tiled.layers[1]
        n_in = layer.n_inputs
        for j in range(layer.n_outputs):
            for rail, global_row in (("bias", n_in), ("ground", n_in + 1)):
                parallel = 0.0
                for tile in layer.tiles:
                    if not (tile.col_start <= j < tile.col_stop):
                        continue
                    local = tile.resistances[-RAIL_ROWS + (global_row - n_in), j - tile.col_start]
                    if np.isfinite(local):
                        parallel += 1.0 / local
                assert parallel == pytest.approx(1.0 / flat[global_row, j], rel=1e-12)

    def test_first_policy_puts_rails_in_first_row_block(self):
        pnn = make_pnn([6, 10, 4])
        tiled = compile_tiling(pnn, TileSpec(max_rows=8, max_cols=8))
        layer = tiled.layers[1]
        for tile in layer.tiles:
            rails = tile.resistances[-RAIL_ROWS:]
            if tile.row_block == 0:
                assert np.isfinite(rails).all()
            else:
                assert not np.isfinite(rails).any()

    def test_row_map_tracks_global_rows(self):
        pnn = make_pnn([6, 10, 4])
        tiled = compile_tiling(pnn, TileSpec(max_rows=8, max_cols=8))
        report = design_report(pnn)
        for layer, lr in zip(tiled.layers, report.layers):
            for tile in layer.tiles:
                for _lr_, _lc, grow, gcol, resistance, negated in iter_tile_devices(tile):
                    if tile.r_scale[_lr_] == 1.0:
                        assert resistance == lr.crossbar_resistances[grow, gcol]
                    assert negated == (
                        lr.negated_inputs[grow, gcol] and grow != layer.n_inputs + 1
                    )

    def test_inverter_budget_enforced(self):
        pnn = make_pnn([6, 10, 4])
        for layer in pnn.layers:
            layer.theta.data[:] = np.abs(layer.theta.data)
        pnn.layers[0].theta.data[:4, :4] = -np.abs(pnn.layers[0].theta.data[:4, :4])
        compile_tiling(pnn, TileSpec(max_rows=8, max_cols=8, inverter_budget=16))
        with pytest.raises(TilingError, match="budget"):
            compile_tiling(pnn, TileSpec(max_rows=8, max_cols=8, inverter_budget=15))

    def test_utilization_bounds(self):
        pnn = make_pnn([6, 10, 4])
        tiled = compile_tiling(pnn, TileSpec(max_rows=8, max_cols=8))
        assert 0.0 < tiled.utilization <= 1.0

    def test_skipped_accounting_propagates(self):
        pnn = make_pnn([6, 10, 4])
        pnn.layers[0].theta.data[0, 0] = 0.0
        pnn.layers[1].theta.data[0, 0] = np.nan
        tiled = compile_tiling(pnn, TileSpec(max_rows=8, max_cols=8))
        assert tiled.skipped_zero == 1
        assert tiled.skipped_load_bearing == 1


class TestTelemetry:
    def test_tile_span_and_counters(self, tmp_path):
        from repro import telemetry
        from repro.telemetry import read_events, summarize_events

        telemetry.enable(tmp_path / "tel")
        try:
            pnn = make_pnn([6, 10, 4])
            tiled = compile_tiling(pnn, TileSpec(max_rows=8, max_cols=8))
            telemetry.get().merge()
        finally:
            telemetry.disable()
        events = read_events(tmp_path / "tel")
        spans = [e for e in events if e.get("kind") == "span" and e["name"] == "export.tile"]
        assert len(spans) == 1
        counters = summarize_events(events)["counters"]
        assert counters["export.tiles"] == tiled.n_tiles
        assert counters["export.devices"] == tiled.n_devices
