"""Export of per-neuron bespoke designs and remaining small accessors."""

import numpy as np

from repro.core import PrintedNeuralNetwork
from repro.exporting import design_report, export_netlist_text
from repro.optim import SGD, StepLR
from repro.nn.module import Parameter
from repro.surrogate import AnalyticSurrogate


class TestPerNeuronExport:
    def _pnn(self):
        surrogates = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))
        return PrintedNeuralNetwork(
            [3, 4, 2], surrogates, per_neuron_activation=True,
            rng=np.random.default_rng(0),
        )

    def test_report_lists_every_bespoke_circuit(self):
        report = design_report(self._pnn())
        assert report.layers[0].activation_omega.shape == (4, 7)
        assert report.layers[1].activation_omega.shape == (2, 7)
        summary = report.summary()
        assert "activation circuit 3" in summary     # four circuits on layer 0

    def test_netlist_exports_for_per_neuron_design(self):
        text = export_netlist_text(self._pnn())
        assert text.endswith(".end")
        act_cards = [l for l in text.splitlines() if l.startswith("Xact_")]
        assert len(act_cards) == 6                    # 4 + 2 outputs


class TestSmallAccessors:
    def test_scheduler_current_lrs(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = StepLR(optimizer, step_size=1, gamma=0.5)
        scheduler.step()
        assert scheduler.current_lrs() == [0.5]

    def test_netlist_devices_property(self):
        from repro.spice import Netlist

        netlist = Netlist()
        netlist.add_voltage_source("V1", "a", "0", 1.0)
        netlist.add_resistor("R1", "a", "0", 10.0)
        assert len(netlist.devices) == 2
