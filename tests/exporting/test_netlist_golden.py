"""Byte-identity of the untiled netlist and structure of the tiled one.

The golden files under ``tests/exporting/golden/`` were recorded from the
flat exporter *before* the tiling compiler existed; ``export_netlist_text``
now routes through ``compile_tiling`` + the single-tile emission branch
and must reproduce them byte for byte.
"""

from collections import defaultdict
from pathlib import Path

import numpy as np
import pytest

from repro.core import PrintedNeuralNetwork
from repro.exporting import (
    TileSpec,
    compile_tiling,
    design_report,
    export_netlist_text,
    export_tiled_netlist_text,
)
from repro.surrogate import AnalyticSurrogate

GOLDEN_DIR = Path(__file__).parent / "golden"
SURROGATES = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))


def _golden(name: str) -> str:
    return (GOLDEN_DIR / name).read_text()


class TestUntiledByteIdentity:
    def test_plain_design(self):
        pnn = PrintedNeuralNetwork([3, 3, 2], SURROGATES, rng=np.random.default_rng(0))
        text = export_netlist_text(pnn, title="golden") + "\n"
        assert text == _golden("untiled_3_3_2.netlist")

    def test_per_neuron_activation(self):
        pnn = PrintedNeuralNetwork(
            [4, 3, 3], SURROGATES, rng=np.random.default_rng(1),
            per_neuron_activation=True,
        )
        text = export_netlist_text(pnn, title="golden-per-neuron") + "\n"
        assert text == _golden("untiled_per_neuron_4_3_3.netlist")

    def test_negated_routes(self):
        pnn = PrintedNeuralNetwork([3, 3, 2], SURROGATES, rng=np.random.default_rng(0))
        pnn.layers[0].theta.data[0, 0] = -0.5
        pnn.layers[1].theta.data[2, 1] = -1.7
        text = export_netlist_text(pnn, title="golden-negated") + "\n"
        assert text == _golden("untiled_negated_3_3_2.netlist")

    def test_matches_unbounded_tiled_emitter(self):
        """export_netlist_text IS the unbounded single-tile special case."""
        pnn = PrintedNeuralNetwork([3, 3, 2], SURROGATES, rng=np.random.default_rng(0))
        tiled = compile_tiling(pnn, TileSpec())
        assert tiled.is_untiled
        assert export_tiled_netlist_text(tiled, title="golden") == export_netlist_text(
            pnn, title="golden"
        )


def _column_conductances(text: str) -> dict:
    """Sum 1/R per output node over all resistor cards of a netlist."""
    sums = defaultdict(float)
    for line in text.splitlines():
        if not line.startswith("R"):
            continue
        _name, _a, node_b, resistance = line.split()
        sums[node_b] += 1.0 / float(resistance)
    return sums


class TestTiledNetlist:
    @pytest.fixture
    def pnn(self):
        pnn = PrintedNeuralNetwork([6, 10, 4], SURROGATES, rng=np.random.default_rng(5))
        pnn.layers[0].theta.data[1, 2] = -0.3
        return pnn

    def test_conductance_per_column_conserved(self, pnn):
        """Tiling re-places devices; the summed conductance at each column
        node must equal the flat netlist's (the electrical invariant)."""
        flat = _column_conductances(export_netlist_text(pnn))
        for policy in ("first", "split"):
            tiled = compile_tiling(pnn, TileSpec(8, 8, bias_policy=policy))
            cond = _column_conductances(export_tiled_netlist_text(tiled))
            assert set(cond) == set(flat)
            for node in flat:
                # cards print 4 significant digits; exact conservation on
                # the arrays is covered by tests/exporting/test_tiling.py
                assert cond[node] == pytest.approx(flat[node], rel=1e-3)

    def test_structure(self, pnn):
        tiled = compile_tiling(pnn, TileSpec(8, 8))
        text = export_tiled_netlist_text(tiled, title="tiled")
        lines = text.splitlines()
        assert lines[0] == "* tiled: printed neuromorphic circuit"
        assert any(l.startswith("* tiling: 8x8") for l in lines)
        assert text.rstrip().endswith(".end")
        # one section header per tile
        headers = [l for l in lines if l.startswith("* -- tile ")]
        assert len(headers) == tiled.n_tiles
        # inter-tile summing nodes are called out
        assert any(l.startswith("* summing node ") for l in lines)
        # device names unique
        cards = [l.split()[0] for l in lines if l[0] in "RX"]
        assert len(cards) == len(set(cards))

    def test_device_card_count_matches_design(self, pnn):
        tiled = compile_tiling(pnn, TileSpec(8, 8))
        text = export_tiled_netlist_text(tiled)
        r_cards = [l for l in text.splitlines() if l.startswith("R_")]
        assert len(r_cards) == tiled.n_devices
        inv_cards = [l for l in text.splitlines() if l.startswith("Xinv_")]
        assert len(inv_cards) == tiled.n_inverters

    def test_activation_instances_per_output(self, pnn):
        tiled = compile_tiling(pnn, TileSpec(8, 8))
        text = export_tiled_netlist_text(tiled)
        act = [l for l in text.splitlines() if l.startswith("Xact_")]
        assert len(act) == 10 + 4


class TestSkippedDeviceAccounting:
    def test_zero_theta_is_benign(self):
        pnn = PrintedNeuralNetwork([3, 3, 2], SURROGATES, rng=np.random.default_rng(0))
        pnn.layers[0].theta.data[0, 0] = 0.0
        report = design_report(pnn)
        assert report.layers[0].skipped_zero == 1
        assert report.layers[0].skipped_load_bearing == 0
        assert report.total_skipped_devices == 1
        assert "skipped devices: 1 (0 load-bearing)" in report.summary()

    def test_nan_theta_is_load_bearing(self):
        pnn = PrintedNeuralNetwork([3, 3, 2], SURROGATES, rng=np.random.default_rng(0))
        pnn.layers[1].theta.data[1, 1] = np.nan
        report = design_report(pnn)
        assert report.layers[1].skipped_load_bearing == 1
        assert report.total_load_bearing_skips == 1

    def test_clean_design_reports_nothing(self):
        pnn = PrintedNeuralNetwork([3, 3, 2], SURROGATES, rng=np.random.default_rng(0))
        report = design_report(pnn)
        assert report.total_skipped_devices == 0
        assert "skipped" not in report.summary()
