"""Closed-loop deployment verification through the batched SPICE engine."""

import numpy as np
import pytest

from repro.core import PrintedNeuralNetwork
from repro.core.kernels import network_forward
from repro.core.params import snapshot_params
from repro.exporting import (
    TileSpec,
    compile_tiling,
    deploy_report,
    verify_deployment,
)
from repro.exporting.deploy import CROSSBAR_TOL, OUTPUT_TOL
from repro.surrogate import AnalyticSurrogate

SURROGATES = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))


def make_params(sizes, seed=0):
    pnn = PrintedNeuralNetwork(sizes, SURROGATES, rng=np.random.default_rng(seed))
    return snapshot_params(pnn)


def inputs(n, width, seed=1):
    return np.random.default_rng(seed).uniform(0.0, 1.0, size=(n, width))


class TestNominalAgreement:
    def test_small_untiled(self):
        params = make_params([3, 3, 2])
        x = inputs(6, 3)
        v = verify_deployment(params, x)
        assert v.passed
        s = v.scenarios[0]
        assert s.scenario == "nominal"
        assert s.max_output_divergence <= OUTPUT_TOL
        assert s.prediction_agreement == 1.0
        # per-stage solver agreement stays within the documented gmin bound
        assert all(d <= CROSSBAR_TOL for d in s.crossbar_divergence)

    def test_64_neuron_tiled_design(self):
        """Acceptance: a 64-neuron design tiled at 8x8 re-simulates through
        solve_dc_batch and agrees with network_forward on every sample."""
        params = make_params([16, 48, 16], seed=7)
        x = inputs(4, 16, seed=3)
        v = verify_deployment(
            params, x, TileSpec(max_rows=8, max_cols=8),
            scenarios=("nominal", "default", "stuck-1pct"), n_mc=2, seed=0,
        )
        assert v.passed
        for s in v.scenarios:
            assert s.max_output_divergence <= OUTPUT_TOL
            assert s.n_route_flips == 0
        reference = network_forward(params, x)
        assert reference.shape == (1, 4, 16)

    def test_both_bias_policies_agree(self):
        params = make_params([6, 10, 4], seed=5)
        x = inputs(4, 6)
        for policy in ("first", "split"):
            v = verify_deployment(
                params, x, TileSpec(max_rows=8, max_cols=8, bias_policy=policy)
            )
            assert v.passed, policy


class TestScenarioAgreement:
    @pytest.mark.parametrize("scenario", ["default", "gaussian", "stuck-1pct", "correlated"])
    def test_scenario(self, scenario):
        params = make_params([6, 10, 4], seed=5)
        x = inputs(4, 6)
        v = verify_deployment(
            params, x, TileSpec(max_rows=8, max_cols=8),
            scenarios=(scenario,), n_mc=3, seed=11,
        )
        assert v.passed, v.summary()

    def test_same_epsilon_draws_as_kernel(self):
        """Verification compares against network_forward under the SAME
        pre-drawn variation factors — not a fresh RNG stream."""
        params = make_params([6, 10, 4], seed=5)
        x = inputs(4, 6)
        v = verify_deployment(
            params, x, TileSpec(max_rows=8, max_cols=8),
            scenarios=("stuck-1pct",), n_mc=4, seed=2,
        )
        # with a fresh stream stuck devices would differ and divergence
        # would be orders of magnitude above solver noise
        assert v.scenarios[0].max_output_divergence < 1e-6


class TestDetection:
    def test_corrupted_tile_value_fails(self):
        params = make_params([6, 10, 4], seed=5)
        tiled = compile_tiling(params, TileSpec(max_rows=8, max_cols=8))
        tiled.layers[1].tiles[0].resistances[0, 0] *= 3.0
        v = verify_deployment(params, inputs(4, 6), tiled=tiled)
        assert not v.passed
        assert "divergence" in v.scenarios[0].failure

    def test_load_bearing_skip_fails(self):
        pnn = PrintedNeuralNetwork([3, 3, 2], SURROGATES, rng=np.random.default_rng(0))
        pnn.layers[0].theta.data[0, 0] = np.nan
        v = verify_deployment(snapshot_params(pnn), inputs(4, 3))
        assert not v.passed
        assert "load-bearing" in v.scenarios[0].failure

    def test_benign_zero_theta_passes(self):
        pnn = PrintedNeuralNetwork([3, 3, 2], SURROGATES, rng=np.random.default_rng(0))
        pnn.layers[0].theta.data[0, 0] = 0.0
        v = verify_deployment(snapshot_params(pnn), inputs(4, 3))
        assert v.passed


class TestDeployReport:
    def test_fields_and_summary(self):
        params = make_params([6, 10, 4], seed=5)
        report = deploy_report(
            params, TileSpec(max_rows=8, max_cols=8),
            scenarios=("nominal", "default"), n_mc=2,
        )
        assert report.passed
        assert report.n_tiles == 4
        assert 0.0 < report.utilization <= 1.0
        assert report.area_mm2 > 0
        assert report.static_power_uw > 0
        assert report.model_load_s > 0
        assert report.invoke_s > 0
        assert report.lanes_per_second > 0
        text = report.summary()
        assert "deploy report" in text
        assert "model load" in text and "invoke" in text
        assert "PASS" in text

    def test_report_without_verification(self):
        params = make_params([3, 3, 2])
        report = deploy_report(params, verify=False)
        assert report.verification is None
        assert report.passed  # nothing to fail

    def test_report_accepts_precompiled_design(self):
        params = make_params([6, 10, 4], seed=5)
        tiled = compile_tiling(params, TileSpec(max_rows=8, max_cols=8))
        report = deploy_report(params, tiled=tiled, scenarios=("nominal",))
        assert report.n_tiles == tiled.n_tiles


class TestTelemetry:
    def test_verify_span_counters_and_report_section(self, tmp_path):
        from repro import telemetry
        from repro.experiments.report import render_telemetry_report
        from repro.telemetry import read_events, summarize_events

        telemetry.enable(tmp_path / "tel")
        try:
            params = make_params([6, 10, 4], seed=5)
            deploy_report(
                params, TileSpec(max_rows=8, max_cols=8),
                scenarios=("nominal", "stuck-1pct"), n_mc=2,
            )
            telemetry.get().merge()
        finally:
            telemetry.disable()
        events = read_events(tmp_path / "tel")
        assert any(e.get("kind") == "span" and e["name"] == "export.verify"
                   for e in events)
        assert any(e.get("kind") == "event" and e["name"] == "export.deploy"
                   for e in events)
        counters = summarize_events(events)["counters"]
        assert counters.get("export.verify_failures", 0) == 0
        assert counters["export.verify_lanes"] == 8 + 16
        rendered = render_telemetry_report(tmp_path / "tel")
        assert "export:" in rendered
        assert "verification failures: 0" in rendered
