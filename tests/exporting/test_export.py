"""Design export: bill of components and netlist text."""

import numpy as np
import pytest

from repro.core import PrintedNeuralNetwork
from repro.exporting import design_report, export_netlist_text
from repro.exporting.report import PHYSICAL_SCALE
from repro.surrogate import AnalyticSurrogate
from repro.surrogate.design_space import DESIGN_SPACE


@pytest.fixture
def pnn():
    surrogates = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))
    return PrintedNeuralNetwork([3, 3, 2], surrogates, rng=np.random.default_rng(0))


class TestDesignReport:
    def test_layer_count(self, pnn):
        report = design_report(pnn)
        assert len(report.layers) == 2
        assert report.layer_sizes == [3, 3, 2]

    def test_resistances_physical_range(self, pnn):
        report = design_report(pnn)
        for layer in report.layers:
            finite = layer.crossbar_resistances[np.isfinite(layer.crossbar_resistances)]
            # Surrogate band [0.01, 10] with scale 1e-5 → 10 kΩ .. 10 MΩ.
            assert np.all(finite >= 1.0 / (10.0 * PHYSICAL_SCALE) - 1e-6)
            assert np.all(finite <= 1.0 / (0.01 * PHYSICAL_SCALE) + 1e-6)

    def test_negation_mask_matches_theta_sign(self, pnn):
        report = design_report(pnn)
        for layer, player in zip(report.layers, pnn.layers):
            assert np.array_equal(layer.negated_inputs, player.printable_theta() < 0)

    def test_omega_within_design_space(self, pnn):
        report = design_report(pnn)
        for layer in report.layers:
            for omega in layer.activation_omega:
                assert DESIGN_SPACE.contains(omega, atol=1e-6)
            for omega in layer.negation_omega:
                assert DESIGN_SPACE.contains(omega, atol=1e-6)

    def test_summary_readable(self, pnn):
        summary = design_report(pnn).summary()
        assert "topology 3-3-2" in summary
        assert "kΩ" in summary and "µm" in summary

    def test_total_count_consistent(self, pnn):
        report = design_report(pnn)
        assert report.total_printed_resistors == sum(
            layer.printed_resistor_count for layer in report.layers
        )


class TestNetlistExport:
    def test_contains_all_sections(self, pnn):
        text = export_netlist_text(pnn, title="unit test")
        assert text.startswith("* unit test")
        assert "---- layer 0 ----" in text
        assert "---- layer 1 ----" in text
        assert text.endswith(".end")

    def test_one_card_per_printed_resistor(self, pnn):
        report = design_report(pnn)
        text = export_netlist_text(pnn)
        resistor_cards = [l for l in text.splitlines() if l.startswith("R")]
        assert len(resistor_cards) == report.total_printed_resistors

    def test_negative_routes_have_inverter_instances(self, pnn):
        pnn.layers[0].theta.data[0, 0] = -0.5   # force one negative weight
        text = export_netlist_text(pnn)
        assert "Xinv_0_0_0" in text

    def test_activation_instances_per_output(self, pnn):
        text = export_netlist_text(pnn)
        # Layer 0 has 3 outputs, layer 1 has 2 → 5 activation instances.
        act_cards = [l for l in text.splitlines() if l.startswith("Xact_")]
        assert len(act_cards) == 5
