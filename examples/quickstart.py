"""Quickstart: design a printed neuromorphic classifier for Iris.

Trains a pNN with learnable nonlinear circuits and variation-aware training
(the paper's proposed configuration), evaluates it under 10% printing
variation, and prints the resulting printable design.

Run:  python examples/quickstart.py  [--fast]
"""

import argparse

import numpy as np

from repro import get_default_bundle
from repro.core import PrintedNeuralNetwork, TrainConfig, train_pnn, evaluate_mc
from repro.datasets import load_splits
from repro.exporting import design_report
from repro.surrogate import AnalyticSurrogate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the analytic surrogate and a small budget (no bundle build)",
    )
    args = parser.parse_args()

    if args.fast:
        surrogates = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))
        epochs, patience = 400, 200
    else:
        print("Loading (or building) the NN surrogate bundle ...")
        surrogates = get_default_bundle(verbose=True)
        epochs, patience = 1500, 400

    splits = load_splits("iris", seed=1)
    print(f"\nDataset: iris, {splits.sizes()} train/val/test, {splits.n_classes} classes")

    pnn = PrintedNeuralNetwork(
        [splits.n_features, 3, splits.n_classes],
        surrogates,
        rng=np.random.default_rng(1),
    )
    print(f"pNN topology {splits.n_features}-3-{splits.n_classes}, "
          f"{pnn.num_parameters()} learnable parameters")

    config = TrainConfig(
        epsilon=0.10,            # variation-aware training at 10%
        n_mc_train=10,
        max_epochs=epochs,
        patience=patience,
        seed=1,
    )
    print("Training (variation-aware, ϵ = 10%) ...")
    result = train_pnn(
        pnn, splits.x_train, splits.y_train, splits.x_val, splits.y_val, config
    )
    print(f"best epoch {result.best_epoch}, validation loss {result.best_val_loss:.4f}")

    nominal = evaluate_mc(pnn, splits.x_test, splits.y_test, epsilon=0.0)
    varied = evaluate_mc(pnn, splits.x_test, splits.y_test, epsilon=0.10, n_test=100, seed=7)
    print(f"\ntest accuracy, nominal circuit:      {nominal}")
    print(f"test accuracy under 10% variation:   {varied}")

    print("\n--- printable design ---")
    print(design_report(pnn).summary())


if __name__ == "__main__":
    main()
