"""Walk the surrogate-modelling pipeline of Fig. 3, step by step.

Shows every stage with real numbers: Sobol-sampled design points, a DC
sweep of the printed tanh circuit from the built-in SPICE-like solver, the
least-squares extraction of η, and the regression quality of the trained
surrogate MLP (the data behind Fig. 4).

Run:  python examples/surrogate_pipeline.py
"""

import numpy as np

from repro.experiments.figures import ascii_curves
from repro.circuits import simulate_ptanh_curve
from repro.surrogate import (
    build_surrogate_dataset,
    fit_ptanh,
    ptanh_curve,
    sample_design_points,
    train_surrogate,
)
from repro.surrogate.design_space import DESIGN_SPACE, OMEGA_NAMES


def main() -> None:
    print("Step 1 — design space (Table I):")
    print(DESIGN_SPACE.as_table())

    print("\nStep 2 — Sobol QMC sampling of feasible design points:")
    omegas = sample_design_points(8, seed=11)
    header = "  ".join(f"{name:>9s}" for name in OMEGA_NAMES)
    print("   " + header)
    for omega in omegas[:4]:
        print("   " + "  ".join(f"{value:>9.3g}" for value in omega))

    print("\nStep 3 — DC sweep of the ptanh circuit (first sampled point):")
    v_in, v_out = simulate_ptanh_curve(omegas[0], n_points=41)
    print(ascii_curves(v_in, v_out[None, :]))

    print("\nStep 4 — fit Eq. 2 to the sweep:")
    fit = fit_ptanh(v_in, v_out)
    print(f"   η = {np.round(fit.eta, 3)}   RMSE = {fit.rmse:.2e}")
    worst = np.max(np.abs(ptanh_curve(fit.eta, v_in) - v_out))
    print(f"   worst-case fit error {worst * 1e3:.2f} mV over the sweep")

    print("\nStep 5 — build a dataset and train the surrogate MLP:")
    dataset = build_surrogate_dataset("ptanh", n_points=512, sweep_points=33, seed=1)
    print(f"   kept {len(dataset)} identifiable curves of 512 samples")
    result = train_surrogate(dataset, max_epochs=2000, patience=300, seed=1)
    print(f"   validation MSE {result.val_mse:.2e}, test MSE {result.test_mse:.2e}")
    print(f"   per-η test R²: {np.round(result.r2_per_eta, 3)} (Fig. 4 right)")


if __name__ == "__main__":
    main()
