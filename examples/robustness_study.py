"""Robustness study: how accuracy degrades with printing variation.

Reproduces the paper's robustness story as a sweep: train a pNN nominally
and variation-aware, then evaluate both across a range of variation levels
ϵ (beyond the paper's 5%/10% grid) to locate where each design breaks down.
Useful when choosing a printing process: coarser printing is cheaper but
noisier.

Run:  python examples/robustness_study.py
"""

import numpy as np

from repro.core import PrintedNeuralNetwork, TrainConfig, train_pnn, evaluate_mc
from repro.datasets import load_splits
from repro.surrogate import AnalyticSurrogate

DATASET = "seeds"
TRAIN_EPSILON = 0.10
SWEEP = (0.0, 0.025, 0.05, 0.10, 0.15, 0.20)


def train(splits, epsilon: float, seed: int = 2):
    surrogates = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))
    pnn = PrintedNeuralNetwork(
        [splits.n_features, 3, splits.n_classes], surrogates, rng=np.random.default_rng(seed)
    )
    config = TrainConfig(
        epsilon=epsilon, n_mc_train=10, max_epochs=1000, patience=250, seed=seed
    )
    train_pnn(pnn, splits.x_train, splits.y_train, splits.x_val, splits.y_val, config)
    return pnn


def main() -> None:
    splits = load_splits(DATASET, seed=2)
    print(f"dataset: {DATASET} {splits.sizes()}  classes: {splits.n_classes}\n")

    print("training nominal design (ϵ_train = 0) ...")
    nominal = train(splits, epsilon=0.0)
    print(f"training variation-aware design (ϵ_train = {TRAIN_EPSILON:.0%}) ...\n")
    robust = train(splits, epsilon=TRAIN_EPSILON)

    header = f"{'ϵ_test':>8s} {'nominal design':>22s} {'variation-aware design':>24s}"
    print(header)
    print("-" * len(header))
    for eps in SWEEP:
        row = f"{eps:>8.1%}"
        for pnn in (nominal, robust):
            accuracy = evaluate_mc(
                pnn, splits.x_test, splits.y_test, epsilon=eps, n_test=60, seed=5
            )
            row += f"{accuracy.mean:>15.3f} ± {accuracy.std:.3f}"
        print(row)

    print(
        "\nThe variation-aware design should hold its accuracy (and show a much\n"
        "smaller std) as ϵ grows — the paper's robustness result, extended to a sweep."
    )


if __name__ == "__main__":
    main()
