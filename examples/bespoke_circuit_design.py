"""Bespoke circuit design for a wearable health patch (end-to-end flow).

The paper's motivation: printed electronics enables *highly bespoke*,
task-specific circuits for wearables and smart consumer goods.  This
example walks the complete design flow for a flexible patch that classifies
vertebral-column disorders from six biomechanical sensor channels:

1. build the surrogate models from circuit simulation (Fig. 3 pipeline),
2. co-train the crossbar conductances θ *and* the nonlinear circuit
   parameters 𝔴 under the expected printing variation (Sec. III),
3. compare against the prior-work baseline (fixed nonlinear circuits,
   nominal training),
4. export the winning design as a printable component list and netlist.

Run:  python examples/bespoke_circuit_design.py
"""

import numpy as np

from repro import get_default_bundle
from repro.core import PrintedNeuralNetwork, TrainConfig, train_pnn, evaluate_mc
from repro.datasets import load_splits
from repro.exporting import design_report, export_netlist_text

EPSILON = 0.10        # the patch will be printed at coarse (cheap) resolution
DATASET = "vertebral_3c"


def build_and_train(splits, bundle, learnable: bool, epsilon: float, seed: int = 1):
    pnn = PrintedNeuralNetwork(
        [splits.n_features, 3, splits.n_classes], bundle, rng=np.random.default_rng(seed)
    )
    config = TrainConfig(
        learnable_nonlinear=learnable,
        epsilon=epsilon,
        n_mc_train=10,
        max_epochs=1200,
        patience=300,
        seed=seed,
    )
    train_pnn(pnn, splits.x_train, splits.y_train, splits.x_val, splits.y_val, config)
    return pnn


def main() -> None:
    print("Step 1: surrogate models (cached after the first run)")
    bundle = get_default_bundle(verbose=True)

    splits = load_splits(DATASET, seed=1)
    print(f"\nStep 2: co-train θ and 𝔴 under ϵ = {EPSILON:.0%} variation "
          f"({DATASET}, {splits.sizes()} samples)")
    bespoke = build_and_train(splits, bundle, learnable=True, epsilon=EPSILON)

    print("Step 3: prior-work baseline (fixed nonlinear circuit, nominal training)")
    baseline = build_and_train(splits, bundle, learnable=False, epsilon=0.0)

    for name, pnn in (("bespoke (proposed)", bespoke), ("baseline (prior work)", baseline)):
        accuracy = evaluate_mc(
            pnn, splits.x_test, splits.y_test, epsilon=EPSILON, n_test=100, seed=11
        )
        print(f"  {name:24s} accuracy under {EPSILON:.0%} variation: {accuracy}")

    print("\nStep 4: export the bespoke design")
    print(design_report(bespoke).summary())
    netlist = export_netlist_text(bespoke, title=f"{DATASET} patch classifier")
    print(f"\nnetlist preview ({len(netlist.splitlines())} cards):")
    print("\n".join(netlist.splitlines()[:14]))
    print("...")


if __name__ == "__main__":
    main()
