"""Lifetime study: printed conductance aging (extension of reference [5]).

Printed resistors drift over their service life.  This example trains one
pNN nominally and one aging-aware (the Monte-Carlo machinery of
variation-aware training with an aging model plugged in) and compares
accuracy over the device lifetime — the aging analogue of the paper's
robustness result.

Run:  python examples/aging_lifetime_study.py
"""

import numpy as np

from repro.core import PrintedNeuralNetwork, TrainConfig, train_pnn
from repro.core.aging import AgingModel, evaluate_lifetime
from repro.datasets import load_splits
from repro.surrogate import AnalyticSurrogate

DATASET = "breast_cancer"
DRIFT_RATE = 0.18
TIMES = (0.0, 0.5, 1.0, 2.0, 5.0, 10.0)


def train(splits, aging_aware: bool, seed: int = 4):
    surrogates = (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))
    pnn = PrintedNeuralNetwork(
        [splits.n_features, 3, splits.n_classes], surrogates,
        rng=np.random.default_rng(seed),
    )
    config = TrainConfig(max_epochs=800, patience=200, n_mc_train=8, seed=seed)
    overrides = {}
    if aging_aware:
        overrides = {
            "variation": AgingModel(
                drift_rate=DRIFT_RATE, spread=0.02, time_horizon=TIMES[-1], seed=seed
            ),
            "val_variation": AgingModel(
                drift_rate=DRIFT_RATE, spread=0.02, time_horizon=TIMES[-1], seed=seed + 50
            ),
        }
    train_pnn(pnn, splits.x_train, splits.y_train, splits.x_val, splits.y_val,
              config, **overrides)
    return pnn


def main() -> None:
    splits = load_splits(DATASET, seed=4)
    print(f"dataset: {DATASET} {splits.sizes()}, drift rate δ = {DRIFT_RATE}\n")

    print("training nominal design ...")
    nominal = train(splits, aging_aware=False)
    print("training aging-aware design ...\n")
    aware = train(splits, aging_aware=True)

    aging = AgingModel(drift_rate=DRIFT_RATE, spread=0.02, seed=11)
    header = f"{'device age':>11s}{'nominal design':>22s}{'aging-aware design':>22s}"
    print(header)
    print("-" * len(header))
    rows = {
        label: evaluate_lifetime(
            pnn, splits.x_test, splits.y_test, aging, TIMES, n_test=40, seed=11
        )
        for label, pnn in (("nominal", nominal), ("aware", aware))
    }
    for i, age in enumerate(TIMES):
        print(
            f"{age:>11.1f}"
            f"{rows['nominal'][i].mean:>15.3f} ± {rows['nominal'][i].std:.3f}"
            f"{rows['aware'][i].mean:>15.3f} ± {rows['aware'][i].std:.3f}"
        )

    print(
        "\nThe aging-aware design should degrade more gracefully toward the end\n"
        "of the service life, at a possible small cost when fresh."
    )


if __name__ == "__main__":
    main()
