"""Dataset containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass
class Dataset:
    """A tabular classification dataset."""

    name: str
    x: np.ndarray
    y: np.ndarray
    n_classes: int
    feature_names: Tuple[str, ...] = field(default_factory=tuple)
    class_names: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.x.ndim != 2:
            raise ValueError(f"{self.name}: features must be 2-D")
        if self.y.shape != (len(self.x),):
            raise ValueError(f"{self.name}: one label per row required")
        present = np.unique(self.y)
        if present.min() < 0 or present.max() >= self.n_classes:
            raise ValueError(f"{self.name}: labels must be in [0, {self.n_classes})")

    @property
    def n_samples(self) -> int:
        return len(self.x)

    @property
    def n_features(self) -> int:
        return self.x.shape[1]

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.y, minlength=self.n_classes)

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        order = rng.permutation(self.n_samples)
        return Dataset(
            name=self.name,
            x=self.x[order],
            y=self.y[order],
            n_classes=self.n_classes,
            feature_names=self.feature_names,
            class_names=self.class_names,
        )

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, n={self.n_samples}, d={self.n_features}, "
            f"classes={self.n_classes})"
        )


@dataclass
class DatasetSplits:
    """Train/validation/test partition of a dataset (60/20/20 in the paper)."""

    name: str
    n_classes: int
    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def n_features(self) -> int:
        return self.x_train.shape[1]

    def sizes(self) -> Tuple[int, int, int]:
        return len(self.x_train), len(self.x_val), len(self.x_test)
