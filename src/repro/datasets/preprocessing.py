"""Feature scaling into the printed circuits' voltage range.

Printed neuromorphic circuits accept input voltages in 0..1 V, so features
are min-max scaled to [0, 1].  Statistics are fitted on the training split
only and applied to validation/test (values outside the training range are
clipped — a fabricated sensor frontend saturates the same way).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.base import DatasetSplits


class MinMaxScaler:
    """Per-feature min-max scaling to [0, 1] with clipping."""

    def __init__(self):
        self.minimum: Optional[np.ndarray] = None
        self.maximum: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = np.asarray(x, dtype=np.float64)
        self.minimum = x.min(axis=0)
        maximum = x.max(axis=0)
        degenerate = maximum - self.minimum < 1e-12
        self.maximum = np.where(degenerate, self.minimum + 1.0, maximum)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.minimum is None:
            raise RuntimeError("scaler must be fitted before transform")
        scaled = (np.asarray(x, dtype=np.float64) - self.minimum) / (
            self.maximum - self.minimum
        )
        return np.clip(scaled, 0.0, 1.0)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


def scale_splits(splits: DatasetSplits) -> DatasetSplits:
    """Return a copy of ``splits`` with all features scaled to 0..1 V."""
    scaler = MinMaxScaler().fit(splits.x_train)
    return DatasetSplits(
        name=splits.name,
        n_classes=splits.n_classes,
        x_train=scaler.transform(splits.x_train),
        y_train=splits.y_train,
        x_val=scaler.transform(splits.x_val),
        y_val=splits.y_val,
        x_test=scaler.transform(splits.x_test),
        y_test=splits.y_test,
    )
