"""The 13 benchmark classification datasets of Table II.

No network access is available in this environment, so the UCI datasets are
regenerated locally (see DESIGN.md for the substitution rationale):

- **Exact rule-based regeneration** where the dataset is defined by a rule:
  Balance Scale (all 625 attribute combinations), Tic-Tac-Toe Endgame (all
  958 reachable final boards), Energy Efficiency (the full 768-point
  building-parameter grid) and Acute Inflammations (the published expert
  rules).
- **Calibrated statistical generators** elsewhere: published per-class
  sample counts, dimensionalities, class balances and approximate
  class-conditional statistics (Iris, Breast Cancer Wisconsin,
  Cardiotocography, Mammographic Mass, Pendigits, Seeds, Vertebral Column).

Each dataset is returned already shuffled, with features as float64 and
class labels as int64, and is split 60/20/20 into train/validation/test as
in the paper.
"""

from repro.datasets.base import Dataset, DatasetSplits
from repro.datasets.registry import DATASET_NAMES, load_dataset, load_splits
from repro.datasets.preprocessing import MinMaxScaler
from repro.datasets.splits import stratified_split

__all__ = [
    "Dataset",
    "DatasetSplits",
    "DATASET_NAMES",
    "load_dataset",
    "load_splits",
    "MinMaxScaler",
    "stratified_split",
]
