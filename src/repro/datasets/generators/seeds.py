"""Seeds (UCI): calibrated geometric regeneration.

210 wheat kernels, 70 per variety (Kama, Rosa, Canadian), 7 geometric
features measured by soft X-ray.  Instead of sampling features
independently, the generator draws each kernel's *length and width* from
variety-specific distributions and derives the remaining features from
geometry (area and perimeter of the kernel ellipse, compactness
``4πA/P²``, groove length tracking kernel length), reproducing the strong
feature correlations of the original data.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset

FEATURES = (
    "area",
    "perimeter",
    "compactness",
    "kernel_length",
    "kernel_width",
    "asymmetry",
    "groove_length",
)

#: (kernel length mean, std), (kernel width mean, std), asymmetry mean.
VARIETIES = {
    "kama": ((5.51, 0.23), (3.25, 0.18), 2.7),
    "rosa": ((6.15, 0.27), (3.68, 0.19), 3.6),
    "canadian": ((5.23, 0.19), (2.85, 0.15), 4.8),
}


def _ellipse_perimeter(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Ramanujan's approximation for an ellipse with semi-axes a, b."""
    h = ((a - b) / (a + b)) ** 2
    return np.pi * (a + b) * (1.0 + 3.0 * h / (10.0 + np.sqrt(4.0 - 3.0 * h)))


def generate(seed: int = 0, per_class: int = 70) -> Dataset:
    rng = np.random.default_rng(seed)
    rows, labels = [], []
    for label, (name, ((lm, ls), (wm, ws), asym)) in enumerate(VARIETIES.items()):
        length = rng.normal(lm, ls, size=per_class)
        width = rng.normal(wm, ws, size=per_class)
        width = np.minimum(width, 0.92 * length)  # kernels are elongated
        semi_a, semi_b = length / 2.0, width / 2.0
        area = np.pi * semi_a * semi_b * rng.normal(1.0, 0.015, size=per_class)
        perimeter = _ellipse_perimeter(semi_a, semi_b) * rng.normal(1.0, 0.01, size=per_class)
        compactness = 4.0 * np.pi * area / perimeter**2
        asymmetry = np.abs(rng.normal(asym, 1.1, size=per_class))
        groove = 0.93 * length + rng.normal(0.0, 0.08, size=per_class)
        rows.append(
            np.stack([area, perimeter, compactness, length, width, asymmetry, groove], axis=1)
        )
        labels.extend([label] * per_class)
    return Dataset(
        name="seeds",
        x=np.vstack(rows),
        y=np.asarray(labels, dtype=np.int64),
        n_classes=3,
        feature_names=FEATURES,
        class_names=tuple(VARIETIES),
    )
