"""One module per benchmark dataset (13 datasets, Table II)."""
