"""Energy Efficiency (UCI): the full 768-point building-parameter grid.

The original dataset was produced by building-energy *simulation* over a
factorial design: 12 building shapes (relative compactness / surface /
wall / roof area combinations at fixed volume) × 4 orientations × 4 glazing
areas with 4 glazing distributions (plus the zero-glazing case folded in),
768 rows, 8 features, two targets (y1 heating load, y2 cooling load).

The grid is regenerated exactly; the simulator is replaced with a
first-order thermal model (envelope transmission + solar gain) whose
coefficients are chosen to match the published target ranges (y1 ∈ ~[6, 43],
y2 ∈ ~[10, 48]) and the dominant effects reported for the dataset (height
and glazing increase load, compactness decreases it).  As in the
aging-aware printed-NN work that introduced these benchmarks to pNNs, the
regression targets are discretized — here into tertiles (low / medium /
high load), giving two 3-class datasets that share features but differ in
their target.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.datasets.base import Dataset

FEATURES = (
    "relative_compactness",
    "surface_area",
    "wall_area",
    "roof_area",
    "overall_height",
    "orientation",
    "glazing_area",
    "glazing_distribution",
)

#: The 12 elementary building shapes of the original study: relative
#: compactness with the matching surface/wall/roof areas (volume fixed).
BUILDING_SHAPES = (
    (0.98, 514.5, 294.0, 110.25, 7.0),
    (0.90, 563.5, 318.5, 122.50, 7.0),
    (0.86, 588.0, 294.0, 147.00, 7.0),
    (0.82, 612.5, 318.5, 147.00, 7.0),
    (0.79, 637.0, 343.0, 147.00, 7.0),
    (0.76, 661.5, 416.5, 122.50, 7.0),
    (0.74, 686.0, 245.0, 220.50, 3.5),
    (0.71, 710.5, 269.5, 220.50, 3.5),
    (0.69, 735.0, 294.0, 220.50, 3.5),
    (0.66, 759.5, 318.5, 220.50, 3.5),
    (0.64, 784.0, 343.0, 220.50, 3.5),
    (0.62, 808.5, 367.5, 220.50, 3.5),
)

ORIENTATIONS = (2, 3, 4, 5)
GLAZING_AREAS = (0.10, 0.25, 0.40)
GLAZING_DISTRIBUTIONS = (1, 2, 3, 4, 5)


def _loads(row: np.ndarray) -> Tuple[float, float]:
    """First-order thermal surrogate for (heating, cooling) loads in kWh/m²."""
    rc, surface, wall, roof, height, orientation, glazing, distribution = row
    envelope = 0.016 * surface + 0.022 * roof
    leakage = 9.0 * (1.0 - rc)
    stack = 2.4 * height
    solar = 28.0 * glazing * (1.0 + 0.08 * np.sin(np.pi * orientation / 3.0))
    spread = 0.35 * distribution * glazing
    heating = 1.8 + envelope + leakage + stack + 10.0 * glazing - spread
    cooling = 6.5 + 0.9 * envelope + 0.7 * leakage + 1.3 * stack + solar + spread
    return heating, cooling


def _grid() -> np.ndarray:
    rows = []
    for shape in BUILDING_SHAPES:
        rc, surface, wall, roof, height = shape
        for orientation in ORIENTATIONS:
            # The published grid has 768 = 12 × 4 × 16 rows: glazing 0 has a
            # single "no distribution" case, the others span 5 distributions.
            rows.append((rc, surface, wall, roof, height, orientation, 0.0, 0.0))
            for glazing in GLAZING_AREAS:
                for distribution in GLAZING_DISTRIBUTIONS:
                    rows.append(
                        (rc, surface, wall, roof, height, orientation, glazing, distribution)
                    )
    return np.asarray(rows, dtype=np.float64)


def _tertile_labels(values: np.ndarray) -> np.ndarray:
    cuts = np.quantile(values, [1.0 / 3.0, 2.0 / 3.0])
    return np.digitize(values, cuts).astype(np.int64)


def _generate(target: str) -> Dataset:
    grid = _grid()
    loads = np.asarray([_loads(row) for row in grid])
    values = loads[:, 0] if target == "y1" else loads[:, 1]
    return Dataset(
        name=f"energy_{target}",
        x=grid,
        y=_tertile_labels(values),
        n_classes=3,
        feature_names=FEATURES,
        class_names=("low", "medium", "high"),
    )


def generate_y1(seed: int = 0) -> Dataset:
    """Heating-load dataset (the seed is unused: the grid is exact)."""
    del seed
    return _generate("y1")


def generate_y2(seed: int = 0) -> Dataset:
    """Cooling-load dataset (the seed is unused: the grid is exact)."""
    del seed
    return _generate("y2")
