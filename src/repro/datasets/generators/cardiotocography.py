"""Cardiotocography (UCI): calibrated regeneration.

2126 fetal cardiotocograms, 21 features (heart-rate baseline, variability,
accelerations/decelerations, histogram summaries), three classes with the
original imbalance: Normal 1655, Suspect 295, Pathologic 176.

The generator uses a per-case distress latent: pathologic traces show lower
baseline variability, more decelerations and flatter histograms; suspect
cases sit between normal and pathologic with overlap — which is exactly
what makes the original dataset moderately hard.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset

FEATURES = (
    "baseline_value", "accelerations", "fetal_movement", "uterine_contractions",
    "light_decelerations", "severe_decelerations", "prolonged_decelerations",
    "abnormal_short_term_variability", "mean_short_term_variability",
    "pct_abnormal_long_term_variability", "mean_long_term_variability",
    "histogram_width", "histogram_min", "histogram_max", "histogram_peaks",
    "histogram_zeroes", "histogram_mode", "histogram_mean", "histogram_median",
    "histogram_variance", "histogram_tendency",
)

CLASS_SIZES = {"normal": 1655, "suspect": 295, "pathologic": 176}
DISTRESS = {"normal": (0.0, 0.55), "suspect": (1.25, 0.45), "pathologic": (2.4, 0.6)}


def _trace_features(distress: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Map the distress latent (n,) to the 21 CTG features."""
    n = len(distress)
    d = distress[:, None]
    noise = rng.standard_normal((n, 21))
    x = np.empty((n, 21))
    x[:, 0] = 133 + 4 * distress + 8 * noise[:, 0]              # baseline bpm
    x[:, 1] = np.maximum(0.0032 - 0.0014 * distress + 0.003 * noise[:, 1], 0)
    x[:, 2] = np.abs(0.009 + 0.04 * noise[:, 2])                # fetal movement
    x[:, 3] = np.maximum(0.0044 + 0.0003 * distress + 0.003 * noise[:, 3], 0)
    x[:, 4] = np.maximum(0.0019 + 0.0016 * distress + 0.0025 * noise[:, 4], 0)
    x[:, 5] = np.maximum(0.0004 * (distress - 1.3) + 0.0004 * noise[:, 5], 0)
    x[:, 6] = np.maximum(0.0002 + 0.0011 * distress + 0.0009 * noise[:, 6], 0)
    x[:, 7] = np.clip(47 + 13 * distress + 14 * noise[:, 7], 12, 87)
    x[:, 8] = np.clip(1.33 - 0.22 * distress + 0.75 * noise[:, 8], 0.2, 7)
    x[:, 9] = np.clip(9.8 + 9 * distress + 16 * noise[:, 9], 0, 91)
    x[:, 10] = np.clip(8.2 - 1.1 * distress + 5 * noise[:, 10], 0, 50)
    x[:, 11] = np.clip(70 - 9 * distress + 35 * noise[:, 11], 3, 180)
    x[:, 12] = np.clip(93 + 9 * distress + 25 * noise[:, 12], 50, 159)
    x[:, 13] = np.clip(164 + 2 * distress + 16 * noise[:, 13], 122, 238)
    x[:, 14] = np.clip(np.round(4.1 - 0.5 * distress + 2.8 * noise[:, 14]), 0, 18)
    x[:, 15] = np.clip(np.round(0.32 + 0.1 * distress + 0.7 * noise[:, 15]), 0, 10)
    x[:, 16] = np.clip(138 - 4 * distress + 15 * noise[:, 16], 60, 187)
    x[:, 17] = np.clip(134 - 5 * distress + 14 * noise[:, 17], 73, 182)
    x[:, 18] = np.clip(138 - 4.5 * distress + 13 * noise[:, 18], 77, 186)
    x[:, 19] = np.clip(18 + 14 * distress + 24 * noise[:, 19], 0, 269)
    x[:, 20] = np.clip(np.round(0.32 - 0.25 * distress + 0.55 * noise[:, 20]), -1, 1)
    return x


def generate(seed: int = 0) -> Dataset:
    rng = np.random.default_rng(seed)
    blocks, labels = [], []
    for label, (name, size) in enumerate(CLASS_SIZES.items()):
        mean, std = DISTRESS[name]
        distress = rng.normal(mean, std, size=size)
        blocks.append(_trace_features(distress, rng))
        labels.extend([label] * size)
    return Dataset(
        name="cardiotocography",
        x=np.vstack(blocks),
        y=np.asarray(labels, dtype=np.int64),
        n_classes=3,
        feature_names=FEATURES,
        class_names=tuple(CLASS_SIZES),
    )
