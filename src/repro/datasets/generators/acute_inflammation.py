"""Acute Inflammations (UCI): 120 patients, 6 symptoms, 2 classes.

The original dataset was *created by a medical expert system* to test rule
learners: each row is a presumptive patient described by body temperature
and five binary symptoms, labelled with two diagnoses.  The paper uses the
first decision (inflammation of the urinary bladder).  The published
diagnostic rules are:

    bladder inflammation ⇔ urine pushing ∧
        (micturition pains ∨ (lumbar pain ∧ temperature ≥ 38 °C))

We regenerate the dataset the same way the original authors did: enumerate
symptom profiles, draw temperatures, and label with the rule.  Sizes and
class balance match the UCI original (120 rows, ~49% positive).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset

FEATURES = (
    "temperature",
    "nausea",
    "lumbar_pain",
    "urine_pushing",
    "micturition_pains",
    "burning_urethra",
)


def bladder_rule(row: np.ndarray) -> int:
    """The expert rule for urinary-bladder inflammation."""
    temperature, _, lumbar, pushing, pains, _ = row
    return int(bool(pushing) and (bool(pains) or (bool(lumbar) and temperature >= 38.0)))


def generate(seed: int = 0, n_samples: int = 120) -> Dataset:
    """Regenerate the expert-system cohort."""
    rng = np.random.default_rng(seed)
    rows = np.empty((n_samples, 6))
    # Half the cohort runs a fever (like the original's design around the
    # nephritis rule), which makes the temperature threshold informative.
    rows[:, 0] = np.where(
        rng.random(n_samples) < 0.5,
        rng.uniform(35.5, 37.9, n_samples),
        rng.uniform(38.0, 41.5, n_samples),
    )
    rows[:, 1:] = (rng.random((n_samples, 5)) < 0.5).astype(np.float64)
    # Urine pushing is prevalent in the original cohort, which balances the
    # classes at roughly 50/50.
    rows[:, 3] = (rng.random(n_samples) < 0.8).astype(np.float64)
    labels = np.array([bladder_rule(row) for row in rows], dtype=np.int64)
    return Dataset(
        name="acute_inflammation",
        x=rows,
        y=labels,
        n_classes=2,
        feature_names=FEATURES,
        class_names=("no_inflammation", "inflammation"),
    )
