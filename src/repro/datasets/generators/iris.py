"""Iris (Fisher, 1936): calibrated statistical regeneration.

150 samples, 4 features, 3 balanced classes.  The generator draws from
per-class multivariate Gaussians whose means, standard deviations and
dominant correlations match the published statistics of the original data
(e.g. setosa's small, weakly correlated petals vs. virginica's large,
strongly correlated ones), rounded to 0.1 cm like the original
measurements.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset

FEATURES = ("sepal_length", "sepal_width", "petal_length", "petal_width")

#: (mean, std) per feature and class, from the classic dataset statistics.
CLASS_STATS = {
    "setosa": (
        np.array([5.01, 3.43, 1.46, 0.25]),
        np.array([0.35, 0.38, 0.17, 0.11]),
    ),
    "versicolor": (
        np.array([5.94, 2.77, 4.26, 1.33]),
        np.array([0.52, 0.31, 0.47, 0.20]),
    ),
    "virginica": (
        np.array([6.59, 2.97, 5.55, 2.03]),
        np.array([0.64, 0.32, 0.55, 0.27]),
    ),
}

#: Shared within-class correlation structure (sepal and petal dimensions
#: are positively correlated within every species).
CORRELATION = np.array(
    [
        [1.00, 0.50, 0.75, 0.55],
        [0.50, 1.00, 0.40, 0.45],
        [0.75, 0.40, 1.00, 0.80],
        [0.55, 0.45, 0.80, 1.00],
    ]
)


def generate(seed: int = 0, per_class: int = 50) -> Dataset:
    rng = np.random.default_rng(seed)
    chol = np.linalg.cholesky(CORRELATION)
    rows, labels = [], []
    for label, (name, (mean, std)) in enumerate(CLASS_STATS.items()):
        z = rng.standard_normal((per_class, 4)) @ chol.T
        samples = mean + z * std
        samples = np.maximum(np.round(samples, 1), 0.1)
        rows.append(samples)
        labels.extend([label] * per_class)
    return Dataset(
        name="iris",
        x=np.vstack(rows),
        y=np.asarray(labels, dtype=np.int64),
        n_classes=3,
        feature_names=FEATURES,
        class_names=tuple(CLASS_STATS),
    )
