"""Mammographic Mass (UCI): calibrated regeneration.

830 complete cases, 5 features (BI-RADS assessment, age, mass shape, mass
margin, density), two nearly balanced classes (benign 427 / malignant 403).
A malignancy latent couples the ordinal radiological features (higher
BI-RADS, irregular shape, spiculated margin and older age all co-occur with
malignancy) with substantial overlap, matching the original dataset's
moderate (~80%) attainable accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset

FEATURES = ("bi_rads", "age", "shape", "margin", "density")


def generate(seed: int = 0, n_benign: int = 427, n_malignant: int = 403) -> Dataset:
    rng = np.random.default_rng(seed)

    def draw(n: int, latent_mean: float) -> np.ndarray:
        latent = rng.normal(latent_mean, 1.0, size=n)
        x = np.empty((n, 5))
        x[:, 0] = np.clip(np.round(3.1 + 0.85 * latent + 0.5 * rng.standard_normal(n)), 1, 6)
        x[:, 1] = np.clip(np.round(52 + 7.5 * latent + 11 * rng.standard_normal(n)), 18, 96)
        x[:, 2] = np.clip(np.round(2.1 + 0.75 * latent + 0.9 * rng.standard_normal(n)), 1, 4)
        x[:, 3] = np.clip(np.round(2.2 + 0.95 * latent + 1.0 * rng.standard_normal(n)), 1, 5)
        x[:, 4] = np.clip(np.round(2.9 + 0.05 * latent + 0.35 * rng.standard_normal(n)), 1, 4)
        return x

    benign = draw(n_benign, latent_mean=-0.55)
    malignant = draw(n_malignant, latent_mean=0.75)
    return Dataset(
        name="mammographic_mass",
        x=np.vstack([benign, malignant]),
        y=np.r_[np.zeros(n_benign, dtype=np.int64), np.ones(n_malignant, dtype=np.int64)],
        n_classes=2,
        feature_names=FEATURES,
        class_names=("benign", "malignant"),
    )
