"""Vertebral Column (UCI): calibrated regeneration, 2- and 3-class variants.

310 patients, 6 biomechanical features derived from the pelvis/spine
geometry.  Classes: Normal 100, Disk Hernia 60, Spondylolisthesis 150.  The
2-class variant merges the two pathologies into "abnormal" (210/100).

Each patient is generated from the anatomical relations the features obey:
pelvic incidence = pelvic tilt + sacral slope (an exact identity in the
original data), lumbar lordosis tracking incidence, and spondylolisthesis
grade exploding only for that class (the original's signature heavy tail).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset

FEATURES = (
    "pelvic_incidence",
    "pelvic_tilt",
    "lumbar_lordosis_angle",
    "sacral_slope",
    "pelvic_radius",
    "spondylolisthesis_grade",
)

#: Per class: (incidence mean/std, tilt share of incidence, grade mean/std).
CLASS_MODELS = {
    "hernia": ((47.6, 9.6), 0.36, (2.5, 5.0)),
    "spondylolisthesis": ((71.5, 12.0), 0.29, (52.0, 35.0)),
    "normal": ((51.7, 11.5), 0.25, (2.2, 5.5)),
}


def _patients(n: int, model, rng: np.random.Generator) -> np.ndarray:
    (inc_mean, inc_std), tilt_share, (grade_mean, grade_std) = model
    incidence = rng.normal(inc_mean, inc_std, size=n)
    tilt = incidence * np.clip(rng.normal(tilt_share, 0.08, size=n), 0.05, 0.7)
    sacral_slope = incidence - tilt  # exact anatomical identity
    lordosis = 0.72 * incidence + rng.normal(14.0, 9.0, size=n)
    radius = rng.normal(117.9, 13.0, size=n)
    grade = rng.normal(grade_mean, grade_std, size=n)
    grade = np.where(grade < -11.0, -11.0, grade)
    return np.stack([incidence, tilt, lordosis, sacral_slope, radius, grade], axis=1)


def _base(seed: int):
    rng = np.random.default_rng(seed)
    blocks = {
        name: _patients(n, CLASS_MODELS[name], rng)
        for name, n in (("hernia", 60), ("spondylolisthesis", 150), ("normal", 100))
    }
    return blocks


def generate_3c(seed: int = 0) -> Dataset:
    blocks = _base(seed)
    x = np.vstack([blocks["hernia"], blocks["spondylolisthesis"], blocks["normal"]])
    y = np.r_[
        np.zeros(60, dtype=np.int64),
        np.ones(150, dtype=np.int64),
        np.full(100, 2, dtype=np.int64),
    ]
    return Dataset(
        name="vertebral_3c",
        x=x,
        y=y,
        n_classes=3,
        feature_names=FEATURES,
        class_names=("hernia", "spondylolisthesis", "normal"),
    )


def generate_2c(seed: int = 0) -> Dataset:
    blocks = _base(seed)
    x = np.vstack([blocks["hernia"], blocks["spondylolisthesis"], blocks["normal"]])
    y = np.r_[np.zeros(210, dtype=np.int64), np.ones(100, dtype=np.int64)]
    return Dataset(
        name="vertebral_2c",
        x=x,
        y=y,
        n_classes=2,
        feature_names=FEATURES,
        class_names=("abnormal", "normal"),
    )
