"""Pen-Based Recognition of Handwritten Digits (UCI): trajectory generator.

The original dataset records pen trajectories of handwritten digits from a
tablet, spatially resampled to 8 points and scaled to 0..100, giving 16
features (8 × (x, y)) and 10 classes (10 992 samples, ~1 100 per digit).

The regeneration mimics the original *acquisition pipeline*: each digit has
a stylized stroke template (polyline control points in a unit box); a
writer sample applies random affine distortion (slant, aspect, rotation,
jitter) to the template, the resulting polyline is resampled to 8
arclength-equidistant points, and coordinates are scaled to 0..100 — the
same resampling/normalization the original authors describe.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.datasets.base import Dataset

#: Stroke templates: control points of each digit in a unit box (x right,
#: y up), traced in writing order.
TEMPLATES: Dict[int, Tuple[Tuple[float, float], ...]] = {
    0: ((0.5, 1.0), (0.15, 0.85), (0.0, 0.5), (0.15, 0.15), (0.5, 0.0),
        (0.85, 0.15), (1.0, 0.5), (0.85, 0.85), (0.5, 1.0)),
    1: ((0.35, 0.8), (0.55, 1.0), (0.55, 0.5), (0.55, 0.0)),
    2: ((0.1, 0.8), (0.4, 1.0), (0.8, 0.9), (0.9, 0.6), (0.5, 0.35),
        (0.1, 0.0), (0.9, 0.0)),
    3: ((0.15, 0.9), (0.6, 1.0), (0.85, 0.8), (0.5, 0.55), (0.9, 0.3),
        (0.6, 0.0), (0.15, 0.1)),
    4: ((0.7, 0.0), (0.7, 1.0), (0.15, 0.35), (0.95, 0.35)),
    5: ((0.85, 1.0), (0.2, 1.0), (0.2, 0.55), (0.7, 0.55), (0.9, 0.3),
        (0.6, 0.0), (0.15, 0.1)),
    6: ((0.8, 1.0), (0.35, 0.7), (0.15, 0.3), (0.35, 0.0), (0.75, 0.1),
        (0.8, 0.4), (0.3, 0.45)),
    7: ((0.1, 1.0), (0.9, 1.0), (0.55, 0.5), (0.3, 0.0)),
    8: ((0.5, 0.55), (0.2, 0.8), (0.5, 1.0), (0.8, 0.8), (0.5, 0.55),
        (0.15, 0.25), (0.5, 0.0), (0.85, 0.25), (0.5, 0.55)),
    9: ((0.85, 0.6), (0.5, 0.95), (0.2, 0.75), (0.4, 0.5), (0.85, 0.6),
        (0.75, 0.25), (0.6, 0.0)),
}


def _resample(points: np.ndarray, n_out: int = 8) -> np.ndarray:
    """Arclength-uniform resampling of a polyline to ``n_out`` points."""
    deltas = np.diff(points, axis=0)
    seg_len = np.sqrt((deltas**2).sum(axis=1))
    arclen = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = arclen[-1]
    if total <= 0:
        return np.repeat(points[:1], n_out, axis=0)
    targets = np.linspace(0.0, total, n_out)
    out = np.empty((n_out, 2))
    out[:, 0] = np.interp(targets, arclen, points[:, 0])
    out[:, 1] = np.interp(targets, arclen, points[:, 1])
    return out


def _distort(points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Writer variability: rotation, slant, anisotropic scale, jitter."""
    angle = rng.normal(0.0, 0.10)
    slant = rng.normal(0.0, 0.15)
    scale = rng.normal(1.0, 0.08, size=2)
    rotation = np.array(
        [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
    )
    shear = np.array([[1.0, slant], [0.0, 1.0]])
    centred = points - 0.5
    warped = centred @ (rotation @ shear).T * scale + 0.5
    return warped + rng.normal(0.0, 0.025, size=points.shape)


def _normalize(points: np.ndarray) -> np.ndarray:
    """Scale to 0..100 preserving aspect ratio (the tablet normalization)."""
    low = points.min(axis=0)
    span = points.max(axis=0) - low
    scale = 100.0 / max(float(span.max()), 1e-9)
    return (points - low) * scale


def generate(seed: int = 0, per_class: int = 1099) -> Dataset:
    """~10 992 samples by default, matching the original size."""
    rng = np.random.default_rng(seed)
    rows, labels = [], []
    for digit, template in TEMPLATES.items():
        template_arr = np.asarray(template, dtype=np.float64)
        for _ in range(per_class):
            stroke = _distort(template_arr, rng)
            sampled = _normalize(_resample(stroke, 8))
            rows.append(np.round(sampled).reshape(-1))
            labels.append(digit)
    return Dataset(
        name="pendigits",
        x=np.asarray(rows),
        y=np.asarray(labels, dtype=np.int64),
        n_classes=10,
        feature_names=tuple(f"{ax}{i}" for i in range(8) for ax in ("x", "y")),
        class_names=tuple(str(d) for d in range(10)),
    )
