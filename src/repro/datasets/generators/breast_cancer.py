"""Breast Cancer Wisconsin, original (UCI): calibrated regeneration.

683 complete cases, 9 cytological features graded 1..10, two classes
(~65% benign / 35% malignant).  Cell grades co-vary strongly with overall
tumour severity, so the generator draws a per-case severity latent and maps
it to the nine grades with feature-specific sensitivity plus noise —
reproducing the original's hallmark structure (benign cases concentrated at
grade 1-3, malignant spread over 4-10, high inter-feature correlation).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset

FEATURES = (
    "clump_thickness",
    "uniformity_cell_size",
    "uniformity_cell_shape",
    "marginal_adhesion",
    "single_epithelial_size",
    "bare_nuclei",
    "bland_chromatin",
    "normal_nucleoli",
    "mitoses",
)

#: Sensitivity of each feature to the severity latent and its noise scale.
SENSITIVITY = np.array([0.85, 1.00, 0.95, 0.80, 0.70, 0.95, 0.75, 0.85, 0.50])
NOISE = np.array([1.6, 1.0, 1.1, 1.5, 1.2, 1.8, 1.2, 1.6, 1.0])
BASELINE = np.array([2.5, 1.0, 1.2, 1.0, 1.8, 1.0, 1.8, 1.0, 1.0])


def generate(seed: int = 0, n_benign: int = 444, n_malignant: int = 239) -> Dataset:
    rng = np.random.default_rng(seed)

    def draw(n: int, severity_mean: float, severity_std: float) -> np.ndarray:
        severity = rng.normal(severity_mean, severity_std, size=(n, 1))
        severity = np.clip(severity, 0.0, 9.0)
        grades = BASELINE + SENSITIVITY * severity + rng.normal(0.0, NOISE, size=(n, 9))
        return np.clip(np.round(grades), 1, 10)

    benign = draw(n_benign, severity_mean=0.6, severity_std=0.9)
    malignant = draw(n_malignant, severity_mean=5.8, severity_std=2.0)
    x = np.vstack([benign, malignant])
    y = np.r_[np.zeros(n_benign, dtype=np.int64), np.ones(n_malignant, dtype=np.int64)]
    return Dataset(
        name="breast_cancer",
        x=x,
        y=y,
        n_classes=2,
        feature_names=FEATURES,
        class_names=("benign", "malignant"),
    )
