"""Tic-Tac-Toe Endgame (UCI): exact regeneration of all 958 boards.

The dataset contains every board configuration reachable at the *end* of a
tic-tac-toe game in which X moved first: 958 distinct boards, labelled
"positive" when X has three in a row (626 boards; O wins and draws are
negative).  The set is regenerated exactly by exhaustive game-tree
traversal; the known totals (626 X-wins, 316 O-wins, 16 draws) are asserted
in the tests.

Features encode each of the nine cells as x = 2, o = 1, blank = 0.
"""

from __future__ import annotations

from typing import Set, Tuple

import numpy as np

from repro.datasets.base import Dataset

WIN_LINES = (
    (0, 1, 2), (3, 4, 5), (6, 7, 8),   # rows
    (0, 3, 6), (1, 4, 7), (2, 5, 8),   # columns
    (0, 4, 8), (2, 4, 6),              # diagonals
)

FEATURES = tuple(
    f"{row}_{col}" for row in ("top", "middle", "bottom") for col in ("left", "middle", "right")
)


def winner(board: Tuple[str, ...]) -> str:
    """Return 'x', 'o' or '' for the given board."""
    for a, b, c in WIN_LINES:
        if board[a] != "b" and board[a] == board[b] == board[c]:
            return board[a]
    return ""


def _terminal_boards() -> Set[Tuple[str, ...]]:
    """All distinct boards at which a game (X first) has just ended."""
    terminals: Set[Tuple[str, ...]] = set()
    seen: Set[Tuple[str, ...]] = set()

    def play(board: Tuple[str, ...], to_move: str) -> None:
        if board in seen:
            return
        seen.add(board)
        if winner(board) or "b" not in board:
            terminals.add(board)
            return
        for cell in range(9):
            if board[cell] == "b":
                nxt = list(board)
                nxt[cell] = to_move
                play(tuple(nxt), "o" if to_move == "x" else "x")

    play(tuple("b" * 9), "x")
    return terminals


def generate(seed: int = 0) -> Dataset:
    """Enumerate the endgame boards (the seed is unused: the data is exact)."""
    del seed
    encoding = {"b": 0.0, "o": 1.0, "x": 2.0}
    boards = sorted(_terminal_boards())
    rows = np.asarray([[encoding[c] for c in board] for board in boards])
    labels = np.asarray([1 if winner(board) == "x" else 0 for board in boards], dtype=np.int64)
    return Dataset(
        name="tictactoe",
        x=rows,
        y=labels,
        n_classes=2,
        feature_names=FEATURES,
        class_names=("negative", "positive"),
    )
