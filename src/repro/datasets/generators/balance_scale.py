"""Balance Scale (UCI): exact regeneration of all 625 rows.

The dataset is *defined* as the full factorial of four attributes (left
weight, left distance, right weight, right distance, each in 1..5); the
class is the side the scale tips to:

    left-torque = LW · LD,  right-torque = RW · RD
    class = L (left), B (balanced) or R (right)

625 rows, class balance 288 / 49 / 288 — bit-identical to the UCI file up
to row order (which the loader shuffles anyway).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.datasets.base import Dataset

FEATURES = ("left_weight", "left_distance", "right_weight", "right_distance")


def generate(seed: int = 0) -> Dataset:
    """Enumerate the complete 5⁴ grid (the seed is unused: the data is exact)."""
    del seed
    rows, labels = [], []
    for lw, ld, rw, rd in itertools.product(range(1, 6), repeat=4):
        left, right = lw * ld, rw * rd
        if left > right:
            label = 0  # tips left
        elif left == right:
            label = 1  # balanced
        else:
            label = 2  # tips right
        rows.append((lw, ld, rw, rd))
        labels.append(label)
    return Dataset(
        name="balance_scale",
        x=np.asarray(rows, dtype=np.float64),
        y=np.asarray(labels, dtype=np.int64),
        n_classes=3,
        feature_names=FEATURES,
        class_names=("left", "balanced", "right"),
    )
