"""Dataset summary table (the benchmark-overview table of the pNN papers)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.datasets.registry import DATASET_NAMES, DISPLAY_NAMES, load_dataset


def summarize_datasets(names: Optional[Iterable[str]] = None, seed: int = 0) -> str:
    """Render #samples / #features / #classes / balance for each dataset."""
    names = list(names) if names is not None else list(DATASET_NAMES)
    header = f"{'Dataset':26s}{'#samples':>10s}{'#features':>11s}{'#classes':>10s}{'majority':>10s}"
    lines = [header, "-" * len(header)]
    for name in names:
        dataset = load_dataset(name, seed=seed)
        majority = dataset.class_counts().max() / dataset.n_samples
        lines.append(
            f"{DISPLAY_NAMES.get(name, name):26s}"
            f"{dataset.n_samples:>10d}{dataset.n_features:>11d}"
            f"{dataset.n_classes:>10d}{majority:>10.2f}"
        )
    return "\n".join(lines)
