"""Dataset registry: the canonical Table-II list and loaders."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.datasets.base import Dataset, DatasetSplits
from repro.datasets.generators import (
    acute_inflammation,
    balance_scale,
    breast_cancer,
    cardiotocography,
    energy_efficiency,
    iris,
    mammographic_mass,
    pendigits,
    seeds,
    tictactoe,
    vertebral,
)
from repro.datasets.preprocessing import scale_splits
from repro.datasets.splits import stratified_split

#: name → generator; ordered exactly like Table II of the paper.
_BUILDERS: Dict[str, Callable[[int], Dataset]] = {
    "acute_inflammation": acute_inflammation.generate,
    "balance_scale": balance_scale.generate,
    "breast_cancer": breast_cancer.generate,
    "cardiotocography": cardiotocography.generate,
    "energy_y1": energy_efficiency.generate_y1,
    "energy_y2": energy_efficiency.generate_y2,
    "iris": iris.generate,
    "mammographic_mass": mammographic_mass.generate,
    "pendigits": pendigits.generate,
    "seeds": seeds.generate,
    "tictactoe": tictactoe.generate,
    "vertebral_2c": vertebral.generate_2c,
    "vertebral_3c": vertebral.generate_3c,
}

DATASET_NAMES: Tuple[str, ...] = tuple(_BUILDERS)

#: Pretty names used when rendering Table II.
DISPLAY_NAMES: Dict[str, str] = {
    "acute_inflammation": "Acute Inflammation",
    "balance_scale": "Balance Scale",
    "breast_cancer": "Breast Cancer Wisconsin",
    "cardiotocography": "Cardiotocography",
    "energy_y1": "Energy Efficiency (y1)",
    "energy_y2": "Energy Efficiency (y2)",
    "iris": "Iris",
    "mammographic_mass": "Mammographic Mass",
    "pendigits": "Pendigits",
    "seeds": "Seeds",
    "tictactoe": "Tic-Tac-Toe Endgame",
    "vertebral_2c": "Vertebral Column (2 cl.)",
    "vertebral_3c": "Vertebral Column (3 cl.)",
}


def load_dataset(name: str, seed: int = 0) -> Dataset:
    """Build a dataset by name, shuffled deterministically by ``seed``."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; known: {', '.join(DATASET_NAMES)}")
    dataset = _BUILDERS[name](seed)
    return dataset.shuffled(np.random.default_rng(seed + 12345))


def load_splits(
    name: str,
    seed: int = 0,
    scale: bool = True,
    max_train: int = None,
) -> DatasetSplits:
    """Dataset → stratified 60/20/20 splits, scaled into the 0..1 V range.

    ``max_train`` optionally subsamples the training split (used by the fast
    benchmark profiles on the larger datasets).
    """
    splits = stratified_split(load_dataset(name, seed), seed)
    if scale:
        splits = scale_splits(splits)
    if max_train is not None and len(splits.x_train) > max_train:
        rng = np.random.default_rng(seed + 54321)
        keep = rng.choice(len(splits.x_train), size=max_train, replace=False)
        splits = DatasetSplits(
            name=splits.name,
            n_classes=splits.n_classes,
            x_train=splits.x_train[keep],
            y_train=splits.y_train[keep],
            x_val=splits.x_val,
            y_val=splits.y_val,
            x_test=splits.x_test,
            y_test=splits.y_test,
        )
    return splits
