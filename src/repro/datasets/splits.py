"""Stratified train/validation/test splitting."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.datasets.base import Dataset, DatasetSplits


def stratified_split(
    dataset: Dataset,
    seed: int,
    fractions: Sequence[float] = (0.6, 0.2, 0.2),
) -> DatasetSplits:
    """Split per class so each partition keeps the class balance.

    The paper splits 60/20/20 randomly; stratification keeps tiny datasets
    (some classes have only a handful of samples) usable across seeds.
    """
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError("fractions must sum to one")
    rng = np.random.default_rng(seed)
    train_idx, val_idx, test_idx = [], [], []
    for cls in range(dataset.n_classes):
        members = np.flatnonzero(dataset.y == cls)
        members = members[rng.permutation(len(members))]
        n_train = int(round(fractions[0] * len(members)))
        n_val = int(round(fractions[1] * len(members)))
        # Guarantee at least one sample per class in train when possible.
        n_train = max(n_train, 1) if len(members) else 0
        train_idx.extend(members[:n_train])
        val_idx.extend(members[n_train : n_train + n_val])
        test_idx.extend(members[n_train + n_val :])

    def gather(indices) -> Tuple[np.ndarray, np.ndarray]:
        indices = rng.permutation(np.asarray(indices, dtype=np.int64))
        return dataset.x[indices], dataset.y[indices]

    x_train, y_train = gather(train_idx)
    x_val, y_val = gather(val_idx)
    x_test, y_test = gather(test_idx)
    return DatasetSplits(
        name=dataset.name,
        n_classes=dataset.n_classes,
        x_train=x_train,
        y_train=y_train,
        x_val=x_val,
        y_val=y_val,
        x_test=x_test,
        y_test=y_test,
    )
