"""Training the surrogate MLPs (Sec. III-A c).

The dataset is split 70/20/10 into train/validation/test (the paper's
split); the network is trained with Adam on the MSE of the normalized η̃,
with early stopping on the validation loss and restoration of the best
epoch's weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad
from repro.optim import Adam, EarlyStopping
from repro.surrogate.dataset_builder import SurrogateDataset
from repro.surrogate.features import FeatureNormalizer, extend_with_ratios
from repro.surrogate.model import PAPER_LAYER_WIDTHS, SurrogateMLP


@dataclass
class SurrogateTrainingResult:
    """Trained surrogate with its normalizers and quality metrics."""

    model: SurrogateMLP
    input_normalizer: FeatureNormalizer
    eta_normalizer: FeatureNormalizer
    train_mse: float
    val_mse: float
    test_mse: float
    r2_per_eta: np.ndarray
    history: List[Tuple[int, float, float]] = field(default_factory=list)
    splits: Dict[str, np.ndarray] = field(default_factory=dict)


def split_indices(
    n: int, rng: np.random.Generator, fractions: Sequence[float] = (0.7, 0.2, 0.1)
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random 70/20/10 train/validation/test split of ``range(n)``."""
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError("split fractions must sum to one")
    order = rng.permutation(n)
    n_train = int(round(fractions[0] * n))
    n_val = int(round(fractions[1] * n))
    return order[:n_train], order[n_train : n_train + n_val], order[n_train + n_val :]


def r_squared(prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Per-output coefficient of determination."""
    ss_res = ((prediction - target) ** 2).sum(axis=0)
    ss_tot = ((target - target.mean(axis=0)) ** 2).sum(axis=0) + 1e-12
    return 1.0 - ss_res / ss_tot


def train_surrogate(
    dataset: SurrogateDataset,
    widths: Sequence[int] = PAPER_LAYER_WIDTHS,
    max_epochs: int = 3000,
    patience: int = 300,
    lr: float = 1e-3,
    batch_size: Optional[int] = None,
    seed: int = 0,
) -> SurrogateTrainingResult:
    """Train one surrogate MLP on a (ω, η) dataset.

    Full-batch Adam by default (the datasets are a few thousand points);
    pass ``batch_size`` for mini-batch training.
    """
    rng = np.random.default_rng(seed)
    features = extend_with_ratios(dataset.omega)
    input_normalizer = FeatureNormalizer.fit(features)
    eta_normalizer = FeatureNormalizer.fit(dataset.eta)
    x = input_normalizer.normalize(features)
    y = eta_normalizer.normalize(dataset.eta)

    train_idx, val_idx, test_idx = split_indices(len(dataset), rng)
    x_train, y_train = x[train_idx], y[train_idx]
    x_val, y_val = x[val_idx], y[val_idx]
    x_test, y_test = x[test_idx], y[test_idx]

    model = SurrogateMLP(widths=widths, rng=rng)
    optimizer = Adam(model.parameters(), lr=lr)
    stopper = EarlyStopping(patience=patience)
    history: List[Tuple[int, float, float]] = []

    x_val_t = Tensor(x_val)
    for epoch in range(max_epochs):
        if batch_size is None:
            batches = [(x_train, y_train)]
        else:
            order = rng.permutation(len(x_train))
            batches = [
                (x_train[order[i : i + batch_size]], y_train[order[i : i + batch_size]])
                for i in range(0, len(x_train), batch_size)
            ]
        train_loss = 0.0
        for batch_x, batch_y in batches:
            optimizer.zero_grad()
            loss = F.mse_loss(model(Tensor(batch_x)), batch_y)
            loss.backward()
            optimizer.step()
            train_loss += loss.item() * len(batch_x)
        train_loss /= len(x_train)

        with no_grad():
            val_loss = F.mse_loss(model(x_val_t), y_val).item()
        history.append((epoch, train_loss, val_loss))
        stopper.update(val_loss, epoch, state=model.state_dict())
        if stopper.should_stop:
            break

    if stopper.best_state is not None:
        model.load_state_dict(stopper.best_state)

    with no_grad():
        pred_train = model(Tensor(x_train)).numpy()
        pred_val = model(x_val_t).numpy()
        pred_test = model(Tensor(x_test)).numpy() if len(x_test) else pred_val

    return SurrogateTrainingResult(
        model=model,
        input_normalizer=input_normalizer,
        eta_normalizer=eta_normalizer,
        train_mse=float(((pred_train - y_train) ** 2).mean()),
        val_mse=float(((pred_val - y_val) ** 2).mean()),
        test_mse=float(((pred_test - y_test) ** 2).mean()) if len(x_test) else float("nan"),
        r2_per_eta=r_squared(pred_test, y_test) if len(x_test) else r_squared(pred_val, y_val),
        history=history,
        splits={"train": train_idx, "val": val_idx, "test": test_idx},
    )
