"""Extraction of the auxiliary parameters η from simulated transfer curves.

Given a simulated sweep ``(V_in, V_out)`` of a nonlinear circuit, fit the
modified tanh of Eq. 2

    ptanh_η(V) = η1 + η2 · tanh((V − η3) · η4)

(or its negated form, Eq. 3) by nonlinear least squares.  The initial guess
is derived from the curve geometry (midpoint, swing, steepest slope), which
makes the fit robust across the whole design space including nearly-flat
curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.surrogate.lm import levenberg_marquardt_batch


def ptanh_curve(eta: np.ndarray, v_in: np.ndarray) -> np.ndarray:
    """Evaluate Eq. 2 for parameters ``eta = [η1, η2, η3, η4]``."""
    eta = np.asarray(eta, dtype=np.float64)
    return eta[0] + eta[1] * np.tanh((np.asarray(v_in) - eta[2]) * eta[3])


def ptanh_curve_batch(eta: np.ndarray, v_in: np.ndarray) -> np.ndarray:
    """Evaluate Eq. 2 for a ``(B, 4)`` stack of η over a shared sweep."""
    eta = np.asarray(eta, dtype=np.float64)
    v_in = np.asarray(v_in, dtype=np.float64)
    return eta[:, 0:1] + eta[:, 1:2] * np.tanh(
        (v_in[None, :] - eta[:, 2:3]) * eta[:, 3:4]
    )


def ptanh_jacobian(eta: np.ndarray, v_in: np.ndarray) -> np.ndarray:
    """Analytic Jacobian of :func:`ptanh_curve` w.r.t. η."""
    v_in = np.asarray(v_in, dtype=np.float64)
    arg = (v_in - eta[2]) * eta[3]
    t = np.tanh(arg)
    sech2 = 1.0 - t * t
    jac = np.empty((v_in.size, 4))
    jac[:, 0] = 1.0
    jac[:, 1] = t
    jac[:, 2] = -eta[1] * eta[3] * sech2
    jac[:, 3] = eta[1] * (v_in - eta[2]) * sech2
    return jac


def ptanh_jacobian_batch(eta: np.ndarray, v_in: np.ndarray) -> np.ndarray:
    """Stacked ``(B, n, 4)`` Jacobian of :func:`ptanh_curve_batch`."""
    eta = np.asarray(eta, dtype=np.float64)
    v_in = np.asarray(v_in, dtype=np.float64)
    arg = (v_in[None, :] - eta[:, 2:3]) * eta[:, 3:4]
    t = np.tanh(arg)
    sech2 = 1.0 - t * t
    jac = np.empty((len(eta), v_in.size, 4))
    jac[:, :, 0] = 1.0
    jac[:, :, 1] = t
    jac[:, :, 2] = -eta[:, 1:2] * eta[:, 3:4] * sech2
    jac[:, :, 3] = eta[:, 1:2] * (v_in[None, :] - eta[:, 2:3]) * sech2
    return jac


#: Physically-plausible box for fitted η on a 1 V rail.  Fits escaping this
#: box are line-like degeneracies (huge amplitude compensated by a tiny
#: steepness) whose parameters are not identifiable.
ETA_BOUNDS_LOW = np.array([-0.5, -1.2, -0.5, 0.2])
ETA_BOUNDS_HIGH = np.array([1.5, 1.2, 1.5, 300.0])


@dataclass
class FitResult:
    """Fitted η with quality diagnostics."""

    eta: np.ndarray
    rmse: float
    swing: float
    converged: bool

    @property
    def in_bounds(self) -> bool:
        """Whether η lies in the physically identifiable box."""
        return bool(
            np.all(self.eta >= ETA_BOUNDS_LOW) and np.all(self.eta <= ETA_BOUNDS_HIGH)
        )

    @property
    def is_tanh_like(self) -> bool:
        """Whether the curve has enough swing to identify all four η."""
        return self.swing >= 0.02 and self.rmse <= 0.05 and self.in_bounds


def initial_guess(v_in: np.ndarray, v_out: np.ndarray) -> np.ndarray:
    """Geometry-based initial η for a monotone tanh-like curve."""
    v_in = np.asarray(v_in, dtype=np.float64)
    v_out = np.asarray(v_out, dtype=np.float64)
    lo, hi = float(v_out.min()), float(v_out.max())
    eta1 = 0.5 * (lo + hi)
    rising = v_out[-1] >= v_out[0]
    eta2 = 0.5 * (hi - lo) if rising else -0.5 * (hi - lo)
    slopes = np.gradient(v_out, v_in)
    steepest = int(np.argmax(np.abs(slopes)))
    eta3 = float(v_in[steepest])
    swing = max(hi - lo, 1e-6)
    # tanh'(0) = 1, so slope at the midpoint ≈ η2 · η4.
    eta4 = float(np.clip(abs(slopes[steepest]) / (abs(eta2) + 1e-9), 0.5, 200.0))
    if swing < 1e-3:
        # Degenerate flat curve: any centre/steepness is unidentifiable;
        # pick neutral values so the fit stays well conditioned.
        return np.array([eta1, 0.0, 0.5, 1.0])
    return np.array([eta1, eta2, eta3, eta4])


def initial_guess_batch(v_in: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Row-wise :func:`initial_guess` for a ``(B, n)`` target stack."""
    v_in = np.asarray(v_in, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    lo = targets.min(axis=1)
    hi = targets.max(axis=1)
    eta1 = 0.5 * (lo + hi)
    rising = targets[:, -1] >= targets[:, 0]
    half = 0.5 * (hi - lo)
    eta2 = np.where(rising, half, -half)
    slopes = np.gradient(targets, v_in, axis=1)
    steepest = np.argmax(np.abs(slopes), axis=1)
    rows = np.arange(len(targets))
    eta3 = v_in[steepest]
    eta4 = np.clip(
        np.abs(slopes[rows, steepest]) / (np.abs(eta2) + 1e-9), 0.5, 200.0
    )
    guess = np.stack([eta1, eta2, eta3, eta4], axis=1)
    flat = (hi - lo) < 1e-3
    guess[flat, 1] = 0.0
    guess[flat, 2] = 0.5
    guess[flat, 3] = 1.0
    return guess


def fit_ptanh(
    v_in: np.ndarray,
    v_out: np.ndarray,
    negated: bool = False,
    max_iter: int = 200,
) -> FitResult:
    """Fit Eq. 2 (or Eq. 3 when ``negated``) to a simulated sweep.

    For the negated form the sign is folded into the target
    (``-V_out = ptanh_η(V_in)``), so the same solver handles both circuit
    types and ``inv(V) = −ptanh_η(V)`` holds for the returned η.

    Delegates to :func:`fit_ptanh_batch` with a batch of one; since every
    batch operation is batch-size invariant, fitting curves one at a time
    or by the thousand produces bit-identical η.
    """
    v_in = np.asarray(v_in, dtype=np.float64)
    v_out = np.asarray(v_out, dtype=np.float64)
    if v_in.shape != v_out.shape or v_in.ndim != 1:
        raise ValueError("v_in and v_out must be 1-D arrays of equal length")
    return fit_ptanh_batch(
        v_in, v_out[None, :], negated=negated, max_iter=max_iter
    )[0]


def fit_ptanh_batch(
    v_in: np.ndarray,
    v_out: np.ndarray,
    negated: bool = False,
    max_iter: int = 200,
) -> List[FitResult]:
    """Fit Eq. 2 / Eq. 3 to a ``(B, n)`` stack of sweeps in lockstep.

    All curves share the ``(n,)`` input axis ``v_in`` (the builder sweeps
    every design over the same grid).  Returns one :class:`FitResult` per
    row; each equals what :func:`fit_ptanh` returns for that row alone.
    """
    v_in = np.asarray(v_in, dtype=np.float64)
    v_out = np.asarray(v_out, dtype=np.float64)
    if v_in.ndim != 1 or v_out.ndim != 2 or v_out.shape[1] != v_in.size:
        raise ValueError("v_out must be a (B, n) stack over the v_in grid")
    if v_in.size < 5:
        raise ValueError("need at least 5 sweep points for a 4-parameter fit")
    targets = -v_out if negated else v_out

    x0 = initial_guess_batch(v_in, targets)

    def residual(eta: np.ndarray, lanes: np.ndarray) -> np.ndarray:
        return ptanh_curve_batch(eta, v_in) - targets[lanes]

    def jacobian(eta: np.ndarray, lanes: np.ndarray) -> np.ndarray:
        return ptanh_jacobian_batch(eta, v_in)

    result = levenberg_marquardt_batch(
        residual, x0, jacobian=jacobian, max_iter=max_iter
    )
    swings = targets.max(axis=1) - targets.min(axis=1)
    fits = []
    for b in range(len(targets)):
        eta = canonicalize_eta(result.x[b])
        res = ptanh_curve(eta, v_in) - targets[b]
        rmse = float(np.sqrt(np.mean(res * res)))
        fits.append(
            FitResult(
                eta=eta,
                rmse=rmse,
                swing=float(swings[b]),
                converged=bool(result.converged[b]),
            )
        )
    return fits


def canonicalize_eta(eta: np.ndarray) -> np.ndarray:
    """Resolve the (η2, η4) sign ambiguity: always report η4 > 0.

    ``η2 tanh((V−η3) η4)`` is invariant under flipping the signs of both η2
    and η4; a canonical orientation keeps the regression targets
    single-valued.
    """
    eta = np.asarray(eta, dtype=np.float64).copy()
    if eta[3] < 0:
        eta[1] = -eta[1]
        eta[3] = -eta[3]
    return eta
