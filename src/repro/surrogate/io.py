"""Saving and loading surrogate bundles as ``.npz`` archives."""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.surrogate.design_space import DesignSpace
from repro.surrogate.features import FeatureNormalizer
from repro.surrogate.model import SurrogateMLP
from repro.surrogate.pipeline import CircuitSurrogate, SurrogateBundle


def bundle_cache_path(
    cache_dir: Union[str, Path], n_points: int, widths: Sequence[int], seed: int
) -> Path:
    """Deterministic cache file name for a pipeline configuration."""
    key = f"n{n_points}-w{'x'.join(str(w) for w in widths)}-s{seed}"
    digest = hashlib.sha256(key.encode()).hexdigest()[:12]
    return Path(cache_dir) / f"surrogate-bundle-{digest}.npz"


def _pack_surrogate(prefix: str, surrogate: CircuitSurrogate) -> dict:
    payload = {
        f"{prefix}.widths": np.asarray(surrogate.model.widths, dtype=np.int64),
        f"{prefix}.in_min": surrogate.input_normalizer.minimum,
        f"{prefix}.in_max": surrogate.input_normalizer.maximum,
        f"{prefix}.eta_min": surrogate.eta_normalizer.minimum,
        f"{prefix}.eta_max": surrogate.eta_normalizer.maximum,
        f"{prefix}.test_mse": np.asarray(surrogate.test_mse),
    }
    for name, value in surrogate.model.state_dict().items():
        payload[f"{prefix}.param.{name}"] = value
    return payload


def _unpack_surrogate(prefix: str, archive, kind: str) -> CircuitSurrogate:
    widths = tuple(int(w) for w in archive[f"{prefix}.widths"])
    model = SurrogateMLP(widths=widths, rng=np.random.default_rng(0))
    state = {}
    marker = f"{prefix}.param."
    for key in archive.files:
        if key.startswith(marker):
            state[key[len(marker):]] = archive[key]
    model.load_state_dict(state)
    return CircuitSurrogate(
        model=model,
        input_normalizer=FeatureNormalizer(
            archive[f"{prefix}.in_min"], archive[f"{prefix}.in_max"]
        ),
        eta_normalizer=FeatureNormalizer(
            archive[f"{prefix}.eta_min"], archive[f"{prefix}.eta_max"]
        ),
        kind=kind,
        test_mse=float(archive[f"{prefix}.test_mse"]),
    )


def save_bundle(bundle: SurrogateBundle, path: Union[str, Path]) -> Path:
    """Write a bundle (both surrogates + design space) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "space.lower": bundle.space.lower,
        "space.upper": bundle.space.upper,
        "space.ratio": np.asarray([bundle.space.ratio_low, bundle.space.ratio_high]),
    }
    payload.update(_pack_surrogate("ptanh", bundle.ptanh))
    payload.update(_pack_surrogate("negweight", bundle.negweight))
    np.savez(path, **payload)
    return path


def load_bundle(path: Union[str, Path]) -> SurrogateBundle:
    """Load a bundle previously written by :func:`save_bundle`."""
    with np.load(Path(path)) as archive:
        space = DesignSpace(
            lower=archive["space.lower"],
            upper=archive["space.upper"],
            ratio_low=float(archive["space.ratio"][0]),
            ratio_high=float(archive["space.ratio"][1]),
        )
        return SurrogateBundle(
            ptanh=_unpack_surrogate("ptanh", archive, "ptanh"),
            negweight=_unpack_surrogate("negweight", archive, "negweight"),
            space=space,
        )
