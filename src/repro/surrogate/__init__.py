"""Surrogate modelling of the nonlinear circuits (Sec. III-A, Fig. 3).

The pipeline mirrors the paper exactly:

1. :mod:`~repro.surrogate.design_space` — the feasible box of Table I with
   its two inequality constraints.
2. :mod:`~repro.surrogate.sampling` — Quasi-Monte-Carlo (Sobol) sampling of
   design points ω.
3. :mod:`~repro.surrogate.dataset_builder` — DC sweeps of the ptanh and
   negative-weight circuits for each ω (via :mod:`repro.spice`), followed by
4. :mod:`~repro.surrogate.fitting` — least-squares extraction of the
   auxiliary parameters η of Eq. 2 / Eq. 3 (own Levenberg-Marquardt, with a
   scipy cross-check in the tests).
5. :mod:`~repro.surrogate.features` — ratio extension ω ↦ [ω, k1, k2, k3]
   and min-max normalization.
6. :mod:`~repro.surrogate.model` / :mod:`~repro.surrogate.training` — the
   13-layer regression MLP (10-9-9-8-8-7-7-6-6-6-5-5-5-4) mapping ω̃ to η̃.
7. :mod:`~repro.surrogate.pipeline` — the end-to-end builder with caching;
   returns a :class:`~repro.surrogate.pipeline.SurrogateBundle` holding one
   surrogate per nonlinear circuit type.
"""

from repro.surrogate.design_space import DesignSpace, DESIGN_SPACE
from repro.surrogate.sampling import sample_design_points
from repro.surrogate.fitting import fit_ptanh, fit_ptanh_batch, ptanh_curve, FitResult
from repro.surrogate.features import FeatureNormalizer, extend_with_ratios
from repro.surrogate.model import SurrogateMLP, PAPER_LAYER_WIDTHS
from repro.surrogate.dataset_builder import (
    BuildStats,
    SurrogateDataset,
    build_surrogate_dataset,
)
from repro.surrogate.training import train_surrogate, SurrogateTrainingResult
from repro.surrogate.pipeline import SurrogateBundle, build_surrogate_bundle
from repro.surrogate.analytic import AnalyticSurrogate

__all__ = [
    "DesignSpace",
    "DESIGN_SPACE",
    "sample_design_points",
    "fit_ptanh",
    "fit_ptanh_batch",
    "ptanh_curve",
    "FitResult",
    "BuildStats",
    "FeatureNormalizer",
    "extend_with_ratios",
    "SurrogateMLP",
    "PAPER_LAYER_WIDTHS",
    "SurrogateDataset",
    "build_surrogate_dataset",
    "train_surrogate",
    "SurrogateTrainingResult",
    "SurrogateBundle",
    "build_surrogate_bundle",
    "AnalyticSurrogate",
]
