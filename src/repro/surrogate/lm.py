"""A small Levenberg-Marquardt optimizer for nonlinear least squares.

Used to extract the auxiliary parameters η from simulated transfer curves
(Sec. III-A b).  scipy's implementation is available in this environment
and is used as a cross-check in the tests, but the reproduction ships its
own so the fitting step is fully transparent and dependency-light.

Two entry points:

- :func:`levenberg_marquardt` — one problem at a time (the original).
- :func:`levenberg_marquardt_batch` — B independent problems advanced in
  lockstep with stacked linear algebra; lanes that stall or converge are
  retired from the active set.  Every per-lane operation is gather
  invariant, so a lane's trajectory does not depend on which other lanes
  share the batch — batch-of-1 results match large-batch results bit for
  bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np


@dataclass
class LMResult:
    """Outcome of a Levenberg-Marquardt run."""

    x: np.ndarray
    cost: float
    iterations: int
    converged: bool


def levenberg_marquardt(
    residual: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    jacobian: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    max_iter: int = 200,
    tol: float = 1e-10,
    lambda_init: float = 1e-3,
    lambda_factor: float = 10.0,
) -> LMResult:
    """Minimize ``0.5 * ||residual(x)||²`` with damped Gauss-Newton steps.

    Parameters
    ----------
    residual:
        Maps parameters ``x`` to a residual vector.
    x0:
        Initial parameter guess.
    jacobian:
        Optional analytic Jacobian ``∂residual/∂x``; forward differences
        are used when omitted.
    tol:
        Convergence threshold on both the step norm and the cost decrease.
    """
    x = np.asarray(x0, dtype=np.float64).copy()
    lam = lambda_init
    res = residual(x)
    cost = 0.5 * float(res @ res)

    def numeric_jacobian(point: np.ndarray, base: np.ndarray) -> np.ndarray:
        jac = np.empty((base.size, point.size))
        for j in range(point.size):
            step = 1e-7 * max(1.0, abs(point[j]))
            shifted = point.copy()
            shifted[j] += step
            jac[:, j] = (residual(shifted) - base) / step
        return jac

    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        jac = jacobian(x) if jacobian is not None else numeric_jacobian(x, res)
        gradient = jac.T @ res
        hessian = jac.T @ jac

        improved = False
        for _ in range(30):
            try:
                step = np.linalg.solve(
                    hessian + lam * np.diag(np.maximum(np.diag(hessian), 1e-12)),
                    -gradient,
                )
            except np.linalg.LinAlgError:
                lam *= lambda_factor
                continue
            candidate = x + step
            candidate_res = residual(candidate)
            candidate_cost = 0.5 * float(candidate_res @ candidate_res)
            if candidate_cost < cost:
                improvement = cost - candidate_cost
                x, res, cost = candidate, candidate_res, candidate_cost
                lam = max(lam / lambda_factor, 1e-12)
                improved = True
                if improvement < tol and float(np.linalg.norm(step)) < tol:
                    converged = True
                break
            lam *= lambda_factor

        if not improved or converged:
            converged = converged or not improved
            break

    return LMResult(x=x, cost=cost, iterations=iterations, converged=converged)


@dataclass
class LMBatchResult:
    """Outcome of a lockstep Levenberg-Marquardt run over B problems."""

    x: np.ndarray            # (B, k)
    cost: np.ndarray         # (B,)
    iterations: np.ndarray   # (B,)
    converged: np.ndarray    # (B,) bool


def _solve_damped(
    matrices: np.ndarray, rhs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve a stack of (k, k) systems, isolating singular lanes.

    Returns ``(steps, ok)``; lanes whose damped normal matrix is singular
    get ``ok=False`` and a zero step (the caller raises their λ and
    retries).  The scalar per-lane fallback is bitwise identical to the
    stacked solve, so mixing paths never perturbs healthy lanes.
    """
    try:
        steps = np.linalg.solve(matrices, rhs[..., None])[..., 0]
        return steps, np.ones(len(matrices), dtype=bool)
    except np.linalg.LinAlgError:
        steps = np.zeros_like(rhs)
        ok = np.zeros(len(matrices), dtype=bool)
        for i in range(len(matrices)):
            try:
                steps[i] = np.linalg.solve(matrices[i], rhs[i])
                ok[i] = True
            except np.linalg.LinAlgError:
                pass
        return steps, ok


def levenberg_marquardt_batch(
    residual: Callable[[np.ndarray, np.ndarray], np.ndarray],
    x0: np.ndarray,
    jacobian: Callable[[np.ndarray, np.ndarray], np.ndarray],
    max_iter: int = 200,
    tol: float = 1e-10,
    lambda_init: float = 1e-3,
    lambda_factor: float = 10.0,
) -> LMBatchResult:
    """Minimize ``0.5 * ||residual(x_b)||²`` for B problems in lockstep.

    Parameters
    ----------
    residual:
        ``residual(x_subset, lanes)`` maps a ``(P, k)`` parameter stack to
        a ``(P, n)`` residual stack, where ``lanes`` holds the original
        batch indices of the P rows (so the callback can gather per-lane
        targets).
    x0:
        ``(B, k)`` stack of initial guesses.
    jacobian:
        ``jacobian(x_subset, lanes)`` returns the ``(P, n, k)`` stacked
        Jacobian (analytic; the batch path has no numeric fallback).
    tol:
        Per-lane convergence threshold on both the step norm and the cost
        decrease, as in :func:`levenberg_marquardt`.

    Each lane follows the same accept/reject λ schedule as the scalar
    optimizer; finished lanes are removed from the active set so slow
    problems do not keep paying for fast ones.
    """
    x = np.array(x0, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("x0 must be a (B, k) stack of initial guesses")
    n_problems, n_params = x.shape

    all_lanes = np.arange(n_problems)
    res = np.asarray(residual(x, all_lanes), dtype=np.float64)
    if res.ndim != 2 or len(res) != n_problems:
        raise ValueError("residual must return a (B, n) stack")
    cost = 0.5 * np.sum(res * res, axis=-1)
    lam = np.full(n_problems, lambda_init)
    iterations = np.zeros(n_problems, dtype=np.int64)
    converged = np.zeros(n_problems, dtype=bool)

    active = all_lanes.copy()
    for it in range(1, max_iter + 1):
        if active.size == 0:
            break
        xa = x[active]
        resa = res[active]
        costa = cost[active]
        lama = lam[active]
        n_active = active.size

        jac = jacobian(xa, active)                        # (P, n, k)
        jac_t = np.swapaxes(jac, -1, -2)                  # (P, k, n)
        gradient = (jac_t @ resa[..., None])[..., 0]      # (P, k)
        hessian = jac_t @ jac                             # (P, k, k)
        diag = np.maximum(
            np.diagonal(hessian, axis1=-2, axis2=-1), 1e-12
        )                                                 # (P, k)
        damping_matrix = np.zeros_like(hessian)
        rows = np.arange(n_params)
        damping_matrix[:, rows, rows] = diag

        improved = np.zeros(n_active, dtype=bool)
        conv_now = np.zeros(n_active, dtype=bool)
        pending = np.ones(n_active, dtype=bool)
        for _ in range(30):
            pidx = np.nonzero(pending)[0]
            if pidx.size == 0:
                break
            damped = hessian[pidx] + lama[pidx][:, None, None] * damping_matrix[pidx]
            step, ok = _solve_damped(damped, -gradient[pidx])
            lama[pidx[~ok]] *= lambda_factor
            sidx = pidx[ok]
            if sidx.size == 0:
                continue
            candidate = xa[sidx] + step[ok]
            candidate_res = np.asarray(
                residual(candidate, active[sidx]), dtype=np.float64
            )
            candidate_cost = 0.5 * np.sum(candidate_res * candidate_res, axis=-1)
            accept = candidate_cost < costa[sidx]
            aidx = sidx[accept]
            if aidx.size:
                improvement = costa[aidx] - candidate_cost[accept]
                step_norm = np.sqrt(
                    np.sum(step[ok][accept] * step[ok][accept], axis=-1)
                )
                xa[aidx] = candidate[accept]
                resa[aidx] = candidate_res[accept]
                costa[aidx] = candidate_cost[accept]
                lama[aidx] = np.maximum(lama[aidx] / lambda_factor, 1e-12)
                conv_now[aidx] = (improvement < tol) & (step_norm < tol)
                improved[aidx] = True
                pending[aidx] = False
            ridx = sidx[~accept]
            lama[ridx] *= lambda_factor

        iterations[active] = it
        x[active] = xa
        res[active] = resa
        cost[active] = costa
        lam[active] = lama

        finished = (~improved) | conv_now
        converged[active[finished]] = (conv_now | ~improved)[finished]
        active = active[~finished]

    return LMBatchResult(x=x, cost=cost, iterations=iterations, converged=converged)
