"""A small Levenberg-Marquardt optimizer for nonlinear least squares.

Used to extract the auxiliary parameters η from simulated transfer curves
(Sec. III-A b).  scipy's implementation is available in this environment
and is used as a cross-check in the tests, but the reproduction ships its
own so the fitting step is fully transparent and dependency-light.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


@dataclass
class LMResult:
    """Outcome of a Levenberg-Marquardt run."""

    x: np.ndarray
    cost: float
    iterations: int
    converged: bool


def levenberg_marquardt(
    residual: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    jacobian: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    max_iter: int = 200,
    tol: float = 1e-10,
    lambda_init: float = 1e-3,
    lambda_factor: float = 10.0,
) -> LMResult:
    """Minimize ``0.5 * ||residual(x)||²`` with damped Gauss-Newton steps.

    Parameters
    ----------
    residual:
        Maps parameters ``x`` to a residual vector.
    x0:
        Initial parameter guess.
    jacobian:
        Optional analytic Jacobian ``∂residual/∂x``; forward differences
        are used when omitted.
    tol:
        Convergence threshold on both the step norm and the cost decrease.
    """
    x = np.asarray(x0, dtype=np.float64).copy()
    lam = lambda_init
    res = residual(x)
    cost = 0.5 * float(res @ res)

    def numeric_jacobian(point: np.ndarray, base: np.ndarray) -> np.ndarray:
        jac = np.empty((base.size, point.size))
        for j in range(point.size):
            step = 1e-7 * max(1.0, abs(point[j]))
            shifted = point.copy()
            shifted[j] += step
            jac[:, j] = (residual(shifted) - base) / step
        return jac

    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        jac = jacobian(x) if jacobian is not None else numeric_jacobian(x, res)
        gradient = jac.T @ res
        hessian = jac.T @ jac

        improved = False
        for _ in range(30):
            try:
                step = np.linalg.solve(
                    hessian + lam * np.diag(np.maximum(np.diag(hessian), 1e-12)),
                    -gradient,
                )
            except np.linalg.LinAlgError:
                lam *= lambda_factor
                continue
            candidate = x + step
            candidate_res = residual(candidate)
            candidate_cost = 0.5 * float(candidate_res @ candidate_res)
            if candidate_cost < cost:
                improvement = cost - candidate_cost
                x, res, cost = candidate, candidate_res, candidate_cost
                lam = max(lam / lambda_factor, 1e-12)
                improved = True
                if improvement < tol and float(np.linalg.norm(step)) < tol:
                    converged = True
                break
            lam *= lambda_factor

        if not improved or converged:
            converged = converged or not improved
            break

    return LMResult(x=x, cost=cost, iterations=iterations, converged=converged)
