"""The NN-based surrogate model η̂(ω̃) (Sec. III-A c).

After hyperparameter tuning the paper settles on a 13-layer fully-connected
network with widths 10-9-9-8-8-7-7-6-6-6-5-5-5-4: ten extended/normalized
design features in, the four normalized auxiliary parameters η̃ out.  The
same architecture is used here (tanh hidden activations, linear output);
smaller widths can be passed for fast tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.autograd.tensor import Tensor

#: The exact layer widths reported in the paper (input → ... → output).
PAPER_LAYER_WIDTHS = (10, 9, 9, 8, 8, 7, 7, 6, 6, 6, 5, 5, 5, 4)

#: A reduced architecture for unit tests and smoke profiles.
TINY_LAYER_WIDTHS = (10, 8, 6, 4)


class SurrogateMLP(nn.Module):
    """Fully-connected regression network mapping ω̃ (10) to η̃ (4)."""

    def __init__(
        self,
        widths: Sequence[int] = PAPER_LAYER_WIDTHS,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        widths = tuple(int(w) for w in widths)
        if len(widths) < 2:
            raise ValueError("need at least an input and an output width")
        if widths[0] != 10 or widths[-1] != 4:
            raise ValueError("surrogate maps 10 extended features to 4 η parameters")
        rng = rng if rng is not None else np.random.default_rng()
        layers = []
        for fan_in, fan_out in zip(widths[:-1], widths[1:-1]):
            layers.append(nn.Linear(fan_in, fan_out, rng=rng))
            layers.append(nn.Tanh())
        layers.append(nn.Linear(widths[-2], widths[-1], rng=rng))
        self.widths = widths
        self.net = nn.Sequential(*layers)

    def forward(self, features: Tensor) -> Tensor:
        """Predict normalized η̃ for normalized, ratio-extended features."""
        return self.net(features)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Numpy-in / numpy-out convenience wrapper (no gradient tape)."""
        from repro.autograd.tensor import no_grad

        with no_grad():
            return self.forward(Tensor(features)).numpy()
