"""The feasible design space of the nonlinear circuit (Table I).

Physical parameters ω = [R1, R2, R3, R4, R5, W, L]:

=============  ========  ========  ======
parameter      minimal   maximal   unit
=============  ========  ========  ======
R1             10        500       Ω
R2             5         250       Ω
R3             10e3      500e3     Ω
R4             8e3       400e3     Ω
R5             10e3      500e3     Ω
W              200       800       µm
L              10        70        µm
=============  ========  ========  ======

with the inequality constraints R1 > R2 and R3 > R4 (the voltage dividers
must keep an attenuating, approximately constant ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

#: Order of the physical parameters in every ω vector.
OMEGA_NAMES: Tuple[str, ...] = ("R1", "R2", "R3", "R4", "R5", "W", "L")

#: Indices of the reduced, independently-learnable parameterization of
#: Fig. 5: [R1, R3, R5, W, L] plus the two divider ratios k1, k2.
REDUCED_NAMES: Tuple[str, ...] = ("R1", "R3", "R5", "W", "L", "k1", "k2")


@dataclass(frozen=True)
class DesignSpace:
    """Axis-aligned box with the two divider inequality constraints."""

    lower: np.ndarray = field(
        default_factory=lambda: np.array([10.0, 5.0, 10e3, 8e3, 10e3, 200.0, 10.0])
    )
    upper: np.ndarray = field(
        default_factory=lambda: np.array([500.0, 250.0, 500e3, 400e3, 500e3, 800.0, 70.0])
    )
    #: Ratio bounds used when sampling / learning k1 = R2/R1 and k2 = R4/R3.
    ratio_low: float = 0.05
    ratio_high: float = 0.95

    def __post_init__(self):
        if self.lower.shape != (7,) or self.upper.shape != (7,):
            raise ValueError("design space must describe the 7 parameters of Table I")
        if np.any(self.lower >= self.upper):
            raise ValueError("lower bounds must be strictly below upper bounds")

    # ------------------------------------------------------------------ #
    # membership / projection                                            #
    # ------------------------------------------------------------------ #

    def contains(self, omega: np.ndarray, atol: float = 1e-9) -> bool:
        """Whether ω satisfies both the box and the inequality constraints."""
        omega = np.asarray(omega, dtype=np.float64)
        if omega.shape != (7,):
            return False
        in_box = bool(
            np.all(omega >= self.lower - atol) and np.all(omega <= self.upper + atol)
        )
        r1, r2, r3, r4 = omega[0], omega[1], omega[2], omega[3]
        return in_box and r1 > r2 - atol and r3 > r4 - atol

    def clip(self, omega: np.ndarray) -> np.ndarray:
        """Project ω into the box (the paper's clipping for R2 and R4)."""
        omega = np.asarray(omega, dtype=np.float64)
        clipped = np.clip(omega, self.lower, self.upper)
        # Enforce the divider inequalities by pulling R2/R4 below R1/R3.
        clipped[1] = min(clipped[1], clipped[0])
        clipped[3] = min(clipped[3], clipped[2])
        return clipped

    # ------------------------------------------------------------------ #
    # reduced parameterization (Fig. 5)                                  #
    # ------------------------------------------------------------------ #

    @property
    def reduced_lower(self) -> np.ndarray:
        """Lower bounds of [R1, R3, R5, W, L, k1, k2]."""
        return np.array(
            [self.lower[0], self.lower[2], self.lower[4], self.lower[5], self.lower[6],
             self.ratio_low, self.ratio_low]
        )

    @property
    def reduced_upper(self) -> np.ndarray:
        return np.array(
            [self.upper[0], self.upper[2], self.upper[4], self.upper[5], self.upper[6],
             self.ratio_high, self.ratio_high]
        )

    def assemble(self, reduced: np.ndarray) -> np.ndarray:
        """Map reduced points [R1, R3, R5, W, L, k1, k2] to full ω vectors.

        ``R2 = clip(k1 R1)`` and ``R4 = clip(k2 R3)`` exactly as in Fig. 5;
        accepts a single point ``(7,)`` or a batch ``(n, 7)``.
        """
        reduced = np.asarray(reduced, dtype=np.float64)
        single = reduced.ndim == 1
        reduced = np.atleast_2d(reduced)
        r1, r3, r5 = reduced[:, 0], reduced[:, 1], reduced[:, 2]
        width, length = reduced[:, 3], reduced[:, 4]
        k1, k2 = reduced[:, 5], reduced[:, 6]
        r2 = np.clip(k1 * r1, self.lower[1], self.upper[1])
        r4 = np.clip(k2 * r3, self.lower[3], self.upper[3])
        omega = np.stack([r1, r2, r3, r4, r5, width, length], axis=1)
        return omega[0] if single else omega

    def as_table(self) -> str:
        """Render Table I as text (used by the Table-I bench)."""
        header = f"{'':12s}" + "".join(f"{name:>10s}" for name in OMEGA_NAMES)
        units = f"{'':12s}" + "".join(
            f"{u:>10s}" for u in ("(Ω)", "(Ω)", "(Ω)", "(Ω)", "(Ω)", "(µm)", "(µm)")
        )
        low = f"{'minimal':12s}" + "".join(f"{v:>10.0f}" for v in self.lower)
        high = f"{'maximal':12s}" + "".join(f"{v:>10.0f}" for v in self.upper)
        ineq = f"{'inequality':12s}{'R1 > R2':>20s}{'R3 > R4':>20s}"
        return "\n".join([header, units, low, high, ineq])


#: The canonical Table-I design space used throughout the reproduction.
DESIGN_SPACE = DesignSpace()
