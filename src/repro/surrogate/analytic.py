"""A physics-based analytic surrogate (baseline for the NN surrogate).

The paper approximates ω → η with a regression NN.  As an ablation baseline
(and as a fast, training-free fallback) this module derives η directly from
first-order circuit analysis of the synthetic topology:

- divider ratios attenuate the input: ``k1 = R2/(R1+R2)``, ``k2 = R4/(R3+R4)``;
- the stage-1 trip point sits where the EGT sinks ``VDD/2`` through its
  effective load ``R5 ∥ (R3+R4)``, giving the overdrive
  ``V* = sqrt(VDD / (β R_load))`` and hence ``η3 ≈ (Vt + V*) / k1``;
- small-signal gains ``A ≈ sqrt(β VDD R_load)`` set the steepness η4;
- the output swing (and with it η1, η2) shrinks smoothly when the trip
  point leaves the 0..1 V input window.

First-order analysis ignores channel-length modulation and the interaction
between stages, so predictions are refined by an optional per-output affine
calibration against a small simulated dataset (:meth:`AnalyticSurrogate.calibrate`).
Everything is expressed with autograd ops, making the analytic surrogate a
drop-in replacement for the NN surrogate inside the pNN.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.circuits.ptanh import SECOND_STAGE_LOAD, VDD
from repro.spice.egt import EGTModel
from repro.surrogate.dataset_builder import SurrogateDataset


class AnalyticSurrogate:
    """Closed-form ω → η map with optional affine calibration.

    Implements the same ``eta_from_omega`` interface as
    :class:`~repro.surrogate.pipeline.CircuitSurrogate`.
    """

    def __init__(self, kind: str = "ptanh", model: EGTModel = None):
        if kind not in ("ptanh", "negweight"):
            raise ValueError("kind must be 'ptanh' or 'negweight'")
        self.kind = kind
        self.model = model or EGTModel()
        # Per-η affine calibration (identity until calibrate() is called).
        self.scale = np.ones(4)
        self.shift = np.zeros(4)

    # ------------------------------------------------------------------ #
    # physics                                                            #
    # ------------------------------------------------------------------ #

    def _raw_eta(self, omega: Tensor) -> Tensor:
        r1 = omega[..., 0:1]
        r2 = omega[..., 1:2]
        r3 = omega[..., 2:3]
        r4 = omega[..., 3:4]
        r5 = omega[..., 4:5]
        width = omega[..., 5:6]
        length = omega[..., 6:7]

        k1 = r2 / (r1 + r2)
        k2 = r4 / (r3 + r4)
        beta = self.model.k_prime * width / length

        divider_chain = r3 + r4
        load1 = r5 * divider_chain / (r5 + divider_chain)
        overdrive = F.sqrt(Tensor(VDD) / (beta * load1))
        trip = (overdrive + self.model.v_threshold) / (k1 + 1e-9)

        gain1 = F.sqrt(beta * VDD * load1)
        gain2 = F.sqrt(beta * VDD * SECOND_STAGE_LOAD)

        # Fraction of the full swing reachable when the trip point sits
        # inside the 0..1 V input window (smooth roll-off outside).
        visibility = F.sigmoid((Tensor(VDD) - trip) * 6.0) * F.sigmoid(trip * 6.0)

        if self.kind == "ptanh":
            amplitude = 0.5 * VDD * visibility
            centre = Tensor(np.full(1, 0.5 * VDD)) + 0.0 * trip
            slope = k1 * gain1 * k2 * gain2 * 0.25
        else:
            # Negative-weight target is −inv(V) = VDD − k2·V_d1 (Eq. 3 fit).
            amplitude = 0.5 * VDD * k2 * visibility
            centre = Tensor(VDD) - k2 * (0.5 * VDD) + 0.0 * trip
            slope = k1 * gain1 * 0.5

        steepness = slope / (amplitude + 1e-3)
        steepness = F.clip(steepness, 0.5, 200.0)
        return F.concatenate([centre, amplitude, trip, steepness], axis=-1)

    # ------------------------------------------------------------------ #
    # public API                                                         #
    # ------------------------------------------------------------------ #

    def eta_from_omega(self, omega: Union[np.ndarray, Tensor]) -> Tensor:
        omega_t = omega if isinstance(omega, Tensor) else Tensor(omega)
        raw = self._raw_eta(omega_t)
        return raw * Tensor(self.scale) + Tensor(self.shift)

    def eta_numpy(self, omega: np.ndarray) -> np.ndarray:
        from repro.autograd.tensor import no_grad

        with no_grad():
            return self.eta_from_omega(np.asarray(omega, dtype=np.float64)).numpy()

    def calibrate(self, dataset: SurrogateDataset) -> "AnalyticSurrogate":
        """Fit the per-η affine correction on a simulated dataset."""
        if dataset.kind != self.kind:
            raise ValueError(f"dataset is for {dataset.kind!r}, surrogate for {self.kind!r}")
        self.scale = np.ones(4)
        self.shift = np.zeros(4)
        raw = self.eta_numpy(dataset.omega)
        for j in range(4):
            design = np.stack([raw[:, j], np.ones(len(raw))], axis=1)
            coeffs, *_ = np.linalg.lstsq(design, dataset.eta[:, j], rcond=None)
            self.scale[j], self.shift[j] = coeffs
        return self
