"""A physics-based analytic surrogate (baseline for the NN surrogate).

The paper approximates ω → η with a regression NN.  As an ablation baseline
(and as a fast, training-free fallback) this module derives η directly from
first-order circuit analysis of the synthetic topology:

- divider ratios attenuate the input: ``k1 = R2/(R1+R2)``, ``k2 = R4/(R3+R4)``;
- the stage-1 trip point sits where the EGT sinks ``VDD/2`` through its
  effective load ``R5 ∥ (R3+R4)``, giving the overdrive
  ``V* = sqrt(VDD / (β R_load))`` and hence ``η3 ≈ (Vt + V*) / k1``;
- small-signal gains ``A ≈ sqrt(β VDD R_load)`` set the steepness η4;
- the output swing (and with it η1, η2) shrinks smoothly when the trip
  point leaves the 0..1 V input window.

First-order analysis ignores channel-length modulation and the interaction
between stages, so predictions are refined by an optional per-output affine
calibration against a small simulated dataset (:meth:`AnalyticSurrogate.calibrate`).
The physics lives in :func:`repro.core.kernels.analytic_eta` and is evaluated
here over autograd ops, making the analytic surrogate a drop-in replacement
for the NN surrogate inside the pNN.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd.functional import TENSOR_OPS
from repro.autograd.tensor import Tensor
from repro.circuits.ptanh import SECOND_STAGE_LOAD, VDD
from repro.spice.egt import EGTModel
from repro.surrogate.dataset_builder import SurrogateDataset


class AnalyticSurrogate:
    """Closed-form ω → η map with optional affine calibration.

    Implements the same ``eta_from_omega`` interface as
    :class:`~repro.surrogate.pipeline.CircuitSurrogate`.
    """

    def __init__(self, kind: str = "ptanh", model: EGTModel = None):
        if kind not in ("ptanh", "negweight"):
            raise ValueError("kind must be 'ptanh' or 'negweight'")
        self.kind = kind
        self.model = model or EGTModel()
        # Per-η affine calibration (identity until calibrate() is called).
        self.scale = np.ones(4)
        self.shift = np.zeros(4)

    # ------------------------------------------------------------------ #
    # physics                                                            #
    # ------------------------------------------------------------------ #

    def _raw_eta(self, omega: Tensor) -> Tensor:
        # Deferred: repro.core imports repro.surrogate during its own init.
        from repro.core import kernels

        return kernels.analytic_eta(
            omega,
            self.kind,
            self.model.k_prime,
            self.model.v_threshold,
            VDD,
            SECOND_STAGE_LOAD,
            ops=TENSOR_OPS,
        )

    # ------------------------------------------------------------------ #
    # public API                                                         #
    # ------------------------------------------------------------------ #

    def eta_from_omega(self, omega: Union[np.ndarray, Tensor]) -> Tensor:
        omega_t = omega if isinstance(omega, Tensor) else Tensor(omega)
        raw = self._raw_eta(omega_t)
        return raw * Tensor(self.scale) + Tensor(self.shift)

    def eta_numpy(self, omega: np.ndarray) -> np.ndarray:
        from repro.autograd.tensor import no_grad

        with no_grad():
            return self.eta_from_omega(np.asarray(omega, dtype=np.float64)).numpy()

    def calibrate(self, dataset: SurrogateDataset) -> "AnalyticSurrogate":
        """Fit the per-η affine correction on a simulated dataset."""
        if dataset.kind != self.kind:
            raise ValueError(f"dataset is for {dataset.kind!r}, surrogate for {self.kind!r}")
        self.scale = np.ones(4)
        self.shift = np.zeros(4)
        raw = self.eta_numpy(dataset.omega)
        for j in range(4):
            design = np.stack([raw[:, j], np.ones(len(raw))], axis=1)
            coeffs, *_ = np.linalg.lstsq(design, dataset.eta[:, j], rcond=None)
            self.scale[j], self.shift[j] = coeffs
        return self
