"""Quasi-Monte-Carlo sampling of the feasible design space.

The paper draws 10 000 design points with Sobol QMC [14].  To respect the
inequality constraints R1 > R2 and R3 > R4 while keeping the low-discrepancy
structure, sampling happens in the *reduced* space
[R1, R3, R5, W, L, k1, k2] (the same parameterization the pNN later learns,
Fig. 5) and the full ω vectors are assembled with R2 = k1·R1, R4 = k2·R3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.stats import qmc

from repro.surrogate.design_space import DESIGN_SPACE, DesignSpace


def sample_design_points(
    n_points: int,
    space: DesignSpace = DESIGN_SPACE,
    seed: Optional[int] = 0,
    scramble: bool = True,
) -> np.ndarray:
    """Draw ``n_points`` feasible ω vectors with Sobol QMC.

    Returns
    -------
    omega:
        Array of shape ``(n_points, 7)``; every row satisfies
        :meth:`DesignSpace.contains`.
    """
    if n_points < 1:
        raise ValueError("n_points must be positive")
    sampler = qmc.Sobol(d=7, scramble=scramble, seed=seed)
    # Sobol sequences are balanced in powers of two; draw the next power and
    # truncate, which preserves low discrepancy better than ``random(n)``.
    exponent = int(np.ceil(np.log2(max(n_points, 2))))
    unit = sampler.random_base2(m=exponent)[:n_points]
    reduced = qmc.scale(unit, space.reduced_lower, space.reduced_upper)
    omega = space.assemble(reduced)
    return np.atleast_2d(omega)
