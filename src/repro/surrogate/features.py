"""Feature engineering for the surrogate models (Sec. III-A c).

The divider ratios ``k1 = R2/R1`` and ``k2 = R4/R3`` and the geometry ratio
``k3 = W/L`` are critical circuit features that independent per-parameter
normalization would wash out, so ω is manually extended to

    [R1, R2, R3, R4, R5, W, L, k1, k2, k3]

before min-max normalization.  The normalizer also handles the η targets
and stores the statistics needed for later denormalization (they ship with
the saved surrogate bundle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.autograd.functional import TENSOR_OPS
from repro.autograd.tensor import Tensor

ArrayOrTensor = Union[np.ndarray, Tensor]

#: Names of the ten extended surrogate input features.
FEATURE_NAMES = ("R1", "R2", "R3", "R4", "R5", "W", "L", "k1", "k2", "k3")


def extend_with_ratios(omega: ArrayOrTensor) -> ArrayOrTensor:
    """Append [k1, k2, k3] to ω; works on arrays and autodiff tensors.

    ``omega`` may have any number of leading batch dimensions; the last axis
    must hold the 7 physical parameters of Table I.  The math lives in
    :func:`repro.core.kernels.extend_with_ratios`; this wrapper dispatches
    on the value type and validates the numpy case.  (The kernels import is
    deferred: ``repro.core`` imports this module during its own init.)
    """
    from repro.core import kernels

    if isinstance(omega, Tensor):
        return kernels.extend_with_ratios(omega, ops=TENSOR_OPS)
    omega = np.asarray(omega, dtype=np.float64)
    if omega.shape[-1] != 7:
        raise ValueError("last axis of omega must hold the 7 Table-I parameters")
    return kernels.extend_with_ratios(omega)


@dataclass
class FeatureNormalizer:
    """Min-max normalization with stored statistics.

    Maps values into [0, 1] per dimension; exactly invertible through
    :meth:`denormalize`.  Works on both numpy arrays (dataset preparation)
    and autodiff tensors (inside the differentiable pNN forward pass).
    """

    minimum: np.ndarray
    maximum: np.ndarray

    def __post_init__(self):
        self.minimum = np.asarray(self.minimum, dtype=np.float64)
        self.maximum = np.asarray(self.maximum, dtype=np.float64)
        if self.minimum.shape != self.maximum.shape:
            raise ValueError("min/max shapes differ")
        if np.any(self.maximum <= self.minimum):
            raise ValueError("every feature needs a positive range")

    @classmethod
    def fit(cls, values: np.ndarray) -> "FeatureNormalizer":
        """Compute statistics over the leading axis of ``values``."""
        values = np.asarray(values, dtype=np.float64)
        minimum = values.min(axis=0)
        maximum = values.max(axis=0)
        degenerate = maximum - minimum < 1e-12
        maximum = np.where(degenerate, minimum + 1.0, maximum)
        return cls(minimum=minimum, maximum=maximum)

    @property
    def span(self) -> np.ndarray:
        return self.maximum - self.minimum

    def normalize(self, values: ArrayOrTensor) -> ArrayOrTensor:
        if isinstance(values, Tensor):
            return (values - Tensor(self.minimum)) / Tensor(self.span)
        return (np.asarray(values, dtype=np.float64) - self.minimum) / self.span

    def denormalize(self, values: ArrayOrTensor) -> ArrayOrTensor:
        if isinstance(values, Tensor):
            return values * Tensor(self.span) + Tensor(self.minimum)
        return np.asarray(values, dtype=np.float64) * self.span + self.minimum

    def state(self) -> Dict[str, np.ndarray]:
        return {"minimum": self.minimum.copy(), "maximum": self.maximum.copy()}

    @classmethod
    def from_state(cls, state: Dict[str, np.ndarray]) -> "FeatureNormalizer":
        return cls(minimum=np.asarray(state["minimum"]), maximum=np.asarray(state["maximum"]))
