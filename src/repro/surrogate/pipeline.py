"""End-to-end surrogate construction and the :class:`SurrogateBundle`.

A bundle holds one trained surrogate per nonlinear circuit type (ptanh and
negative weight) together with the normalization statistics, and exposes the
differentiable map ω → η used inside the pNN forward pass (Fig. 5).

Building a bundle runs the full Fig. 3 pipeline (QMC sampling → DC sweeps →
η fitting → MLP training), which takes minutes at paper scale; bundles are
therefore cached on disk (see :mod:`repro.surrogate.io`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.autograd.tensor import Tensor
from repro.spice.egt import EGTModel
from repro.surrogate.dataset_builder import build_surrogate_dataset
from repro.surrogate.design_space import DESIGN_SPACE, DesignSpace
from repro.surrogate.features import FeatureNormalizer, extend_with_ratios
from repro.surrogate.model import PAPER_LAYER_WIDTHS, SurrogateMLP
from repro.surrogate.training import SurrogateTrainingResult, train_surrogate


@dataclass
class CircuitSurrogate:
    """Differentiable ω → η map for one nonlinear circuit type."""

    model: SurrogateMLP
    input_normalizer: FeatureNormalizer
    eta_normalizer: FeatureNormalizer
    kind: str
    test_mse: float = float("nan")

    def eta_from_omega(self, omega: Union[np.ndarray, Tensor]) -> Tensor:
        """Map physical parameters to auxiliary tanh parameters η.

        Accepts any batch shape ``(..., 7)``; returns ``(..., 4)``.  Fully
        differentiable, so gradients flow from the loss through η back to
        the learnable circuit parameters.
        """
        omega_t = omega if isinstance(omega, Tensor) else Tensor(omega)
        extended = extend_with_ratios(omega_t)
        normalized = self.input_normalizer.normalize(extended)
        eta_norm = self.model(normalized)
        return self.eta_normalizer.denormalize(eta_norm)

    def eta_numpy(self, omega: np.ndarray) -> np.ndarray:
        """Convenience non-differentiable evaluation."""
        from repro.autograd.tensor import no_grad

        with no_grad():
            return self.eta_from_omega(np.asarray(omega, dtype=np.float64)).numpy()


@dataclass
class SurrogateBundle:
    """The two circuit surrogates the pNN needs (activation + negation)."""

    ptanh: CircuitSurrogate
    negweight: CircuitSurrogate
    space: DesignSpace

    def surrogate(self, kind: str) -> CircuitSurrogate:
        if kind == "ptanh":
            return self.ptanh
        if kind == "negweight":
            return self.negweight
        raise KeyError(f"unknown circuit kind {kind!r}")


def build_surrogate_bundle(
    n_points: int = 2048,
    sweep_points: int = 33,
    widths: Sequence[int] = PAPER_LAYER_WIDTHS,
    max_epochs: int = 3000,
    patience: int = 300,
    space: DesignSpace = DESIGN_SPACE,
    model: Optional[EGTModel] = None,
    seed: int = 0,
    cache_dir: Optional[Union[str, Path]] = None,
    verbose: bool = False,
) -> SurrogateBundle:
    """Run the full Fig. 3 pipeline for both circuit types.

    Parameters
    ----------
    n_points:
        QMC design points per circuit (paper: 10 000; the default trades a
        little surrogate accuracy for minutes instead of hours of sweeps).
    cache_dir:
        When given, a bundle matching ``(n_points, widths, seed)`` is loaded
        from / saved to this directory.
    """
    from repro.surrogate.io import bundle_cache_path, load_bundle, save_bundle

    if cache_dir is not None:
        path = bundle_cache_path(cache_dir, n_points, widths, seed)
        if path.exists():
            try:
                return load_bundle(path)
            except Exception as exc:   # corrupt/truncated cache: rebuild it
                if verbose:
                    print(f"[surrogate] cached bundle {path} unreadable ({exc}); rebuilding")
                path.unlink(missing_ok=True)

    surrogates: Dict[str, CircuitSurrogate] = {}
    results: Dict[str, SurrogateTrainingResult] = {}
    for kind in ("ptanh", "negweight"):
        if verbose:
            print(f"[surrogate] building dataset for {kind} ({n_points} QMC points)")
        dataset = build_surrogate_dataset(
            kind,
            n_points=n_points,
            sweep_points=sweep_points,
            space=space,
            model=model,
            seed=seed,
        )
        if verbose:
            stats = dataset.stats
            if stats is not None:
                print(
                    f"[surrogate] {kind}: kept {stats.n_kept}/{stats.n_sampled} "
                    f"(dropped: {stats.n_convergence_error} no-convergence, "
                    f"{stats.n_low_swing} low-swing, {stats.n_high_rmse} high-RMSE, "
                    f"{stats.n_out_of_bounds} out-of-bounds); training MLP"
                )
            else:
                print(f"[surrogate] {kind}: {len(dataset)} identifiable curves; training MLP")
        result = train_surrogate(
            dataset, widths=widths, max_epochs=max_epochs, patience=patience, seed=seed
        )
        if verbose:
            print(
                f"[surrogate] {kind}: val MSE {result.val_mse:.2e}, "
                f"test MSE {result.test_mse:.2e}, R² {np.round(result.r2_per_eta, 3)}"
            )
        surrogates[kind] = CircuitSurrogate(
            model=result.model,
            input_normalizer=result.input_normalizer,
            eta_normalizer=result.eta_normalizer,
            kind=kind,
            test_mse=result.test_mse,
        )
        results[kind] = result

    bundle = SurrogateBundle(
        ptanh=surrogates["ptanh"], negweight=surrogates["negweight"], space=space
    )
    if cache_dir is not None:
        save_bundle(bundle, bundle_cache_path(cache_dir, n_points, widths, seed))
    return bundle
