"""Building the (ω, η) regression dataset via circuit simulation (Fig. 3).

For every QMC-sampled design point the ptanh circuit and the
negative-weight circuit are swept with the DC solver and the resulting
transfer curves are fitted with Eq. 2 / Eq. 3.  Degenerate design points
whose curves carry too little swing to identify η (or whose fit quality is
poor) are filtered out, mirroring the paper's restriction of the design
space to "tanh-like characteristic curves".

Two execution engines produce element-wise identical datasets:

- ``engine="batched"`` (default) sweeps design points in chunks through the
  stacked MNA solver (:func:`repro.spice.solve_dc_batch`) and fits the
  surviving curves in lockstep (:func:`repro.surrogate.fitting.fit_ptanh_batch`).
  Curves whose output swing cannot clear ``min_swing`` are dropped before
  fitting — the swing depends only on the simulated curve, so the filter
  decision matches the scalar path exactly while skipping useless fits.
- ``engine="scalar"`` is the original one-design-at-a-time loop, kept as
  the reference implementation and for the equality tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

import numpy as np

from repro import telemetry
from repro.circuits.negweight import simulate_negweight_curve, simulate_negweight_curve_batch
from repro.circuits.ptanh import simulate_ptanh_curve, simulate_ptanh_curve_batch
from repro.spice.egt import EGTModel
from repro.spice.mna import ConvergenceError
from repro.surrogate.design_space import DESIGN_SPACE, DesignSpace
from repro.surrogate.fitting import fit_ptanh, fit_ptanh_batch
from repro.surrogate.sampling import sample_design_points

#: Circuit kinds understood by the builder.
CIRCUIT_KINDS = ("ptanh", "negweight")

#: Execution engines understood by the builder.
ENGINES = ("batched", "scalar")


@dataclass
class BuildStats:
    """Where the sampled design points went during a dataset build.

    Every sampled ω lands in exactly one bucket, so the four drop counters
    plus ``n_kept`` always sum to ``n_sampled``.  Drop classification uses
    the same priority as the scalar filter chain: convergence failure,
    then insufficient swing, then fit RMSE, then the η bounds box.
    """

    n_sampled: int = 0
    n_kept: int = 0
    n_convergence_error: int = 0
    n_low_swing: int = 0
    n_high_rmse: int = 0
    n_out_of_bounds: int = 0

    @property
    def n_dropped(self) -> int:
        return (
            self.n_convergence_error
            + self.n_low_swing
            + self.n_high_rmse
            + self.n_out_of_bounds
        )


@dataclass
class SurrogateDataset:
    """Paired physical parameters and fitted auxiliary parameters."""

    omega: np.ndarray          # (n, 7)
    eta: np.ndarray            # (n, 4)
    rmse: np.ndarray           # (n,) fit quality per point
    kind: str                  # "ptanh" or "negweight"
    stats: Optional[BuildStats] = None

    def __post_init__(self):
        if len(self.omega) != len(self.eta):
            raise ValueError("omega and eta must pair up")

    def __len__(self) -> int:
        return len(self.omega)


def simulate_curve(omega: np.ndarray, kind: str, n_points: int, model: Optional[EGTModel]):
    """Dispatch to the right circuit sweep for ``kind``."""
    if kind == "ptanh":
        return simulate_ptanh_curve(omega, n_points=n_points, model=model)
    if kind == "negweight":
        return simulate_negweight_curve(omega, n_points=n_points, model=model)
    raise ValueError(f"unknown circuit kind {kind!r}; expected one of {CIRCUIT_KINDS}")


def simulate_curve_batch(
    omega_batch: np.ndarray, kind: str, n_points: int, model: Optional[EGTModel]
):
    """Dispatch to the right batched circuit sweep for ``kind``."""
    if kind == "ptanh":
        return simulate_ptanh_curve_batch(omega_batch, n_points=n_points, model=model)
    if kind == "negweight":
        return simulate_negweight_curve_batch(omega_batch, n_points=n_points, model=model)
    raise ValueError(f"unknown circuit kind {kind!r}; expected one of {CIRCUIT_KINDS}")


def build_surrogate_dataset(
    kind: str,
    n_points: int = 10_000,
    sweep_points: int = 41,
    space: DesignSpace = DESIGN_SPACE,
    model: Optional[EGTModel] = None,
    seed: int = 0,
    min_swing: float = 0.02,
    max_rmse: float = 0.05,
    progress: Optional[Callable[[int, int], None]] = None,
    engine: str = "batched",
    chunk_size: int = 512,
) -> SurrogateDataset:
    """Sample, simulate and fit; return the filtered regression dataset.

    Parameters
    ----------
    kind:
        ``"ptanh"`` (Eq. 2 targets) or ``"negweight"`` (Eq. 3 targets).
    n_points:
        Number of QMC design points (the paper uses 10 000).
    sweep_points:
        DC sweep resolution per curve.
    min_swing / max_rmse:
        Quality gates: curves with less output swing than ``min_swing`` or a
        worse fit RMSE than ``max_rmse`` are dropped (their η are not
        identifiable and would only add label noise).
    progress:
        Optional ``progress(done, total)`` callback; called per design in
        the scalar engine and per chunk in the batched engine, plus one
        final ``progress(total, total)`` tick in both.
    engine:
        ``"batched"`` (stacked solves + lockstep fits, the default) or
        ``"scalar"`` (the reference loop).  Both produce element-wise
        identical datasets.
    chunk_size:
        Designs per stacked solve in the batched engine; results are
        chunk-size invariant.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if kind not in CIRCUIT_KINDS:
        raise ValueError(f"unknown circuit kind {kind!r}; expected one of {CIRCUIT_KINDS}")
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")

    omegas = sample_design_points(n_points, space=space, seed=seed)
    total = len(omegas)
    stats = BuildStats(n_sampled=total)
    negated = kind == "negweight"
    kept_omega, kept_eta, kept_rmse = [], [], []

    tel = telemetry.get()
    build_start = perf_counter()

    if engine == "batched":
        for start in range(0, total, chunk_size):
            if progress is not None:
                progress(start, total)
            chunk = omegas[start : start + chunk_size]
            with tel.span("surrogate.chunk", kind=kind, start=start,
                          size=int(len(chunk))):
                v_in, curves, ok = simulate_curve_batch(
                    chunk, kind, sweep_points, model
                )
                stats.n_convergence_error += int(np.sum(~ok))

                # Swing pre-filter: the swing is a function of the curve
                # alone, so low-swing designs are classified before paying
                # for a fit.
                targets = -curves if negated else curves
                swings = targets.max(axis=1) - targets.min(axis=1)
                low_swing = ok & (swings < min_swing)
                stats.n_low_swing += int(np.sum(low_swing))
                fit_lanes = np.nonzero(ok & ~low_swing)[0]
                if fit_lanes.size == 0:
                    continue

                fits = fit_ptanh_batch(v_in, curves[fit_lanes], negated=negated)
                for lane, fit in zip(fit_lanes, fits):
                    if fit.rmse > max_rmse:
                        stats.n_high_rmse += 1
                        continue
                    if not fit.in_bounds:
                        stats.n_out_of_bounds += 1
                        continue
                    stats.n_kept += 1
                    kept_omega.append(chunk[lane])
                    kept_eta.append(fit.eta)
                    kept_rmse.append(fit.rmse)
    else:
        for i, omega in enumerate(omegas):
            if progress is not None:
                progress(i, total)
            try:
                v_in, v_out = simulate_curve(omega, kind, sweep_points, model)
            except ConvergenceError:
                stats.n_convergence_error += 1
                continue
            fit = fit_ptanh(v_in, v_out, negated=negated)
            if fit.swing < min_swing:
                stats.n_low_swing += 1
                continue
            if fit.rmse > max_rmse:
                stats.n_high_rmse += 1
                continue
            if not fit.in_bounds:
                stats.n_out_of_bounds += 1
                continue
            stats.n_kept += 1
            kept_omega.append(omega)
            kept_eta.append(fit.eta)
            kept_rmse.append(fit.rmse)

    if progress is not None:
        progress(total, total)

    if tel.enabled:
        # BuildStats as counters + one summary event for the whole build.
        tel.count("surrogate.sampled", stats.n_sampled, kind=kind)
        tel.count("surrogate.kept", stats.n_kept, kind=kind)
        for bucket, n in (
            ("convergence_error", stats.n_convergence_error),
            ("low_swing", stats.n_low_swing),
            ("high_rmse", stats.n_high_rmse),
            ("out_of_bounds", stats.n_out_of_bounds),
        ):
            if n:
                tel.count(f"surrogate.drop.{bucket}", n, kind=kind)
        tel.event(
            "surrogate.build",
            kind=kind,
            engine=engine,
            chunk_size=chunk_size if engine == "batched" else 1,
            dur_s=perf_counter() - build_start,
            n_sampled=stats.n_sampled,
            n_kept=stats.n_kept,
            n_convergence_error=stats.n_convergence_error,
            n_low_swing=stats.n_low_swing,
            n_high_rmse=stats.n_high_rmse,
            n_out_of_bounds=stats.n_out_of_bounds,
        )

    if not kept_omega:
        raise RuntimeError(
            f"no identifiable curves among {n_points} samples; "
            "check the EGT model calibration"
        )
    return SurrogateDataset(
        omega=np.asarray(kept_omega),
        eta=np.asarray(kept_eta),
        rmse=np.asarray(kept_rmse),
        kind=kind,
        stats=stats,
    )
