"""Building the (ω, η) regression dataset via circuit simulation (Fig. 3).

For every QMC-sampled design point the ptanh circuit and the
negative-weight circuit are swept with the DC solver and the resulting
transfer curves are fitted with Eq. 2 / Eq. 3.  Degenerate design points
whose curves carry too little swing to identify η (or whose fit quality is
poor) are filtered out, mirroring the paper's restriction of the design
space to "tanh-like characteristic curves".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.circuits.negweight import simulate_negweight_curve
from repro.circuits.ptanh import simulate_ptanh_curve
from repro.spice.egt import EGTModel
from repro.spice.mna import ConvergenceError
from repro.surrogate.design_space import DESIGN_SPACE, DesignSpace
from repro.surrogate.fitting import fit_ptanh
from repro.surrogate.sampling import sample_design_points

#: Circuit kinds understood by the builder.
CIRCUIT_KINDS = ("ptanh", "negweight")


@dataclass
class SurrogateDataset:
    """Paired physical parameters and fitted auxiliary parameters."""

    omega: np.ndarray          # (n, 7)
    eta: np.ndarray            # (n, 4)
    rmse: np.ndarray           # (n,) fit quality per point
    kind: str                  # "ptanh" or "negweight"

    def __post_init__(self):
        if len(self.omega) != len(self.eta):
            raise ValueError("omega and eta must pair up")

    def __len__(self) -> int:
        return len(self.omega)


def simulate_curve(omega: np.ndarray, kind: str, n_points: int, model: Optional[EGTModel]):
    """Dispatch to the right circuit sweep for ``kind``."""
    if kind == "ptanh":
        return simulate_ptanh_curve(omega, n_points=n_points, model=model)
    if kind == "negweight":
        return simulate_negweight_curve(omega, n_points=n_points, model=model)
    raise ValueError(f"unknown circuit kind {kind!r}; expected one of {CIRCUIT_KINDS}")


def build_surrogate_dataset(
    kind: str,
    n_points: int = 10_000,
    sweep_points: int = 41,
    space: DesignSpace = DESIGN_SPACE,
    model: Optional[EGTModel] = None,
    seed: int = 0,
    min_swing: float = 0.02,
    max_rmse: float = 0.05,
    progress: Optional[Callable[[int, int], None]] = None,
) -> SurrogateDataset:
    """Sample, simulate and fit; return the filtered regression dataset.

    Parameters
    ----------
    kind:
        ``"ptanh"`` (Eq. 2 targets) or ``"negweight"`` (Eq. 3 targets).
    n_points:
        Number of QMC design points (the paper uses 10 000).
    sweep_points:
        DC sweep resolution per curve.
    min_swing / max_rmse:
        Quality gates: curves with less output swing than ``min_swing`` or a
        worse fit RMSE than ``max_rmse`` are dropped (their η are not
        identifiable and would only add label noise).
    """
    omegas = sample_design_points(n_points, space=space, seed=seed)
    kept_omega, kept_eta, kept_rmse = [], [], []
    negated = kind == "negweight"
    for i, omega in enumerate(omegas):
        if progress is not None:
            progress(i, len(omegas))
        try:
            v_in, v_out = simulate_curve(omega, kind, sweep_points, model)
        except ConvergenceError:
            continue
        fit = fit_ptanh(v_in, v_out, negated=negated)
        if fit.swing < min_swing or fit.rmse > max_rmse or not fit.in_bounds:
            continue
        kept_omega.append(omega)
        kept_eta.append(fit.eta)
        kept_rmse.append(fit.rmse)

    if not kept_omega:
        raise RuntimeError(
            f"no identifiable curves among {n_points} samples; "
            "check the EGT model calibration"
        )
    return SurrogateDataset(
        omega=np.asarray(kept_omega),
        eta=np.asarray(kept_eta),
        rmse=np.asarray(kept_rmse),
        kind=kind,
    )
