"""Adam optimizer (Kingma & Ba, 2014) — the optimizer used in the paper."""

from __future__ import annotations

import numpy as np

from repro.optim.sgd import Optimizer, ParamGroups


class Adam(Optimizer):
    """Adam with bias-corrected first and second moments.

    Defaults match the paper's "Adam with default settings":
    ``lr=1e-3, betas=(0.9, 0.999), eps=1e-8``.  Per-group learning rates are
    supported so θ and the nonlinear parameters 𝔴 can use α_θ and α_ω.
    """

    def __init__(
        self,
        params: ParamGroups,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must be in [0, 1)")
        super().__init__(
            params,
            {"lr": lr, "betas": tuple(betas), "eps": eps, "weight_decay": weight_decay},
        )
        self._state: dict = {}

    def step(self) -> None:
        for group, param in self.iter_params():
            if param.grad is None:
                continue
            grad = param.grad
            if group["weight_decay"] > 0:
                grad = grad + group["weight_decay"] * param.data
            state = self._state.setdefault(
                id(param),
                {"step": 0, "m": np.zeros_like(param.data), "v": np.zeros_like(param.data)},
            )
            beta1, beta2 = group["betas"]
            state["step"] += 1
            state["m"] = beta1 * state["m"] + (1.0 - beta1) * grad
            state["v"] = beta2 * state["v"] + (1.0 - beta2) * grad * grad
            m_hat = state["m"] / (1.0 - beta1 ** state["step"])
            v_hat = state["v"] / (1.0 - beta2 ** state["step"])
            param.data = param.data - group["lr"] * m_hat / (np.sqrt(v_hat) + group["eps"])
