"""Learning-rate schedules operating on optimizer parameter groups."""

from __future__ import annotations

import math

from repro.optim.sgd import Optimizer


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lrs = [group["lr"] for group in optimizer.param_groups]
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        for group, base in zip(self.optimizer.param_groups, self.base_lrs):
            group["lr"] = self._lr(base)

    def _lr(self, base: float) -> float:
        raise NotImplementedError

    def current_lrs(self):
        return [group["lr"] for group in self.optimizer.param_groups]


class StepLR(_Scheduler):
    """Decay each group's LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = gamma

    def _lr(self, base: float) -> float:
        return base * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        self.t_max = t_max
        self.eta_min = eta_min

    def _lr(self, base: float) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (base - self.eta_min) * (1.0 + math.cos(math.pi * progress))
