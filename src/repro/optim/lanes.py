"""Lane-aware optimizers: per-lane Adam/SGD state over stacked parameters.

The lane training engine (:mod:`repro.core.lanes`) stacks ``L`` independent
jobs' parameters on a leading axis — one :class:`~repro.optim.RawParameter`
holds ``(L, ...)`` data and receives ``(L, ...)`` gradients.  Because every
Adam/SGD update is elementwise, a single stacked update *is* ``L``
independent per-lane updates, bitwise: lane ``l`` of a stacked step equals
a serial step on lane ``l``'s slice (pinned by
``tests/optim/test_lane_optimizers.py``).

Adam's scalar bias-correction step counter is deliberately shared across
the stack: all lanes of a batch start at step 0 and step together every
epoch until they are *removed* (never skipped), so the shared counter
always equals each surviving lane's private counter.

:meth:`LaneAdam.compact` / :meth:`LaneSGD.compact` mirror the active-set
compaction of ``solve_dc_batch``: when lanes early-stop, the caller slices
``param.data`` down to the surviving lanes and calls ``compact(keep)`` so
the optimizer moments follow.  Slicing is a gather (fancy-index copy) —
surviving lanes' state is byte-identical before and after.
"""

from __future__ import annotations

from typing import Sequence

from repro.optim.adam import Adam
from repro.optim.sgd import SGD, ParamGroups


class LaneAdam(Adam):
    """Adam over lane-stacked parameters with active-set compaction.

    Identical update math to :class:`~repro.optim.Adam` (the elementwise
    update vectorizes over the lane axis for free); adds :meth:`compact`
    to drop early-stopped lanes from the first/second-moment buffers in
    sync with the caller slicing ``param.data``.
    """

    def compact(self, keep: Sequence[int]) -> None:
        """Keep only lanes ``keep`` (positions in the current stack).

        Call *after* rebinding every ``param.data`` to its ``[keep]``
        gather; moments are gathered with the same index list so state and
        data stay aligned.  The scalar ``step`` counter is untouched —
        survivors have stepped exactly that many times.
        """
        keep = list(keep)
        for _, param in self.iter_params():
            state = self._state.get(id(param))
            if state is not None:
                state["m"] = state["m"][keep]
                state["v"] = state["v"][keep]


class LaneSGD(SGD):
    """SGD (optionally with momentum) over lane-stacked parameters."""

    def __init__(self, params: ParamGroups, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr=lr, momentum=momentum)

    def compact(self, keep: Sequence[int]) -> None:
        """Gather the momentum buffers down to the surviving lanes."""
        keep = list(keep)
        for _, param in self.iter_params():
            velocity = self._velocity.get(id(param))
            if velocity is not None:
                self._velocity[id(param)] = velocity[keep]
