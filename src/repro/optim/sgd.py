"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.nn.module import Parameter


class RawParameter:
    """A bare ndarray parameter: ``data``/``grad`` without a graph node.

    Duck-type compatible with :class:`repro.nn.module.Parameter` as far as
    optimizers are concerned, but never participates in autograd — the
    kernel training engine (:mod:`repro.core.grad_kernels`) writes hand-
    derived gradients into ``grad`` directly, so ``Adam``/``SGD`` update the
    arrays with zero Tensor/graph overhead in the steady-state epoch.
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = None
        self.name = name

    def zero_grad(self) -> None:
        self.grad = None

    @property
    def shape(self):
        return self.data.shape

    def __repr__(self) -> str:
        return f"RawParameter(name={self.name!r}, shape={self.data.shape})"


ParamGroups = Union[Iterable[Parameter], Sequence[dict]]


class Optimizer:
    """Base optimizer holding parameter groups with per-group settings.

    Groups follow the PyTorch convention: either a flat iterable of
    parameters (one group with default settings) or a list of dicts, each
    with a ``params`` entry and optional per-group overrides.  The paper
    relies on this to use different learning rates for the crossbar
    conductances (``α_θ = 0.1``) and the nonlinear-circuit parameters
    (``α_ω = 0.005``).
    """

    def __init__(self, params: ParamGroups, defaults: dict):
        self.defaults = dict(defaults)
        self.param_groups: List[dict] = []
        params = list(params)
        if params and isinstance(params[0], dict):
            for group in params:
                merged = dict(defaults)
                merged.update({k: v for k, v in group.items() if k != "params"})
                merged["params"] = list(group["params"])
                self.param_groups.append(merged)
        else:
            merged = dict(defaults)
            merged["params"] = params
            self.param_groups.append(merged)
        for group in self.param_groups:
            if not all(isinstance(p, (Parameter, RawParameter)) for p in group["params"]):
                raise TypeError("optimizer expects Parameter or RawParameter instances")

    def zero_grad(self) -> None:
        for group in self.param_groups:
            for param in group["params"]:
                param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def iter_params(self):
        for group in self.param_groups:
            for param in group["params"]:
                yield group, param


class SGD(Optimizer):
    """Plain SGD, optionally with classical momentum."""

    def __init__(self, params: ParamGroups, lr: float = 0.01, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        super().__init__(params, {"lr": lr, "momentum": momentum})
        self._velocity = {}

    def step(self) -> None:
        for group, param in self.iter_params():
            if param.grad is None:
                continue
            momentum = group["momentum"]
            update = param.grad
            if momentum > 0:
                velocity = self._velocity.get(id(param))
                velocity = momentum * velocity + update if velocity is not None else update.copy()
                self._velocity[id(param)] = velocity
                update = velocity
            param.data = param.data - group["lr"] * update
