"""Gradient-based optimizers, schedules and stopping criteria."""

from repro.optim.sgd import SGD, RawParameter
from repro.optim.adam import Adam
from repro.optim.early_stopping import EarlyStopping
from repro.optim.lanes import LaneAdam, LaneSGD
from repro.optim.schedulers import StepLR, CosineAnnealingLR

__all__ = [
    "SGD",
    "Adam",
    "EarlyStopping",
    "RawParameter",
    "LaneAdam",
    "LaneSGD",
    "StepLR",
    "CosineAnnealingLR",
]
