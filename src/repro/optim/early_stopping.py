"""Early stopping on a validation metric.

The paper stops training when the validation loss has not improved for a
*patience* number of epochs (5000 in the paper; configurable here) and keeps
the parameters of the best epoch.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np


class EarlyStopping:
    """Track a minimized metric and signal when patience is exhausted.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated before
        :attr:`should_stop` becomes ``True``.
    min_delta:
        Minimum decrease of the metric to count as an improvement.
    """

    def __init__(self, patience: int = 5000, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best_value: float = np.inf
        self.best_epoch: int = -1
        self.best_state: Optional[Dict[str, np.ndarray]] = None
        self.epochs_since_best: int = 0

    def update(
        self,
        value: float,
        epoch: int,
        state: Optional[Dict[str, np.ndarray]] = None,
        state_fn: Optional[Callable[[], Dict[str, np.ndarray]]] = None,
    ) -> bool:
        """Record an epoch result; return ``True`` if it is a new best.

        Pass ``state`` to snapshot an already-materialized state dict, or
        the lazy ``state_fn`` to have it called *only* on new-best epochs —
        the vast majority of epochs during a long patience plateau then pay
        nothing for best-state tracking.
        """
        if state is not None and state_fn is not None:
            raise ValueError("pass either state or state_fn, not both")
        if value < self.best_value - self.min_delta:
            self.best_value = float(value)
            self.best_epoch = epoch
            self.best_state = state_fn() if state_fn is not None else state
            self.epochs_since_best = 0
            return True
        self.epochs_since_best += 1
        return False

    @property
    def should_stop(self) -> bool:
        return self.epochs_since_best >= self.patience
