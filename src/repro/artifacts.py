"""Shared on-disk artifacts (cached surrogate bundles).

Building the NN surrogate bundle runs thousands of circuit sweeps and
trains two MLPs (≈ 1–2 minutes); examples, tests and benches share one
cached bundle.  The cache directory defaults to ``<repo>/artifacts`` and
can be redirected with the ``REPRO_ARTIFACTS`` environment variable.
"""

from __future__ import annotations

import os
from pathlib import Path

#: Default configuration of the shared bundle: enough QMC points and
#: training budget for surrogate R² ≈ 0.95 at ~1 minute build time.
DEFAULT_BUNDLE_POINTS = 4096
DEFAULT_BUNDLE_EPOCHS = 4000
DEFAULT_BUNDLE_PATIENCE = 500


def default_artifacts_dir() -> Path:
    """The artifacts directory (created on demand)."""
    env = os.environ.get("REPRO_ARTIFACTS")
    if env:
        path = Path(env)
    else:
        path = Path(__file__).resolve().parents[2] / "artifacts"
    path.mkdir(parents=True, exist_ok=True)
    return path


def get_default_bundle(n_points: int = DEFAULT_BUNDLE_POINTS, seed: int = 0, verbose: bool = False):
    """Load (or build and cache) the shared NN surrogate bundle."""
    from repro.surrogate.pipeline import build_surrogate_bundle

    return build_surrogate_bundle(
        n_points=n_points,
        max_epochs=DEFAULT_BUNDLE_EPOCHS,
        patience=DEFAULT_BUNDLE_PATIENCE,
        seed=seed,
        cache_dir=default_artifacts_dir(),
        verbose=verbose,
    )
