"""The :class:`Tensor` class: a numpy array with a reverse-mode gradient tape.

The implementation follows the classic define-by-run design: every
differentiable operation returns a new :class:`Tensor` holding references to
its parents and a closure that accumulates gradients into them.  Calling
:meth:`Tensor.backward` topologically sorts the recorded graph and runs the
closures in reverse order.

Broadcasting is fully supported: gradients flowing into an operand whose
shape was broadcast are reduced back to the operand's shape by
:func:`unbroadcast`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Scalar = Union[int, float]
ArrayLike = Union[Scalar, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    When an operand of shape ``shape`` was broadcast during the forward pass,
    the incoming gradient has the broadcast shape.  The adjoint of
    broadcasting is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A float64 ndarray with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        When ``True``, gradients are accumulated in :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    # Make numpy defer to Tensor for e.g. ``np.float64(2.0) * tensor``.
    __array_priority__ = 1000

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = np.asarray(
            data.data if isinstance(data, Tensor) else data, dtype=np.float64
        )
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self._op: str = ""

    # ------------------------------------------------------------------ #
    # graph construction                                                 #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Build a graph node from an operation result.

        ``backward`` receives the output gradient and is responsible for
        calling :meth:`_accumulate` on each parent that requires a gradient.
        """
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._backward = backward
            out._parents = parents
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer (creating it lazily)."""
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar tensors; required for
            non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(_as_array(grad), dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying array."""
        return self.data.copy()

    def item(self) -> float:
        """Return the value of a one-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    @staticmethod
    def _item_error() -> float:
        raise ValueError("item() requires a one-element tensor")

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=5)}{grad_flag})"

    # ------------------------------------------------------------------ #
    # elementwise arithmetic                                             #
    # ------------------------------------------------------------------ #

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._from_op(data, (self, other), backward, "add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._from_op(data, (self, other), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_data)
            other._accumulate(grad * self_data)

        return Tensor._from_op(data, (self, other), backward, "mul")

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_data)
            other._accumulate(-grad * self_data / (other_data * other_data))

        return Tensor._from_op(data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._from_op(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent
        self_data = self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self_data ** (exponent - 1))

        return Tensor._from_op(data, (self,), backward, "pow")

    # ------------------------------------------------------------------ #
    # comparisons (not differentiable, return numpy bool arrays)         #
    # ------------------------------------------------------------------ #

    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # linear algebra and shaping                                         #
    # ------------------------------------------------------------------ #

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product with batch broadcasting over leading dimensions."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        if self.ndim < 1 or other.ndim < 1:
            raise ValueError("matmul requires tensors with at least one dimension")
        data = self.data @ other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self_data, other_data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = (grad[..., None, :] * b).sum(axis=-1)
                self._accumulate(grad_a)
                other._accumulate(a[:, None] * grad[..., None, :])
                return
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                self._accumulate(grad[..., :, None] * b)
                grad_b = (grad[..., :, None] * a).sum(axis=tuple(range(a.ndim - 1)))
                other._accumulate(grad_b)
                return
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(grad_a)
            other._accumulate(grad_b)

        return Tensor._from_op(data, (self, other), backward, "matmul")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes; with no arguments, reverse them (like ``ndarray.T``)."""
        order = tuple(axes) if axes else tuple(reversed(range(self.ndim)))
        inverse = tuple(int(i) for i in np.argsort(order))
        data = self.data.transpose(order)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._from_op(data, (self,), backward, "transpose")

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._from_op(data, (self,), backward, "reshape")

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(original_shape, dtype=np.float64)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._from_op(data, (self,), backward, "getitem")

    # ------------------------------------------------------------------ #
    # reductions                                                         #
    # ------------------------------------------------------------------ #

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            grad_full = _expand_reduced(grad, shape, axis, keepdims)
            self._accumulate(grad_full)

        return Tensor._from_op(data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.mean(axis=axis, keepdims=keepdims)
        shape = self.data.shape
        count = self.data.size if axis is None else _axis_size(shape, axis)

        def backward(grad: np.ndarray) -> None:
            grad_full = _expand_reduced(grad, shape, axis, keepdims) / count
            self._accumulate(grad_full)

        return Tensor._from_op(data, (self,), backward, "mean")

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        self_data = self.data

        def backward(grad: np.ndarray) -> None:
            expanded = _expand_reduced(data if keepdims or axis is None else data, self_data.shape, axis, keepdims)
            mask = (self_data == expanded).astype(np.float64)
            # Split the gradient between ties to keep the adjoint exact.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            grad_full = _expand_reduced(grad, self_data.shape, axis, keepdims)
            self._accumulate(grad_full * mask / counts)

        return Tensor._from_op(data, (self,), backward, "max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))


def _axis_size(shape: Tuple[int, ...], axis) -> int:
    if isinstance(axis, int):
        return shape[axis]
    return int(np.prod([shape[a] for a in axis]))


def _expand_reduced(grad: np.ndarray, shape: Tuple[int, ...], axis, keepdims: bool) -> np.ndarray:
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    grad = np.asarray(grad, dtype=np.float64)
    if axis is None:
        return np.broadcast_to(grad, shape).copy() if grad.shape != shape else grad
    if not keepdims:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        axes = tuple(a % len(shape) for a in axes)
        for a in sorted(axes):
            grad = np.expand_dims(grad, a)
    return np.broadcast_to(grad, shape).copy()
