"""Differentiable functions on :class:`~repro.autograd.tensor.Tensor`.

These complement the arithmetic operators defined on the tensor class with
the nonlinearities, projections and reductions used by the printed neural
network and the surrogate models.  Every function records the appropriate
adjoint on the tape; the test suite verifies each against finite differences.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.autograd.tensor import Tensor

Scalar = Union[int, float]


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# --------------------------------------------------------------------- #
# smooth elementwise nonlinearities                                     #
# --------------------------------------------------------------------- #


def exp(x: Tensor) -> Tensor:
    """Elementwise natural exponential."""
    x = _wrap(x)
    data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * data)

    return Tensor._from_op(data, (x,), backward, "exp")


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm (positive domain)."""
    x = _wrap(x)
    data = np.log(x.data)
    x_data = x.data

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad / x_data)

    return Tensor._from_op(data, (x,), backward, "log")


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root (non-negative domain)."""
    x = _wrap(x)
    data = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * 0.5 / data)

    return Tensor._from_op(data, (x,), backward, "sqrt")


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    x = _wrap(x)
    data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - data * data))

    return Tensor._from_op(data, (x,), backward, "tanh")


def _stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Logistic function computed without overflow for any magnitude."""
    e = np.exp(-np.abs(z))
    return np.where(z >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic function, overflow-safe."""
    x = _wrap(x)
    data = _stable_sigmoid(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * data * (1.0 - data))

    return Tensor._from_op(data, (x,), backward, "sigmoid")


def relu(x: Tensor) -> Tensor:
    """Elementwise max(x, 0)."""
    x = _wrap(x)
    data = np.maximum(x.data, 0.0)
    mask = (x.data > 0).astype(np.float64)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._from_op(data, (x,), backward, "relu")


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """ReLU with a small slope on the negative side."""
    x = _wrap(x)
    slope = np.where(x.data > 0, 1.0, negative_slope)
    data = x.data * slope

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * slope)

    return Tensor._from_op(data, (x,), backward, "leaky_relu")


def softplus(x: Tensor, beta: float = 1.0) -> Tensor:
    """``log(1 + exp(beta * x)) / beta`` computed in a numerically stable way."""
    x = _wrap(x)
    z = beta * x.data
    data = (np.maximum(z, 0.0) + np.log1p(np.exp(-np.abs(z)))) / beta
    sig = _stable_sigmoid(z)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * sig)

    return Tensor._from_op(data, (x,), backward, "softplus")


def abs(x: Tensor) -> Tensor:  # noqa: A001 - mirrors the numpy/torch name
    """Elementwise absolute value (subgradient sign(x) at 0 → 0)."""
    x = _wrap(x)
    data = np.abs(x.data)
    sign_data = np.sign(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * sign_data)

    return Tensor._from_op(data, (x,), backward, "abs")


def sign(x: Tensor) -> Tensor:
    """Sign with zero gradient everywhere (a hard, non-differentiable gate)."""
    x = _wrap(x)

    def backward(grad: np.ndarray) -> None:  # pragma: no cover - zero grad
        x._accumulate(np.zeros_like(grad))

    return Tensor._from_op(np.sign(x.data), (x,), backward, "sign")


# --------------------------------------------------------------------- #
# projections                                                           #
# --------------------------------------------------------------------- #


def clip(x: Tensor, low: Scalar, high: Scalar) -> Tensor:
    """Clamp with the exact (zero outside the range) gradient."""
    x = _wrap(x)
    data = np.clip(x.data, low, high)
    mask = ((x.data >= low) & (x.data <= high)).astype(np.float64)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._from_op(data, (x,), backward, "clip")


def clip_ste(x: Tensor, low: Scalar, high: Scalar) -> Tensor:
    """Clamp with a straight-through gradient estimator.

    Forward: values are projected into ``[low, high]``.  Backward: the
    gradient passes through unchanged, as if no projection had happened.
    This is the technique the paper uses (citing Bengio et al. [13]) to keep
    infeasible conductances trainable.
    """
    x = _wrap(x)
    data = np.clip(x.data, low, high)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad)

    return Tensor._from_op(data, (x,), backward, "clip_ste")


def project_printable_ste(x: Tensor, g_min: Scalar, g_max: Scalar) -> Tensor:
    """Project surrogate conductances into the printable set, STE backward.

    The printable set from the paper is
    ``[-g_max, -g_min] ∪ {0} ∪ [g_min, g_max]``: magnitudes above ``g_max``
    saturate, magnitudes below ``g_min`` snap to the nearer of ``0`` and
    ``±g_min``.  The backward pass is the identity (straight-through).
    """
    x = _wrap(x)
    magnitude = np.abs(x.data)
    sign_data = np.sign(x.data)
    snapped = np.where(magnitude < g_min / 2.0, 0.0, np.clip(magnitude, g_min, g_max))
    data = sign_data * snapped

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad)

    return Tensor._from_op(data, (x,), backward, "project_printable_ste")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select elementwise from ``a`` where ``condition`` else ``b``.

    ``condition`` is a plain boolean array (it carries no gradient).
    """
    a, b = _wrap(a), _wrap(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(np.where(cond, grad, 0.0))
        b._accumulate(np.where(cond, 0.0, grad))

    return Tensor._from_op(data, (a, b), backward, "where")


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; on ties the gradient is split equally."""
    a, b = _wrap(a), _wrap(b)
    data = np.maximum(a.data, b.data)
    a_wins = (a.data > b.data).astype(np.float64)
    ties = (a.data == b.data).astype(np.float64) * 0.5

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * (a_wins + ties))
        b._accumulate(grad * (1.0 - a_wins - ties))

    return Tensor._from_op(data, (a, b), backward, "maximum")


# --------------------------------------------------------------------- #
# shaping                                                               #
# --------------------------------------------------------------------- #


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Join tensors along an existing axis."""
    tensors = [_wrap(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._from_op(data, tuple(tensors), backward, "concatenate")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Join tensors along a new axis."""
    tensors = [_wrap(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(piece)

    return Tensor._from_op(data, tuple(tensors), backward, "stack")


def broadcast_to(x: Tensor, shape: Sequence[int]) -> Tensor:
    """Explicitly broadcast to ``shape`` (adjoint sums over new axes)."""
    x = _wrap(x)
    shape = tuple(shape)
    data = np.broadcast_to(x.data, shape).copy()

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad)  # _accumulate unbroadcasts

    return Tensor._from_op(data, (x,), backward, "broadcast_to")


# --------------------------------------------------------------------- #
# softmax family                                                        #
# --------------------------------------------------------------------- #


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Shift-invariant softmax along ``axis``."""
    x = _wrap(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * data).sum(axis=axis, keepdims=True)
        x._accumulate(data * (grad - dot))

    return Tensor._from_op(data, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log of the softmax along ``axis``."""
    x = _wrap(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_norm
    soft = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._from_op(data, (x,), backward, "log_softmax")


def cross_entropy(logits: Tensor, targets: np.ndarray, axis: int = -1) -> Tensor:
    """Mean negative log-likelihood of integer ``targets`` under ``logits``.

    ``targets`` holds class indices along the last axis of ``logits``; any
    leading batch axes are averaged over.
    """
    logits = _wrap(logits)
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=axis)
    batch_shape = logits.data.shape[:-1]
    if targets.shape != batch_shape:
        targets = np.broadcast_to(targets, batch_shape)
    gathered = take_along_last_axis(log_probs, targets)
    return -gathered.mean()


def take_along_last_axis(x: Tensor, indices: np.ndarray) -> Tensor:
    """Differentiable ``np.take_along_axis`` over the last axis."""
    x = _wrap(x)
    indices = np.asarray(indices, dtype=np.int64)
    expanded = np.expand_dims(indices, axis=-1)
    data = np.take_along_axis(x.data, expanded, axis=-1).squeeze(-1)
    shape = x.data.shape

    def backward(grad: np.ndarray) -> None:
        full = np.zeros(shape, dtype=np.float64)
        np.put_along_axis(full, expanded, np.expand_dims(grad, -1), axis=-1)
        x._accumulate(full)

    return Tensor._from_op(data, (x,), backward, "take_along_last_axis")


def mse_loss(prediction: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error over all elements."""
    prediction = _wrap(prediction)
    target = _wrap(target)
    diff = prediction - target
    return (diff * diff).mean()


# --------------------------------------------------------------------- #
# kernel ops backend                                                     #
# --------------------------------------------------------------------- #


class _TensorOps:
    """Autograd backend for the :mod:`repro.core.kernels` ops protocol.

    The stateless circuit kernels take an ``ops`` adapter for their handful
    of non-operator primitives; passing this one makes them record the
    gradient tape, so the training modules and the autograd-free inference
    path share one implementation of the circuit equations.
    """

    const = staticmethod(Tensor)

    @staticmethod
    def raw(x) -> np.ndarray:
        return x.data if isinstance(x, Tensor) else np.asarray(x)

    abs = staticmethod(abs)
    tanh = staticmethod(tanh)
    sigmoid = staticmethod(sigmoid)
    sqrt = staticmethod(sqrt)
    clip = staticmethod(clip)
    clip_ste = staticmethod(clip_ste)
    concatenate = staticmethod(concatenate)
    broadcast_to = staticmethod(broadcast_to)


#: Module-level singleton, mirroring ``repro.core.kernels.NUMPY_OPS``.
TENSOR_OPS = _TensorOps()
