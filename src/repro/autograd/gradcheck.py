"""Finite-difference verification of autodiff gradients.

Used heavily by the test suite: every differentiable operation and every
composite model (surrogate MLP, printed layer, full pNN) is checked against
central differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(func(*inputs))`` w.r.t. one input."""
    base = [Tensor(t.data.copy()) for t in inputs]
    grad = np.zeros_like(base[index].data)
    flat = base[index].data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*base).data.sum())
        flat[i] = original - eps
        minus = float(func(*base).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Compare analytic and numerical gradients of ``sum(func(*inputs))``.

    Raises ``AssertionError`` with a diagnostic message on mismatch, returns
    ``True`` otherwise (so it can be used directly in ``assert gradcheck(...)``).
    """
    inputs = [t if isinstance(t, Tensor) else Tensor(t) for t in inputs]
    for tensor in inputs:
        tensor.requires_grad = True
        tensor.zero_grad()

    output = func(*inputs)
    output.sum().backward()

    for i, tensor in enumerate(inputs):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
