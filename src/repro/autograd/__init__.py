"""Reverse-mode automatic differentiation on numpy arrays.

This package is the training substrate of the reproduction: the paper relies
on PyTorch autodiff, which is not available in this environment, so an
equivalent reverse-mode engine is implemented here from scratch.

Public API:

- :class:`~repro.autograd.tensor.Tensor` — an ndarray with a gradient tape.
- :mod:`~repro.autograd.functional` — differentiable functions on tensors
  (``tanh``, ``sigmoid``, ``softmax``, ``clip_ste``, reductions, ...).
- :func:`~repro.autograd.gradcheck.gradcheck` — finite-difference gradient
  verification used throughout the test suite.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd.gradcheck import gradcheck

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional", "gradcheck"]
