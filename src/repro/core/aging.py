"""Aging models for printed conductances (extension).

The paper's related work ([5], Zhao et al., ICCAD 2022) trains printed
neuromorphic circuits against *aging*: printed resistors drift over their
lifetime, degrading a circuit that was only optimized for its fresh state.
This module extends the reproduction with that capability, reusing the
Monte-Carlo machinery of variation-aware training: an aging model
*implements* the :class:`~repro.core.variation.NonIdealityModel` protocol
(isinstance-checkable, not duck-typed), so

- **aging-aware training** is ``train_pnn(..., TrainConfig(...))`` with the
  trainer's variation model swapped for an :class:`AgingModel`, and
- **lifetime evaluation** sweeps the accuracy over device age.

The drift model follows the common printed-resistor characterization:
conductance decays log-linearly with time,

    g(t) = g(0) · (1 − δ · ln(1 + t/τ)) · ε_stochastic

with device-to-device stochastic spread ε ~ U[1−σ, 1+σ].  Each Monte-Carlo
sample draws one age t ~ U[0, T] (one fabricated device observed at a
random point of its service life) and one spread per component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.pnn import PrintedNeuralNetwork
from repro.core.variation import ComposedModel, NonIdealityModel


class AgingModel(NonIdealityModel):
    """Lifetime drift sampler — a :class:`NonIdealityModel` implementation.

    Purely multiplicative (``sample`` is the whole story), so it rides the
    default ``sample_perturbation`` of the protocol and composes with any
    other model through :class:`~repro.core.variation.ComposedModel`.
    """

    def __init__(
        self,
        drift_rate: float = 0.05,
        time_horizon: float = 1.0,
        tau: float = 0.1,
        spread: float = 0.02,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        fixed_time: Optional[float] = None,
    ):
        """
        Parameters
        ----------
        drift_rate:
            δ — relative conductance loss per ln-decade of normalized time.
        time_horizon:
            T — the service life over which training/evaluation averages.
        tau:
            τ — the drift time constant (same unit as ``time_horizon``).
        spread:
            σ — device-to-device stochastic spread around the drift curve.
        fixed_time:
            Evaluate at one specific age instead of sampling t ~ U[0, T]
            (used by lifetime sweeps).
        """
        if drift_rate < 0:
            raise ValueError("drift_rate must be non-negative")
        if time_horizon < 0 or tau <= 0:
            raise ValueError("need time_horizon >= 0 and tau > 0")
        if not 0 <= spread < 1:
            raise ValueError("spread must be in [0, 1)")
        self.drift_rate = float(drift_rate)
        self.time_horizon = float(time_horizon)
        self.tau = float(tau)
        self.spread = float(spread)
        self.fixed_time = fixed_time
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    @property
    def is_nominal(self) -> bool:
        """Aging is nominal only when there is neither drift nor spread."""
        no_drift = self.drift_rate == 0.0 or (
            self.fixed_time == 0.0 and self.fixed_time is not None
        )
        return no_drift and self.spread == 0.0

    def decay_factor(self, time: np.ndarray) -> np.ndarray:
        """Deterministic drift multiplier at age ``time``."""
        factor = 1.0 - self.drift_rate * np.log1p(np.asarray(time) / self.tau)
        return np.clip(factor, 0.05, None)

    def sample(self, n_mc: int, shape: Sequence[int]) -> np.ndarray:
        """Draw ``(n_mc, *shape)`` multiplicative aging factors."""
        if n_mc < 1:
            raise ValueError("n_mc must be >= 1")
        shape = tuple(int(s) for s in shape)
        if self.fixed_time is not None:
            times = np.full(n_mc, self.fixed_time)
        else:
            times = self.rng.uniform(0.0, self.time_horizon, size=n_mc)
        drift = self.decay_factor(times).reshape(n_mc, *([1] * len(shape)))
        if self.spread > 0:
            jitter = self.rng.uniform(
                1.0 - self.spread, 1.0 + self.spread, size=(n_mc, *shape)
            )
        else:
            jitter = 1.0
        return drift * jitter

    def at_time(self, time: float) -> "AgingModel":
        """A copy of this model pinned to one device age."""
        return AgingModel(
            drift_rate=self.drift_rate,
            time_horizon=self.time_horizon,
            tau=self.tau,
            spread=self.spread,
            rng=np.random.default_rng(self.rng.integers(2**32)),
            fixed_time=float(time),
        )


class CompositeVariation(ComposedModel):
    """Product of independent disturbance models (back-compat name).

    Historically this class hand-rolled the multiplicative composition;
    it is now :class:`~repro.core.variation.ComposedModel` under its
    original name — same constructor, same ``.models`` attribute, same
    sample product (combining e.g. printing variation with aging), plus
    the generalized override-aware composition inherited from the base.
    """


@dataclass
class LifetimePoint:
    """Accuracy distribution at one device age."""

    time: float
    mean: float
    std: float


def evaluate_lifetime(
    pnn: PrintedNeuralNetwork,
    x: np.ndarray,
    y: np.ndarray,
    aging: AgingModel,
    times: Sequence[float],
    n_test: int = 50,
    seed: int = 0,
):
    """Accuracy-over-lifetime sweep (the aging analogue of Table II).

    At each age the aging model is pinned to that time (stochastic spread
    still active) and the circuit is evaluated with ``n_test`` Monte-Carlo
    device samples.  The design is snapshotted once and the sweep runs
    through the autograd-free kernel path.
    """
    from repro.core.params import PNNParams, snapshot_params

    y = np.asarray(y, dtype=np.int64)
    params = pnn if isinstance(pnn, PNNParams) else snapshot_params(pnn)
    points = []
    for time in times:
        pinned = aging.at_time(float(time))
        pinned.rng = np.random.default_rng(seed + int(1000 * time))
        predictions = params.predict(x, variation=pinned, n_mc=n_test)
        accuracies = (predictions == y).mean(axis=1)
        points.append(
            LifetimePoint(time=float(time), mean=float(accuracies.mean()),
                          std=float(accuracies.std()))
        )
    return points
