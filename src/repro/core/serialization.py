"""Saving and loading trained pNN designs.

Two on-disk formats live here:

- :func:`save_pnn` / :func:`load_pnn` persist the *learnable* module state
  (raw θ and 𝔴 parameters) so training can resume; the surrogate models
  are *not* embedded — they are shared artifacts with their own cache (see
  :mod:`repro.surrogate.io`) — so loading requires passing compatible
  surrogates, and a fingerprint check warns when they differ from the ones
  used in training.
- :func:`save_params` / :func:`load_params` persist a frozen
  :class:`~repro.core.params.PNNParams` inference snapshot — printable θ/ω
  plus the surrogate snapshots, i.e. everything the autograd-free kernel
  path needs, self-contained.  The format is stamped with
  :data:`~repro.core.params.PNN_PARAMS_VERSION`; loading any other version
  raises.  This is the artifact the experiment result cache stores.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.conductance import ConductanceConfig
from repro.core.params import (
    PNN_PARAMS_VERSION,
    LayerParams,
    PNNParams,
    SurrogateParams,
)
from repro.core.pnn import PrintedNeuralNetwork


def surrogate_fingerprint(surrogates) -> str:
    """Stable hash of the surrogate parameters a pNN was trained against.

    Accepts either a :class:`~repro.surrogate.pipeline.SurrogateBundle` or
    a plain ``(activation, negation)`` pair.  NN surrogates are hashed over
    their full parameter state, analytic surrogates over their affine
    calibration, so any retraining or recalibration changes the digest.
    The experiment result cache (:mod:`repro.experiments.cache`) folds this
    digest into every cache key.
    """
    hasher = hashlib.sha256()
    pair = (
        (surrogates.ptanh, surrogates.negweight)
        if hasattr(surrogates, "ptanh")
        else tuple(surrogates)
    )
    for surrogate in pair:
        if hasattr(surrogate, "model"):
            state = getattr(surrogate.model, "state_dict", None)
            if callable(state):
                for name, value in sorted(state().items()):
                    hasher.update(name.encode())
                    hasher.update(np.ascontiguousarray(value).tobytes())
                continue
        # Analytic surrogate: hash its calibration.
        hasher.update(np.ascontiguousarray(surrogate.scale).tobytes())
        hasher.update(np.ascontiguousarray(surrogate.shift).tobytes())
    return hasher.hexdigest()[:16]


def save_pnn(pnn: PrintedNeuralNetwork, path: Union[str, Path], surrogates=None) -> Path:
    """Write a trained design to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    first_layer = pnn.layers[0]
    payload = {
        "layer_sizes": np.asarray(pnn.layer_sizes, dtype=np.int64),
        "per_neuron_activation": np.asarray(pnn.per_neuron_activation, dtype=np.int64),
        "activation_on_output": np.asarray(pnn.layers[-1].apply_activation, dtype=np.int64),
        "g_min": np.asarray(first_layer.conductance.g_min),
        "g_max": np.asarray(first_layer.conductance.g_max),
        "init_negative_fraction": np.asarray(first_layer.conductance.init_negative_fraction),
    }
    if surrogates is not None:
        payload["surrogate_fingerprint"] = np.frombuffer(
            surrogate_fingerprint(surrogates).encode(), dtype=np.uint8
        )
    for name, value in pnn.state_dict().items():
        payload[f"param.{name}"] = value
    np.savez(path, **payload)
    return path


def load_pnn(
    path: Union[str, Path],
    surrogates,
    strict_fingerprint: bool = False,
) -> PrintedNeuralNetwork:
    """Rebuild a design saved with :func:`save_pnn`.

    Parameters
    ----------
    surrogates:
        The surrogate bundle (or analytic pair) to attach.  With
        ``strict_fingerprint=True`` a mismatch against the fingerprint
        recorded at save time raises instead of silently re-targeting the
        design to different circuit models.
    """
    with np.load(Path(path)) as archive:
        if strict_fingerprint:
            if "surrogate_fingerprint" not in archive.files:
                raise ValueError("design was saved without a surrogate fingerprint")
            recorded = bytes(archive["surrogate_fingerprint"]).decode()
            current = surrogate_fingerprint(surrogates)
            if recorded != current:
                raise ValueError(
                    f"surrogate mismatch: design trained against {recorded}, "
                    f"got {current}"
                )
        conductance = ConductanceConfig(
            g_min=float(archive["g_min"]),
            g_max=float(archive["g_max"]),
            init_negative_fraction=float(archive["init_negative_fraction"]),
        )
        pnn = PrintedNeuralNetwork(
            [int(s) for s in archive["layer_sizes"]],
            surrogates,
            conductance=conductance,
            per_neuron_activation=bool(archive["per_neuron_activation"]),
            activation_on_output=bool(archive["activation_on_output"]),
            rng=np.random.default_rng(0),
        )
        state = {}
        for key in archive.files:
            if key.startswith("param."):
                state[key[len("param."):]] = archive[key]
        pnn.load_state_dict(state)
    return pnn


# --------------------------------------------------------------------- #
# PNNParams snapshot format                                             #
# --------------------------------------------------------------------- #


def _surrogate_payload(prefix: str, surrogate: SurrogateParams) -> dict:
    payload = {
        f"{prefix}.kind": np.asarray(surrogate.kind),
        f"{prefix}.backend": np.asarray(surrogate.backend),
    }
    if surrogate.backend == "mlp":
        payload[f"{prefix}.n_linear"] = np.asarray(len(surrogate.weights), dtype=np.int64)
        for j, (weight, bias) in enumerate(zip(surrogate.weights, surrogate.biases)):
            payload[f"{prefix}.weight{j}"] = weight
            payload[f"{prefix}.bias{j}"] = bias
        payload[f"{prefix}.input_min"] = surrogate.input_min
        payload[f"{prefix}.input_span"] = surrogate.input_span
        payload[f"{prefix}.eta_min"] = surrogate.eta_min
        payload[f"{prefix}.eta_span"] = surrogate.eta_span
    else:
        payload[f"{prefix}.scale"] = surrogate.scale
        payload[f"{prefix}.shift"] = surrogate.shift
        payload[f"{prefix}.constants"] = np.asarray(
            [surrogate.k_prime, surrogate.v_threshold,
             surrogate.vdd, surrogate.second_stage_load]
        )
    return payload


def _surrogate_from_archive(prefix: str, archive) -> SurrogateParams:
    kind = str(archive[f"{prefix}.kind"])
    backend = str(archive[f"{prefix}.backend"])
    if backend == "mlp":
        n_linear = int(archive[f"{prefix}.n_linear"])
        return SurrogateParams(
            kind=kind,
            backend="mlp",
            weights=tuple(archive[f"{prefix}.weight{j}"] for j in range(n_linear)),
            biases=tuple(archive[f"{prefix}.bias{j}"] for j in range(n_linear)),
            input_min=archive[f"{prefix}.input_min"],
            input_span=archive[f"{prefix}.input_span"],
            eta_min=archive[f"{prefix}.eta_min"],
            eta_span=archive[f"{prefix}.eta_span"],
        )
    constants = archive[f"{prefix}.constants"]
    return SurrogateParams(
        kind=kind,
        backend="analytic",
        scale=archive[f"{prefix}.scale"],
        shift=archive[f"{prefix}.shift"],
        k_prime=float(constants[0]),
        v_threshold=float(constants[1]),
        vdd=float(constants[2]),
        second_stage_load=float(constants[3]),
    )


def save_params(params: PNNParams, path: Union[str, Path], surrogates=None) -> Path:
    """Write a frozen inference snapshot to ``path`` (``.npz``).

    The snapshot is self-contained (surrogate snapshots included); passing
    the live ``surrogates`` additionally records their fingerprint so
    :func:`load_params` can verify provenance strictly.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "params_version": np.asarray(params.version, dtype=np.int64),
        "layer_sizes": np.asarray(params.layer_sizes, dtype=np.int64),
        "per_neuron_activation": np.asarray(params.per_neuron_activation, dtype=np.int64),
        "activation_on_output": np.asarray(params.activation_on_output, dtype=np.int64),
    }
    for i, layer in enumerate(params.layers):
        payload[f"layer{i}.theta"] = layer.theta
        payload[f"layer{i}.act_omega"] = layer.act_omega
        payload[f"layer{i}.neg_omega"] = layer.neg_omega
        payload[f"layer{i}.apply_activation"] = np.asarray(layer.apply_activation, dtype=np.int64)
    payload.update(_surrogate_payload("surrogate.act", params.act_surrogate))
    payload.update(_surrogate_payload("surrogate.neg", params.neg_surrogate))
    if surrogates is not None:
        payload["surrogate_fingerprint"] = np.frombuffer(
            surrogate_fingerprint(surrogates).encode(), dtype=np.uint8
        )
    np.savez(path, **payload)
    return path


def load_params(
    path: Union[str, Path],
    surrogates=None,
    strict_fingerprint: bool = False,
) -> PNNParams:
    """Rebuild an inference snapshot saved with :func:`save_params`.

    Refuses snapshots of any other :data:`PNN_PARAMS_VERSION` (the struct
    they describe would be interpreted wrongly).  With
    ``strict_fingerprint=True`` the surrogate fingerprint recorded at save
    time must match ``surrogates``.
    """
    with np.load(Path(path)) as archive:
        if "params_version" not in archive.files:
            raise ValueError(
                f"{path} is not a PNNParams snapshot "
                "(legacy module state? use load_pnn)"
            )
        version = int(archive["params_version"])
        if version != PNN_PARAMS_VERSION:
            raise ValueError(
                f"snapshot has params version {version}, "
                f"this build expects {PNN_PARAMS_VERSION}"
            )
        if strict_fingerprint:
            if surrogates is None:
                raise ValueError("strict_fingerprint requires surrogates")
            if "surrogate_fingerprint" not in archive.files:
                raise ValueError("snapshot was saved without a surrogate fingerprint")
            recorded = bytes(archive["surrogate_fingerprint"]).decode()
            current = surrogate_fingerprint(surrogates)
            if recorded != current:
                raise ValueError(
                    f"surrogate mismatch: snapshot taken against {recorded}, "
                    f"got {current}"
                )
        layer_sizes = tuple(int(s) for s in archive["layer_sizes"])
        layers = tuple(
            LayerParams(
                theta=archive[f"layer{i}.theta"],
                act_omega=archive[f"layer{i}.act_omega"],
                neg_omega=archive[f"layer{i}.neg_omega"],
                apply_activation=bool(archive[f"layer{i}.apply_activation"]),
            )
            for i in range(len(layer_sizes) - 1)
        )
        return PNNParams(
            layer_sizes=layer_sizes,
            per_neuron_activation=bool(archive["per_neuron_activation"]),
            activation_on_output=bool(archive["activation_on_output"]),
            layers=layers,
            act_surrogate=_surrogate_from_archive("surrogate.act", archive),
            neg_surrogate=_surrogate_from_archive("surrogate.neg", archive),
            version=version,
        )
