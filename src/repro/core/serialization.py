"""Saving and loading trained pNN designs.

A trained pNN is a circuit design: topology, surrogate conductances θ and
nonlinear-circuit parameters 𝔴.  This module persists all of it (plus the
conductance configuration and structural flags) to a single ``.npz`` so a
design can be re-evaluated, exported or resumed later.  The surrogate
models are *not* embedded — they are shared artifacts with their own cache
(see :mod:`repro.surrogate.io`) — so loading requires passing compatible
surrogates, and a fingerprint check warns when they differ from the ones
used in training.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.conductance import ConductanceConfig
from repro.core.pnn import PrintedNeuralNetwork


def surrogate_fingerprint(surrogates) -> str:
    """Stable hash of the surrogate parameters a pNN was trained against.

    Accepts either a :class:`~repro.surrogate.pipeline.SurrogateBundle` or
    a plain ``(activation, negation)`` pair.  NN surrogates are hashed over
    their full parameter state, analytic surrogates over their affine
    calibration, so any retraining or recalibration changes the digest.
    The experiment result cache (:mod:`repro.experiments.cache`) folds this
    digest into every cache key.
    """
    hasher = hashlib.sha256()
    pair = (
        (surrogates.ptanh, surrogates.negweight)
        if hasattr(surrogates, "ptanh")
        else tuple(surrogates)
    )
    for surrogate in pair:
        if hasattr(surrogate, "model"):
            state = getattr(surrogate.model, "state_dict", None)
            if callable(state):
                for name, value in sorted(state().items()):
                    hasher.update(name.encode())
                    hasher.update(np.ascontiguousarray(value).tobytes())
                continue
        # Analytic surrogate: hash its calibration.
        hasher.update(np.ascontiguousarray(surrogate.scale).tobytes())
        hasher.update(np.ascontiguousarray(surrogate.shift).tobytes())
    return hasher.hexdigest()[:16]


def save_pnn(pnn: PrintedNeuralNetwork, path: Union[str, Path], surrogates=None) -> Path:
    """Write a trained design to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    first_layer = pnn.layers[0]
    payload = {
        "layer_sizes": np.asarray(pnn.layer_sizes, dtype=np.int64),
        "per_neuron_activation": np.asarray(pnn.per_neuron_activation, dtype=np.int64),
        "activation_on_output": np.asarray(pnn.layers[-1].apply_activation, dtype=np.int64),
        "g_min": np.asarray(first_layer.conductance.g_min),
        "g_max": np.asarray(first_layer.conductance.g_max),
        "init_negative_fraction": np.asarray(first_layer.conductance.init_negative_fraction),
    }
    if surrogates is not None:
        payload["surrogate_fingerprint"] = np.frombuffer(
            surrogate_fingerprint(surrogates).encode(), dtype=np.uint8
        )
    for name, value in pnn.state_dict().items():
        payload[f"param.{name}"] = value
    np.savez(path, **payload)
    return path


def load_pnn(
    path: Union[str, Path],
    surrogates,
    strict_fingerprint: bool = False,
) -> PrintedNeuralNetwork:
    """Rebuild a design saved with :func:`save_pnn`.

    Parameters
    ----------
    surrogates:
        The surrogate bundle (or analytic pair) to attach.  With
        ``strict_fingerprint=True`` a mismatch against the fingerprint
        recorded at save time raises instead of silently re-targeting the
        design to different circuit models.
    """
    with np.load(Path(path)) as archive:
        if strict_fingerprint:
            if "surrogate_fingerprint" not in archive.files:
                raise ValueError("design was saved without a surrogate fingerprint")
            recorded = bytes(archive["surrogate_fingerprint"]).decode()
            current = surrogate_fingerprint(surrogates)
            if recorded != current:
                raise ValueError(
                    f"surrogate mismatch: design trained against {recorded}, "
                    f"got {current}"
                )
        conductance = ConductanceConfig(
            g_min=float(archive["g_min"]),
            g_max=float(archive["g_max"]),
            init_negative_fraction=float(archive["init_negative_fraction"]),
        )
        pnn = PrintedNeuralNetwork(
            [int(s) for s in archive["layer_sizes"]],
            surrogates,
            conductance=conductance,
            per_neuron_activation=bool(archive["per_neuron_activation"]),
            activation_on_output=bool(archive["activation_on_output"]),
            rng=np.random.default_rng(0),
        )
        state = {}
        for key in archive.files:
            if key.startswith("param."):
                state[key[len("param."):]] = archive[key]
        pnn.load_state_dict(state)
    return pnn
