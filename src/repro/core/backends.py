"""Backend registry behind the kernel ops seam, plus the fused backend.

:mod:`repro.core.kernels` is generic over ops adapters (``NUMPY_OPS`` /
``TENSOR_OPS``); this module adds the third tier the ROADMAP names — a
registry of named *execution backends* for the numpy hot paths:

- ``"numpy"`` — the historical allocating kernels, unchanged.  This is
  the reference every other backend must match **bitwise**
  (``assert_array_equal``, never ``allclose`` — the house rule).
- ``"fused"`` — preallocated scratch via the existing
  :class:`~repro.core.grad_kernels.Workspace` machinery and ``out=``
  /in-place arithmetic across ``augment_inputs → crossbar_output →
  circuit_transfer → apply_nonideality`` (and their VJPs inside
  :class:`~repro.core.grad_kernels.KernelNetwork`), eliminating the
  temporary-array churn numpy pays for multi-MB intermediates (freshly
  mmapped pages per temporary).  Identical operations in identical order,
  only the destination buffers change — so results are bit-identical.

An optional JIT tier layers on top (:mod:`repro.core._jit`): if ``numba``
imports, two elementwise scalar chains compile into single passes; if not
(the supported baseline), the fused-numpy tier alone carries the speedup.
Auto-detected, never a dependency — :func:`numba_version` reports what a
run actually used, and telemetry manifests record it.

Backend choice is an execution detail, exactly like the training
``engine``: it is deliberately **outside** the result-cache fingerprint
(:func:`repro.experiments.cache.job_digest`), so cache entries recorded
under one backend are shared by all of them.

The MC-evaluation entry point is :meth:`Backend.make_eval_driver`:
:func:`repro.core.evaluation.evaluate_mc` builds one driver per call and
reuses it across ``batch_mc`` chunks, so the fused driver's scratch
buffers persist across the whole evaluation.  The training-path fused
tier threads through ``KernelNetwork.from_pnn(..., backend=...)`` /
``TrainConfig.backend`` instead (one Workspace per engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core import _jit, kernels
from repro.core.grad_kernels import Workspace
from repro.core.kernels import (
    BIAS_VOLTAGE,
    LayerEpsilons,
    apply_nonideality,
    circuit_eta,
)
from repro.core.variation import Perturbation

#: The reference backend — and the default everywhere a backend is chosen.
DEFAULT_BACKEND = "numpy"


def numba_version() -> Optional[str]:
    """``numba.__version__`` when the JIT tier is available, else ``None``."""
    return _jit.NUMBA_VERSION


# --------------------------------------------------------------------- #
# evaluation drivers                                                    #
# --------------------------------------------------------------------- #


class NumpyEvalDriver:
    """Reference MC-evaluation driver: thin wrapper over the numpy kernels."""

    def __init__(self, params, x: np.ndarray):
        self.params = params
        self.x = np.asarray(x, dtype=np.float64)

    def forward(self, epsilons: Optional[List[LayerEpsilons]] = None) -> np.ndarray:
        """Output voltages ``(n_mc, batch, classes)`` for one draw chunk."""
        return kernels.network_forward(self.params, self.x, epsilons=epsilons)

    def predict(self, epsilons: Optional[List[LayerEpsilons]] = None) -> np.ndarray:
        """Class predictions ``(n_mc, batch)`` for one draw chunk."""
        return kernels.predict(self.params, self.x, epsilons=epsilons)


class FusedEvalDriver:
    """Fused MC-evaluation driver: one Workspace across every chunk.

    Executes exactly the :func:`repro.core.kernels.network_forward`
    sequence — same validation, same operations in the same order — but
    every batch-sized intermediate lives in a named scratch buffer that
    persists across ``batch_mc`` chunks (chunk shapes are constant, so the
    steady state allocates nothing).  ``out=`` ufuncs and matmuls round
    identically to their allocating forms, keeping the output bitwise
    equal to the reference driver (pinned per chunk by
    ``tests/core/test_backends.py``).
    """

    def __init__(self, params, x: np.ndarray):
        data = np.asarray(x, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected a (batch, features) input")
        if data.shape[1] != params.layer_sizes[0]:
            raise ValueError(
                f"input has {data.shape[1]} features, "
                f"network expects {params.layer_sizes[0]}"
            )
        self.params = params
        self.x = data
        self.workspace = Workspace()
        # Shape of the layer-0 x_aug buffer whose content is already
        # valid; layer 0 augments the *same* broadcast input every chunk,
        # so a same-shaped chunk can skip the (large) refill entirely.
        self._x0_filled: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------ #
    # fused kernel steps                                                 #
    # ------------------------------------------------------------------ #

    def _fill_x_aug(
        self, tag: str, hidden: np.ndarray, cacheable: bool = False
    ) -> np.ndarray:
        """`augment_inputs` into a buffer: [x | 1 V bias | 0 V down].

        ``cacheable`` marks a fill whose content is chunk-invariant (layer
        0: ``hidden`` is always the broadcast network input).  Nothing else
        ever writes to the x_aug buffers, so when the chunk shape repeats
        the previous fill is still byte-exact and is reused as-is.
        """
        *lead, batch, n_in = hidden.shape
        shape = (*lead, batch, n_in + 2)
        x_aug = self.workspace.buf(f"{tag}.x_aug", shape)
        if cacheable and self._x0_filled == shape:
            return x_aug
        x_aug[..., :n_in] = hidden
        x_aug[..., n_in] = BIAS_VOLTAGE
        x_aug[..., n_in + 1] = 0.0
        if cacheable:
            self._x0_filled = shape
        return x_aug

    def _fused_transfer(
        self, voltage: np.ndarray, eta: np.ndarray, kind: str, tag: str
    ) -> np.ndarray:
        """`circuit_transfer` with buffered intermediates (bitwise equal)."""
        ws = self.workspace
        n_mc, n_circuits = eta.shape[0], eta.shape[1]
        shape = (n_mc, 1, 1) if n_circuits == 1 else (n_mc, 1, n_circuits)
        eta1 = eta[:, :, 0].reshape(*shape)
        eta2 = eta[:, :, 1].reshape(*shape)
        eta3 = eta[:, :, 2].reshape(*shape)
        eta4 = eta[:, :, 3].reshape(*shape)
        full = np.broadcast_shapes(voltage.shape, shape)
        u = ws.buf(f"{tag}.u", full)
        if _jit.shift_scale is not None:
            _jit.shift_scale(voltage, eta3, eta4, out=u)
        else:
            np.subtract(voltage, eta3, out=u)
            np.multiply(u, eta4, out=u)
        np.tanh(u, out=u)
        out = ws.buf(f"{tag}.out", full)
        if _jit.affine is not None:
            _jit.affine(eta1, eta2, u, out=out)
        else:
            np.multiply(eta2, u, out=out)
            np.add(eta1, out, out=out)
        if kind == "negweight":
            np.negative(out, out=out)
        return out

    def _fused_crossbar(
        self, x_aug: np.ndarray, inverted: np.ndarray, theta_eff: np.ndarray, tag: str
    ) -> np.ndarray:
        """`crossbar_output` with buffered intermediates (bitwise equal)."""
        ws = self.workspace
        batch = x_aug.shape[-2]
        n_out = theta_eff.shape[-1]
        magnitude = np.abs(theta_eff, out=ws.buf(f"{tag}.mag", theta_eff.shape))
        route = ws.buf(f"{tag}.route", theta_eff.shape)
        np.greater_equal(theta_eff, 0.0, out=route)
        route[..., -1, :] = 1.0
        pos_w = np.multiply(magnitude, route, out=ws.buf(f"{tag}.pos", theta_eff.shape))
        neg_w = np.subtract(1.0, route, out=ws.buf(f"{tag}.neg", theta_eff.shape))
        np.multiply(magnitude, neg_w, out=neg_w)
        lead = np.broadcast_shapes(x_aug.shape[:-2], theta_eff.shape[:-2])
        numerator = np.matmul(
            x_aug, pos_w, out=ws.buf(f"{tag}.num", (*lead, batch, n_out))
        )
        num2 = np.matmul(
            inverted, neg_w, out=ws.buf(f"{tag}.num2", (*lead, batch, n_out))
        )
        np.add(numerator, num2, out=numerator)
        denom = np.sum(
            magnitude, axis=1, out=ws.buf(f"{tag}.denom", (theta_eff.shape[0], n_out))
        )
        np.add(denom, 1e-12, out=denom)
        np.divide(
            numerator, denom.reshape(theta_eff.shape[0], 1, n_out), out=numerator
        )
        return numerator

    # ------------------------------------------------------------------ #
    # whole-path driver                                                  #
    # ------------------------------------------------------------------ #

    def forward(self, epsilons: Optional[List[LayerEpsilons]] = None) -> np.ndarray:
        """Output voltages ``(n_mc, batch, classes)`` for one draw chunk."""
        params = self.params
        ws = self.workspace
        if epsilons is not None:
            if len(epsilons) != len(params.layers):
                raise ValueError("need one epsilon triple per layer")
            first = epsilons[0][0]
            n_mc = 1 if first is None else int(first.shape[0])
        else:
            n_mc = 1

        hidden = self.x[None]
        if n_mc > 1:
            hidden = np.broadcast_to(hidden, (n_mc, *self.x.shape))

        for index, layer in enumerate(params.layers):
            eps_theta = eps_act = eps_neg = None
            if epsilons is not None:
                eps_theta, eps_act, eps_neg = epsilons[index]
            tag = f"mc.l{index}"

            x_aug = self._fill_x_aug(tag, hidden, cacheable=index == 0)

            theta_eff = layer.theta[None]                     # (1, I+2, O)
            if eps_theta is not None:
                eps = eps_theta
                if not isinstance(eps, Perturbation):
                    eps = np.asarray(eps, dtype=np.float64)
                if eps.ndim != 3 or eps.shape[1:] != layer.theta.shape:
                    raise ValueError("epsilon_theta must be (n_mc, in+2, out)")
                theta_eff = apply_nonideality(
                    theta_eff, eps,
                    out=ws.buf(
                        f"{tag}.theta",
                        np.broadcast_shapes(theta_eff.shape, eps.shape),
                    ),
                )

            inv_eta = circuit_eta(layer.neg_omega, params.neg_surrogate, eps_neg)
            inverted = self._fused_transfer(x_aug, inv_eta, "negweight", f"{tag}.neg")
            v_z = self._fused_crossbar(x_aug, inverted, theta_eff, tag)
            if not layer.apply_activation:
                hidden = v_z
                continue
            act_eta = circuit_eta(layer.act_omega, params.act_surrogate, eps_act)
            hidden = self._fused_transfer(v_z, act_eta, "ptanh", f"{tag}.act")
        return hidden

    def predict(self, epsilons: Optional[List[LayerEpsilons]] = None) -> np.ndarray:
        """Class predictions ``(n_mc, batch)`` for one draw chunk."""
        voltages = self.forward(epsilons)
        out = self.workspace.buf("mc.pred", voltages.shape[:-1], dtype=np.intp)
        return np.argmax(voltages, axis=-1, out=out)


# --------------------------------------------------------------------- #
# the registry                                                          #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Backend:
    """One registered execution backend.

    Attributes
    ----------
    name:
        Registry key (the CLI/TrainConfig spelling).
    description:
        One human-readable line (shown in docs/benchmarks).
    fused:
        Whether the backend uses preallocated-scratch fused kernels.
    make_eval_driver:
        Factory ``(params, x) → driver`` with ``forward(epsilons)`` /
        ``predict(epsilons)`` — the MC-evaluation whole-path driver.
    """

    name: str
    description: str
    fused: bool
    make_eval_driver: Callable = field(repr=False)


_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add one backend to the registry (last registration of a name wins)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend by name; unknown names list the valid choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        valid = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown backend {name!r}; expected one of: {valid}") from None


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, in registration order (reference first)."""
    return tuple(_REGISTRY)


register_backend(
    Backend(
        name="numpy",
        description="historical allocating numpy kernels (the bitwise reference)",
        fused=False,
        make_eval_driver=NumpyEvalDriver,
    )
)
register_backend(
    Backend(
        name="fused",
        description=(
            "preallocated-scratch fused kernels (out=/in-place numpy"
            + (", numba JIT inner loops" if _jit.HAVE_NUMBA else "")
            + "); bitwise equal to 'numpy'"
        ),
        fused=True,
        make_eval_driver=FusedEvalDriver,
    )
)
