"""Immutable parameter snapshots of a trained pNN (the inference artifact).

A trained :class:`~repro.core.pnn.PrintedNeuralNetwork` is, at heart, a
circuit design: printable conductances θ per layer, printable nonlinear
component vectors ω per circuit, and the two ω → η surrogates.  This module
freezes exactly that — nothing learnable, nothing autograd-aware — into a
:class:`PNNParams` struct that the stateless kernels
(:mod:`repro.core.kernels`) execute directly.

``PNNParams`` is what crosses process boundaries in the experiment engine
and what the on-disk result cache stores (see
:mod:`repro.core.serialization`); :data:`PNN_PARAMS_VERSION` stamps the
serialized format so stale artifacts fail loudly instead of evaluating
silently wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

#: Version of the snapshot structure / serialized format.  Bump whenever a
#: field is added, removed or reinterpreted; loaders refuse other versions.
PNN_PARAMS_VERSION = 1


def _frozen(array: np.ndarray) -> np.ndarray:
    if (
        isinstance(array, np.ndarray)
        and array.dtype == np.float64
        and not array.flags.writeable
        and array.flags.c_contiguous
    ):
        # Already in frozen form (e.g. a read-only shared-memory view from
        # repro.core.shm) — adopt it, keeping zero-copy paths zero-copy.
        return array
    copy = np.array(array, dtype=np.float64, copy=True)
    copy.setflags(write=False)
    return copy


@dataclass(frozen=True)
class SurrogateParams:
    """Frozen ω → η surrogate: either an MLP snapshot or analytic constants.

    ``backend == "mlp"`` captures the NN surrogate (Fig. 3): min-max input
    statistics over the ten ratio-extended features, the MLP weights and
    biases, and the η denormalization statistics.  ``backend == "analytic"``
    captures the first-order circuit analysis constants plus the per-η
    affine calibration.
    """

    kind: str                       # "ptanh" | "negweight"
    backend: str                    # "mlp" | "analytic"
    # mlp backend
    weights: Tuple[np.ndarray, ...] = ()
    biases: Tuple[np.ndarray, ...] = ()
    input_min: Optional[np.ndarray] = None
    input_span: Optional[np.ndarray] = None
    eta_min: Optional[np.ndarray] = None
    eta_span: Optional[np.ndarray] = None
    # analytic backend
    scale: Optional[np.ndarray] = None
    shift: Optional[np.ndarray] = None
    k_prime: float = 0.0
    v_threshold: float = 0.0
    vdd: float = 0.0
    second_stage_load: float = 0.0

    def __post_init__(self):
        if self.kind not in ("ptanh", "negweight"):
            raise ValueError("kind must be 'ptanh' or 'negweight'")
        if self.backend not in ("mlp", "analytic"):
            raise ValueError("backend must be 'mlp' or 'analytic'")
        if self.backend == "mlp":
            if not self.weights or len(self.weights) != len(self.biases):
                raise ValueError("mlp backend needs matching weights/biases")
            for name in ("input_min", "input_span", "eta_min", "eta_span"):
                if getattr(self, name) is None:
                    raise ValueError(f"mlp backend needs {name}")
        else:
            if self.scale is None or self.shift is None:
                raise ValueError("analytic backend needs scale and shift")


@dataclass(frozen=True)
class LayerParams:
    """One printed layer as fabricated: θ and the printable circuit ωs."""

    theta: np.ndarray               # (in_features + 2, out_features), projected
    act_omega: np.ndarray           # (n_circuits, 7) printable activation ω
    neg_omega: np.ndarray           # (1, 7) printable negative-weight ω
    apply_activation: bool

    def __post_init__(self):
        object.__setattr__(self, "theta", _frozen(self.theta))
        object.__setattr__(self, "act_omega", _frozen(self.act_omega))
        object.__setattr__(self, "neg_omega", _frozen(self.neg_omega))
        if self.theta.ndim != 2:
            raise ValueError("theta must be (in_features + 2, out_features)")
        if self.act_omega.ndim != 2 or self.act_omega.shape[1] != 7:
            raise ValueError("act_omega must be (n_circuits, 7)")
        if self.neg_omega.ndim != 2 or self.neg_omega.shape[1] != 7:
            raise ValueError("neg_omega must be (n_circuits, 7)")

    @property
    def in_features(self) -> int:
        return self.theta.shape[0] - 2

    @property
    def out_features(self) -> int:
        return self.theta.shape[1]


@dataclass(frozen=True)
class PNNParams:
    """A complete, immutable pNN design ready for autograd-free execution.

    The struct carries everything :func:`repro.core.kernels.network_forward`
    needs: the per-layer printable parameters and the two surrogate
    snapshots.  It is cheap to pickle (plain arrays), safe to share across
    processes, and hashable by content via :func:`content_digest`.
    """

    layer_sizes: Tuple[int, ...]
    per_neuron_activation: bool
    activation_on_output: bool
    layers: Tuple[LayerParams, ...]
    act_surrogate: SurrogateParams
    neg_surrogate: SurrogateParams
    version: int = field(default=PNN_PARAMS_VERSION)

    def __post_init__(self):
        if self.version != PNN_PARAMS_VERSION:
            raise ValueError(
                f"PNNParams version {self.version} unsupported "
                f"(this build expects {PNN_PARAMS_VERSION})"
            )
        if len(self.layers) != len(self.layer_sizes) - 1:
            raise ValueError("need one LayerParams per consecutive size pair")
        for layer, (n_in, n_out) in zip(
            self.layers, zip(self.layer_sizes[:-1], self.layer_sizes[1:])
        ):
            if layer.theta.shape != (n_in + 2, n_out):
                raise ValueError(
                    f"layer theta shape {layer.theta.shape} does not match "
                    f"sizes ({n_in}+2, {n_out})"
                )

    # ---------------------------------------------------------------- #
    # execution conveniences (thin wrappers over the kernels)          #
    # ---------------------------------------------------------------- #

    def forward(self, x, variation=None, n_mc: int = 1) -> np.ndarray:
        """Output voltages ``(n_mc, batch, n_classes)`` — kernel path."""
        from repro.core import kernels

        return kernels.network_forward(self, x, variation=variation, n_mc=n_mc)

    def predict(self, x, variation=None, n_mc: int = 1) -> np.ndarray:
        """Class predictions ``(n_mc, batch)`` — kernel path."""
        from repro.core import kernels

        return kernels.predict(self, x, variation=variation, n_mc=n_mc)

    def content_digest(self) -> str:
        """Stable SHA-256 hex digest over every array in the snapshot."""
        import hashlib

        hasher = hashlib.sha256()
        hasher.update(repr((self.version, self.layer_sizes,
                            self.per_neuron_activation,
                            self.activation_on_output)).encode())
        for layer in self.layers:
            for array in (layer.theta, layer.act_omega, layer.neg_omega):
                hasher.update(np.ascontiguousarray(array).tobytes())
            hasher.update(repr(layer.apply_activation).encode())
        for surrogate in (self.act_surrogate, self.neg_surrogate):
            hasher.update(surrogate.backend.encode())
            hasher.update(surrogate.kind.encode())
            if surrogate.backend == "mlp":
                for array in (*surrogate.weights, *surrogate.biases,
                              surrogate.input_min, surrogate.input_span,
                              surrogate.eta_min, surrogate.eta_span):
                    hasher.update(np.ascontiguousarray(array).tobytes())
            else:
                for array in (surrogate.scale, surrogate.shift):
                    hasher.update(np.ascontiguousarray(array).tobytes())
                hasher.update(repr((surrogate.k_prime, surrogate.v_threshold,
                                    surrogate.vdd,
                                    surrogate.second_stage_load)).encode())
        return hasher.hexdigest()[:16]


# --------------------------------------------------------------------- #
# snapshotting                                                          #
# --------------------------------------------------------------------- #


def snapshot_surrogate(surrogate) -> SurrogateParams:
    """Freeze a live surrogate (NN or analytic) into a :class:`SurrogateParams`."""
    if hasattr(surrogate, "input_normalizer"):       # CircuitSurrogate (MLP)
        weights = []
        biases = []
        for module in surrogate.model.net:
            weight = getattr(module, "weight", None)
            if weight is None:
                continue                             # activation module
            weights.append(_frozen(weight.data))
            biases.append(_frozen(module.bias.data))
        return SurrogateParams(
            kind=surrogate.kind,
            backend="mlp",
            weights=tuple(weights),
            biases=tuple(biases),
            input_min=_frozen(surrogate.input_normalizer.minimum),
            input_span=_frozen(surrogate.input_normalizer.span),
            eta_min=_frozen(surrogate.eta_normalizer.minimum),
            eta_span=_frozen(surrogate.eta_normalizer.span),
        )
    # AnalyticSurrogate: physics constants + affine calibration.
    from repro.circuits.ptanh import SECOND_STAGE_LOAD, VDD

    return SurrogateParams(
        kind=surrogate.kind,
        backend="analytic",
        scale=_frozen(surrogate.scale),
        shift=_frozen(surrogate.shift),
        k_prime=float(surrogate.model.k_prime),
        v_threshold=float(surrogate.model.v_threshold),
        vdd=float(VDD),
        second_stage_load=float(SECOND_STAGE_LOAD),
    )


def snapshot_params(pnn) -> PNNParams:
    """Snapshot a :class:`~repro.core.pnn.PrintedNeuralNetwork` for inference.

    Runs the projection / reassembly chains once (under ``no_grad``) and
    freezes the results: θ through the printable-conductance projection,
    each circuit's 𝔴 through the Fig. 5 steps 1–3 into printable ω.  The
    snapshot is decoupled from the module — later training steps do not
    leak into it.
    """
    from repro.autograd.tensor import no_grad

    layers = []
    with no_grad():
        for layer in pnn.layers:
            layers.append(
                LayerParams(
                    theta=layer.printable_theta(),
                    act_omega=layer.activation.printable_omega().numpy(),
                    neg_omega=layer.negation.printable_omega().numpy(),
                    apply_activation=layer.apply_activation,
                )
            )
        act_surrogate = snapshot_surrogate(pnn.layers[0].activation.surrogate)
        neg_surrogate = snapshot_surrogate(pnn.layers[0].negation.surrogate)
    return PNNParams(
        layer_sizes=tuple(int(s) for s in pnn.layer_sizes),
        per_neuron_activation=bool(pnn.per_neuron_activation),
        activation_on_output=bool(pnn.layers[-1].apply_activation),
        layers=tuple(layers),
        act_surrogate=act_surrogate,
        neg_surrogate=neg_surrogate,
    )
