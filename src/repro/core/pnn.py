"""The printed neural network: a stack of printed layers (Sec. II-C, III).

The experiments use the topology ``#input – 3 – #output`` (one hidden layer
of three printed neurons).  Each layer owns its own learnable activation
circuit and negative-weight circuit; a single network-level forward draws
all variation samples consistently so the Monte-Carlo loss of Sec. III-C is
an average over complete, self-consistent circuit instances.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.autograd.tensor import Tensor
from repro.core.conductance import ConductanceConfig
from repro.core.nonlinear import LearnableNonlinearCircuit
from repro.core.params import PNNParams, snapshot_params
from repro.core.player import PrintedLayer
from repro.core.variation import VariationModel
from repro.nn.module import Module, Parameter
from repro.surrogate.design_space import DESIGN_SPACE, DesignSpace
from repro.surrogate.pipeline import SurrogateBundle


class PrintedNeuralNetwork(Module):
    """A pNN whose nonlinear subcircuits can be learned alongside θ.

    Parameters
    ----------
    layer_sizes:
        E.g. ``[4, 3, 3]`` for a 4-input, 3-class network (the paper's
        ``#input-3-#output`` topology).
    surrogates:
        A :class:`~repro.surrogate.pipeline.SurrogateBundle` (NN surrogates)
        or a pair of :class:`~repro.surrogate.analytic.AnalyticSurrogate`.
    per_neuron_activation:
        When ``True`` every neuron gets its own bespoke activation circuit;
        the default is one shared circuit per layer, as in the paper.
    activation_on_output:
        Whether the final layer drives an activation circuit too (the
        printed neuron always contains one; classification reads the
        voltages after it).
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        surrogates: Union[SurrogateBundle, tuple],
        conductance: ConductanceConfig = ConductanceConfig(),
        space: Optional[DesignSpace] = None,
        per_neuron_activation: bool = False,
        activation_on_output: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        layer_sizes = [int(s) for s in layer_sizes]
        if len(layer_sizes) < 2 or any(s < 1 for s in layer_sizes):
            raise ValueError("layer_sizes must list at least input and output widths")
        rng = rng if rng is not None else np.random.default_rng()

        if isinstance(surrogates, SurrogateBundle):
            act_surrogate, neg_surrogate = surrogates.ptanh, surrogates.negweight
            space = space or surrogates.space
        else:
            act_surrogate, neg_surrogate = surrogates
            space = space or DESIGN_SPACE

        self.layer_sizes = layer_sizes
        self.space = space
        self.per_neuron_activation = per_neuron_activation
        self._layer_names: List[str] = []
        for i, (n_in, n_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
            is_last = i == len(layer_sizes) - 2
            activation = LearnableNonlinearCircuit(
                act_surrogate,
                space,
                "ptanh",
                n_circuits=n_out if per_neuron_activation else 1,
                rng=rng,
            )
            negation = LearnableNonlinearCircuit(neg_surrogate, space, "negweight", rng=rng)
            layer = PrintedLayer(
                n_in,
                n_out,
                activation=activation,
                negation=negation,
                conductance=conductance,
                apply_activation=activation_on_output or not is_last,
                rng=rng,
            )
            name = f"layer{i}"
            setattr(self, name, layer)
            self._layer_names.append(name)

    # ------------------------------------------------------------------ #
    # structure                                                          #
    # ------------------------------------------------------------------ #

    @property
    def layers(self) -> List[PrintedLayer]:
        return [getattr(self, name) for name in self._layer_names]

    def theta_parameters(self) -> List[Parameter]:
        """Crossbar conductances (learning rate α_θ in the paper)."""
        return [layer.theta for layer in self.layers]

    def nonlinear_parameters(self) -> List[Parameter]:
        """Nonlinear-circuit parameters 𝔴 (learning rate α_ω)."""
        params: List[Parameter] = []
        for layer in self.layers:
            params.append(layer.activation.w_raw)
            params.append(layer.negation.w_raw)
        return params

    # ------------------------------------------------------------------ #
    # forward                                                            #
    # ------------------------------------------------------------------ #

    def forward(
        self,
        x: Union[np.ndarray, Tensor],
        variation: Optional[VariationModel] = None,
        n_mc: int = 1,
        epsilons: Optional[Sequence[tuple]] = None,
    ) -> Tensor:
        """Output voltages of shape ``(n_mc, batch, n_classes)``.

        ``variation=None`` (or ϵ = 0) runs the nominal forward pass with a
        single Monte-Carlo sample.  ``epsilons`` optionally supplies
        pre-drawn variation factors — one ``(ε_θ, ε_act, ε_neg)`` triple per
        layer with leading axis ``n_mc``, the same convention as
        :func:`repro.core.kernels.network_forward` — bypassing ``variation``
        sampling entirely; this is how the kernel-gradient tests drive both
        execution paths with identical draws.
        """
        data = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected a (batch, features) input")
        if data.shape[1] != self.layer_sizes[0]:
            raise ValueError(
                f"input has {data.shape[1]} features, network expects {self.layer_sizes[0]}"
            )
        if epsilons is not None:
            if len(epsilons) != len(self.layers):
                raise ValueError("need one epsilon triple per layer")
            n_mc = int(epsilons[0][0].shape[0]) if epsilons[0][0] is not None else 1
        elif variation is None or variation.is_nominal:
            n_mc = 1

        hidden = x if isinstance(x, Tensor) else Tensor(data)
        hidden = hidden.reshape(1, *data.shape)
        if n_mc > 1:
            from repro.autograd import functional as F

            hidden = F.broadcast_to(hidden, (n_mc, *data.shape))

        for index, layer in enumerate(self.layers):
            eps_theta = eps_act = eps_neg = None
            if epsilons is not None:
                eps_theta, eps_act, eps_neg = epsilons[index]
            elif variation is not None and not variation.is_nominal:
                eps_theta = variation.sample(n_mc, (layer.in_features + 2, layer.out_features))
                eps_act = variation.sample(n_mc, (layer.activation.n_circuits, 7))
                eps_neg = variation.sample(n_mc, (layer.negation.n_circuits, 7))
            hidden = layer.forward(
                hidden, epsilon_theta=eps_theta, epsilon_act=eps_act, epsilon_neg=eps_neg
            )
        return hidden

    # ------------------------------------------------------------------ #
    # inference helpers                                                  #
    # ------------------------------------------------------------------ #

    def predict(
        self,
        x: np.ndarray,
        variation: Optional[VariationModel] = None,
        n_mc: int = 1,
    ) -> np.ndarray:
        """Class predictions of shape ``(n_mc, batch)`` (argmax voltage).

        Runs through the autograd-free kernel path: the network is
        snapshotted into a :class:`~repro.core.params.PNNParams` and
        executed by :func:`repro.core.kernels.predict` — no gradient tape,
        same equations, same variation-sampling order as :meth:`forward`.
        For repeated inference, snapshot once with
        :func:`~repro.core.params.snapshot_params` and reuse it.
        """
        return self.snapshot().predict(x, variation=variation, n_mc=n_mc)

    def snapshot(self) -> "PNNParams":
        """Freeze the current design into an immutable inference snapshot."""
        return snapshot_params(self)
