"""One printed layer: crossbar weighted sum + nonlinear circuits (Sec. II-C).

The layer owns a surrogate-conductance matrix θ of shape
``(in_features + 2, out_features)``: one row per input line plus a bias row
(driven by the 1 V rail) and a "down" row (driven by ground).  The forward
pass implements Eq. 1 with negative weights routed through the learned
negative-weight circuit:

    V_z,j = [ Σ_{i: θ_ij ≥ 0} |θ_ij| V_i + Σ_{i: θ_ij < 0} |θ_ij| inv(V_i) ]
            / Σ_i |θ_ij|

followed by the (learned) ptanh activation.  All tensors carry an explicit
leading Monte-Carlo axis so nominal and variation-aware forward passes share
one code path (nominal is simply ``n_mc = 1``).

The circuit math itself lives in :mod:`repro.core.kernels`; this module
owns the learnable state and calls the generic kernels with the autograd
ops backend so gradients flow through the shared equations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.functional import TENSOR_OPS
from repro.autograd.tensor import Tensor
from repro.core import kernels
from repro.core.conductance import ConductanceConfig
from repro.core.kernels import BIAS_VOLTAGE  # noqa: F401 - re-exported
from repro.core.nonlinear import LearnableNonlinearCircuit
from repro.nn.module import Module, Parameter


class PrintedLayer(Module):
    """Crossbar + negative-weight circuit + ptanh activation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: LearnableNonlinearCircuit,
        negation: LearnableNonlinearCircuit,
        conductance: ConductanceConfig = ConductanceConfig(),
        apply_activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        if activation.kind != "ptanh":
            raise ValueError("activation circuit must be of kind 'ptanh'")
        if negation.kind != "negweight":
            raise ValueError("negation circuit must be of kind 'negweight'")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.conductance = conductance
        self.apply_activation = apply_activation
        self.theta = Parameter(conductance.init_theta((in_features + 2, out_features), rng))
        self.activation = activation
        self.negation = negation

    # ------------------------------------------------------------------ #
    # forward                                                            #
    # ------------------------------------------------------------------ #

    def augment(self, x: Tensor) -> Tensor:
        """Append the bias (1 V) and down (0 V) input lines."""
        return kernels.augment_inputs(x, ops=TENSOR_OPS)

    def forward(
        self,
        x: Tensor,
        epsilon_theta: Optional[np.ndarray] = None,
        epsilon_act: Optional[np.ndarray] = None,
        epsilon_neg: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Forward voltages of shape ``(n_mc, batch, out_features)``.

        The optional ε arrays inject printing variation: ``epsilon_theta``
        multiplies the printable conductances, ``epsilon_act`` and
        ``epsilon_neg`` multiply the printable component values of the two
        nonlinear circuits (shapes per :meth:`LearnableNonlinearCircuit.eta`).
        """
        if x.ndim != 3:
            raise ValueError("expected (n_mc, batch, features) input")
        x_aug = self.augment(x)                               # (N, B, I+2)

        printable = self.conductance.project(self.theta)      # (I+2, O)
        theta_eff = printable.reshape(1, *printable.shape)
        if epsilon_theta is not None:
            eps = np.asarray(epsilon_theta, dtype=np.float64)
            if eps.ndim != 3 or eps.shape[1:] != printable.shape:
                raise ValueError("epsilon_theta must be (n_mc, in+2, out)")
            theta_eff = theta_eff * Tensor(eps)               # (N, I+2, O)

        inverted = self.negation.forward(x_aug, epsilon_omega=epsilon_neg)
        v_z = kernels.crossbar_output(x_aug, inverted, theta_eff, ops=TENSOR_OPS)
        if not self.apply_activation:
            return v_z
        return self.activation.forward(v_z, epsilon_omega=epsilon_act)

    def printable_theta(self) -> np.ndarray:
        """The projected conductance matrix that would be printed."""
        from repro.autograd.tensor import no_grad

        with no_grad():
            return self.conductance.project(self.theta).numpy()
