"""Optional numba JIT tier for the fused backend (leaf module, no repro deps).

The fused backend (:mod:`repro.core.backends`) is pure-numpy with
preallocated scratch; when :mod:`numba` happens to be importable, a small
set of elementwise ufuncs compile and collapse two numpy passes into one.
Numba is *never* a dependency: this module degrades to ``None`` handles
and the fused-numpy tier carries the speedup alone.

Bitwise-safety contract
-----------------------
Only *elementwise scalar chains* are eligible for JIT here.  Numba's
default compilation is IEEE-strict (no fast-math, no FMA contraction), so
``(v - e3) * e4`` and ``e1 + e2 * t`` round per-operation exactly like
the equivalent two numpy passes.  Transcendentals (``tanh``, ``exp``) and
reductions are deliberately **excluded** — libm vs numpy-SIMD results can
differ in the last ulp, which would break the house rule that every
backend is ``assert_array_equal``-identical to ``NUMPY_OPS``.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except Exception:  # ImportError, or a broken install — same answer
    numba = None

#: ``numba.__version__`` when importable, else ``None`` (recorded in
#: telemetry manifests so cached results are attributable).
NUMBA_VERSION = getattr(numba, "__version__", None)

#: Whether the JIT tier is active.
HAVE_NUMBA = numba is not None

if numba is not None:  # pragma: no cover - exercised only where numba is installed
    @numba.vectorize(["float64(float64, float64, float64)"],
                     nopython=True, cache=True)
    def shift_scale(v, e3, e4):
        """One-pass ``(v - e3) * e4`` — bitwise equal to subtract-then-multiply."""
        return (v - e3) * e4

    @numba.vectorize(["float64(float64, float64, float64)"],
                     nopython=True, cache=True)
    def affine(e1, e2, t):
        """One-pass ``e1 + e2 * t`` — bitwise equal to multiply-then-add."""
        return e1 + e2 * t
else:
    shift_scale = None
    affine = None
