"""Monte-Carlo evaluation under printing variation (Sec. IV-C).

Every trained pNN is tested with ``N_test = 100`` variation samples: each
sample instantiates one fabricated circuit (perturbed conductances and
nonlinear-circuit components), classifies the whole test set, and yields
one accuracy.  Table II reports the mean and standard deviation over these
samples — the standard deviation is the paper's robustness measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pnn import PrintedNeuralNetwork
from repro.core.variation import VariationModel


@dataclass
class MonteCarloAccuracy:
    """Accuracy distribution over simulated fabrications."""

    accuracies: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.accuracies.mean())

    @property
    def std(self) -> float:
        return float(self.accuracies.std())

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f}"


def evaluate_mc(
    pnn: PrintedNeuralNetwork,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    n_test: int = 100,
    seed: int = 0,
    batch_mc: int = 20,
) -> MonteCarloAccuracy:
    """Evaluate accuracy over ``n_test`` fabricated-circuit samples.

    ``epsilon = 0`` collapses to a single nominal evaluation.  Monte-Carlo
    samples are processed in chunks of ``batch_mc`` to bound memory.
    """
    y = np.asarray(y, dtype=np.int64)
    if epsilon == 0.0:
        predictions = pnn.predict(x)                      # (1, B)
        accuracy = float((predictions[0] == y).mean())
        return MonteCarloAccuracy(accuracies=np.asarray([accuracy]))

    variation = VariationModel(epsilon, seed=seed)
    accuracies = []
    remaining = n_test
    while remaining > 0:
        chunk = min(batch_mc, remaining)
        predictions = pnn.predict(x, variation=variation, n_mc=chunk)  # (chunk, B)
        accuracies.extend((predictions == y).mean(axis=1).tolist())
        remaining -= chunk
    return MonteCarloAccuracy(accuracies=np.asarray(accuracies))
