"""Monte-Carlo evaluation under printing variation (Sec. IV-C).

Every trained pNN is tested with ``N_test = 100`` variation samples: each
sample instantiates one fabricated circuit (perturbed conductances and
nonlinear-circuit components), classifies the whole test set, and yields
one accuracy.  Table II reports the mean and standard deviation over these
samples — the standard deviation is the paper's robustness measure.

Evaluation runs through the autograd-free kernel path
(:mod:`repro.core.kernels` over a :class:`~repro.core.params.PNNParams`
snapshot): inference-heavy MC testing has no use for a gradient tape.

**Sampling stream.**  The ε factors for all ``n_test`` fabrications are
drawn *up front*, in fixed blocks of :data:`SAMPLE_BLOCK` samples (per
block, per layer: θ, activation ω, negative-weight ω — the canonical
order).  Compute chunking (``batch_mc``) then merely slices the pre-drawn
factors, so results are exactly invariant to ``batch_mc``.  The block size
is a frozen constant, not a tunable: it reproduces the historical noise
stream (the sampler used to be consumed per evaluation chunk with the
default ``batch_mc = 20``), keeping every recorded Table-II number
bit-identical.  Changing it would silently re-roll all MC results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro import telemetry
from repro.core import kernels, shm
from repro.core.backends import DEFAULT_BACKEND, get_backend
from repro.core.params import PNNParams, snapshot_params
from repro.core.pnn import PrintedNeuralNetwork
from repro.core.variation import (
    DEFAULT_SCENARIO,
    VariationModel,
    build_scenario_model,
    eps_concat,
)

#: Frozen width of the ε pre-draw blocks (see the module docstring).
SAMPLE_BLOCK = 20

#: Ceiling on the default compute-chunk width inside one shard
#: (``batch_mc=None``).  Five ε blocks per chunk amortizes kernel dispatch
#: on small test sets; results are chunk-invariant anyway.
SHARD_BATCH_MC = 5 * SAMPLE_BLOCK

#: Per-chunk intermediate budget behind the adaptive default: the kernel
#: path materializes roughly ``batch_mc × batch × (features + 2)`` doubles
#: per chunk, and chunks sized past the cache pay an mmap/page-fault round
#: trip per temporary (measured: batch 2048 runs ~1.3× faster at chunk 20
#: than at chunk 100).
_SHARD_TARGET_BYTES = 16 << 20


def _default_shard_batch(span: int, x: np.ndarray) -> int:
    """Largest ε-block multiple whose intermediates fit the cache budget."""
    per_row = max(1, x.shape[0] * (x.shape[1] + 2) * 8)
    rows = min(_SHARD_TARGET_BYTES // per_row, SHARD_BATCH_MC)
    blocks = max(1, rows // SAMPLE_BLOCK)
    return max(1, min(span, blocks * SAMPLE_BLOCK))


@dataclass
class MonteCarloAccuracy:
    """Accuracy distribution over simulated fabrications."""

    accuracies: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.accuracies.mean())

    @property
    def std(self) -> float:
        return float(self.accuracies.std())

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f}"


Design = Union[PrintedNeuralNetwork, PNNParams]


def _as_params(design: Design) -> PNNParams:
    if isinstance(design, PNNParams):
        return design
    return snapshot_params(design)


def draw_variation_samples(
    params: PNNParams,
    variation,
    n_test: int,
    block: int = SAMPLE_BLOCK,
) -> List[kernels.LayerEpsilons]:
    """Pre-draw all variation perturbations for ``n_test`` fabrications.

    Consumes the model's stream in blocks of ``block`` samples (each block
    draws θ, activation ω, negative-weight ω per layer, in order) and
    concatenates per layer.  Works for any
    :class:`~repro.core.variation.NonIdealityModel` (or duck-typed legacy
    sampler): bare ε arrays concatenate exactly as before, override-bearing
    perturbations concatenate field-wise.  Returns one
    :data:`~repro.core.kernels.LayerEpsilons` triple per layer, each with
    leading axis ``n_test``.
    """
    per_layer: List[List[List[np.ndarray]]] = [
        [[], [], []] for _ in params.layers
    ]
    remaining = n_test
    while remaining > 0:
        chunk = min(block, remaining)
        for index, layer in enumerate(params.layers):
            triple = kernels.sample_layer_epsilons(variation, chunk, layer)
            for slot, eps in zip(per_layer[index], triple):
                slot.append(eps)
        remaining -= chunk
    return [
        (
            eps_concat(theta_parts, axis=0),
            eps_concat(act_parts, axis=0),
            eps_concat(neg_parts, axis=0),
        )
        for theta_parts, act_parts, neg_parts in per_layer
    ]


def _resolve_variation(epsilon: float, seed: int, scenario: str):
    """The evaluation's non-ideality model, or ``None`` for a nominal run.

    Exactly the branch structure :func:`evaluate_mc` always had: the
    default scenario builds the legacy :class:`VariationModel` (or nothing
    at ε = 0); named scenarios build their registry model and collapse to
    nominal only when the model itself is nominal.
    """
    if scenario == DEFAULT_SCENARIO:
        if epsilon == 0.0:
            return None
        return VariationModel(epsilon, seed=seed)
    variation = build_scenario_model(scenario, epsilon, seed=seed)
    return None if variation.is_nominal else variation


def _nominal_accuracy(params: PNNParams, x: np.ndarray,
                      y: np.ndarray) -> MonteCarloAccuracy:
    predictions = kernels.predict(params, x)              # (1, B)
    accuracy = float((predictions[0] == y).mean())
    return MonteCarloAccuracy(accuracies=np.asarray([accuracy]))


def _accuracy_rows(driver, epsilons, y: np.ndarray, start: int, stop: int,
                   batch_mc: int, out: np.ndarray) -> None:
    """Fill ``out`` with per-fabrication accuracies for rows [start, stop).

    Slices the pre-drawn ε stream at *global* positions, writes at local
    ones — the shared inner loop of :func:`evaluate_mc` (start = 0) and of
    every shard in :func:`evaluate_mc_sharded`.
    """
    for chunk_start in range(start, stop, batch_mc):
        chunk_stop = min(chunk_start + batch_mc, stop)
        chunk = [
            (theta[chunk_start:chunk_stop], act[chunk_start:chunk_stop],
             neg[chunk_start:chunk_stop])
            for theta, act, neg in epsilons
        ]
        predictions = driver.predict(chunk)               # (chunk, B)
        np.mean(predictions == y, axis=1,
                out=out[chunk_start - start:chunk_stop - start])


def evaluate_mc(
    design: Design,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    n_test: int = 100,
    seed: int = 0,
    batch_mc: int = 20,
    scenario: str = DEFAULT_SCENARIO,
    backend: str = DEFAULT_BACKEND,
) -> MonteCarloAccuracy:
    """Evaluate accuracy over ``n_test`` fabricated-circuit samples.

    ``design`` may be a live :class:`PrintedNeuralNetwork` (snapshotted
    once) or an already-frozen :class:`~repro.core.params.PNNParams`.
    ``epsilon = 0`` collapses to a single nominal evaluation.  Monte-Carlo
    samples are *computed* in chunks of ``batch_mc`` to bound memory; the
    ε stream is pre-drawn in fixed :data:`SAMPLE_BLOCK` blocks, so the
    result is independent of ``batch_mc``.

    ``scenario`` selects the non-ideality model
    (:data:`repro.core.variation.SCENARIOS`).  The default scenario takes
    the pre-refactor ε-only branch unchanged; named scenarios build their
    model at ``(epsilon, seed)`` and may be non-nominal even at ε = 0
    (stuck-at defects still fabricate broken devices).

    ``backend`` picks the execution backend
    (:mod:`repro.core.backends`) for the chunk loop.  Every registered
    backend is bitwise-equal to ``"numpy"``, so the choice never changes
    results — only how fast the chunks run.  One driver is built per call
    and reused across chunks, so a fused backend's scratch buffers are
    allocated once for the whole evaluation.
    """
    params = _as_params(design)
    y = np.asarray(y, dtype=np.int64)
    variation = _resolve_variation(epsilon, seed, scenario)
    if variation is None:
        return _nominal_accuracy(params, x, y)

    epsilons = draw_variation_samples(params, variation, n_test)
    batch_mc = max(1, int(batch_mc))
    # One driver (and, for fused backends, one scratch workspace) reused
    # across every chunk; one preallocated output row per fabrication.
    driver = get_backend(backend).make_eval_driver(params, x)
    accuracies = np.empty(n_test, dtype=np.float64)
    with telemetry.get().span(
        "mc.evaluate",
        backend=backend,
        scenario=scenario,
        epsilon=epsilon,
        n_test=int(n_test),
        batch_mc=batch_mc,
    ):
        _accuracy_rows(driver, epsilons, y, 0, n_test, batch_mc, accuracies)
    return MonteCarloAccuracy(accuracies=accuracies)


def plan_shards(n_test: int, shards: int,
                block: int = SAMPLE_BLOCK) -> List[Tuple[int, int]]:
    """Split ``n_test`` fabrications into shard spans on ε-block boundaries.

    Every boundary except the final stop is a multiple of ``block``
    (:data:`SAMPLE_BLOCK`), so each shard consumes whole pre-drawn ε
    blocks and the concatenated shard outputs reproduce the serial stream
    exactly.  Blocks spread as evenly as possible; ``shards`` is clamped
    to the number of blocks so every span is non-empty.
    """
    if n_test < 1:
        raise ValueError("n_test must be >= 1")
    shards = max(1, int(shards))
    n_blocks = -(-n_test // block)
    shards = min(shards, n_blocks)
    per_shard, remainder = divmod(n_blocks, shards)
    spans: List[Tuple[int, int]] = []
    cursor = 0
    for index in range(shards):
        width = (per_shard + (1 if index < remainder else 0)) * block
        start, cursor = cursor, min(n_test, cursor + width)
        spans.append((start, cursor))
    return spans


#: Per-process cache of the latest mapped payload and its backend driver.
#: Every shard of one published evaluation that lands in a process reuses
#: a single mapping and a single driver (with its preallocated scratch) —
#: one fused driver per worker, not one per shard.  Keyed by the payload's
#: segment names, which are unique per publish, so a new payload evicts
#: and closes the stale mapping.
_SHARD_CACHE: Dict[Tuple[str, str, str, str],
                   Tuple[shm.MappedEvaluation, object]] = {}


def _shard_context(payload: shm.EvalPayload,
                   backend: str) -> Tuple[shm.MappedEvaluation, object]:
    key = (payload.params.block.segment, payload.dataset.segment,
           payload.epsilons.block.segment, backend)
    cached = _SHARD_CACHE.get(key)
    if cached is None:
        while _SHARD_CACHE:
            _, (stale, _) = _SHARD_CACHE.popitem()
            stale.close()
        mapping = shm.map_evaluation(payload)
        driver = get_backend(backend).make_eval_driver(mapping.params, mapping.x)
        cached = (mapping, driver)
        _SHARD_CACHE[key] = cached
    return cached


def _evaluate_shard(payload: shm.EvalPayload, start: int, stop: int,
                    batch_mc: Optional[int], backend: str) -> np.ndarray:
    """Shard entry point — runs in pool workers (fork or spawn) or inline.

    Maps the published payload zero-copy (once per process, via
    :data:`_SHARD_CACHE`), evaluates its span, and returns only the fresh
    accuracy rows — the one thing that crosses the pipe back.
    """
    mapping, driver = _shard_context(payload, backend)
    if batch_mc is None:
        batch_mc = _default_shard_batch(stop - start, mapping.x)
    batch_mc = max(1, int(batch_mc))
    out = np.empty(stop - start, dtype=np.float64)
    with telemetry.get().span(
        "mc.shard",
        start=int(start),
        stop=int(stop),
        backend=backend,
        batch_mc=batch_mc,
    ):
        _accuracy_rows(driver, mapping.epsilons, mapping.y,
                       start, stop, batch_mc, out)
    return out


def evaluate_mc_sharded(
    design: Design,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    n_test: int = 100,
    seed: int = 0,
    batch_mc: Optional[int] = None,
    scenario: str = DEFAULT_SCENARIO,
    backend: str = DEFAULT_BACKEND,
    shards: int = 1,
    pool=None,
    store: Optional[shm.SharedArrayStore] = None,
    dataset_key=None,
) -> MonteCarloAccuracy:
    """Shard-parallel :func:`evaluate_mc` over the shared-memory data plane.

    The parent pre-draws the *complete* ε stream exactly as the serial
    loop does, publishes design, test set and stream once through
    :mod:`repro.core.shm`, and evaluates :func:`plan_shards` spans — each
    aligned to :data:`SAMPLE_BLOCK` boundaries, so each shard consumes
    whole pre-drawn blocks.  Per-shard accuracy rows are merged by ordered
    concatenation; because the kernels are chunk-invariant (the PR 1/PR 6
    equality gates), the result is **bitwise identical** to serial
    :func:`evaluate_mc` at every shard count, pooled or not.

    Parameters beyond :func:`evaluate_mc`'s:

    - ``batch_mc=None`` picks the shard-local compute chunk adaptively:
      the largest ε-block multiple (capped at :data:`SHARD_BATCH_MC`)
      whose per-chunk intermediates fit the cache budget; an explicit
      value is honored as-is.  Either way results do not change.
    - ``shards`` — requested shard count (clamped to whole ε blocks).
    - ``pool`` — optional executor (``fork`` or ``spawn``) to spread the
      shards over; ``None`` evaluates them inline, same data plane.
    - ``store`` — optional external :class:`~repro.core.shm.
      SharedArrayStore` to publish through (reused across calls); the
      per-call design/ε blocks are unpublished on exit either way, so
      publish/unlink accounting stays balanced.
    - ``dataset_key`` — cache key for the (x, y) block within ``store``,
      letting many evaluations on one dataset publish it once.

    Nominal evaluations (``ε = 0`` in the default scenario, or a nominal
    scenario model) early-return exactly like the serial path and touch no
    shared memory.
    """
    params = _as_params(design)
    y = np.asarray(y, dtype=np.int64)
    variation = _resolve_variation(epsilon, seed, scenario)
    if variation is None:
        return _nominal_accuracy(params, x, y)

    epsilons = draw_variation_samples(params, variation, n_test)
    spans = plan_shards(n_test, shards)
    owns_store = store is None
    if owns_store:
        store = shm.SharedArrayStore()
    payload = None
    try:
        with telemetry.get().span(
            "mc.evaluate_sharded",
            backend=backend,
            scenario=scenario,
            epsilon=epsilon,
            n_test=int(n_test),
            shards=len(spans),
            pooled=pool is not None,
        ):
            payload = shm.publish_evaluation(
                store, params, x, y, epsilons, dataset_key=dataset_key
            )
            if pool is None:
                rows = [
                    _evaluate_shard(payload, start, stop, batch_mc, backend)
                    for start, stop in spans
                ]
            else:
                futures = [
                    pool.submit(_evaluate_shard, payload, start, stop,
                                batch_mc, backend)
                    for start, stop in spans
                ]
                rows = [future.result() for future in futures]
        return MonteCarloAccuracy(accuracies=np.concatenate(rows))
    finally:
        if owns_store:
            store.close()
        elif payload is not None:
            store.unpublish(payload.params.block)
            store.unpublish(payload.epsilons.block)


def evaluate_mc_autograd(
    pnn: PrintedNeuralNetwork,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    n_test: int = 100,
    seed: int = 0,
    batch_mc: int = 20,
) -> MonteCarloAccuracy:
    """Reference MC evaluation through the autograd ``Module`` forward.

    Kept as the slow, independent cross-check for :func:`evaluate_mc` (the
    equivalence tests and ``benchmarks/bench_inference_path.py`` compare
    the two).  Matches the kernel path bit for bit when
    ``batch_mc == SAMPLE_BLOCK``, because then both consume the variation
    stream in the same blocks.
    """
    from repro.autograd.tensor import no_grad

    y = np.asarray(y, dtype=np.int64)
    if epsilon == 0.0:
        with no_grad():
            voltages = pnn.forward(x)
        predictions = np.argmax(voltages.data, axis=-1)   # (1, B)
        accuracy = float((predictions[0] == y).mean())
        return MonteCarloAccuracy(accuracies=np.asarray([accuracy]))

    variation = VariationModel(epsilon, seed=seed)
    # Accumulate into one preallocated row per fabrication, like the
    # kernel path — not through a Python float list.
    accuracies = np.empty(n_test, dtype=np.float64)
    start = 0
    while start < n_test:
        stop = min(start + batch_mc, n_test)
        with no_grad():
            voltages = pnn.forward(x, variation=variation, n_mc=stop - start)
        predictions = np.argmax(voltages.data, axis=-1)   # (stop-start, B)
        np.mean(predictions == y, axis=1, out=accuracies[start:stop])
        start = stop
    return MonteCarloAccuracy(accuracies=accuracies)
