"""Monte-Carlo evaluation under printing variation (Sec. IV-C).

Every trained pNN is tested with ``N_test = 100`` variation samples: each
sample instantiates one fabricated circuit (perturbed conductances and
nonlinear-circuit components), classifies the whole test set, and yields
one accuracy.  Table II reports the mean and standard deviation over these
samples — the standard deviation is the paper's robustness measure.

Evaluation runs through the autograd-free kernel path
(:mod:`repro.core.kernels` over a :class:`~repro.core.params.PNNParams`
snapshot): inference-heavy MC testing has no use for a gradient tape.

**Sampling stream.**  The ε factors for all ``n_test`` fabrications are
drawn *up front*, in fixed blocks of :data:`SAMPLE_BLOCK` samples (per
block, per layer: θ, activation ω, negative-weight ω — the canonical
order).  Compute chunking (``batch_mc``) then merely slices the pre-drawn
factors, so results are exactly invariant to ``batch_mc``.  The block size
is a frozen constant, not a tunable: it reproduces the historical noise
stream (the sampler used to be consumed per evaluation chunk with the
default ``batch_mc = 20``), keeping every recorded Table-II number
bit-identical.  Changing it would silently re-roll all MC results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro import telemetry
from repro.core import kernels
from repro.core.backends import DEFAULT_BACKEND, get_backend
from repro.core.params import PNNParams, snapshot_params
from repro.core.pnn import PrintedNeuralNetwork
from repro.core.variation import (
    DEFAULT_SCENARIO,
    VariationModel,
    build_scenario_model,
    eps_concat,
)

#: Frozen width of the ε pre-draw blocks (see the module docstring).
SAMPLE_BLOCK = 20


@dataclass
class MonteCarloAccuracy:
    """Accuracy distribution over simulated fabrications."""

    accuracies: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.accuracies.mean())

    @property
    def std(self) -> float:
        return float(self.accuracies.std())

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f}"


Design = Union[PrintedNeuralNetwork, PNNParams]


def _as_params(design: Design) -> PNNParams:
    if isinstance(design, PNNParams):
        return design
    return snapshot_params(design)


def draw_variation_samples(
    params: PNNParams,
    variation,
    n_test: int,
    block: int = SAMPLE_BLOCK,
) -> List[kernels.LayerEpsilons]:
    """Pre-draw all variation perturbations for ``n_test`` fabrications.

    Consumes the model's stream in blocks of ``block`` samples (each block
    draws θ, activation ω, negative-weight ω per layer, in order) and
    concatenates per layer.  Works for any
    :class:`~repro.core.variation.NonIdealityModel` (or duck-typed legacy
    sampler): bare ε arrays concatenate exactly as before, override-bearing
    perturbations concatenate field-wise.  Returns one
    :data:`~repro.core.kernels.LayerEpsilons` triple per layer, each with
    leading axis ``n_test``.
    """
    per_layer: List[List[List[np.ndarray]]] = [
        [[], [], []] for _ in params.layers
    ]
    remaining = n_test
    while remaining > 0:
        chunk = min(block, remaining)
        for index, layer in enumerate(params.layers):
            triple = kernels.sample_layer_epsilons(variation, chunk, layer)
            for slot, eps in zip(per_layer[index], triple):
                slot.append(eps)
        remaining -= chunk
    return [
        (
            eps_concat(theta_parts, axis=0),
            eps_concat(act_parts, axis=0),
            eps_concat(neg_parts, axis=0),
        )
        for theta_parts, act_parts, neg_parts in per_layer
    ]


def evaluate_mc(
    design: Design,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    n_test: int = 100,
    seed: int = 0,
    batch_mc: int = 20,
    scenario: str = DEFAULT_SCENARIO,
    backend: str = DEFAULT_BACKEND,
) -> MonteCarloAccuracy:
    """Evaluate accuracy over ``n_test`` fabricated-circuit samples.

    ``design`` may be a live :class:`PrintedNeuralNetwork` (snapshotted
    once) or an already-frozen :class:`~repro.core.params.PNNParams`.
    ``epsilon = 0`` collapses to a single nominal evaluation.  Monte-Carlo
    samples are *computed* in chunks of ``batch_mc`` to bound memory; the
    ε stream is pre-drawn in fixed :data:`SAMPLE_BLOCK` blocks, so the
    result is independent of ``batch_mc``.

    ``scenario`` selects the non-ideality model
    (:data:`repro.core.variation.SCENARIOS`).  The default scenario takes
    the pre-refactor ε-only branch unchanged; named scenarios build their
    model at ``(epsilon, seed)`` and may be non-nominal even at ε = 0
    (stuck-at defects still fabricate broken devices).

    ``backend`` picks the execution backend
    (:mod:`repro.core.backends`) for the chunk loop.  Every registered
    backend is bitwise-equal to ``"numpy"``, so the choice never changes
    results — only how fast the chunks run.  One driver is built per call
    and reused across chunks, so a fused backend's scratch buffers are
    allocated once for the whole evaluation.
    """
    params = _as_params(design)
    y = np.asarray(y, dtype=np.int64)
    if scenario == DEFAULT_SCENARIO:
        if epsilon == 0.0:
            predictions = kernels.predict(params, x)      # (1, B)
            accuracy = float((predictions[0] == y).mean())
            return MonteCarloAccuracy(accuracies=np.asarray([accuracy]))
        variation = VariationModel(epsilon, seed=seed)
    else:
        variation = build_scenario_model(scenario, epsilon, seed=seed)
        if variation.is_nominal:
            predictions = kernels.predict(params, x)      # (1, B)
            accuracy = float((predictions[0] == y).mean())
            return MonteCarloAccuracy(accuracies=np.asarray([accuracy]))

    epsilons = draw_variation_samples(params, variation, n_test)
    batch_mc = max(1, int(batch_mc))
    # One driver (and, for fused backends, one scratch workspace) reused
    # across every chunk; one preallocated output row per fabrication.
    driver = get_backend(backend).make_eval_driver(params, x)
    accuracies = np.empty(n_test, dtype=np.float64)
    with telemetry.get().span(
        "mc.evaluate",
        backend=backend,
        scenario=scenario,
        epsilon=epsilon,
        n_test=int(n_test),
        batch_mc=batch_mc,
    ):
        for start in range(0, n_test, batch_mc):
            stop = min(start + batch_mc, n_test)
            chunk = [
                (theta[start:stop], act[start:stop], neg[start:stop])
                for theta, act, neg in epsilons
            ]
            predictions = driver.predict(chunk)               # (stop-start, B)
            np.mean(predictions == y, axis=1, out=accuracies[start:stop])
    return MonteCarloAccuracy(accuracies=accuracies)


def evaluate_mc_autograd(
    pnn: PrintedNeuralNetwork,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    n_test: int = 100,
    seed: int = 0,
    batch_mc: int = 20,
) -> MonteCarloAccuracy:
    """Reference MC evaluation through the autograd ``Module`` forward.

    Kept as the slow, independent cross-check for :func:`evaluate_mc` (the
    equivalence tests and ``benchmarks/bench_inference_path.py`` compare
    the two).  Matches the kernel path bit for bit when
    ``batch_mc == SAMPLE_BLOCK``, because then both consume the variation
    stream in the same blocks.
    """
    from repro.autograd.tensor import no_grad

    y = np.asarray(y, dtype=np.int64)
    if epsilon == 0.0:
        with no_grad():
            voltages = pnn.forward(x)
        predictions = np.argmax(voltages.data, axis=-1)   # (1, B)
        accuracy = float((predictions[0] == y).mean())
        return MonteCarloAccuracy(accuracies=np.asarray([accuracy]))

    variation = VariationModel(epsilon, seed=seed)
    accuracies: List[float] = []
    remaining = n_test
    while remaining > 0:
        chunk = min(batch_mc, remaining)
        with no_grad():
            voltages = pnn.forward(x, variation=variation, n_mc=chunk)
        predictions = np.argmax(voltages.data, axis=-1)   # (chunk, B)
        accuracies.extend((predictions == y).mean(axis=1).tolist())
        remaining -= chunk
    return MonteCarloAccuracy(accuracies=np.asarray(accuracies))
