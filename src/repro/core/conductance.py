"""Printable conductance constraints (Sec. II-C).

The learnable parameters θ are *surrogate conductances*: the magnitude is
the conductance to print, the sign selects whether the input passes through
the negative-weight circuit first.  Printable conductances live in
``{0} ∪ [G_min, G_max]``, so θ must lie in
``[−G_max, −G_min] ∪ {0} ∪ [G_min, G_max]``; infeasible values are
projected in the forward pass with a straight-through gradient.

Because the crossbar weights ``g_i / G`` are scale-invariant (multiplying a
whole column by a constant cancels), the surrogate conductances are treated
as dimensionless; only the dynamic range ``G_max / G_min`` matters for
trainability, and the physical scale is chosen at export time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor


@dataclass(frozen=True)
class ConductanceConfig:
    """Dynamic range of printable (surrogate) conductances."""

    g_min: float = 0.01
    g_max: float = 10.0
    #: Fraction of conductances initialized negative.  Mostly-positive
    #: initialization keeps the initial crossbar output a convex combination
    #: of the (0..1 V) inputs — i.e. inside the active region of the tanh
    #: circuits — which avoids a dead saturated regime at the start of
    #: training; negative weights still emerge freely during optimization
    #: because the straight-through projection lets θ change sign.
    init_negative_fraction: float = 0.1

    def __post_init__(self):
        if not 0 < self.g_min < self.g_max:
            raise ValueError("need 0 < g_min < g_max")
        if not 0 <= self.init_negative_fraction <= 1:
            raise ValueError("init_negative_fraction must be in [0, 1]")

    def project(self, theta: Tensor) -> Tensor:
        """Project θ into the printable set, straight-through backward."""
        return F.project_printable_ste(theta, self.g_min, self.g_max)

    def init_theta(self, shape, rng: np.random.Generator) -> np.ndarray:
        """Random θ init: uniform magnitudes, mostly-positive signs."""
        magnitude = rng.uniform(self.g_min, 1.0, size=shape)
        sign = np.where(rng.random(size=shape) < self.init_negative_fraction, -1.0, 1.0)
        return magnitude * sign
