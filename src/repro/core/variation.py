"""Printed-hardware non-idealities (Sec. III-C and extensions).

The paper models printing variation as an i.i.d. multiplicative factor

    ε ~ U[1 − ϵ, 1 + ϵ]

where ϵ reflects the printing precision (the paper evaluates ϵ ∈ {0%, 5%,
10%}), applied to the crossbar conductances θ and the printable component
values ω of the nonlinear circuits.  Real printed hardware exhibits
non-idealities that are *not* expressible as an independent multiplicative
factor — stuck-on/stuck-off conductance defects and spatially-correlated
printing variation (Bayat et al., "Advancing Memristive Analog Neuromorphic
Networks") — so this module generalizes the seam:

- :class:`NonIdealityModel` is the isinstance-checkable protocol every
  model implements.  ``sample`` keeps the legacy multiplicative surface;
  ``sample_perturbation`` is the generalized form and may return a
  :class:`Perturbation` carrying per-device overrides.
- :class:`Perturbation` is one sampled draw: a multiplicative ``scale``
  plus an optional ``(override_mask, override_value)`` pair.  A **bare
  ndarray remains a valid draw** (a pure multiplicative perturbation) so
  the legacy ε-only path executes byte-for-byte the pre-refactor
  arithmetic — the bit-identity gate of ``docs/TRAINING.md`` §2.
- :class:`ComposedModel` chains models over the same devices (scales
  multiply; a later model's override wins).
- The scenario registry (:data:`SCENARIOS`, :func:`build_scenario_model`)
  names the non-ideality configurations reachable from the experiments
  CLI; ``"default"`` builds *no* model object at all, keeping the legacy
  code path untouched.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class Perturbation:
    """One sampled non-ideality draw over a ``(n_mc, *device_shape)`` block.

    ``effective = nominal * scale`` everywhere ``override_mask`` is False;
    where it is True the device is pinned to ``sign(nominal) *
    override_value`` instead (magnitude override — a stuck conductance
    keeps the routing sign of the crossbar entry it replaces).  Gradients
    must not flow through overridden devices; the VJP helpers in
    ``core.grad_kernels`` zero them.

    ``shape``/``ndim``/``__getitem__`` proxy the leading Monte-Carlo axis
    of every field so code written against bare ε arrays (chunk slicing,
    lane compaction) works unchanged on a :class:`Perturbation`.
    """

    scale: np.ndarray
    override_mask: Optional[np.ndarray] = None
    override_value: Optional[np.ndarray] = None

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.scale.shape

    @property
    def ndim(self) -> int:
        return self.scale.ndim

    def __getitem__(self, index) -> "Perturbation":
        return Perturbation(
            self.scale[index],
            None if self.override_mask is None else self.override_mask[index],
            None if self.override_value is None else self.override_value[index],
        )


#: One slot of a layer's (θ, act, neg) triple: a bare multiplicative
#: factor array (legacy) or a generalized :class:`Perturbation`.
EpsilonLike = Union[np.ndarray, Perturbation]

#: The roles a per-layer draw triple is sampled in — canonical order.
EPSILON_ROLES: Tuple[str, ...] = ("theta", "act", "neg")


def _zeros_like_mask(scale: np.ndarray) -> np.ndarray:
    return np.zeros(scale.shape, dtype=bool)


def _combine(parts: Sequence[EpsilonLike], join) -> EpsilonLike:
    if all(isinstance(p, np.ndarray) for p in parts):
        return join(list(parts))
    scales = [p.scale if isinstance(p, Perturbation) else p for p in parts]
    scale = join(scales)
    if all(not isinstance(p, Perturbation) or p.override_mask is None
           for p in parts):
        return Perturbation(scale)
    masks, values = [], []
    for p, s in zip(parts, scales):
        if isinstance(p, Perturbation) and p.override_mask is not None:
            masks.append(p.override_mask)
            values.append(p.override_value)
        else:
            masks.append(_zeros_like_mask(s))
            values.append(np.zeros(s.shape))
    return Perturbation(scale, join(masks), join(values))


def eps_concat(parts: Sequence[EpsilonLike], axis: int = 0) -> EpsilonLike:
    """Concatenate draw blocks along the Monte-Carlo axis.

    Bare arrays take exactly the legacy ``np.concatenate`` path;
    perturbations concatenate field-wise (absent masks fill with zeros).
    """
    return _combine(parts, lambda arrays: np.concatenate(arrays, axis=axis))


def eps_stack(parts: Sequence[EpsilonLike], axis: int = 0) -> EpsilonLike:
    """Stack per-lane draws on a new leading lane axis (lane tier)."""
    return _combine(parts, lambda arrays: np.stack(arrays, axis=axis))


class NonIdealityModel(ABC):
    """Protocol for sampled printed-hardware non-idealities.

    Implementations provide ``is_nominal`` and ``sample`` (the legacy
    multiplicative surface).  Models whose effect is not a bare
    multiplicative factor override :meth:`sample_perturbation` and raise
    ``TypeError`` from :meth:`sample`; consumers that can apply overrides
    (the kernel and lane engines) always call ``sample_perturbation``.
    """

    @property
    @abstractmethod
    def is_nominal(self) -> bool:
        """True when sampling is a deterministic no-op (exact ones)."""

    @abstractmethod
    def sample(self, n_mc: int, shape: Sequence[int]) -> np.ndarray:
        """Draw ``(n_mc, *shape)`` multiplicative factors."""

    def sample_perturbation(self, n_mc: int, shape: Sequence[int],
                            role: str = "theta") -> EpsilonLike:
        """Draw the generalized perturbation for one ``role`` slot.

        ``role`` is one of :data:`EPSILON_ROLES` — ``"theta"`` for crossbar
        conductances, ``"act"``/``"neg"`` for printable circuit component
        values ω.  The default delegates to :meth:`sample`, so purely
        multiplicative models consume their RNG stream exactly as before
        the pipeline refactor.
        """
        return self.sample(n_mc, shape)

    @property
    def has_overrides(self) -> bool:
        """True when draws may carry ``override_mask`` entries."""
        return False


def sample_role(model, n_mc: int, shape: Sequence[int], role: str) -> EpsilonLike:
    """Draw one (θ | act | neg) slot from ``model``.

    Routes through ``sample_perturbation`` when the model provides it and
    falls back to the bare ``sample`` surface for duck-typed legacy models,
    preserving their RNG consumption.
    """
    fn = getattr(model, "sample_perturbation", None)
    if fn is None:
        return model.sample(n_mc, shape)
    return fn(n_mc, shape, role=role)


def model_has_overrides(model) -> bool:
    """Whether ``model`` may emit override-carrying perturbations."""
    return bool(getattr(model, "has_overrides", False))


class _EpsilonFamilyModel(NonIdealityModel):
    """Shared plumbing of the multiplicative ε families.

    Epsilon validation, RNG setup, ``is_nominal`` and the ``sample``
    skeleton used to be copy-pasted between :class:`VariationModel` and
    :class:`GaussianVariationModel`; subclasses now only supply
    :meth:`_draw`.
    """

    def __init__(self, epsilon: float, rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None):
        if epsilon < 0 or epsilon >= 1:
            raise ValueError("epsilon must be in [0, 1)")
        self.epsilon = float(epsilon)
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng

    @property
    def is_nominal(self) -> bool:
        return self.epsilon == 0.0

    def sample(self, n_mc: int, shape: Sequence[int]) -> np.ndarray:
        """Draw ``(n_mc, *shape)`` multiplicative factors.

        With ϵ = 0 this returns exact ones, so the nominal forward pass is
        the same code path with a single Monte-Carlo sample.
        """
        if n_mc < 1:
            raise ValueError("n_mc must be >= 1")
        full_shape = (n_mc, *tuple(int(s) for s in shape))
        if self.is_nominal:
            return np.ones(full_shape)
        return self._draw(full_shape)

    @abstractmethod
    def _draw(self, full_shape: Tuple[int, ...]) -> np.ndarray:
        """Draw the non-nominal factors for one ``(n_mc, *shape)`` block."""


class VariationModel(_EpsilonFamilyModel):
    """Sampler for multiplicative uniform printing variation (the paper's)."""

    def _draw(self, full_shape: Tuple[int, ...]) -> np.ndarray:
        return self.rng.uniform(1.0 - self.epsilon, 1.0 + self.epsilon, size=full_shape)


#: The variation levels evaluated in the paper's experiments.
PAPER_EPSILONS: Tuple[float, ...] = (0.0, 0.05, 0.10)


class GaussianVariationModel(_EpsilonFamilyModel):
    """Gaussian alternative to the paper's uniform variation (extension).

    The paper motivates ``U[1−ϵ, 1+ϵ]`` with the limited printing
    resolution; measured printed-component spreads are often reported as
    Gaussian instead.  For comparability the standard deviation is set so
    both models share the same variance: ``σ = ϵ/√3``.  Samples are
    truncated at ±3σ to keep conductances physical.
    """

    def __init__(self, epsilon: float, rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None):
        super().__init__(epsilon, rng=rng, seed=seed)
        self.sigma = self.epsilon / np.sqrt(3.0)

    def _draw(self, full_shape: Tuple[int, ...]) -> np.ndarray:
        draws = self.rng.normal(1.0, self.sigma, size=full_shape)
        return np.clip(draws, 1.0 - 3.0 * self.sigma, 1.0 + 3.0 * self.sigma)


class StuckAtModel(NonIdealityModel):
    """Bernoulli stuck-on/stuck-off conductance defects.

    Each crossbar device is independently stuck-on (pinned to ``g_max``)
    with probability ``p_stuck_on`` or stuck-off (pinned to ``g_min``) with
    probability ``p_stuck_off`` — the imperfect-hardware model of Bayat et
    al.  Defects override the printed magnitude, so they surface as
    :class:`Perturbation` masks rather than scale factors; the printable
    circuit components ω (``role`` ``"act"``/``"neg"``) are unaffected and
    consume no RNG.  Defaults clamp to the ``ConductanceConfig`` surrogate
    design-space bounds (g_min=0.01, g_max=10.0).
    """

    def __init__(self, p_stuck_on: float = 0.005, p_stuck_off: float = 0.005,
                 g_min: float = 0.01, g_max: float = 10.0,
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None):
        if p_stuck_on < 0 or p_stuck_off < 0 or p_stuck_on + p_stuck_off > 1:
            raise ValueError("stuck probabilities must be >= 0 and sum to <= 1")
        if not 0 < g_min < g_max:
            raise ValueError("need 0 < g_min < g_max")
        self.p_stuck_on = float(p_stuck_on)
        self.p_stuck_off = float(p_stuck_off)
        self.g_min = float(g_min)
        self.g_max = float(g_max)
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng

    @property
    def is_nominal(self) -> bool:
        return self.p_stuck_on == 0.0 and self.p_stuck_off == 0.0

    @property
    def has_overrides(self) -> bool:
        return not self.is_nominal

    def sample(self, n_mc: int, shape: Sequence[int]) -> np.ndarray:
        raise TypeError(
            "stuck-at defects are not expressible as multiplicative factors; "
            "use sample_perturbation() (the kernel and lane engines do)"
        )

    def sample_perturbation(self, n_mc: int, shape: Sequence[int],
                            role: str = "theta") -> EpsilonLike:
        if n_mc < 1:
            raise ValueError("n_mc must be >= 1")
        full_shape = (n_mc, *tuple(int(s) for s in shape))
        scale = np.ones(full_shape)
        if role != "theta" or self.is_nominal:
            return scale
        draw = self.rng.uniform(size=full_shape)
        stuck_on = draw < self.p_stuck_on
        stuck_off = (draw >= self.p_stuck_on) & (draw < self.p_stuck_on + self.p_stuck_off)
        mask = stuck_on | stuck_off
        value = np.where(stuck_on, self.g_max, self.g_min)
        from repro import telemetry

        tel = telemetry.get()
        tel.count("defects.applied", int(mask.sum()))
        tel.count("defects.sampled", int(mask.size))
        return Perturbation(scale, mask, value)


class CorrelatedVariationModel(NonIdealityModel):
    """Spatially-correlated printing variation (shared blockwise factors).

    Printing heads drift slowly, so neighbouring devices err together.  A
    fraction ``correlation`` of the total variance (``σ = ϵ/√3``, variance-
    matched to the paper's uniform model) is carried by factors shared
    across the crossbar: half of it by one per-draw global factor and a
    quarter each by per-row and per-column factors (a rank-1 blockwise
    structure); the remaining ``1 − correlation`` stays i.i.d. per device.
    Non-2D shapes (the ω vectors) split global/local only.  Draws clip at
    ±3σ like the Gaussian family.
    """

    def __init__(self, epsilon: float, correlation: float = 0.5,
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None):
        if epsilon < 0 or epsilon >= 1:
            raise ValueError("epsilon must be in [0, 1)")
        if not 0.0 <= correlation <= 1.0:
            raise ValueError("correlation must be in [0, 1]")
        self.epsilon = float(epsilon)
        self.correlation = float(correlation)
        self.sigma = self.epsilon / np.sqrt(3.0)
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng

    @property
    def is_nominal(self) -> bool:
        return self.epsilon == 0.0

    def sample(self, n_mc: int, shape: Sequence[int]) -> np.ndarray:
        if n_mc < 1:
            raise ValueError("n_mc must be >= 1")
        shape = tuple(int(s) for s in shape)
        full_shape = (n_mc, *shape)
        if self.is_nominal:
            return np.ones(full_shape)
        rho, sigma = self.correlation, self.sigma
        if len(shape) == 2:
            rows, cols = shape
            parts = (
                (np.sqrt(rho / 2.0) * sigma, (n_mc, 1, 1)),
                (np.sqrt(rho / 4.0) * sigma, (n_mc, rows, 1)),
                (np.sqrt(rho / 4.0) * sigma, (n_mc, 1, cols)),
                (np.sqrt(1.0 - rho) * sigma, full_shape),
            )
        else:
            parts = (
                (np.sqrt(rho) * sigma, (n_mc, *(1,) * len(shape))),
                (np.sqrt(1.0 - rho) * sigma, full_shape),
            )
        draws = np.ones(full_shape)
        for amplitude, part_shape in parts:
            draws = draws + amplitude * self.rng.standard_normal(part_shape)
        return np.clip(draws, 1.0 - 3.0 * sigma, 1.0 + 3.0 * sigma)


class ComposedModel(NonIdealityModel):
    """Chain of non-ideality models acting on the same devices.

    Multiplicative scales compose by multiplication in listed order; where
    models carry overrides, a **later model's override wins** and overrides
    always win over scales at apply time (``kernels.apply_nonideality``).
    Subsumes the ad-hoc composition ``core.aging.CompositeVariation`` used
    to hand-roll.
    """

    def __init__(self, *models: NonIdealityModel):
        if not models:
            raise ValueError("ComposedModel needs at least one model")
        self.models = tuple(models)

    @property
    def is_nominal(self) -> bool:
        return all(model.is_nominal for model in self.models)

    @property
    def has_overrides(self) -> bool:
        return any(model_has_overrides(model) for model in self.models)

    def sample(self, n_mc: int, shape: Sequence[int]) -> np.ndarray:
        """Product of the component factor draws (legacy composition)."""
        combined = np.ones((n_mc, *tuple(int(s) for s in shape)))
        for model in self.models:
            combined = combined * model.sample(n_mc, shape)
        return combined

    def sample_perturbation(self, n_mc: int, shape: Sequence[int],
                            role: str = "theta") -> EpsilonLike:
        scale: Optional[np.ndarray] = None
        mask: Optional[np.ndarray] = None
        value: Optional[np.ndarray] = None
        for model in self.models:
            drawn = sample_role(model, n_mc, shape, role)
            if isinstance(drawn, Perturbation):
                part_scale = drawn.scale
                part_mask, part_value = drawn.override_mask, drawn.override_value
            else:
                part_scale, part_mask, part_value = drawn, None, None
            scale = part_scale if scale is None else scale * part_scale
            if part_mask is not None:
                if mask is None:
                    mask = part_mask.copy()
                    value = np.where(part_mask, part_value, 0.0)
                else:
                    value = np.where(part_mask, part_value, value)
                    mask = mask | part_mask
        if mask is None:
            return scale
        return Perturbation(scale, mask, value)


@dataclass(frozen=True)
class Scenario:
    """A named, CLI-reachable non-ideality configuration.

    ``build(epsilon, seed)`` returns the model to train/evaluate with, or
    ``None`` for the default scenario — the experiments layer then takes
    its pre-refactor legacy branch, which is what keeps the default
    bit-identical to recorded results.
    """

    name: str
    description: str
    build: Callable[[float, Optional[int]], Optional[NonIdealityModel]] = field(repr=False)


#: The scenario the whole pre-refactor stack is equivalent to.
DEFAULT_SCENARIO = "default"

#: Separates the defect RNG stream from the ε stream of the same seed.
_DEFECT_SEED_OFFSET = 60013


def _build_default(epsilon: float, seed: Optional[int]) -> None:
    return None


def _build_gaussian(epsilon: float, seed: Optional[int]) -> GaussianVariationModel:
    return GaussianVariationModel(epsilon, seed=seed)


def _build_stuck(epsilon: float, seed: Optional[int]) -> ComposedModel:
    defect_seed = None if seed is None else seed + _DEFECT_SEED_OFFSET
    return ComposedModel(
        VariationModel(epsilon, seed=seed),
        StuckAtModel(p_stuck_on=0.005, p_stuck_off=0.005, seed=defect_seed),
    )


def _build_correlated(epsilon: float, seed: Optional[int]) -> CorrelatedVariationModel:
    return CorrelatedVariationModel(epsilon, correlation=0.5, seed=seed)


SCENARIOS: Dict[str, Scenario] = {
    "default": Scenario(
        "default", "i.i.d. multiplicative U[1−ϵ, 1+ϵ] (paper baseline)", _build_default),
    "gaussian": Scenario(
        "gaussian", "variance-matched Gaussian ε, truncated at ±3σ", _build_gaussian),
    "stuck-1pct": Scenario(
        "stuck-1pct", "uniform ε composed with 1% stuck-on/off conductance defects",
        _build_stuck),
    "correlated": Scenario(
        "correlated", "spatially-correlated printing variation (ρ=0.5 shared factors)",
        _build_correlated),
}


def scenario_names() -> Tuple[str, ...]:
    return tuple(SCENARIOS)


def build_scenario_model(name: str, epsilon: float,
                         seed: Optional[int] = None) -> Optional[NonIdealityModel]:
    """Build the non-ideality model for scenario ``name`` at level ``epsilon``.

    Returns ``None`` for the default scenario: callers must then follow the
    legacy ε-only branch (``VariationModel`` construction inline), which is
    pinned bit-identical to pre-refactor behavior.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r}; known scenarios: {known}") from None
    return scenario.build(epsilon, seed)
