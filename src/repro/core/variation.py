"""Printing-variation model (Sec. III-C).

Printing variation is dominated by the finite printing resolution, so every
printed value is perturbed multiplicatively by an i.i.d. factor

    ε ~ U[1 − ϵ, 1 + ϵ]

where ϵ reflects the printing precision (the paper evaluates ϵ ∈ {0%, 5%,
10%}).  The same model perturbs the crossbar conductances θ and the
printable component values ω of the nonlinear circuits.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


class VariationModel:
    """Sampler for multiplicative uniform printing variation."""

    def __init__(self, epsilon: float, rng: Optional[np.random.Generator] = None, seed: Optional[int] = None):
        if epsilon < 0 or epsilon >= 1:
            raise ValueError("epsilon must be in [0, 1)")
        self.epsilon = float(epsilon)
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng

    @property
    def is_nominal(self) -> bool:
        return self.epsilon == 0.0

    def sample(self, n_mc: int, shape: Sequence[int]) -> np.ndarray:
        """Draw ``(n_mc, *shape)`` multiplicative factors.

        With ϵ = 0 this returns exact ones, so the nominal forward pass is
        the same code path with a single Monte-Carlo sample.
        """
        if n_mc < 1:
            raise ValueError("n_mc must be >= 1")
        full_shape = (n_mc, *tuple(int(s) for s in shape))
        if self.is_nominal:
            return np.ones(full_shape)
        return self.rng.uniform(1.0 - self.epsilon, 1.0 + self.epsilon, size=full_shape)


#: The variation levels evaluated in the paper's experiments.
PAPER_EPSILONS: Tuple[float, ...] = (0.0, 0.05, 0.10)


class GaussianVariationModel:
    """Gaussian alternative to the paper's uniform variation (extension).

    The paper motivates ``U[1−ϵ, 1+ϵ]`` with the limited printing
    resolution; measured printed-component spreads are often reported as
    Gaussian instead.  For comparability the standard deviation is set so
    both models share the same variance: ``σ = ϵ/√3``.  Samples are
    truncated at ±3σ to keep conductances physical.
    """

    def __init__(self, epsilon: float, rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None):
        if epsilon < 0 or epsilon >= 1:
            raise ValueError("epsilon must be in [0, 1)")
        self.epsilon = float(epsilon)
        self.sigma = self.epsilon / np.sqrt(3.0)
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    @property
    def is_nominal(self) -> bool:
        return self.epsilon == 0.0

    def sample(self, n_mc: int, shape: Sequence[int]) -> np.ndarray:
        if n_mc < 1:
            raise ValueError("n_mc must be >= 1")
        full_shape = (n_mc, *tuple(int(s) for s in shape))
        if self.is_nominal:
            return np.ones(full_shape)
        draws = self.rng.normal(1.0, self.sigma, size=full_shape)
        return np.clip(draws, 1.0 - 3.0 * self.sigma, 1.0 + 3.0 * self.sigma)
