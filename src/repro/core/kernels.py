"""Stateless circuit kernels: the pNN math as pure functions (Eqs. 1–3, Fig. 5).

This module is the single source of truth for the printed-circuit
mathematics.  Every function is a *kernel*: it owns no state, allocates no
modules, and records no autograd graph — it maps arrays to arrays.  Two
layers consume it:

- the **training path** (:mod:`repro.core.player`,
  :mod:`repro.core.nonlinear`, :mod:`repro.surrogate.analytic`) passes
  autograd tensors together with the tensor ops adapter
  (``repro.autograd.functional.TENSOR_OPS``), so gradients flow through the
  very same equations;
- the **inference path** (:mod:`repro.core.evaluation`, analysis, export,
  the experiment engine) passes plain ``numpy`` arrays with the default
  :data:`NUMPY_OPS` backend and an immutable parameter snapshot
  (:class:`repro.core.params.PNNParams`) — no ``Tensor`` objects, no graph
  bookkeeping, which is what makes Monte-Carlo evaluation fast.

The generic kernels take an ``ops`` backend exposing the handful of
non-operator primitives the equations need (``abs``, ``tanh``, ``sigmoid``,
``sqrt``, ``clip``, ``clip_ste``, ``concatenate``, ``const``, ``raw``);
shapes, arithmetic and indexing go through the common array protocol both
backends share.  The drivers at the bottom (:func:`layer_forward`,
:func:`network_forward`, :func:`predict`) are numpy-only conveniences over
a parameter snapshot.

This module deliberately imports nothing from :mod:`repro.autograd` — the
inference path must stay importable and runnable without touching the
autodiff machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.variation import EpsilonLike, Perturbation, sample_role

if TYPE_CHECKING:  # real imports would be cyclic and are not needed at runtime
    from repro.core.params import LayerParams, PNNParams, SurrogateParams

#: Voltage of the bias rail feeding the crossbar bias row (the paper's V_b).
BIAS_VOLTAGE = 1.0


# --------------------------------------------------------------------- #
# numpy ops backend                                                     #
# --------------------------------------------------------------------- #


def stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Logistic function computed without overflow for any magnitude.

    Must stay formula-identical to ``repro.autograd.functional``'s sigmoid
    so the two backends agree bitwise (pinned by the kernel-equivalence
    tests).
    """
    z = np.asarray(z, dtype=np.float64)
    e = np.exp(-np.abs(z))
    return np.where(z >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


class _NumpyOps:
    """The plain-``ndarray`` backend of the kernel ops protocol."""

    @staticmethod
    def const(value) -> np.ndarray:
        return np.asarray(value, dtype=np.float64)

    @staticmethod
    def raw(x) -> np.ndarray:
        return np.asarray(x)

    @staticmethod
    def abs(x) -> np.ndarray:
        return np.abs(x)

    @staticmethod
    def tanh(x) -> np.ndarray:
        return np.tanh(x)

    @staticmethod
    def sigmoid(x) -> np.ndarray:
        return stable_sigmoid(x)

    @staticmethod
    def sqrt(x) -> np.ndarray:
        return np.sqrt(x)

    @staticmethod
    def clip(x, low, high) -> np.ndarray:
        return np.clip(x, low, high)

    @staticmethod
    def clip_ste(x, low, high) -> np.ndarray:
        # Without a gradient tape the straight-through clip is just a clip.
        return np.clip(x, low, high)

    @staticmethod
    def concatenate(parts, axis: int) -> np.ndarray:
        return np.concatenate(parts, axis=axis)

    @staticmethod
    def broadcast_to(x, shape) -> np.ndarray:
        return np.broadcast_to(x, shape)


#: Module-level singleton; the default backend of every generic kernel.
NUMPY_OPS = _NumpyOps()


# --------------------------------------------------------------------- #
# Eq. 1 — crossbar weighted sum with negative-weight routing            #
# --------------------------------------------------------------------- #


def augment_inputs(x, ops=NUMPY_OPS):
    """Append the bias (1 V) and down (0 V) input lines: ``(N,B,F)→(N,B,F+2)``."""
    batch = x.shape[-2]
    n_mc = x.shape[0]
    ones = ops.const(np.full((n_mc, batch, 1), BIAS_VOLTAGE))
    zeros = ops.const(np.zeros((n_mc, batch, 1)))
    return ops.concatenate([x, ones, zeros], axis=-1)


def positive_route_mask(theta_eff: np.ndarray) -> np.ndarray:
    """Routing mask of Eq. 1: 1 where the input feeds the crossbar directly.

    Negative surrogate conductances route their input through the
    negative-weight circuit.  The "down" row (second-to-last axis, last
    index) is a grounding resistor: its 0 V input must never be routed
    through the negative-weight circuit (its sign only matters for the
    denominator, where the magnitude is used anyway).  ``theta_eff`` may
    carry any leading axes (MC, lane): the row axis is addressed from the
    trailing end.
    """
    mask = (np.asarray(theta_eff) >= 0.0).astype(np.float64)
    mask[..., -1, :] = 1.0
    return mask


def crossbar_output(x_aug, inverted, theta_eff, ops=NUMPY_OPS):
    """Eq. 1: normalized weighted sum of direct and negated input voltages.

    Parameters
    ----------
    x_aug:
        Augmented input voltages ``(n_mc | 1, batch, in+2)``.
    inverted:
        The same voltages after the negative-weight circuit.
    theta_eff:
        Effective (variation-perturbed) surrogate conductances
        ``(n_mc | 1, in+2, out)``.
    """
    magnitude = ops.abs(theta_eff)
    route = positive_route_mask(ops.raw(theta_eff))
    pos_w = magnitude * ops.const(route)
    neg_w = magnitude * ops.const(1.0 - route)
    numerator = x_aug @ pos_w + inverted @ neg_w              # (N, B, O)
    denominator = magnitude.sum(axis=1)                       # (N, O) or (1, O)
    n_mc = denominator.shape[0]
    denominator = denominator.reshape(n_mc, 1, theta_eff.shape[-1])
    return numerator / (denominator + 1e-12)


# --------------------------------------------------------------------- #
# Fig. 5 — reduced parameterization → printable ω                       #
# --------------------------------------------------------------------- #


def reassemble_printable_omega(w_raw, space, ops=NUMPY_OPS):
    """Fig. 5 steps 1–3: raw parameters 𝔴 → printable component vector ω.

    A sigmoid squashes 𝔴 into (0, 1); the first five entries denormalize
    into their Table-I ranges while the divider ratios stay in (0, 1); then
    ``R2 = k1·R1`` and ``R4 = k2·R3`` are reassembled and clipped into
    their feasible ranges (straight-through on the autograd backend, so
    the ratios keep receiving gradient while clipped).
    """
    squashed = ops.sigmoid(w_raw)
    lower = ops.const(space.reduced_lower)
    span = ops.const(space.reduced_upper - space.reduced_lower)
    reduced = squashed * span + lower

    r1 = reduced[:, 0:1]
    r3 = reduced[:, 1:2]
    r5 = reduced[:, 2:3]
    width = reduced[:, 3:4]
    length = reduced[:, 4:5]
    k1 = reduced[:, 5:6]
    k2 = reduced[:, 6:7]
    r2 = ops.clip_ste(k1 * r1, space.lower[1], space.upper[1])
    r4 = ops.clip_ste(k2 * r3, space.lower[3], space.upper[3])
    return ops.concatenate([r1, r2, r3, r4, r5, width, length], axis=1)


def extend_with_ratios(omega, ops=NUMPY_OPS):
    """Append the critical ratio features [k1, k2, k3] to ω (Sec. III-A c)."""
    r1 = omega[..., 0:1]
    r2 = omega[..., 1:2]
    r3 = omega[..., 2:3]
    r4 = omega[..., 3:4]
    width = omega[..., 5:6]
    length = omega[..., 6:7]
    k1 = r2 / r1
    k2 = r4 / r3
    k3 = width / length
    return ops.concatenate([omega, k1, k2, k3], axis=-1)


# --------------------------------------------------------------------- #
# Eqs. 2–3 — tanh-like transfer of the nonlinear circuits               #
# --------------------------------------------------------------------- #


def circuit_transfer(voltage, eta, kind: str, ops=NUMPY_OPS):
    """Apply Eq. 2 (``ptanh``) or Eq. 3 (``negweight``) to voltages.

    ``eta`` has shape ``(n_mc, n_circuits, 4)``; with one shared circuit
    the same η applies to every output column, with per-neuron circuits
    the last voltage axis must match ``n_circuits``.
    """
    n_mc, n_circuits = eta.shape[0], eta.shape[1]
    if n_circuits == 1:
        shape = (n_mc, 1, 1)
    else:
        shape = (n_mc, 1, n_circuits)
    eta1 = eta[:, :, 0].reshape(*shape)
    eta2 = eta[:, :, 1].reshape(*shape)
    eta3 = eta[:, :, 2].reshape(*shape)
    eta4 = eta[:, :, 3].reshape(*shape)
    core = eta1 + eta2 * ops.tanh((voltage - eta3) * eta4)
    if kind == "negweight":
        return -core
    return core


# --------------------------------------------------------------------- #
# ω → η surrogates                                                      #
# --------------------------------------------------------------------- #


def mlp_forward(x, weights: Sequence, biases: Sequence, ops=NUMPY_OPS):
    """The surrogate MLP: tanh hidden layers, linear output."""
    for weight, bias in zip(weights[:-1], biases[:-1]):
        x = ops.tanh(x @ weight + bias)
    return x @ weights[-1] + biases[-1]


def analytic_eta(
    omega,
    kind: str,
    k_prime: float,
    v_threshold: float,
    vdd: float,
    second_stage_load: float,
    ops=NUMPY_OPS,
):
    """First-order circuit analysis ω → raw η (the analytic surrogate).

    Divider ratios attenuate the input, the stage-1 trip point sits where
    the EGT sinks ``VDD/2`` through its effective load, small-signal gains
    set the steepness, and the output swing rolls off smoothly when the
    trip point leaves the 0..1 V input window.  Returns the *uncalibrated*
    η; the caller applies the per-output affine calibration.
    """
    r1 = omega[..., 0:1]
    r2 = omega[..., 1:2]
    r3 = omega[..., 2:3]
    r4 = omega[..., 3:4]
    r5 = omega[..., 4:5]
    width = omega[..., 5:6]
    length = omega[..., 6:7]

    k1 = r2 / (r1 + r2)
    k2 = r4 / (r3 + r4)
    beta = k_prime * width / length

    divider_chain = r3 + r4
    load1 = r5 * divider_chain / (r5 + divider_chain)
    overdrive = ops.sqrt(ops.const(vdd) / (beta * load1))
    trip = (overdrive + v_threshold) / (k1 + 1e-9)

    gain1 = ops.sqrt(beta * vdd * load1)
    gain2 = ops.sqrt(beta * vdd * second_stage_load)

    # Fraction of the full swing reachable when the trip point sits inside
    # the 0..1 V input window (smooth roll-off outside).
    visibility = ops.sigmoid((ops.const(vdd) - trip) * 6.0) * ops.sigmoid(trip * 6.0)

    if kind == "ptanh":
        amplitude = 0.5 * vdd * visibility
        centre = ops.const(np.full(1, 0.5 * vdd)) + 0.0 * trip
        slope = k1 * gain1 * k2 * gain2 * 0.25
    else:
        # Negative-weight target is −inv(V) = VDD − k2·V_d1 (Eq. 3 fit).
        amplitude = 0.5 * vdd * k2 * visibility
        centre = ops.const(vdd) - k2 * (0.5 * vdd) + 0.0 * trip
        slope = k1 * gain1 * 0.5

    steepness = slope / (amplitude + 1e-3)
    steepness = ops.clip(steepness, 0.5, 200.0)
    return ops.concatenate([centre, amplitude, trip, steepness], axis=-1)


def surrogate_eta(omega: np.ndarray, surrogate: "SurrogateParams") -> np.ndarray:
    """Map printable ω ``(..., 7)`` to η ``(..., 4)`` through a snapshot.

    Dispatches on the snapshot's backend: the NN surrogate runs the
    ratio-extend → normalize → MLP → denormalize chain, the analytic
    surrogate runs the closed-form analysis plus its affine calibration.
    """
    omega = np.asarray(omega, dtype=np.float64)
    if surrogate.backend == "mlp":
        extended = extend_with_ratios(omega)
        normalized = (extended - surrogate.input_min) / surrogate.input_span
        eta_norm = mlp_forward(normalized, surrogate.weights, surrogate.biases)
        return eta_norm * surrogate.eta_span + surrogate.eta_min
    if surrogate.backend == "analytic":
        raw = analytic_eta(
            omega,
            surrogate.kind,
            surrogate.k_prime,
            surrogate.v_threshold,
            surrogate.vdd,
            surrogate.second_stage_load,
        )
        return raw * surrogate.scale + surrogate.shift
    raise ValueError(f"unknown surrogate backend {surrogate.backend!r}")


def apply_nonideality(
    nominal: np.ndarray, eps: EpsilonLike, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Apply one sampled non-ideality draw to nominal printed values.

    The single variation-application kernel shared by the crossbar θ and
    circuit ω paths (serial, gradient and lane engines alike):

    - a bare ``ndarray`` is a pure multiplicative factor — exactly the
      pre-refactor ``nominal * eps`` instruction, which is what keeps the
      default ε-only scenario bit-identical to recorded results;
    - a :class:`~repro.core.variation.Perturbation` multiplies by its
      ``scale`` and then pins overridden devices to ``sign(nominal) *
      override_value`` (a stuck conductance keeps the crossbar routing
      sign; a zero nominal entry stays zero).

    ``out`` optionally receives the result (it must already have the
    broadcast shape); the fused backend passes a Workspace buffer here to
    avoid allocating one effective-θ array per MC chunk.  ``np.copyto``
    with ``where=`` writes the same values ``np.where`` selects, so both
    paths are bitwise identical.
    """
    if isinstance(eps, Perturbation):
        if out is None:
            effective = nominal * eps.scale
            if eps.override_mask is not None:
                effective = np.where(
                    eps.override_mask, np.sign(nominal) * eps.override_value, effective
                )
            return effective
        np.multiply(nominal, eps.scale, out=out)
        if eps.override_mask is not None:
            np.copyto(
                out, np.sign(nominal) * eps.override_value, where=eps.override_mask
            )
        return out
    if out is None:
        return nominal * eps
    return np.multiply(nominal, eps, out=out)


def circuit_eta(
    omega: np.ndarray,
    surrogate: "SurrogateParams",
    epsilon_omega: Optional[EpsilonLike] = None,
) -> np.ndarray:
    """η of one nonlinear circuit, optionally under printing variation.

    ``omega`` is the printable component matrix ``(n_circuits, 7)``;
    ``epsilon_omega`` optionally perturbs it with per-sample draws
    ``(n_mc, n_circuits, 7)`` (Fig. 5 step 4 — variation applies to the
    printable values).  Returns ``(n_mc | 1, n_circuits, 4)``.
    """
    n_circuits = omega.shape[0]
    omega = omega.reshape(1, n_circuits, 7)
    if epsilon_omega is not None:
        eps = epsilon_omega
        if not isinstance(eps, Perturbation):
            eps = np.asarray(eps, dtype=np.float64)
        if eps.ndim != 3 or eps.shape[1:] != (n_circuits, 7):
            raise ValueError("epsilon_omega must be (n_mc, n_circuits, 7)")
        omega = apply_nonideality(omega, eps)
    return surrogate_eta(omega, surrogate)


# --------------------------------------------------------------------- #
# numpy-only drivers over a parameter snapshot                          #
# --------------------------------------------------------------------- #

#: One layer's variation draw: (ε_theta, ε_activation, ε_negweight).
#: Each slot is a bare multiplicative factor array (legacy) or a
#: generalized :class:`~repro.core.variation.Perturbation`.
LayerEpsilons = Tuple[
    Optional[EpsilonLike], Optional[EpsilonLike], Optional[EpsilonLike]
]


def layer_forward(
    x: np.ndarray,
    layer: "LayerParams",
    act_surrogate: "SurrogateParams",
    neg_surrogate: "SurrogateParams",
    epsilon_theta: Optional[EpsilonLike] = None,
    epsilon_act: Optional[EpsilonLike] = None,
    epsilon_neg: Optional[EpsilonLike] = None,
) -> np.ndarray:
    """One printed layer, autograd-free: Eq. 1 + (optionally) Eq. 2.

    Mirrors :meth:`repro.core.player.PrintedLayer.forward` bit for bit:
    same augmentation, same routing, same η pipeline — only without the
    gradient tape.
    """
    if x.ndim != 3:
        raise ValueError("expected (n_mc, batch, features) input")
    x_aug = augment_inputs(x)                                 # (N, B, I+2)

    theta_eff = layer.theta[None]                             # (1, I+2, O)
    if epsilon_theta is not None:
        eps = epsilon_theta
        if not isinstance(eps, Perturbation):
            eps = np.asarray(eps, dtype=np.float64)
        if eps.ndim != 3 or eps.shape[1:] != layer.theta.shape:
            raise ValueError("epsilon_theta must be (n_mc, in+2, out)")
        theta_eff = apply_nonideality(theta_eff, eps)         # (N, I+2, O)

    inv_eta = circuit_eta(layer.neg_omega, neg_surrogate, epsilon_neg)
    inverted = circuit_transfer(x_aug, inv_eta, "negweight")

    v_z = crossbar_output(x_aug, inverted, theta_eff)
    if not layer.apply_activation:
        return v_z
    act_eta = circuit_eta(layer.act_omega, act_surrogate, epsilon_act)
    return circuit_transfer(v_z, act_eta, "ptanh")


def sample_layer_epsilons(variation, n_mc: int, layer: "LayerParams") -> LayerEpsilons:
    """Draw one layer's variation factors in the canonical order.

    The order — crossbar θ, then activation ω, then negative-weight ω — is
    a **contract**: it defines the evaluation noise stream (recorded
    results depend on it) and analysis tools like
    :class:`repro.analysis.sensitivity._SelectiveVariation` identify
    component groups by their position in this 3-cycle.

    Models implementing the :class:`~repro.core.variation.NonIdealityModel`
    protocol are sampled through ``sample_perturbation`` with the matching
    role hints; duck-typed legacy models fall back to bare ``sample`` —
    either way the RNG stream is consumed in the same canonical order
    (pinned by ``tests/core/test_sampling_order.py``).
    """
    eps_theta = sample_role(variation, n_mc, layer.theta.shape, "theta")
    eps_act = sample_role(variation, n_mc, (layer.act_omega.shape[0], 7), "act")
    eps_neg = sample_role(variation, n_mc, (layer.neg_omega.shape[0], 7), "neg")
    return eps_theta, eps_act, eps_neg


def network_forward(
    params: "PNNParams",
    x: np.ndarray,
    variation=None,
    n_mc: int = 1,
    epsilons: Optional[List[LayerEpsilons]] = None,
) -> np.ndarray:
    """Output voltages ``(n_mc, batch, n_classes)`` from a snapshot.

    The autograd-free counterpart of
    :meth:`repro.core.pnn.PrintedNeuralNetwork.forward`: identical
    validation, identical variation-sampling order (one 3-cycle per
    layer), identical arithmetic.  ``variation=None`` (or ε = 0) runs the
    nominal forward pass with a single Monte-Carlo sample.

    ``epsilons`` optionally supplies pre-drawn variation factors (one
    :data:`LayerEpsilons` triple per layer), bypassing the sampler — the
    hook :func:`repro.core.evaluation.evaluate_mc` uses to decouple the
    noise stream from compute chunking.
    """
    data = np.asarray(x, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("expected a (batch, features) input")
    if data.shape[1] != params.layer_sizes[0]:
        raise ValueError(
            f"input has {data.shape[1]} features, network expects {params.layer_sizes[0]}"
        )
    if epsilons is not None:
        if len(epsilons) != len(params.layers):
            raise ValueError("need one epsilon triple per layer")
        first = epsilons[0][0]
        n_mc = 1 if first is None else int(first.shape[0])
    elif variation is None or variation.is_nominal:
        n_mc = 1

    hidden = data[None]                                       # (1, B, F)
    if n_mc > 1:
        hidden = np.broadcast_to(hidden, (n_mc, *data.shape))

    for index, layer in enumerate(params.layers):
        eps_theta = eps_act = eps_neg = None
        if epsilons is not None:
            eps_theta, eps_act, eps_neg = epsilons[index]
        elif variation is not None and not variation.is_nominal:
            eps_theta, eps_act, eps_neg = sample_layer_epsilons(variation, n_mc, layer)
        hidden = layer_forward(
            hidden,
            layer,
            params.act_surrogate,
            params.neg_surrogate,
            epsilon_theta=eps_theta,
            epsilon_act=eps_act,
            epsilon_neg=eps_neg,
        )
    return hidden


def predict(
    params: "PNNParams",
    x: np.ndarray,
    variation=None,
    n_mc: int = 1,
    epsilons: Optional[List[LayerEpsilons]] = None,
) -> np.ndarray:
    """Class predictions ``(n_mc, batch)`` (argmax voltage), autograd-free."""
    voltages = network_forward(params, x, variation=variation, n_mc=n_mc, epsilons=epsilons)
    return np.argmax(voltages, axis=-1)
