"""Learnable nonlinear circuits inside the pNN (Sec. III-B, Fig. 5).

The learnable parameter 𝔴 corresponds to the reduced parameterization
``[R1, R3, R5, W, L, k1, k2]``.  The forward processing follows Fig. 5
exactly:

1. a sigmoid keeps the normalized values in (0, 1);
2. the first five entries are denormalized into their Table-I ranges, the
   ratios stay in (0, 1);
3. the printable vector ω is reassembled with ``R2 = R1·k1`` and
   ``R4 = R3·k2``, clipped into their feasible ranges (straight-through, so
   the ratios keep receiving gradient while clipped);
4. *printing variation is applied here*, to the printable values — not to
   the raw learnable parameter (the paper is explicit about this);
5. the vector is ratio-extended, normalized with the surrogate's stored
   statistics, pushed through the surrogate NN and denormalized into η.

The resulting η parameterize the tanh-like transfer (Eq. 2) or its negated
form (Eq. 3).  The module supports one shared circuit per layer (the
default, matching the paper's per-layer bespoke activation) or one circuit
per neuron.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.autograd.functional import TENSOR_OPS
from repro.autograd.tensor import Tensor
from repro.core import kernels
from repro.nn.module import Module, Parameter
from repro.surrogate.analytic import AnalyticSurrogate
from repro.surrogate.design_space import DesignSpace
from repro.surrogate.pipeline import CircuitSurrogate

Surrogate = Union[CircuitSurrogate, AnalyticSurrogate]


class LearnableNonlinearCircuit(Module):
    """A (possibly learnable) nonlinear circuit: ptanh activation or negation.

    Parameters
    ----------
    surrogate:
        Differentiable ω → η map (NN surrogate or analytic baseline).
    space:
        The Table-I design space (supplies denormalization bounds).
    kind:
        ``"ptanh"`` applies Eq. 2; ``"negweight"`` applies Eq. 3 (negated).
    n_circuits:
        ``1`` for a layer-shared circuit, or the number of neurons for
        per-neuron bespoke circuits.
    """

    def __init__(
        self,
        surrogate: Surrogate,
        space: DesignSpace,
        kind: str,
        n_circuits: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if kind not in ("ptanh", "negweight"):
            raise ValueError("kind must be 'ptanh' or 'negweight'")
        self.surrogate = surrogate
        self.space = space
        self.kind = kind
        self.n_circuits = int(n_circuits)
        if self.n_circuits < 1:
            raise ValueError("n_circuits must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        # Raw learnable parameter; sigmoid(0) = 0.5 is the mid-range
        # reference circuit used by the non-learnable baselines.  Small
        # noise breaks symmetry between per-neuron circuits.
        noise = 0.01 * rng.standard_normal((self.n_circuits, 7)) if self.n_circuits > 1 else 0.0
        self.w_raw = Parameter(np.zeros((self.n_circuits, 7)) + noise)

    # ------------------------------------------------------------------ #
    # Fig. 5 processing chain                                            #
    # ------------------------------------------------------------------ #

    def printable_omega(self) -> Tensor:
        """Component values to print: shape ``(n_circuits, 7)``.

        Differentiable w.r.t. :attr:`w_raw`; this is the tensor printing
        variation multiplies (step 4 in the module docstring).
        """
        return kernels.reassemble_printable_omega(self.w_raw, self.space, ops=TENSOR_OPS)

    def eta(self, epsilon_omega: Optional[np.ndarray] = None) -> Tensor:
        """Auxiliary tanh parameters, optionally under printing variation.

        Parameters
        ----------
        epsilon_omega:
            Multiplicative variation factors of shape
            ``(n_mc, n_circuits, 7)``; ``None`` means nominal (n_mc = 1).

        Returns
        -------
        Tensor of shape ``(n_mc, n_circuits, 4)``.
        """
        omega = self.printable_omega()                     # (C, 7)
        omega = omega.reshape(1, self.n_circuits, 7)
        if epsilon_omega is not None:
            eps = np.asarray(epsilon_omega, dtype=np.float64)
            if eps.ndim != 3 or eps.shape[1:] != (self.n_circuits, 7):
                raise ValueError("epsilon_omega must be (n_mc, n_circuits, 7)")
            omega = omega * Tensor(eps)
        return self.surrogate.eta_from_omega(omega)        # (N, C, 4)

    # ------------------------------------------------------------------ #
    # transfer functions                                                 #
    # ------------------------------------------------------------------ #

    def transfer(self, voltage: Tensor, eta: Tensor) -> Tensor:
        """Apply the circuit transfer to voltages of shape ``(n_mc, B, F)``.

        With a shared circuit the same η applies to every column; with
        per-neuron circuits ``F`` must equal :attr:`n_circuits`.
        """
        return kernels.circuit_transfer(voltage, eta, self.kind, ops=TENSOR_OPS)

    def forward(self, voltage: Tensor, epsilon_omega: Optional[np.ndarray] = None) -> Tensor:
        """Convenience: compute η then apply the transfer."""
        return self.transfer(voltage, self.eta(epsilon_omega))
