"""The printed neural network (pNN) with learnable nonlinear circuits.

This package is the paper's primary contribution (Sec. III):

- :mod:`~repro.core.conductance` — the printable-conductance constraint and
  its straight-through projection;
- :mod:`~repro.core.nonlinear` — the learnable nonlinear circuit module
  implementing the Fig. 5 parameter flow (sigmoid → denormalize →
  reassemble/clip → ratio-extend → normalize → surrogate → η);
- :mod:`~repro.core.player` — one printed layer: crossbar weighted sum
  (Eq. 1) with negative-weight routing and the ptanh activation;
- :mod:`~repro.core.pnn` — the full network (topology #input-3-#output in
  the experiments);
- :mod:`~repro.core.variation` — the composable non-ideality pipeline:
  the :class:`NonIdealityModel` protocol, the multiplicative printing
  variation ε ~ U[1−ϵ, 1+ϵ] and its Gaussian sibling, stuck-at
  conductance defects, spatially-correlated printing variation, model
  composition, and the named scenario registry;
- :mod:`~repro.core.kernels` — the stateless circuit math (Eqs. 1–3,
  Fig. 5) as pure functions over pluggable array backends;
- :mod:`~repro.core.params` — immutable :class:`PNNParams` inference
  snapshots executed by the kernels without autograd;
- :mod:`~repro.core.grad_kernels` — hand-derived backward kernels (VJPs)
  for every forward kernel, packaged as the autograd-free
  :class:`KernelNetwork` training engine;
- :mod:`~repro.core.training` — nominal and variation-aware training
  (Monte-Carlo expected loss, N_train = 20) with selectable execution
  engine (``"kernel"`` fast path / ``"autograd"`` cross-check /
  ``"lanes"`` single-lane stack);
- :mod:`~repro.core.lanes` — lane-batched lockstep training: ``L``
  compatible jobs stacked on a leading axis, one epoch loop, per-lane
  early stopping with a shrinking active set — bitwise equal per lane to
  serial kernel runs;
- :mod:`~repro.core.evaluation` — Monte-Carlo test evaluation
  (N_test = 100) reporting mean ± std accuracy as in Table II, running
  through the autograd-free kernel path, serially (``evaluate_mc``) or
  sharded across a process pool (``evaluate_mc_sharded``) with bitwise
  identical results;
- :mod:`~repro.core.shm` — the zero-copy shared-memory data plane behind
  sharded evaluation: datasets, :class:`PNNParams` snapshots and
  pre-drawn ε streams published once, mapped read-only in workers under
  fork and spawn, with audited publish/map/unlink accounting;
- :mod:`~repro.core.backends` — the execution-backend registry behind
  the kernel seam: the historical allocating ``"numpy"`` reference and
  the preallocated-scratch ``"fused"`` backend (optional numba JIT
  tier), every backend bitwise-equal to the reference.
"""

from repro.core.conductance import ConductanceConfig
from repro.core.nonlinear import LearnableNonlinearCircuit
from repro.core.params import (
    PNN_PARAMS_VERSION,
    LayerParams,
    PNNParams,
    SurrogateParams,
    snapshot_params,
)
from repro.core.player import PrintedLayer
from repro.core.pnn import PrintedNeuralNetwork
from repro.core.variation import (
    DEFAULT_SCENARIO,
    SCENARIOS,
    ComposedModel,
    CorrelatedVariationModel,
    GaussianVariationModel,
    NonIdealityModel,
    Perturbation,
    StuckAtModel,
    VariationModel,
    build_scenario_model,
    scenario_names,
)
from repro.core.losses import MarginLoss, make_loss
from repro.core.grad_kernels import KernelNetwork, Workspace
from repro.core.backends import (
    DEFAULT_BACKEND,
    Backend,
    backend_names,
    get_backend,
    numba_version,
)
from repro.core.training import TrainConfig, TrainResult, train_pnn
from repro.core.lanes import LaneNetwork, train_pnn_lanes
from repro.core.evaluation import (
    SAMPLE_BLOCK,
    SHARD_BATCH_MC,
    MonteCarloAccuracy,
    evaluate_mc,
    evaluate_mc_autograd,
    evaluate_mc_sharded,
    plan_shards,
)
from repro.core.shm import SharedArrayStore
from repro.core.aging import AgingModel, CompositeVariation, evaluate_lifetime
from repro.core.serialization import (
    load_params,
    load_pnn,
    save_params,
    save_pnn,
    surrogate_fingerprint,
)

__all__ = [
    "AgingModel",
    "CompositeVariation",
    "evaluate_lifetime",
    "ConductanceConfig",
    "LearnableNonlinearCircuit",
    "PrintedLayer",
    "PrintedNeuralNetwork",
    "PNNParams",
    "LayerParams",
    "SurrogateParams",
    "PNN_PARAMS_VERSION",
    "snapshot_params",
    "NonIdealityModel",
    "Perturbation",
    "VariationModel",
    "GaussianVariationModel",
    "StuckAtModel",
    "CorrelatedVariationModel",
    "ComposedModel",
    "SCENARIOS",
    "DEFAULT_SCENARIO",
    "build_scenario_model",
    "scenario_names",
    "MarginLoss",
    "make_loss",
    "KernelNetwork",
    "Workspace",
    "Backend",
    "DEFAULT_BACKEND",
    "backend_names",
    "get_backend",
    "numba_version",
    "TrainConfig",
    "TrainResult",
    "train_pnn",
    "LaneNetwork",
    "train_pnn_lanes",
    "MonteCarloAccuracy",
    "SAMPLE_BLOCK",
    "SHARD_BATCH_MC",
    "SharedArrayStore",
    "evaluate_mc",
    "evaluate_mc_autograd",
    "evaluate_mc_sharded",
    "plan_shards",
    "load_params",
    "load_pnn",
    "save_params",
    "save_pnn",
    "surrogate_fingerprint",
]
