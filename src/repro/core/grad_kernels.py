"""Hand-derived backward kernels: the pNN gradient path without autograd.

:mod:`repro.core.kernels` made *inference* autograd-free; this module does
the same for *training*.  Every forward kernel gets a hand-derived
vector–Jacobian product (VJP), so one variation-aware training epoch — the
Monte-Carlo expected loss of Sec. III-C over ``n_mc`` fabricated circuit
instances — runs as a handful of plain-``numpy`` array operations instead
of a dynamically-taped autograd graph:

- Eq. 1 crossbar routing (:func:`crossbar_fwd` / :func:`crossbar_bwd`),
  including the normalization denominator and the sign-based routing mask
  (which, like the autograd path, carries no gradient);
- the Fig. 5 ω-reassembly chain (:func:`reassemble_omega_fwd` /
  :func:`reassemble_omega_bwd`) with the straight-through gradient of the
  ``R2 = k1·R1`` / ``R4 = k2·R3`` feasibility clips;
- both ω → η surrogate backends: the ratio-extend → normalize → MLP →
  denormalize chain (:func:`mlp_eta_fwd` / :func:`mlp_eta_bwd`; surrogate
  weights are frozen during pNN training, so only the input VJP is needed)
  and the closed-form analytic surrogate (:func:`analytic_eta_fwd` /
  :func:`analytic_eta_bwd`);
- the Eq. 2/3 tanh-like transfer (:func:`transfer_fwd` /
  :func:`transfer_bwd`);
- the chain rule through the multiplicative printing-variation factors onto
  the printable θ and ω (inside :class:`KernelNetwork`);
- the margin and voltage-cross-entropy losses (:func:`margin_loss_fwd` /
  :func:`margin_loss_bwd`, :func:`ce_loss_fwd` / :func:`ce_loss_bwd`).

The formulas mirror :mod:`repro.autograd.functional` adjoint for adjoint
(same straight-through estimators, same strict ReLU mask, same stable
sigmoid), so gradients agree with the taped reference to float64 rounding —
pinned by ``tests/core/test_grad_kernels.py`` against both finite
differences and the autograd engine.

:class:`KernelNetwork` packages the kernels into a training engine over a
live :class:`~repro.core.pnn.PrintedNeuralNetwork`: it freezes the static
structure (surrogate snapshots, design-space bounds, conductance limits),
keeps per-epoch :class:`Workspace` buffers so the steady-state epoch
allocates almost nothing of size ``(n_mc, batch, features)``, and exposes
raw parameter arrays that :class:`repro.optim.RawParameter` /
:class:`~repro.optim.Adam` update directly — no ``Tensor`` wrapper, graph
node, or state-dict copy is materialized per epoch.
:func:`repro.core.training.train_pnn` dispatches here by default
(``engine="kernel"``), keeping the autograd loop as the slow cross-check.

Shape convention — the leading lane axis
----------------------------------------
Every kernel in this module is written against *trailing* axes (ellipsis
indexing, negative reduction axes, batched ``matmul``), so the canonical
serial shapes

- parameters θ ``(in+2, out)``, 𝔴/ω ``(C, 7)``, η ``(C, 4)``,
- activations ``(n_mc, batch, features)``,

generalize to an optional **leading lane axis** ``L`` — ``(L, in+2, out)``,
``(L, n_mc, batch, features)``, … — carrying ``L`` independent training
jobs in lockstep (:mod:`repro.core.lanes`).  The generalization is not a
convenience: it is a *bit-identity contract*.  For 3-D inputs the exact
historical call sequence executes (negative axes coincide with the old
positive ones), and for stacked inputs every lane's slice sees the same
elementwise operations, the same per-slice 2-D GEMMs, and reductions whose
memory-layout relationship to the reduced axis is unchanged — so lane ``l``
of a stacked call is bitwise equal to a serial call on lane ``l``'s data
alone (pinned by ``tests/core/test_lane_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import _jit
from repro.core.kernels import (
    BIAS_VOLTAGE,
    apply_nonideality,
    positive_route_mask,
    stable_sigmoid,
)
from repro.core.params import (
    LayerParams,
    PNNParams,
    SurrogateParams,
    snapshot_surrogate,
)
from repro.core.variation import EpsilonLike, Perturbation

Epsilons = Optional[Sequence[Tuple[Optional[EpsilonLike], ...]]]


def apply_nonideality_bwd(
    d_effective: np.ndarray, eps: EpsilonLike, axis: int = 0
) -> np.ndarray:
    """VJP of :func:`repro.core.kernels.apply_nonideality` onto the nominal
    printed values, reducing the Monte-Carlo ``axis``.

    For a bare multiplicative draw this is exactly the pre-refactor
    ``(d_eff * ε).sum(axis)`` instruction.  For a
    :class:`~repro.core.variation.Perturbation` the cotangent is scaled and
    **zeroed through overridden devices** — a stuck conductance contributes
    no gradient to the printed value it replaced, which is what makes
    defect-aware training train around defects instead of fighting them.
    ``axis=0`` serves the serial engine; the lane engine reduces ``axis=1``
    (its leading axis is the lane stack).
    """
    if isinstance(eps, Perturbation):
        grad = d_effective * eps.scale
        if eps.override_mask is not None:
            grad = np.where(eps.override_mask, 0.0, grad)
        return grad.sum(axis=axis)
    return (d_effective * eps).sum(axis=axis)


# --------------------------------------------------------------------- #
# workspace                                                             #
# --------------------------------------------------------------------- #


class Workspace:
    """Named, shape-checked scratch buffers reused across epochs.

    Training shapes are constant over a run (full-batch, fixed ``n_mc``),
    so the large ``(n_mc, batch, features)`` intermediates of every epoch
    can live in preallocated buffers.  Buffers are keyed by name; a shape
    change (e.g. the first call, or switching between the train and
    validation batch) reallocates that one buffer.
    """

    def __init__(self):
        self._buffers: Dict[str, np.ndarray] = {}

    def buf(self, name: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        shape = tuple(int(s) for s in shape)
        buffer = self._buffers.get(name)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[name] = buffer
        return buffer

    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())


# --------------------------------------------------------------------- #
# Fig. 5 steps 1–3: raw 𝔴 → printable ω                                 #
# --------------------------------------------------------------------- #


def project_printable(theta: np.ndarray, g_min: float, g_max: float) -> np.ndarray:
    """Forward of the printable-conductance projection (STE backward).

    Identical to :func:`repro.autograd.functional.project_printable_ste`'s
    forward; the backward pass is the identity, so no companion ``_bwd``
    function exists — callers pass the printable-θ gradient straight
    through to the raw θ.  Elementwise, so ``theta`` may carry any
    leading axes: ``(I, O)`` serial or ``(L, I, O)`` lane-stacked.
    """
    magnitude = np.abs(theta)
    snapped = np.where(magnitude < g_min / 2.0, 0.0, np.clip(magnitude, g_min, g_max))
    return np.sign(theta) * snapped


def reassemble_omega_fwd(w_raw: np.ndarray, space) -> Tuple[np.ndarray, tuple]:
    """Fig. 5 steps 1–3 forward: raw 𝔴 ``(..., C, 7)`` → printable ω.

    Accepts the serial ``(C, 7)`` component matrix or any leading stack of
    them (e.g. ``(L, C, 7)`` lane-stacked parameters); all arithmetic is
    elementwise over the trailing component axis.  Returns the printable
    component matrix (same shape) and the context needed by the VJP
    :func:`reassemble_omega_bwd`.
    """
    squashed = stable_sigmoid(w_raw)
    lower = space.reduced_lower
    span = space.reduced_upper - space.reduced_lower
    reduced = squashed * span + lower

    r1 = reduced[..., 0:1]
    r3 = reduced[..., 1:2]
    r5 = reduced[..., 2:3]
    width = reduced[..., 3:4]
    length = reduced[..., 4:5]
    k1 = reduced[..., 5:6]
    k2 = reduced[..., 6:7]
    r2 = np.clip(k1 * r1, space.lower[1], space.upper[1])
    r4 = np.clip(k2 * r3, space.lower[3], space.upper[3])
    omega = np.concatenate([r1, r2, r3, r4, r5, width, length], axis=-1)
    return omega, (squashed, span, r1, r3, k1, k2)


def reassemble_omega_bwd(d_omega: np.ndarray, ctx: tuple) -> np.ndarray:
    """VJP of :func:`reassemble_omega_fwd`: dω ``(..., C, 7)`` → d𝔴.

    Shapes mirror the forward (optional leading lane/stack axes).  The
    feasibility clips on R2/R4 use the straight-through estimator
    (matching ``clip_ste``), so their gradient reaches ``k1·R1`` / ``k2·R3``
    unchanged even when the product is clipped.
    """
    squashed, span, r1, r3, k1, k2 = ctx
    d_r1 = d_omega[..., 0:1].copy()
    d_r2 = d_omega[..., 1:2]                   # straight-through clip
    d_r3 = d_omega[..., 2:3].copy()
    d_r4 = d_omega[..., 3:4]                   # straight-through clip
    d_k1 = d_r2 * r1
    d_r1 += d_r2 * k1
    d_k2 = d_r4 * r3
    d_r3 += d_r4 * k2
    d_reduced = np.concatenate(
        [d_r1, d_r3, d_omega[..., 4:5], d_omega[..., 5:6], d_omega[..., 6:7], d_k1, d_k2],
        axis=-1,
    )
    return d_reduced * span * squashed * (1.0 - squashed)


# --------------------------------------------------------------------- #
# ω → η surrogates                                                      #
# --------------------------------------------------------------------- #


def mlp_eta_fwd(omega: np.ndarray, sp: SurrogateParams) -> Tuple[np.ndarray, tuple]:
    """NN-surrogate forward ω ``(..., 7)`` → η ``(..., 4)`` with context.

    Runs the ratio-extend → min-max normalize → tanh-MLP → denormalize
    chain and records the per-layer tanh activations the backward pass
    needs.  The MLP weights are part of the frozen surrogate snapshot —
    only the VJP w.r.t. ω is ever required during pNN training.  Leading
    axes are arbitrary: ``(n_mc, C, 7)`` serially, ``(L, n_mc, C, 7)``
    lane-stacked — the MLP matmuls batch over them.  VJP:
    :func:`mlp_eta_bwd`.
    """
    r1 = omega[..., 0:1]
    r2 = omega[..., 1:2]
    r3 = omega[..., 2:3]
    r4 = omega[..., 3:4]
    width = omega[..., 5:6]
    length = omega[..., 6:7]
    extended = np.concatenate(
        [omega, r2 / r1, r4 / r3, width / length], axis=-1
    )
    hidden = (extended - sp.input_min) / sp.input_span
    activations: List[np.ndarray] = []
    for weight, bias in zip(sp.weights[:-1], sp.biases[:-1]):
        hidden = np.tanh(hidden @ weight + bias)
        activations.append(hidden)
    eta_norm = hidden @ sp.weights[-1] + sp.biases[-1]
    eta = eta_norm * sp.eta_span + sp.eta_min
    return eta, (omega, activations)


def mlp_eta_bwd(d_eta: np.ndarray, ctx: tuple, sp: SurrogateParams) -> np.ndarray:
    """VJP of :func:`mlp_eta_fwd`: dη ``(..., 4)`` → dω ``(..., 7)``."""
    omega, activations = ctx
    grad = (d_eta * sp.eta_span) @ sp.weights[-1].T
    for weight, hidden in zip(reversed(sp.weights[:-1]), reversed(activations)):
        grad = (grad * (1.0 - hidden * hidden)) @ weight.T
    d_ext = grad / sp.input_span

    r1 = omega[..., 0:1]
    r2 = omega[..., 1:2]
    r3 = omega[..., 2:3]
    r4 = omega[..., 3:4]
    width = omega[..., 5:6]
    length = omega[..., 6:7]
    d_omega = d_ext[..., 0:7].copy()
    d_k1 = d_ext[..., 7:8]
    d_k2 = d_ext[..., 8:9]
    d_k3 = d_ext[..., 9:10]
    d_omega[..., 1:2] += d_k1 / r1
    d_omega[..., 0:1] += -d_k1 * r2 / (r1 * r1)
    d_omega[..., 3:4] += d_k2 / r3
    d_omega[..., 2:3] += -d_k2 * r4 / (r3 * r3)
    d_omega[..., 5:6] += d_k3 / length
    d_omega[..., 6:7] += -d_k3 * width / (length * length)
    return d_omega


def analytic_eta_fwd(omega: np.ndarray, sp: SurrogateParams) -> Tuple[np.ndarray, tuple]:
    """Analytic-surrogate forward ω ``(..., 7)`` → η ``(..., 4)`` + context.

    Mirrors :func:`repro.core.kernels.analytic_eta` (first-order circuit
    analysis) followed by the per-η affine calibration
    ``η = raw · scale + shift``.  Purely elementwise over the trailing
    component axis, so leading axes (MC, lane) are arbitrary.  VJP:
    :func:`analytic_eta_bwd`.
    """
    r1 = omega[..., 0:1]
    r2 = omega[..., 1:2]
    r3 = omega[..., 2:3]
    r4 = omega[..., 3:4]
    r5 = omega[..., 4:5]
    width = omega[..., 5:6]
    length = omega[..., 6:7]
    vdd, vt = sp.vdd, sp.v_threshold

    s1 = r1 + r2
    k1 = r2 / s1
    s2 = r3 + r4
    k2 = r4 / s2
    beta = sp.k_prime * width / length

    divider_chain = r3 + r4
    load_den = r5 + divider_chain
    load1 = r5 * divider_chain / load_den
    bl = beta * load1
    overdrive = np.sqrt(vdd / bl)
    k1_eps = k1 + 1e-9
    trip = (overdrive + vt) / k1_eps

    gain1 = np.sqrt(beta * vdd * load1)
    gain2 = np.sqrt(beta * vdd * sp.second_stage_load)

    sig_hi = stable_sigmoid((vdd - trip) * 6.0)
    sig_lo = stable_sigmoid(trip * 6.0)
    visibility = sig_hi * sig_lo

    if sp.kind == "ptanh":
        amplitude = 0.5 * vdd * visibility
        centre = np.broadcast_to(np.full(1, 0.5 * vdd), trip.shape).copy()
        slope = k1 * gain1 * k2 * gain2 * 0.25
    else:
        amplitude = 0.5 * vdd * k2 * visibility
        centre = vdd - k2 * (0.5 * vdd) + 0.0 * trip
        slope = k1 * gain1 * 0.5

    amp_eps = amplitude + 1e-3
    steep_pre = slope / amp_eps
    steepness = np.clip(steep_pre, 0.5, 200.0)
    raw = np.concatenate([centre, amplitude, trip, steepness], axis=-1)
    eta = raw * sp.scale + sp.shift
    ctx = (
        omega, s1, k1, s2, k2, beta, divider_chain, load_den, load1, bl,
        overdrive, k1_eps, trip, gain1, gain2, sig_hi, sig_lo, visibility,
        slope, amp_eps, steep_pre,
    )
    return eta, ctx


def analytic_eta_bwd(d_eta: np.ndarray, ctx: tuple, sp: SurrogateParams) -> np.ndarray:
    """VJP of :func:`analytic_eta_fwd`: dη ``(..., 4)`` → dω ``(..., 7)``.

    The exact-clip on the steepness contributes zero gradient outside
    ``[0.5, 200]`` (matching ``ops.clip``, not the straight-through
    variant), and the constant part of the centre carries no gradient.
    """
    (omega, s1, k1, s2, k2, beta, divider_chain, load_den, load1, bl,
     overdrive, k1_eps, trip, gain1, gain2, sig_hi, sig_lo, visibility,
     slope, amp_eps, steep_pre) = ctx
    r1 = omega[..., 0:1]
    r2 = omega[..., 1:2]
    r3 = omega[..., 2:3]
    r4 = omega[..., 3:4]
    r5 = omega[..., 4:5]
    width = omega[..., 5:6]
    length = omega[..., 6:7]
    vdd, vt = sp.vdd, sp.v_threshold

    d_raw = d_eta * sp.scale
    d_centre = d_raw[..., 0:1]
    d_amplitude = d_raw[..., 1:2].copy()
    d_trip = d_raw[..., 2:3].copy()
    d_steep = d_raw[..., 3:4]

    clip_mask = ((steep_pre >= 0.5) & (steep_pre <= 200.0)).astype(np.float64)
    d_pre = d_steep * clip_mask
    d_slope = d_pre / amp_eps
    d_amplitude += -d_pre * slope / (amp_eps * amp_eps)

    if sp.kind == "ptanh":
        d_visibility = 0.5 * vdd * d_amplitude
        d_k1 = d_slope * gain1 * k2 * gain2 * 0.25
        d_gain1 = d_slope * k1 * k2 * gain2 * 0.25
        d_k2 = d_slope * k1 * gain1 * gain2 * 0.25
        d_gain2 = d_slope * k1 * gain1 * k2 * 0.25
        # centre is the constant VDD/2: no gradient.
    else:
        d_visibility = 0.5 * vdd * k2 * d_amplitude
        d_k2 = 0.5 * vdd * visibility * d_amplitude
        d_k2 += -(0.5 * vdd) * d_centre          # centre = VDD − k2·VDD/2
        d_k1 = d_slope * gain1 * 0.5
        d_gain1 = d_slope * k1 * 0.5
        d_gain2 = np.zeros_like(d_slope)

    d_sig_hi = d_visibility * sig_lo
    d_sig_lo = d_visibility * sig_hi
    d_trip += -6.0 * d_sig_hi * sig_hi * (1.0 - sig_hi)
    d_trip += 6.0 * d_sig_lo * sig_lo * (1.0 - sig_lo)

    d_overdrive = d_trip / k1_eps
    d_k1 += -d_trip * (overdrive + vt) / (k1_eps * k1_eps)

    d_beta = d_gain2 * (vdd * sp.second_stage_load) * 0.5 / gain2
    d_beta += d_gain1 * (vdd * load1) * 0.5 / gain1
    d_load1 = d_gain1 * (beta * vdd) * 0.5 / gain1
    d_bl = -d_overdrive * 0.5 / overdrive * vdd / (bl * bl)
    d_beta += d_bl * load1
    d_load1 += d_bl * beta

    d_num = d_load1 / load_den
    d_den = -d_load1 * load1 / load_den
    d_r5 = d_num * divider_chain + d_den
    d_chain = d_num * r5 + d_den
    d_r3 = d_chain.copy()
    d_r4 = d_chain.copy()

    d_width = d_beta * sp.k_prime / length
    d_length = -d_beta * sp.k_prime * width / (length * length)

    d_r4 += d_k2 / s2
    d_s2 = -d_k2 * r4 / (s2 * s2)
    d_r3 += d_s2
    d_r4 += d_s2

    d_r2 = d_k1 / s1
    d_s1 = -d_k1 * r2 / (s1 * s1)
    d_r1 = d_s1.copy()
    d_r2 += d_s1

    return np.concatenate(
        [d_r1, d_r2, d_r3, d_r4, d_r5, d_width, d_length], axis=-1
    )


def surrogate_eta_fwd(omega: np.ndarray, sp: SurrogateParams) -> Tuple[np.ndarray, tuple]:
    """Dispatch ω ``(..., 7)`` → η ``(..., 4)`` on the surrogate backend.

    Thin router over :func:`mlp_eta_fwd` / :func:`analytic_eta_fwd`
    (arbitrary leading axes, including a lane axis); the returned context
    pairs with :func:`surrogate_eta_bwd`.
    """
    if sp.backend == "mlp":
        return mlp_eta_fwd(omega, sp)
    if sp.backend == "analytic":
        return analytic_eta_fwd(omega, sp)
    raise ValueError(f"unknown surrogate backend {sp.backend!r}")


def surrogate_eta_bwd(d_eta: np.ndarray, ctx: tuple, sp: SurrogateParams) -> np.ndarray:
    """VJP of :func:`surrogate_eta_fwd`: dη ``(..., 4)`` → dω ``(..., 7)``."""
    if sp.backend == "mlp":
        return mlp_eta_bwd(d_eta, ctx, sp)
    return analytic_eta_bwd(d_eta, ctx, sp)


# --------------------------------------------------------------------- #
# Eqs. 2–3 — tanh-like transfer                                         #
# --------------------------------------------------------------------- #


def transfer_fwd(
    voltage: np.ndarray, eta: np.ndarray, kind: str,
    ws: Optional[Workspace] = None, tag: str = "tf",
) -> Tuple[np.ndarray, tuple]:
    """Eq. 2/3 forward: voltages ``(..., B, F)``, η ``(..., C, 4)`` → output.

    Serially the shapes are ``(n_mc, B, F)`` / ``(n_mc, C, 4)``; with a
    leading lane axis they become ``(L, n_mc, B, F)`` / ``(L, n_mc, C, 4)``.
    With one shared circuit (``C = 1``) the same η applies to every output
    column; with per-neuron circuits ``F`` must equal ``C``.  VJP:
    :func:`transfer_bwd`.

    With a :class:`Workspace` the batch-sized intermediates live in
    preallocated buffers (``out=`` ufuncs round identically to their
    allocating forms, so the fused path is bitwise equal — the house
    rule); ``ws=None`` executes the exact historical allocating sequence.
    """
    *lead, n_circuits, _ = eta.shape
    shape = (*lead, 1, 1) if n_circuits == 1 else (*lead, 1, n_circuits)
    eta1 = eta[..., 0].reshape(shape)
    eta2 = eta[..., 1].reshape(shape)
    eta3 = eta[..., 2].reshape(shape)
    eta4 = eta[..., 3].reshape(shape)
    if ws is None:
        shifted = voltage - eta3
        tanh_u = np.tanh(shifted * eta4)
        core = eta1 + eta2 * tanh_u
        out = -core if kind == "negweight" else core
    else:
        full = np.broadcast_shapes(voltage.shape, shape)
        shifted = np.subtract(voltage, eta3, out=ws.buf(f"{tag}.shift", full))
        tanh_u = np.multiply(shifted, eta4, out=ws.buf(f"{tag}.tanh", full))
        np.tanh(tanh_u, out=tanh_u)
        out = ws.buf(f"{tag}.out", full)
        if _jit.affine is not None:
            _jit.affine(eta1, eta2, tanh_u, out=out)
        else:
            np.multiply(eta2, tanh_u, out=out)
            np.add(eta1, out, out=out)
        if kind == "negweight":
            np.negative(out, out=out)
    return out, (kind, tuple(lead), n_circuits, eta2, eta4, shifted, tanh_u)


def transfer_bwd(
    grad: np.ndarray, ctx: tuple,
    ws: Optional[Workspace] = None, tag: str = "tfb",
) -> Tuple[np.ndarray, np.ndarray]:
    """VJP of :func:`transfer_fwd` → (d_voltage ``(..., B, F)``, dη ``(..., C, 4)``).

    η gradients reduce over the batch axis, and — for a shared circuit —
    over the output-column axis as well.  All reductions address trailing
    axes, so the serial and lane-stacked layouts run the same code.
    With a :class:`Workspace` the batch-sized cotangents run through
    preallocated buffers (bitwise equal — ``out=`` ufuncs, untouched
    reduction order); ``grad`` itself is never mutated.
    """
    kind, lead, n_circuits, eta2, eta4, shifted, tanh_u = ctx
    axes = (-2, -1) if n_circuits == 1 else (-2,)

    def reduce(term):
        # Unbroadcast back to η's (*lead, n_circuits): batch axis always,
        # the column axis for a shared circuit, and the MC axis when η was
        # nominal (size-1 MC axis) against a broadcasted MC voltage batch.
        r = term.sum(axis=axes, keepdims=True)
        if lead[-1] == 1 and r.shape[-3] > 1:
            r = r.sum(axis=-3, keepdims=True)
        return r.reshape(*lead, n_circuits)

    if ws is None:
        d_core = -grad if kind == "negweight" else grad
        d_tanh = d_core * eta2
        d_u = d_tanh * (1.0 - tanh_u * tanh_u)
        d_voltage = d_u * eta4
        d_eta1 = reduce(d_core)
        d_eta2 = reduce(d_core * tanh_u)
        d_eta3 = -reduce(d_voltage)
        d_eta4 = reduce(d_u * shifted)
    else:
        full = np.broadcast_shapes(grad.shape, eta2.shape)
        if kind == "negweight":
            d_core = np.negative(grad, out=ws.buf(f"{tag}.dcore", grad.shape))
        else:
            d_core = grad
        d_tanh = np.multiply(d_core, eta2, out=ws.buf(f"{tag}.dtanh", full))
        d_u = np.multiply(tanh_u, tanh_u, out=ws.buf(f"{tag}.du", full))
        np.subtract(1.0, d_u, out=d_u)
        np.multiply(d_tanh, d_u, out=d_u)
        d_voltage = np.multiply(d_u, eta4, out=ws.buf(f"{tag}.dv", full))
        prod = ws.buf(f"{tag}.prod", full)
        d_eta1 = reduce(d_core)
        d_eta2 = reduce(np.multiply(d_core, tanh_u, out=prod))
        d_eta3 = -reduce(d_voltage)
        d_eta4 = reduce(np.multiply(d_u, shifted, out=prod))
    d_eta = np.stack([d_eta1, d_eta2, d_eta3, d_eta4], axis=-1)
    return d_voltage, d_eta


# --------------------------------------------------------------------- #
# Eq. 1 — crossbar routing                                              #
# --------------------------------------------------------------------- #


def crossbar_fwd(
    x_aug: np.ndarray,
    inverted: np.ndarray,
    theta_eff: np.ndarray,
    ws: Optional[Workspace] = None,
    tag: str = "cb",
) -> Tuple[np.ndarray, tuple]:
    """Eq. 1 forward: normalized weighted sum with negative-weight routing.

    ``x_aug``/``inverted`` are ``(..., batch, in+2)`` and ``theta_eff`` is
    ``(..., N | 1, in+2, out)`` — serially ``(N, B, I)`` with θ
    ``(N | 1, I, O)``, lane-stacked ``(L, N, B, I)`` with θ
    ``(L, N | 1, I, O)``.  The routing mask follows the *sign* of the
    effective conductances and carries no gradient (exactly like the
    autograd path, where it is a constant tensor).  VJP:
    :func:`crossbar_bwd`.
    """
    ws = ws or Workspace()
    *lead, batch, _ = x_aug.shape
    n_out = theta_eff.shape[-1]
    magnitude = np.abs(theta_eff)
    route = positive_route_mask(theta_eff)
    pos_w = magnitude * route
    neg_w = magnitude * (1.0 - route)
    numerator = np.matmul(x_aug, pos_w, out=ws.buf(f"{tag}.num", (*lead, batch, n_out)))
    numerator += np.matmul(
        inverted, neg_w, out=ws.buf(f"{tag}.num2", (*lead, batch, n_out))
    )
    denom = magnitude.sum(axis=-2).reshape(*theta_eff.shape[:-2], 1, n_out) + 1e-12
    out = np.divide(numerator, denom, out=ws.buf(f"{tag}.out", (*lead, batch, n_out)))
    return out, (x_aug, inverted, theta_eff, route, pos_w, neg_w, numerator, denom)


def crossbar_bwd(
    grad: np.ndarray, ctx: tuple, ws: Optional[Workspace] = None, tag: str = "cb",
    fused: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """VJP of :func:`crossbar_fwd` → (d_x_aug, d_inverted, d_theta_eff).

    The normalization denominator receives the full quotient-rule gradient
    ``−g·num/denom²`` (reduced over the batch), which then broadcasts back
    over every crossbar row — this is the term a naive "matmul-only"
    backward would miss.  Shapes mirror :func:`crossbar_fwd` (optional
    leading lane axis); MC-axis unbroadcasting addresses axis ``-3`` so the
    serial and stacked layouts share one code path.

    ``fused=True`` routes the remaining batch- and θ-sized temporaries
    through Workspace buffers as well (``out=`` ufuncs/matmuls, same
    operand order — bitwise equal); the default keeps the historical mix
    so the numpy backend's benchmark baseline stays honest.
    """
    ws = ws or Workspace()
    x_aug, inverted, theta_eff, route, pos_w, neg_w, numerator, denom = ctx
    *lead, batch, n_in = x_aug.shape
    n_out = theta_eff.shape[-1]
    # θ broadcast over the MC axis (nominal / frozen-ε layers): unbroadcast.
    mc_broadcast = theta_eff.shape[-3] == 1 and x_aug.shape[-3] > 1

    d_num = np.divide(grad, denom, out=ws.buf(f"{tag}.dnum", (*lead, batch, n_out)))
    if fused:
        d_denom_full = np.negative(grad, out=ws.buf(f"{tag}.ddf", (*lead, batch, n_out)))
        np.multiply(d_denom_full, numerator, out=d_denom_full)
        denom_sq = np.multiply(denom, denom, out=ws.buf(f"{tag}.dsq", denom.shape))
        np.divide(d_denom_full, denom_sq, out=d_denom_full)
    else:
        d_denom_full = -grad * numerator / (denom * denom)
    d_denom = d_denom_full.sum(axis=-2, keepdims=True)        # (..., N, 1, O)
    if mc_broadcast:
        d_denom = d_denom.sum(axis=-3, keepdims=True)

    d_x_aug = np.matmul(
        d_num, pos_w.swapaxes(-1, -2), out=ws.buf(f"{tag}.dx", (*lead, batch, n_in))
    )
    d_inverted = np.matmul(
        d_num, neg_w.swapaxes(-1, -2), out=ws.buf(f"{tag}.dinv", (*lead, batch, n_in))
    )
    if fused:
        d_pos_w = np.matmul(
            x_aug.swapaxes(-1, -2), d_num,
            out=ws.buf(f"{tag}.dpos", (*lead, n_in, n_out)),
        )
        d_neg_w = np.matmul(
            inverted.swapaxes(-1, -2), d_num,
            out=ws.buf(f"{tag}.dneg", (*lead, n_in, n_out)),
        )
    else:
        d_pos_w = np.matmul(x_aug.swapaxes(-1, -2), d_num)    # (..., N, I+2, O)
        d_neg_w = np.matmul(inverted.swapaxes(-1, -2), d_num)
    if mc_broadcast:
        d_pos_w = d_pos_w.sum(axis=-3, keepdims=True)
        d_neg_w = d_neg_w.sum(axis=-3, keepdims=True)
    if fused:
        route_inv = np.subtract(1.0, route, out=ws.buf(f"{tag}.rinv", route.shape))
        np.multiply(d_neg_w, route_inv, out=d_neg_w)
        d_magnitude = np.add(
            d_denom, d_neg_w, out=ws.buf(f"{tag}.dmag", theta_eff.shape)
        )
        np.multiply(d_pos_w, route, out=d_pos_w)
        np.add(d_magnitude, d_pos_w, out=d_magnitude)
        sign = np.sign(theta_eff, out=ws.buf(f"{tag}.sign", theta_eff.shape))
        d_theta_eff = np.multiply(d_magnitude, sign, out=d_magnitude)
    else:
        d_magnitude = d_denom + d_neg_w * (1.0 - route) + d_pos_w * route
        d_theta_eff = d_magnitude * np.sign(theta_eff)
    return d_x_aug, d_inverted, d_theta_eff


# --------------------------------------------------------------------- #
# losses                                                                #
# --------------------------------------------------------------------- #


def margin_loss_fwd(
    voltages: np.ndarray, targets: np.ndarray, margin: float = 0.3,
    ws: Optional[Workspace] = None, tag: str = "loss",
):
    """Mean squared hinge on voltage margins (numpy mirror of MarginLoss).

    ``voltages`` is ``(n_mc, batch, classes)`` serially — returning a
    ``float`` — or lane-stacked ``(L, n_mc, batch, classes)``, returning a
    per-lane ``(L,)`` array.  Each lane's loss is the mean over its own
    (contiguous) ``n_mc·batch`` per-sample hinge sums, so lane ``l``'s
    value is bitwise equal to the serial call on ``voltages[l]``.  VJP:
    :func:`margin_loss_bwd`.  A :class:`Workspace` reroutes the
    batch-sized intermediates through preallocated buffers, bitwise equal
    to the allocating path.
    """
    if voltages.ndim not in (3, 4):
        raise ValueError("expected (n_mc, batch, classes) or (L, n_mc, batch, classes) voltages")
    *lead, batch, _ = voltages.shape
    targets = np.asarray(targets, dtype=np.int64)
    if targets.shape != (batch,):
        raise ValueError("targets must be one class index per batch row")
    target_grid = np.broadcast_to(targets, (*lead, batch))
    expanded = target_grid[..., None]
    true_voltage = np.take_along_axis(voltages, expanded, axis=-1)     # (..., B, 1)
    if ws is None:
        pre = margin - (true_voltage - voltages)                       # (..., B, C)
        shortfall = np.maximum(pre, 0.0)
        mask = np.ones(voltages.shape)
        np.put_along_axis(mask, expanded, 0.0, axis=-1)
        per_sample = (shortfall * shortfall * mask).sum(axis=-1)
    else:
        pre = np.subtract(true_voltage, voltages, out=ws.buf(f"{tag}.pre", voltages.shape))
        np.subtract(margin, pre, out=pre)
        shortfall = np.maximum(pre, 0.0, out=ws.buf(f"{tag}.shortfall", voltages.shape))
        mask = ws.buf(f"{tag}.mask", voltages.shape)
        mask.fill(1.0)
        np.put_along_axis(mask, expanded, 0.0, axis=-1)
        prod = np.multiply(shortfall, shortfall, out=ws.buf(f"{tag}.prod", voltages.shape))
        np.multiply(prod, mask, out=prod)
        per_sample = prod.sum(axis=-1)
    if voltages.ndim == 4:
        loss = per_sample.reshape(per_sample.shape[0], -1).mean(axis=1)
    else:
        loss = float(per_sample.mean())
    return loss, (pre, shortfall, mask, expanded, voltages.shape)


def margin_loss_bwd(
    ctx: tuple, ws: Optional[Workspace] = None, tag: str = "loss"
) -> np.ndarray:
    """VJP of :func:`margin_loss_fwd` → d_voltages (same shape as input).

    The ``1/(n_mc·batch)`` mean scale is per lane (the lane axis, when
    present, is excluded — each lane carries its own loss).  The fused
    (Workspace) path scatters ``gathered + d_true`` straight into the
    cotangent buffer instead of adding a zero-filled scatter array: every
    non-target entry of ``d_pre`` is ≥ +0.0, so skipping the ``+ 0.0`` is
    bitwise identical.
    """
    pre, shortfall, mask, expanded, shape = ctx
    scale = 1.0 / (shape[-3] * shape[-2])
    if ws is None:
        d_shortfall = 2.0 * shortfall * mask * scale
        d_pre = d_shortfall * (pre > 0.0)      # strict ReLU mask, as autograd
        d_voltages = d_pre.copy()
        d_true = -d_pre.sum(axis=-1, keepdims=True)
        scattered = np.zeros(shape)
        np.put_along_axis(scattered, expanded, d_true, axis=-1)
        d_voltages += scattered
        return d_voltages
    d_pre = np.multiply(2.0, shortfall, out=ws.buf(f"{tag}.dpre", shape))
    np.multiply(d_pre, mask, out=d_pre)
    np.multiply(d_pre, scale, out=d_pre)
    relu = np.greater(pre, 0.0, out=ws.buf(f"{tag}.relu", shape))
    np.multiply(d_pre, relu, out=d_pre)
    d_true = -d_pre.sum(axis=-1, keepdims=True)
    gathered = np.take_along_axis(d_pre, expanded, axis=-1)
    np.put_along_axis(d_pre, expanded, gathered + d_true, axis=-1)
    return d_pre


def ce_loss_fwd(
    voltages: np.ndarray, targets: np.ndarray, temperature: float = 0.1,
    ws: Optional[Workspace] = None, tag: str = "loss",
):
    """Softmax cross-entropy on scaled voltages (mirror of VoltageCrossEntropy).

    Accepts ``(n_mc, batch, classes)`` (returns ``float``) or lane-stacked
    ``(L, n_mc, batch, classes)`` (returns ``(L,)`` per-lane losses, each
    bitwise equal to the serial call on that lane's slice).  VJP:
    :func:`ce_loss_bwd`.  A :class:`Workspace` reroutes the batch-sized
    intermediates through preallocated buffers, bitwise equal to the
    allocating path.
    """
    if voltages.ndim not in (3, 4):
        raise ValueError("expected (n_mc, batch, classes) or (L, n_mc, batch, classes) voltages")
    *lead, batch, _ = voltages.shape
    targets = np.broadcast_to(np.asarray(targets, dtype=np.int64), (*lead, batch))
    if ws is None:
        logits = voltages * (1.0 / temperature)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        log_probs = shifted - log_norm
    else:
        logits = np.multiply(
            voltages, 1.0 / temperature, out=ws.buf(f"{tag}.logits", voltages.shape)
        )
        shifted = np.subtract(logits, logits.max(axis=-1, keepdims=True), out=logits)
        expd = np.exp(shifted, out=ws.buf(f"{tag}.exp", voltages.shape))
        log_norm = expd.sum(axis=-1, keepdims=True)
        np.log(log_norm, out=log_norm)
        log_probs = np.subtract(shifted, log_norm, out=shifted)
    expanded = targets[..., None]
    gathered = np.take_along_axis(log_probs, expanded, axis=-1)
    if voltages.ndim == 4:
        loss = -gathered.reshape(gathered.shape[0], -1).mean(axis=1)
    else:
        loss = float(-gathered.mean())
    return loss, (log_probs, expanded, temperature, voltages.shape)


def ce_loss_bwd(
    ctx: tuple, ws: Optional[Workspace] = None, tag: str = "loss"
) -> np.ndarray:
    """VJP of :func:`ce_loss_fwd` → d_voltages (same shape as input).

    As with the margin loss, the mean scale ``1/(n_mc·batch)`` excludes
    the lane axis when one is present.  The fused path subtracts the
    one-hot in place via gather/scatter: off-target entries keep
    ``softmax`` unchanged, which matches ``softmax − 0.0`` bitwise because
    softmax is strictly positive (or +0.0 after underflow).
    """
    log_probs, expanded, temperature, shape = ctx
    if ws is None:
        softmax = np.exp(log_probs)
        one_hot = np.zeros(shape)
        np.put_along_axis(one_hot, expanded, 1.0, axis=-1)
        d_logits = (softmax - one_hot) / (shape[-3] * shape[-2])
        return d_logits * (1.0 / temperature)
    softmax = np.exp(log_probs, out=ws.buf(f"{tag}.softmax", shape))
    gathered = np.take_along_axis(softmax, expanded, axis=-1)
    np.put_along_axis(softmax, expanded, gathered - 1.0, axis=-1)
    np.divide(softmax, shape[-3] * shape[-2], out=softmax)
    np.multiply(softmax, 1.0 / temperature, out=softmax)
    return softmax


#: Loss registry: name → (forward, backward) pair used by the engine.
LOSS_KERNELS = {
    "margin": (margin_loss_fwd, margin_loss_bwd),
    "ce": (ce_loss_fwd, ce_loss_bwd),
}


# --------------------------------------------------------------------- #
# the training engine                                                   #
# --------------------------------------------------------------------- #


@dataclass
class LayerMeta:
    """Static structure of one printed layer inside the engine."""

    in_features: int
    out_features: int
    n_act: int
    n_neg: int
    apply_activation: bool
    g_min: float
    g_max: float

    @property
    def theta_shape(self) -> Tuple[int, int]:
        return (self.in_features + 2, self.out_features)


@dataclass
class _LayerTape:
    """Per-layer saved intermediates of one recorded forward pass."""

    x_aug: np.ndarray
    eps_theta: Optional[EpsilonLike]
    eps_act: Optional[EpsilonLike]
    eps_neg: Optional[EpsilonLike]
    crossbar: tuple = ()
    neg_transfer: tuple = ()
    act_transfer: Optional[tuple] = None
    act_chain: Optional[tuple] = None
    neg_chain: Optional[tuple] = None


@dataclass
class LayerGrads:
    """Gradients of one layer's raw parameters (``None`` where not computed)."""

    theta: Optional[np.ndarray] = None
    w_act: Optional[np.ndarray] = None
    w_neg: Optional[np.ndarray] = None


class KernelNetwork:
    """Autograd-free forward/backward executor over raw pNN parameter arrays.

    Freezes everything that does not change during training — surrogate
    snapshots, design-space bounds, conductance limits, layer topology —
    and exposes :meth:`forward` / :meth:`backward` over a flat list of raw
    parameter arrays ``[θ, 𝔴_act, 𝔴_neg]`` per layer.  One instance owns a
    :class:`Workspace`, so repeated epochs with constant shapes reuse the
    same large buffers.
    """

    def __init__(
        self,
        layers: Sequence[LayerMeta],
        act_surrogate: SurrogateParams,
        neg_surrogate: SurrogateParams,
        space,
        layer_sizes: Sequence[int],
        per_neuron_activation: bool = False,
        backend: str = "numpy",
    ):
        # Validated locally (not via the registry) to keep this module a
        # leaf: repro.core.backends imports grad_kernels, not vice versa.
        if backend not in ("numpy", "fused"):
            raise ValueError(
                f"unknown kernel backend {backend!r}; expected 'numpy' or 'fused'"
            )
        self.layers = list(layers)
        self.act_surrogate = act_surrogate
        self.neg_surrogate = neg_surrogate
        self.space = space
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.per_neuron_activation = bool(per_neuron_activation)
        self.backend = str(backend)
        self.workspace = Workspace()
        # The fused tier threads this workspace into every kernel that
        # accepts one; None leaves each kernel on its historical path.
        self._fws = self.workspace if self.backend == "fused" else None

    # ------------------------------------------------------------------ #
    # construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_pnn(cls, pnn, backend: str = "numpy") -> "KernelNetwork":
        """Freeze a live network's static structure into an engine.

        ``backend`` selects the kernel execution tier: ``"numpy"`` runs the
        historical allocating kernels, ``"fused"`` threads the engine's
        Workspace through every kernel (bitwise-identical results, fewer
        temporaries).
        """
        metas = [
            LayerMeta(
                in_features=layer.in_features,
                out_features=layer.out_features,
                n_act=layer.activation.n_circuits,
                n_neg=layer.negation.n_circuits,
                apply_activation=layer.apply_activation,
                g_min=layer.conductance.g_min,
                g_max=layer.conductance.g_max,
            )
            for layer in pnn.layers
        ]
        return cls(
            metas,
            act_surrogate=snapshot_surrogate(pnn.layers[0].activation.surrogate),
            neg_surrogate=snapshot_surrogate(pnn.layers[0].negation.surrogate),
            space=pnn.space,
            layer_sizes=pnn.layer_sizes,
            per_neuron_activation=pnn.per_neuron_activation,
            backend=backend,
        )

    @staticmethod
    def extract_arrays(pnn) -> List[List[np.ndarray]]:
        """Copy a network's raw parameters as ``[[θ, 𝔴_act, 𝔴_neg], ...]``."""
        return [
            [
                layer.theta.data.copy(),
                layer.activation.w_raw.data.copy(),
                layer.negation.w_raw.data.copy(),
            ]
            for layer in pnn.layers
        ]

    @staticmethod
    def state_names(index: int) -> Tuple[str, str, str]:
        """The ``state_dict`` keys of layer ``index``'s three parameters."""
        return (
            f"layer{index}.theta",
            f"layer{index}.activation.w_raw",
            f"layer{index}.negation.w_raw",
        )

    # ------------------------------------------------------------------ #
    # forward                                                            #
    # ------------------------------------------------------------------ #

    def _eta_chain(
        self,
        w_raw: np.ndarray,
        epsilon: Optional[np.ndarray],
        sp: SurrogateParams,
        record: bool,
    ):
        """𝔴 → printable ω → (× ε) → η, optionally keeping the VJP context."""
        omega_printable, ctx_re = reassemble_omega_fwd(w_raw, self.space)
        omega = omega_printable[None]
        if epsilon is not None:
            omega = apply_nonideality(omega, epsilon)
        eta, ctx_sp = surrogate_eta_fwd(omega, sp)
        ctx = (ctx_re, omega, epsilon, ctx_sp) if record else None
        return eta, ctx

    def _eta_chain_bwd(self, d_eta: np.ndarray, ctx, sp: SurrogateParams) -> np.ndarray:
        """VJP of :meth:`_eta_chain`: dη → d𝔴 (chain rule through ε)."""
        ctx_re, _omega, epsilon, ctx_sp = ctx
        d_omega_scaled = surrogate_eta_bwd(d_eta, ctx_sp, sp)
        if epsilon is not None:
            d_printable = apply_nonideality_bwd(d_omega_scaled, epsilon, axis=0)
        else:
            d_printable = d_omega_scaled[0]
        return reassemble_omega_bwd(d_printable, ctx_re)

    def forward(
        self,
        arrays: Sequence[Sequence[np.ndarray]],
        x: np.ndarray,
        epsilons: Epsilons = None,
        record: bool = False,
        tag: str = "train",
    ) -> Tuple[np.ndarray, Optional[List[_LayerTape]]]:
        """Run the pNN forward over raw arrays; optionally record the tape.

        ``epsilons`` supplies one ``(ε_θ, ε_act, ε_neg)`` triple per layer
        (pre-drawn, leading axis ``n_mc``) or ``None`` for the nominal
        pass.  ``tag`` namespaces the workspace buffers so alternating
        train/validation batches do not thrash reallocations.
        """
        data = np.asarray(x, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected a (batch, features) input")
        if data.shape[1] != self.layer_sizes[0]:
            raise ValueError(
                f"input has {data.shape[1]} features, network expects {self.layer_sizes[0]}"
            )
        if epsilons is not None and len(epsilons) != len(self.layers):
            raise ValueError("need one epsilon triple per layer")
        n_mc = 1
        if epsilons is not None and epsilons[0][0] is not None:
            n_mc = int(epsilons[0][0].shape[0])

        ws = self.workspace
        batch = data.shape[0]
        hidden = np.broadcast_to(data[None], (n_mc, batch, data.shape[1]))
        tape: Optional[List[_LayerTape]] = [] if record else None

        for index, (meta, params) in enumerate(zip(self.layers, arrays)):
            theta_raw, w_act, w_neg = params
            eps_theta = eps_act = eps_neg = None
            if epsilons is not None:
                eps_theta, eps_act, eps_neg = epsilons[index]

            n_in = hidden.shape[-1]
            x_aug = ws.buf(f"{tag}.l{index}.x_aug", (n_mc, batch, n_in + 2))
            x_aug[..., :n_in] = hidden
            x_aug[..., n_in] = BIAS_VOLTAGE
            x_aug[..., n_in + 1] = 0.0

            printable = project_printable(theta_raw, meta.g_min, meta.g_max)
            theta_eff = printable[None]
            if eps_theta is not None:
                theta_out = None
                if self._fws is not None:
                    theta_out = ws.buf(
                        f"{tag}.l{index}.theta",
                        np.broadcast_shapes(theta_eff.shape, eps_theta.shape),
                    )
                theta_eff = apply_nonideality(theta_eff, eps_theta, out=theta_out)

            eta_neg, neg_chain = self._eta_chain(
                w_neg, eps_neg, self.neg_surrogate, record
            )
            inverted, ctx_neg_transfer = transfer_fwd(
                x_aug, eta_neg, "negweight", ws=self._fws, tag=f"{tag}.l{index}.neg"
            )
            v_z, ctx_crossbar = crossbar_fwd(
                x_aug, inverted, theta_eff, ws=ws, tag=f"{tag}.l{index}"
            )
            if meta.apply_activation:
                eta_act, act_chain = self._eta_chain(
                    w_act, eps_act, self.act_surrogate, record
                )
                hidden, ctx_act_transfer = transfer_fwd(
                    v_z, eta_act, "ptanh", ws=self._fws, tag=f"{tag}.l{index}.act"
                )
            else:
                act_chain = ctx_act_transfer = None
                hidden = v_z

            if record:
                tape.append(
                    _LayerTape(
                        x_aug=x_aug,
                        eps_theta=eps_theta,
                        eps_act=eps_act,
                        eps_neg=eps_neg,
                        crossbar=ctx_crossbar,
                        neg_transfer=ctx_neg_transfer,
                        act_transfer=ctx_act_transfer,
                        act_chain=act_chain,
                        neg_chain=neg_chain,
                    )
                )
        return hidden, tape

    # ------------------------------------------------------------------ #
    # backward                                                           #
    # ------------------------------------------------------------------ #

    def backward(
        self,
        tape: List[_LayerTape],
        d_out: np.ndarray,
        need_omega_grads: bool = True,
    ) -> List[LayerGrads]:
        """VJP of :meth:`forward` from d(output voltages) to raw parameters.

        Returns one :class:`LayerGrads` per layer; 𝔴 gradients are ``None``
        when ``need_omega_grads`` is off (the non-learnable baselines never
        pay for them) or when a layer applies no activation circuit.
        """
        grads = [LayerGrads() for _ in self.layers]
        grad = d_out
        for index in range(len(self.layers) - 1, -1, -1):
            meta, ctx = self.layers[index], tape[index]
            if meta.apply_activation:
                grad, d_eta_act = transfer_bwd(
                    grad, ctx.act_transfer, ws=self._fws, tag=f"bwd.l{index}.act"
                )
                if need_omega_grads:
                    grads[index].w_act = self._eta_chain_bwd(
                        d_eta_act, ctx.act_chain, self.act_surrogate
                    )
            d_x_aug, d_inverted, d_theta_eff = crossbar_bwd(
                grad, ctx.crossbar, ws=self.workspace, tag=f"bwd.l{index}",
                fused=self._fws is not None,
            )
            if ctx.eps_theta is not None:
                d_printable = apply_nonideality_bwd(d_theta_eff, ctx.eps_theta, axis=0)
            else:
                d_printable = d_theta_eff[0]
            grads[index].theta = d_printable          # straight-through projection

            d_x_aug2, d_eta_neg = transfer_bwd(
                d_inverted, ctx.neg_transfer, ws=self._fws, tag=f"bwd.l{index}.neg"
            )
            d_x_aug += d_x_aug2
            if need_omega_grads:
                grads[index].w_neg = self._eta_chain_bwd(
                    d_eta_neg, ctx.neg_chain, self.neg_surrogate
                )
            grad = d_x_aug[..., : meta.in_features]
        return grads

    # ------------------------------------------------------------------ #
    # loss + gradient in one call                                        #
    # ------------------------------------------------------------------ #

    def loss_and_grads(
        self,
        arrays: Sequence[Sequence[np.ndarray]],
        x: np.ndarray,
        targets: np.ndarray,
        loss: str = "margin",
        epsilons: Epsilons = None,
        need_omega_grads: bool = True,
    ) -> Tuple[float, List[LayerGrads]]:
        """One full training step's math: MC loss and raw-parameter grads."""
        loss_fwd, loss_bwd = LOSS_KERNELS[loss]
        voltages, tape = self.forward(
            arrays, x, epsilons=epsilons, record=True, tag="train"
        )
        value, ctx = loss_fwd(voltages, targets, ws=self._fws, tag="train.loss")
        d_voltages = loss_bwd(ctx, ws=self._fws, tag="train.loss")
        return value, self.backward(tape, d_voltages, need_omega_grads=need_omega_grads)

    def loss_value(
        self,
        arrays: Sequence[Sequence[np.ndarray]],
        x: np.ndarray,
        targets: np.ndarray,
        loss: str = "margin",
        epsilons: Epsilons = None,
        tag: str = "val",
    ) -> float:
        """Forward-only loss (validation): no tape, no gradients."""
        loss_fwd, _ = LOSS_KERNELS[loss]
        voltages, _ = self.forward(arrays, x, epsilons=epsilons, record=False, tag=tag)
        value, _ = loss_fwd(voltages, targets, ws=self._fws, tag=f"{tag}.loss")
        return value

    # ------------------------------------------------------------------ #
    # snapshots                                                          #
    # ------------------------------------------------------------------ #

    def snapshot(self, arrays: Sequence[Sequence[np.ndarray]]) -> PNNParams:
        """Freeze the current raw arrays into a :class:`PNNParams` design.

        Equivalent to :func:`repro.core.params.snapshot_params` on a module
        holding the same raw values, but without touching autograd.
        """
        layers = []
        for meta, (theta_raw, w_act, w_neg) in zip(self.layers, arrays):
            act_omega, _ = reassemble_omega_fwd(w_act, self.space)
            neg_omega, _ = reassemble_omega_fwd(w_neg, self.space)
            layers.append(
                LayerParams(
                    theta=project_printable(theta_raw, meta.g_min, meta.g_max),
                    act_omega=act_omega,
                    neg_omega=neg_omega,
                    apply_activation=meta.apply_activation,
                )
            )
        return PNNParams(
            layer_sizes=self.layer_sizes,
            per_neuron_activation=self.per_neuron_activation,
            activation_on_output=self.layers[-1].apply_activation,
            layers=tuple(layers),
            act_surrogate=self.act_surrogate,
            neg_surrogate=self.neg_surrogate,
        )
