"""Loss functions for pNN training.

The printed-NN line of work trains on output *voltages* rather than logits;
the margin loss of Weller et al. [1] pushes the correct class's voltage at
least a margin above every other class's voltage.  Softmax cross-entropy on
the voltages is provided as an alternative (ablated in
``benchmarks/bench_ablation_loss.py``).

Both losses accept outputs with a leading Monte-Carlo axis
``(n_mc, batch, classes)`` and average over it, which directly implements
the Monte-Carlo estimate of the expected loss in Sec. III-C.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class MarginLoss(Module):
    """Mean squared hinge on voltage margins.

    For a sample with true class ``c``:

        L = Σ_{j ≠ c} max(0, m − (V_c − V_j))²

    averaged over batch and Monte-Carlo samples.
    """

    def __init__(self, margin: float = 0.3):
        super().__init__()
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.margin = margin

    def forward(self, voltages: Tensor, targets: np.ndarray) -> Tensor:
        if voltages.ndim != 3:
            raise ValueError("expected (n_mc, batch, classes) voltages")
        n_mc, batch, n_classes = voltages.shape
        targets = np.asarray(targets, dtype=np.int64)
        if targets.shape != (batch,):
            raise ValueError("targets must be one class index per batch row")

        target_grid = np.broadcast_to(targets, (n_mc, batch))
        true_voltage = F.take_along_last_axis(voltages, target_grid)   # (N, B)
        true_voltage = true_voltage.reshape(n_mc, batch, 1)
        shortfall = F.relu(self.margin - (true_voltage - voltages))    # (N, B, C)
        # The true class trivially contributes margin² per row; mask it out.
        mask = np.ones((n_mc, batch, n_classes))
        np.put_along_axis(mask, target_grid[..., None], 0.0, axis=-1)
        penalty = shortfall * shortfall * Tensor(mask)
        return penalty.sum(axis=-1).mean()


class VoltageCrossEntropy(Module):
    """Softmax cross-entropy on output voltages (scaled for contrast)."""

    def __init__(self, temperature: float = 0.1):
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def forward(self, voltages: Tensor, targets: np.ndarray) -> Tensor:
        if voltages.ndim != 3:
            raise ValueError("expected (n_mc, batch, classes) voltages")
        n_mc, batch, _ = voltages.shape
        targets = np.broadcast_to(np.asarray(targets, dtype=np.int64), (n_mc, batch))
        return F.cross_entropy(voltages * (1.0 / self.temperature), targets)


def make_loss(name: str) -> Callable:
    """Factory: ``"margin"`` (default in the experiments) or ``"ce"``."""
    if name == "margin":
        return MarginLoss()
    if name == "ce":
        return VoltageCrossEntropy()
    raise ValueError(f"unknown loss {name!r}; expected 'margin' or 'ce'")
