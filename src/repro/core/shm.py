"""Zero-copy shared-memory data plane for shard-parallel MC evaluation.

Sharded Monte-Carlo evaluation (:func:`repro.core.evaluation.
evaluate_mc_sharded`) splits ``n_test`` fabrications across worker
processes.  Naively each shard task would pickle the test set, the frozen
:class:`~repro.core.params.PNNParams` design and its slice of the
pre-drawn ε stream through the pool pipe — megabytes per task, paid again
for every shard.  This module publishes those payloads **once** into
``multiprocessing.shared_memory`` segments and hands workers only tiny
picklable handles (segment name + array offsets); workers map the
segments back as read-only numpy views without copying a byte, under both
``fork`` and ``spawn`` start methods.

Accounting contract
-------------------
Segments are owned by the publishing :class:`SharedArrayStore`: `close()`
(or the context manager, the ``__del__`` fallback, or the ``atexit``
safety net) unlinks every published segment, so a completed run leaks
nothing.  Telemetry counters audit the lifecycle — ``shm.publish`` /
``shm.publish_bytes`` on publish, ``shm.map`` on every worker-side map,
``shm.unlink`` on unlink; a run is leak-free exactly when the publish and
unlink counts balance (the CI sharding smoke gates on it).

Python 3.11 note: attaching to an existing segment *registers* it with
the attaching process's ``resource_tracker`` (there is no ``track=False``
until 3.13), which would make worker exit unlink segments the parent
still owns.  :func:`_attach` therefore unregisters immediately after
attaching; only the creating store ever unlinks.
"""

from __future__ import annotations

import atexit
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.core.params import LayerParams, PNNParams, SurrogateParams
from repro.core.variation import Perturbation

#: Byte alignment of every array inside a segment (cache-line friendly).
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside a shared segment."""

    offset: int
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedBlock:
    """Picklable handle to one published segment full of arrays.

    Crossing a pool pipe costs a few hundred bytes regardless of how many
    megabytes the segment holds — that is the whole point.
    """

    segment: str
    specs: Tuple[ArraySpec, ...]
    nbytes: int
    label: str


_ATTACH_LOCK = threading.Lock()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    See the module docstring: on Python < 3.13 attaching registers the
    segment with this process's resource tracker, which would unlink it
    when this process exits even though the publishing store still owns
    it.  Worse, a *forked* worker shares the parent's tracker, so
    register-then-unregister would erase the creator's entry.  Suppress
    the registration instead: only the creating store's entry ever
    exists, and only its ``unlink`` retires it.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    return segment


class MappedBlock:
    """Read-only zero-copy views of a published block, kept alive together.

    ``arrays`` are numpy views directly into the shared segment — no copy
    is made.  :meth:`close` releases the mapping and **invalidates** every
    view taken from it (standard mmap semantics — numpy does not keep a
    buffer export open on the segment, so nothing stops the unmap); treat
    it like closing a file: copy out anything needed first.
    """

    __slots__ = ("arrays", "_segment")

    def __init__(self, arrays: Tuple[np.ndarray, ...],
                 segment: shared_memory.SharedMemory):
        self.arrays = arrays
        self._segment = segment

    def close(self) -> None:
        self.arrays = ()
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:
            # A live buffer export blocked the unmap (possible on some
            # platforms); refcounting releases the mmap when it drops.
            pass

    def __enter__(self) -> "MappedBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def map_block(block: SharedBlock) -> MappedBlock:
    """Map a published block into this process as read-only views."""
    segment = _attach(block.segment)
    arrays = []
    for spec in block.specs:
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                          buffer=segment.buf, offset=spec.offset)
        view.setflags(write=False)
        arrays.append(view)
    tel = telemetry.get()
    if tel.enabled:
        tel.count("shm.map")
    return MappedBlock(tuple(arrays), segment)


#: Stores not yet closed — the atexit net unlinks whatever is left.
_LIVE_STORES: "weakref.WeakSet[SharedArrayStore]" = weakref.WeakSet()


@atexit.register
def _close_leftover_stores() -> None:  # pragma: no cover - exit path
    for store in list(_LIVE_STORES):
        store.close()


class SharedArrayStore:
    """Publisher and owner of shared-memory array segments.

    One store per scope of work (one sharded evaluation, or one assembly
    pass reusing a dataset across cells via ``cache_key``).  The store is
    the single owner of every segment it publishes: :meth:`close` unlinks
    them all, and the module's ``atexit`` hook closes stores that were
    never closed explicitly, so no segment outlives the process.
    """

    def __init__(self):
        self._segments: "dict[str, shared_memory.SharedMemory]" = {}
        self._cache: "dict[Hashable, SharedBlock]" = {}
        self._published = 0
        self._unlinked = 0
        self._closed = False
        _LIVE_STORES.add(self)

    # ----------------------------------------------------------------- #
    # publishing                                                        #
    # ----------------------------------------------------------------- #

    def publish(self, arrays: Sequence[np.ndarray], label: str = "arrays",
                cache_key: Optional[Hashable] = None) -> SharedBlock:
        """Copy ``arrays`` into one fresh segment and return its handle.

        ``cache_key`` makes the publish idempotent per store: a repeated
        key returns the already-published block without touching shared
        memory (used to publish a dataset once across many evaluations).
        """
        if self._closed:
            raise RuntimeError("SharedArrayStore is closed")
        if cache_key is not None:
            hit = self._cache.get(cache_key)
            if hit is not None:
                return hit
        prepared = [np.asarray(array) for array in arrays]
        specs: List[ArraySpec] = []
        offset = 0
        for array in prepared:
            offset = -(-offset // _ALIGN) * _ALIGN
            specs.append(ArraySpec(offset, tuple(array.shape), array.dtype.str))
            offset += array.nbytes
        segment = shared_memory.SharedMemory(create=True, size=max(int(offset), 1))
        for array, spec in zip(prepared, specs):
            view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                              buffer=segment.buf, offset=spec.offset)
            view[...] = array
            del view
        block = SharedBlock(segment.name, tuple(specs), int(offset), label)
        self._segments[segment.name] = segment
        self._published += 1
        tel = telemetry.get()
        if tel.enabled:
            tel.count("shm.publish")
            tel.count("shm.publish_bytes", n=int(offset))
        if cache_key is not None:
            self._cache[cache_key] = block
        return block

    def unpublish(self, block: SharedBlock) -> None:
        """Unlink one published block early (before :meth:`close`)."""
        segment = self._segments.pop(block.segment, None)
        if segment is None:
            return
        self._cache = {key: value for key, value in self._cache.items()
                       if value.segment != block.segment}
        self._unlink(segment)

    # ----------------------------------------------------------------- #
    # accounting                                                        #
    # ----------------------------------------------------------------- #

    @property
    def publish_count(self) -> int:
        return self._published

    @property
    def unlink_count(self) -> int:
        return self._unlinked

    @property
    def live_segments(self) -> int:
        return len(self._segments)

    # ----------------------------------------------------------------- #
    # lifecycle                                                         #
    # ----------------------------------------------------------------- #

    def _unlink(self, segment: shared_memory.SharedMemory) -> None:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - unlinked externally
            pass
        self._unlinked += 1
        tel = telemetry.get()
        if tel.enabled:
            tel.count("shm.unlink")

    def close(self) -> None:
        """Unlink every remaining segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for name in list(self._segments):
            self._unlink(self._segments.pop(name))
        self._cache.clear()
        _LIVE_STORES.discard(self)

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC fallback
        try:
            self.close()
        except Exception:
            pass


# --------------------------------------------------------------------- #
# evaluation payloads: PNNParams, datasets and ε streams                #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SurrogateMeta:
    """Non-array fields of one :class:`SurrogateParams` snapshot."""

    kind: str
    backend: str
    n_mlp_layers: int = 0
    k_prime: float = 0.0
    v_threshold: float = 0.0
    vdd: float = 0.0
    second_stage_load: float = 0.0


@dataclass(frozen=True)
class ParamsHandle:
    """Handle + structural metadata rebuilding a :class:`PNNParams`."""

    block: SharedBlock
    layer_sizes: Tuple[int, ...]
    per_neuron_activation: bool
    activation_on_output: bool
    apply_activation: Tuple[bool, ...]
    act_meta: SurrogateMeta
    neg_meta: SurrogateMeta


@dataclass(frozen=True)
class EpsilonsHandle:
    """Handle + per-slot structure of a pre-drawn ε stream.

    ``slots`` records, for each flattened (layer × role) slot, whether the
    draw was a bare ndarray, an override-free :class:`Perturbation`, or an
    override-carrying one — so the worker rebuilds exactly the structure
    the serial loop consumes.
    """

    block: SharedBlock
    slots: Tuple[str, ...]


@dataclass(frozen=True)
class EvalPayload:
    """Everything one shard worker needs, as picklable handles."""

    params: ParamsHandle
    dataset: SharedBlock
    epsilons: EpsilonsHandle


def _surrogate_arrays(surrogate: SurrogateParams) -> List[np.ndarray]:
    if surrogate.backend == "mlp":
        return [*surrogate.weights, *surrogate.biases, surrogate.input_min,
                surrogate.input_span, surrogate.eta_min, surrogate.eta_span]
    return [surrogate.scale, surrogate.shift]


def _surrogate_meta(surrogate: SurrogateParams) -> SurrogateMeta:
    if surrogate.backend == "mlp":
        return SurrogateMeta(surrogate.kind, "mlp",
                             n_mlp_layers=len(surrogate.weights))
    return SurrogateMeta(
        surrogate.kind, "analytic",
        k_prime=surrogate.k_prime, v_threshold=surrogate.v_threshold,
        vdd=surrogate.vdd, second_stage_load=surrogate.second_stage_load,
    )


def _rebuild_surrogate(meta: SurrogateMeta, cursor) -> SurrogateParams:
    if meta.backend == "mlp":
        weights = tuple(next(cursor) for _ in range(meta.n_mlp_layers))
        biases = tuple(next(cursor) for _ in range(meta.n_mlp_layers))
        return SurrogateParams(
            kind=meta.kind, backend="mlp", weights=weights, biases=biases,
            input_min=next(cursor), input_span=next(cursor),
            eta_min=next(cursor), eta_span=next(cursor),
        )
    return SurrogateParams(
        kind=meta.kind, backend="analytic",
        scale=next(cursor), shift=next(cursor),
        k_prime=meta.k_prime, v_threshold=meta.v_threshold,
        vdd=meta.vdd, second_stage_load=meta.second_stage_load,
    )


def publish_params(store: SharedArrayStore, params: PNNParams,
                   cache_key: Optional[Hashable] = None) -> ParamsHandle:
    """Publish a frozen design snapshot (arrays only; metadata rides along)."""
    arrays: List[np.ndarray] = []
    for layer in params.layers:
        arrays.extend((layer.theta, layer.act_omega, layer.neg_omega))
    arrays.extend(_surrogate_arrays(params.act_surrogate))
    arrays.extend(_surrogate_arrays(params.neg_surrogate))
    block = store.publish(arrays, label="params", cache_key=cache_key)
    return ParamsHandle(
        block=block,
        layer_sizes=params.layer_sizes,
        per_neuron_activation=params.per_neuron_activation,
        activation_on_output=params.activation_on_output,
        apply_activation=tuple(layer.apply_activation for layer in params.layers),
        act_meta=_surrogate_meta(params.act_surrogate),
        neg_meta=_surrogate_meta(params.neg_surrogate),
    )


def map_params(handle: ParamsHandle) -> Tuple[PNNParams, MappedBlock]:
    """Rebuild the :class:`PNNParams` over zero-copy views.

    The views are read-only float64 and C-contiguous, so ``LayerParams``
    adopts them without copying (see ``params._frozen``) — the design is
    executed straight out of shared memory.
    """
    mapping = map_block(handle.block)
    cursor = iter(mapping.arrays)
    layers = []
    for apply_activation in handle.apply_activation:
        theta, act_omega, neg_omega = next(cursor), next(cursor), next(cursor)
        layers.append(LayerParams(theta, act_omega, neg_omega, apply_activation))
    params = PNNParams(
        layer_sizes=handle.layer_sizes,
        per_neuron_activation=handle.per_neuron_activation,
        activation_on_output=handle.activation_on_output,
        layers=tuple(layers),
        act_surrogate=_rebuild_surrogate(handle.act_meta, cursor),
        neg_surrogate=_rebuild_surrogate(handle.neg_meta, cursor),
    )
    return params, mapping


def publish_epsilons(store: SharedArrayStore, epsilons,
                     label: str = "epsilons") -> EpsilonsHandle:
    """Publish a pre-drawn ε stream (one (θ, act, neg) triple per layer)."""
    arrays: List[np.ndarray] = []
    slots: List[str] = []
    for triple in epsilons:
        for slot in triple:
            if isinstance(slot, Perturbation):
                if slot.override_mask is None:
                    slots.append("perturbation")
                    arrays.append(slot.scale)
                else:
                    slots.append("perturbation+override")
                    arrays.extend((slot.scale, slot.override_mask,
                                   slot.override_value))
            else:
                slots.append("array")
                arrays.append(slot)
    block = store.publish(arrays, label=label)
    return EpsilonsHandle(block=block, slots=tuple(slots))


def map_epsilons(handle: EpsilonsHandle):
    """Rebuild the ε stream structure over zero-copy views."""
    mapping = map_block(handle.block)
    cursor = iter(mapping.arrays)
    flat = []
    for kind in handle.slots:
        if kind == "array":
            flat.append(next(cursor))
        elif kind == "perturbation":
            flat.append(Perturbation(next(cursor)))
        else:
            flat.append(Perturbation(next(cursor), next(cursor), next(cursor)))
    epsilons = [tuple(flat[index:index + 3]) for index in range(0, len(flat), 3)]
    return epsilons, mapping


class MappedEvaluation:
    """One shard worker's view of the full evaluation payload."""

    __slots__ = ("params", "x", "y", "epsilons", "_mappings")

    def __init__(self, params, x, y, epsilons, mappings):
        self.params = params
        self.x = x
        self.y = y
        self.epsilons = epsilons
        self._mappings = mappings

    def close(self) -> None:
        self.params = self.x = self.y = self.epsilons = None
        mappings, self._mappings = self._mappings, ()
        for mapping in mappings:
            mapping.close()


def publish_evaluation(store: SharedArrayStore, params: PNNParams,
                       x: np.ndarray, y: np.ndarray, epsilons,
                       dataset_key: Optional[Hashable] = None) -> EvalPayload:
    """Publish one MC evaluation's payload: design, test set, ε stream.

    ``dataset_key`` caches the (x, y) block per store, so repeated
    evaluations of different designs on one dataset publish it once.
    """
    return EvalPayload(
        params=publish_params(store, params),
        dataset=store.publish([x, y], label="dataset", cache_key=dataset_key),
        epsilons=publish_epsilons(store, epsilons),
    )


def map_evaluation(payload: EvalPayload) -> MappedEvaluation:
    """Map a published evaluation payload in this (worker) process."""
    params, params_map = map_params(payload.params)
    dataset_map = map_block(payload.dataset)
    x, y = dataset_map.arrays
    epsilons, eps_map = map_epsilons(payload.epsilons)
    return MappedEvaluation(params, x, y, epsilons,
                            (params_map, dataset_map, eps_map))
