"""Lane-batched lockstep training: L independent pNN trainings, one epoch loop.

The Table-II protocol trains the *same* network topology on the *same*
dataset many times — once per random seed, per setup, per training ϵ.  Each
such job differs only in its RNG streams (network init + variation draws),
yet the serial path pays full Python/numpy dispatch cost per job.  This
module stacks ``L`` compatible jobs on a leading **lane** axis and runs one
epoch loop over all of them — the training-side analogue of
``solve_dc_batch``'s batched Newton iteration, shrinking active set
included.

Bit-identity is the spec, not tolerance
---------------------------------------
Lane ``l`` of a batched run must reproduce the serial
``train_pnn(engine="kernel")`` run for the same seed **bitwise**: the same
per-epoch ``(train_loss, val_loss)`` history, the same early-stop epoch,
and byte-identical trained parameters.  This holds because

- every kernel in :mod:`repro.core.grad_kernels` addresses trailing axes,
  so a lane's slice undergoes the same elementwise operations and the same
  per-slice 2-D GEMMs as a serial call;
- reductions (batch sums, MC means) keep the reduced axis's memory layout
  unchanged when a leading lane axis is added, so numpy's pairwise
  summation produces the same partial-sum tree per lane;
- each lane owns its private :class:`~repro.core.variation.VariationModel`
  (seeded per lane), drawn only while the lane is active — exactly the RNG
  consumption of the serial loop;
- Adam's update is elementwise and its bias-correction counter is shared
  validly (lanes step together from epoch 0 until removed, see
  :class:`repro.optim.LaneAdam`);
- early-stopped lanes are *removed* from the stack by a gather
  (fancy-index copy), which cannot perturb surviving lanes' bytes.

Pinned by ``tests/core/test_lane_engine.py`` (per-lane histories, states,
stop epochs, gather invariance) and the ci.sh lane-equality smoke.

Entry points
------------
:func:`train_pnn_lanes` — train a list of networks in lockstep; returns
one :class:`~repro.core.training.TrainResult` per lane and leaves each
module holding its best-epoch parameters, like the serial path.
:class:`LaneNetwork` — the stacked forward/backward executor over
``(L, ...)`` raw parameter arrays, reusing the frozen structure of a
:class:`~repro.core.grad_kernels.KernelNetwork`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.core.grad_kernels import (
    LOSS_KERNELS,
    KernelNetwork,
    LayerGrads,
    Workspace,
    _LayerTape,
    crossbar_bwd,
    crossbar_fwd,
    project_printable,
    reassemble_omega_bwd,
    reassemble_omega_fwd,
    surrogate_eta_bwd,
    surrogate_eta_fwd,
    transfer_bwd,
    transfer_fwd,
)
from repro.core.grad_kernels import apply_nonideality_bwd
from repro.core.kernels import BIAS_VOLTAGE, apply_nonideality
from repro.core.params import PNNParams
from repro.core.pnn import PrintedNeuralNetwork
from repro.core.variation import EpsilonLike, eps_stack
from repro.optim import EarlyStopping, RawParameter
from repro.optim.lanes import LaneAdam

#: TrainConfig fields every lane of a batch must agree on (seed may differ;
#: verbose is presentation-only and ignored by the lane engine).
LANE_SHARED_FIELDS = (
    "lr_theta",
    "lr_omega",
    "learnable_nonlinear",
    "epsilon",
    "scenario",
    "n_mc_train",
    "max_epochs",
    "patience",
    "loss",
    "backend",
)

#: One lane's pre-drawn ε triples: list over layers of (ε_θ, ε_act, ε_neg);
#: each slot is a bare factor array or a generalized ``Perturbation``.
LaneEpsilons = Optional[List[Tuple[EpsilonLike, EpsilonLike, EpsilonLike]]]


def stack_epsilons(per_lane: Sequence[List[Tuple[EpsilonLike, ...]]]):
    """Stack per-lane ε draws into lane-stacked triples.

    ``per_lane[l]`` is lane ``l``'s :func:`draw_epoch_epsilons` result
    (one ``(ε_θ, ε_act, ε_neg)`` triple per layer, leading axis ``n_mc``);
    the return value carries one triple per layer with leading axes
    ``(L, n_mc)``.  Stacking copies — lanes stay bitwise independent.
    Perturbation slots (scenario models with overrides) stack field-wise
    through :func:`~repro.core.variation.eps_stack`.
    """
    n_layers = len(per_lane[0])
    return [
        tuple(
            eps_stack([lane_draws[index][k] for lane_draws in per_lane])
            for k in range(3)
        )
        for index in range(n_layers)
    ]


def compact_epsilons(epsilons, keep: Sequence[int]):
    """Gather lane-stacked ε triples down to the surviving lanes."""
    if epsilons is None:
        return None
    keep = list(keep)
    return [tuple(array[keep] for array in triple) for triple in epsilons]


class LaneNetwork:
    """Stacked forward/backward executor over ``(L, ...)`` raw pNN arrays.

    Wraps a frozen :class:`~repro.core.grad_kernels.KernelNetwork` (layer
    metadata, surrogate snapshots, design space — shared by all lanes) and
    runs the same kernel sequence over lane-stacked parameters
    ``[θ (L, in+2, out), 𝔴_act (L, C, 7), 𝔴_neg (L, C, 7)]`` per layer and
    activations ``(L, n_mc, batch, features)``.  Owns its own
    :class:`~repro.core.grad_kernels.Workspace`, namespaced separately from
    any serial engine's.
    """

    def __init__(self, net: KernelNetwork):
        self.net = net
        self.workspace = Workspace()
        # Fused tier: thread this workspace through every kernel (transfer
        # fwd/bwd, loss, ε application) instead of only the crossbar.
        self._fws = self.workspace if net.backend == "fused" else None

    # ------------------------------------------------------------------ #
    # construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_pnns(
        cls, pnns: Sequence[PrintedNeuralNetwork], backend: str = "numpy"
    ) -> "LaneNetwork":
        """Freeze a compatible set of networks into one lane engine.

        All networks must share topology, per-neuron-activation mode and
        the *same* surrogate objects (one snapshot serves every lane —
        anything else would silently break per-lane bit-identity).
        ``backend`` selects the kernel execution tier exactly as in
        :meth:`KernelNetwork.from_pnn` (bitwise-identical results).
        """
        if not pnns:
            raise ValueError("need at least one network")
        first = pnns[0]
        for other in pnns[1:]:
            if tuple(other.layer_sizes) != tuple(first.layer_sizes):
                raise ValueError("lane networks must share layer sizes")
            if other.per_neuron_activation != first.per_neuron_activation:
                raise ValueError("lane networks must share per-neuron-activation mode")
            for mine, theirs in zip(first.layers, other.layers):
                if theirs.apply_activation != mine.apply_activation:
                    raise ValueError("lane networks must share activation placement")
                if (
                    theirs.activation.surrogate is not mine.activation.surrogate
                    or theirs.negation.surrogate is not mine.negation.surrogate
                ):
                    raise ValueError("lane networks must share surrogate objects")
        return cls(KernelNetwork.from_pnn(first, backend=backend))

    @staticmethod
    def stack_arrays(pnns: Sequence[PrintedNeuralNetwork]) -> List[List[np.ndarray]]:
        """Lane-stack every network's raw parameters: ``[[θ, 𝔴_act, 𝔴_neg], ...]``.

        Each entry is ``(L, ...)`` with lane ``l`` holding a copy of
        ``pnns[l]``'s array.
        """
        per_lane = [KernelNetwork.extract_arrays(pnn) for pnn in pnns]
        n_layers = len(per_lane[0])
        return [
            [np.stack([lane[index][k] for lane in per_lane]) for k in range(3)]
            for index in range(n_layers)
        ]

    # ------------------------------------------------------------------ #
    # forward                                                            #
    # ------------------------------------------------------------------ #

    def _eta_chain(self, w_raw, epsilon, sp, record):
        """Lane-stacked 𝔴 ``(L, C, 7)`` → η; MC axis inserted after the lane."""
        omega_printable, ctx_re = reassemble_omega_fwd(w_raw, self.net.space)
        omega = omega_printable[:, None]                      # (L, 1, C, 7)
        if epsilon is not None:
            omega = apply_nonideality(omega, epsilon)         # (L, N, C, 7)
        eta, ctx_sp = surrogate_eta_fwd(omega, sp)
        ctx = (ctx_re, omega, epsilon, ctx_sp) if record else None
        return eta, ctx

    def _eta_chain_bwd(self, d_eta, ctx, sp):
        """VJP of :meth:`_eta_chain`; the ε chain rule reduces the MC axis (1)."""
        ctx_re, _omega, epsilon, ctx_sp = ctx
        d_omega_scaled = surrogate_eta_bwd(d_eta, ctx_sp, sp)
        if epsilon is not None:
            d_printable = apply_nonideality_bwd(d_omega_scaled, epsilon, axis=1)
        else:
            d_printable = d_omega_scaled[:, 0]
        return reassemble_omega_bwd(d_printable, ctx_re)

    def forward(
        self,
        arrays: Sequence[Sequence[np.ndarray]],
        x: np.ndarray,
        epsilons=None,
        record: bool = False,
        tag: str = "lanes",
    ) -> Tuple[np.ndarray, Optional[List[_LayerTape]]]:
        """Stacked forward pass; mirrors :meth:`KernelNetwork.forward`.

        ``x`` is the shared ``(batch, features)`` input (all lanes of a
        batch train on the same dataset); ``epsilons`` supplies one
        ``(ε_θ, ε_act, ε_neg)`` triple per layer with leading axes
        ``(L, n_mc)`` (see :func:`stack_epsilons`) or ``None`` for the
        nominal pass.
        """
        data = np.asarray(x, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected a (batch, features) input")
        if data.shape[1] != self.net.layer_sizes[0]:
            raise ValueError(
                f"input has {data.shape[1]} features, network expects "
                f"{self.net.layer_sizes[0]}"
            )
        n_lanes = int(arrays[0][0].shape[0])
        n_mc = 1
        if epsilons is not None and epsilons[0][0] is not None:
            n_mc = int(epsilons[0][0].shape[1])

        ws = self.workspace
        batch = data.shape[0]
        hidden = np.broadcast_to(data, (n_lanes, n_mc, batch, data.shape[1]))
        tape: Optional[List[_LayerTape]] = [] if record else None

        for index, (meta, params) in enumerate(zip(self.net.layers, arrays)):
            theta_raw, w_act, w_neg = params
            eps_theta = eps_act = eps_neg = None
            if epsilons is not None:
                eps_theta, eps_act, eps_neg = epsilons[index]

            n_in = hidden.shape[-1]
            x_aug = ws.buf(f"{tag}.l{index}.x_aug", (n_lanes, n_mc, batch, n_in + 2))
            x_aug[..., :n_in] = hidden
            x_aug[..., n_in] = BIAS_VOLTAGE
            x_aug[..., n_in + 1] = 0.0

            printable = project_printable(theta_raw, meta.g_min, meta.g_max)
            theta_eff = printable[:, None]                    # (L, 1, I, O)
            if eps_theta is not None:
                theta_out = None
                if self._fws is not None:
                    theta_out = ws.buf(
                        f"{tag}.l{index}.theta",
                        np.broadcast_shapes(theta_eff.shape, eps_theta.shape),
                    )
                theta_eff = apply_nonideality(theta_eff, eps_theta, out=theta_out)

            eta_neg, neg_chain = self._eta_chain(
                w_neg, eps_neg, self.net.neg_surrogate, record
            )
            inverted, ctx_neg_transfer = transfer_fwd(
                x_aug, eta_neg, "negweight", ws=self._fws, tag=f"{tag}.l{index}.neg"
            )
            v_z, ctx_crossbar = crossbar_fwd(
                x_aug, inverted, theta_eff, ws=ws, tag=f"{tag}.l{index}"
            )
            if meta.apply_activation:
                eta_act, act_chain = self._eta_chain(
                    w_act, eps_act, self.net.act_surrogate, record
                )
                hidden, ctx_act_transfer = transfer_fwd(
                    v_z, eta_act, "ptanh", ws=self._fws, tag=f"{tag}.l{index}.act"
                )
            else:
                act_chain = ctx_act_transfer = None
                hidden = v_z

            if record:
                tape.append(
                    _LayerTape(
                        x_aug=x_aug,
                        eps_theta=eps_theta,
                        eps_act=eps_act,
                        eps_neg=eps_neg,
                        crossbar=ctx_crossbar,
                        neg_transfer=ctx_neg_transfer,
                        act_transfer=ctx_act_transfer,
                        act_chain=act_chain,
                        neg_chain=neg_chain,
                    )
                )
        return hidden, tape

    # ------------------------------------------------------------------ #
    # backward                                                           #
    # ------------------------------------------------------------------ #

    def backward(
        self,
        tape: List[_LayerTape],
        d_out: np.ndarray,
        need_omega_grads: bool = True,
    ) -> List[LayerGrads]:
        """Stacked VJP; mirrors :meth:`KernelNetwork.backward` per lane.

        Gradients come back lane-stacked ``(L, ...)``; the ε chain rule and
        the nominal-θ unbroadcast reduce the MC axis (now axis 1).
        """
        grads = [LayerGrads() for _ in self.net.layers]
        grad = d_out
        for index in range(len(self.net.layers) - 1, -1, -1):
            meta, ctx = self.net.layers[index], tape[index]
            if meta.apply_activation:
                grad, d_eta_act = transfer_bwd(
                    grad, ctx.act_transfer, ws=self._fws,
                    tag=f"lanes.bwd.l{index}.act",
                )
                if need_omega_grads:
                    grads[index].w_act = self._eta_chain_bwd(
                        d_eta_act, ctx.act_chain, self.net.act_surrogate
                    )
            d_x_aug, d_inverted, d_theta_eff = crossbar_bwd(
                grad, ctx.crossbar, ws=self.workspace, tag=f"lanes.bwd.l{index}",
                fused=self._fws is not None,
            )
            if ctx.eps_theta is not None:
                d_printable = apply_nonideality_bwd(d_theta_eff, ctx.eps_theta, axis=1)
            else:
                d_printable = d_theta_eff[:, 0]
            grads[index].theta = d_printable          # straight-through projection

            d_x_aug2, d_eta_neg = transfer_bwd(
                d_inverted, ctx.neg_transfer, ws=self._fws,
                tag=f"lanes.bwd.l{index}.neg",
            )
            d_x_aug += d_x_aug2
            if need_omega_grads:
                grads[index].w_neg = self._eta_chain_bwd(
                    d_eta_neg, ctx.neg_chain, self.net.neg_surrogate
                )
            grad = d_x_aug[..., : meta.in_features]
        return grads

    # ------------------------------------------------------------------ #
    # loss entry points                                                  #
    # ------------------------------------------------------------------ #

    def loss_and_grads(
        self,
        arrays: Sequence[Sequence[np.ndarray]],
        x: np.ndarray,
        targets: np.ndarray,
        loss: str = "margin",
        epsilons=None,
        need_omega_grads: bool = True,
    ) -> Tuple[np.ndarray, List[LayerGrads]]:
        """Per-lane losses ``(L,)`` and lane-stacked raw-parameter grads."""
        loss_fwd, loss_bwd = LOSS_KERNELS[loss]
        voltages, tape = self.forward(
            arrays, x, epsilons=epsilons, record=True, tag="lanes"
        )
        values, ctx = loss_fwd(voltages, targets, ws=self._fws, tag="lanes.loss")
        d_voltages = loss_bwd(ctx, ws=self._fws, tag="lanes.loss")
        return values, self.backward(tape, d_voltages, need_omega_grads=need_omega_grads)

    def loss_values(
        self,
        arrays: Sequence[Sequence[np.ndarray]],
        x: np.ndarray,
        targets: np.ndarray,
        loss: str = "margin",
        epsilons=None,
        tag: str = "lanes.val",
    ) -> np.ndarray:
        """Forward-only per-lane losses ``(L,)`` (validation path)."""
        loss_fwd, _ = LOSS_KERNELS[loss]
        voltages, _ = self.forward(arrays, x, epsilons=epsilons, record=False, tag=tag)
        values, _ = loss_fwd(voltages, targets, ws=self._fws, tag=f"{tag}.loss")
        return values

    # ------------------------------------------------------------------ #
    # snapshots                                                          #
    # ------------------------------------------------------------------ #

    def snapshot_lane(
        self, arrays: Sequence[Sequence[np.ndarray]], lane: int
    ) -> PNNParams:
        """Freeze one lane's raw arrays into a :class:`PNNParams` design."""
        return self.net.snapshot(
            [[theta[lane], w_act[lane], w_neg[lane]] for theta, w_act, w_neg in arrays]
        )


# --------------------------------------------------------------------- #
# the lane training loop                                                #
# --------------------------------------------------------------------- #


def _require_compatible(configs) -> None:
    """Lanes must agree on every hyperparameter except the seed."""
    base = configs[0]
    for config in configs[1:]:
        for name in LANE_SHARED_FIELDS:
            if getattr(config, name) != getattr(base, name):
                raise ValueError(
                    f"lane configs must agree on {name!r}: "
                    f"{getattr(config, name)!r} != {getattr(base, name)!r}"
                )


def train_pnn_lanes(
    pnns: Sequence[PrintedNeuralNetwork],
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    configs,
) -> List:
    """Train ``L`` networks in lockstep; bitwise equal to ``L`` serial runs.

    Parameters
    ----------
    pnns:
        The networks, one per lane — same topology and surrogates,
        independently initialized (each from its own seed).  Trained in
        place: each module ends up holding its best-epoch parameters,
        exactly like :func:`~repro.core.training.train_pnn`.
    x_train, y_train, x_val, y_val:
        The *shared* dataset splits (lane batching groups jobs by
        dataset/setup, so all lanes see the same data).
    configs:
        One :class:`~repro.core.training.TrainConfig` per lane.  All
        fields except ``seed`` must agree (:data:`LANE_SHARED_FIELDS` —
        including ``scenario``: lane stacks carry per-lane draws of the
        *same* non-ideality model class, seeded per lane).  ``verbose``
        is ignored.  Explicit variation/val-variation model *objects*
        (aging models) are not supported on the lane path — use the
        serial engine for those; named scenarios ride the config.

    Returns
    -------
    list of TrainResult
        One per lane, in input order — per-epoch history, best epoch and
        early-stop bookkeeping all bitwise equal to the serial
        ``engine="kernel"`` run with the same seed.

    Notes
    -----
    Per-lane early stopping shrinks the active stack exactly like
    ``solve_dc_batch``: a stopped lane is gathered out of the parameter
    stack, the optimizer moments (:meth:`LaneAdam.compact`), the hoisted
    validation ε and the per-lane variation models — surviving lanes'
    bytes are untouched, and stopped lanes stop consuming their RNG
    streams (matching serial, since each lane owns its
    :class:`~repro.core.variation.VariationModel`).
    """
    # Imported here: repro.core.training imports this module for the
    # engine="lanes" dispatch, so the reverse import must be deferred.
    from repro.core.training import (
        TrainResult,
        _training_variation,
        _validation_epsilons,
        draw_epoch_epsilons,
    )

    pnns = list(pnns)
    configs = list(configs)
    if len(pnns) != len(configs):
        raise ValueError("need exactly one config per network")
    if not pnns:
        return []
    _require_compatible(configs)
    base = configs[0]
    n_lanes = len(pnns)

    lane_net = LaneNetwork.from_pnns(pnns, backend=base.backend)
    n_layers = len(lane_net.net.layers)
    stacked = LaneNetwork.stack_arrays(pnns)
    theta_params: List[RawParameter] = []
    omega_params: List[RawParameter] = []
    for index, (theta, w_act, w_neg) in enumerate(stacked):
        theta_name, act_name, neg_name = KernelNetwork.state_names(index)
        theta_params.append(RawParameter(theta, theta_name))
        omega_params.append(RawParameter(w_act, act_name))
        omega_params.append(RawParameter(w_neg, neg_name))
    all_params = theta_params + omega_params

    learn_omega = base.learnable_nonlinear and base.lr_omega > 0
    groups = [{"params": theta_params, "lr": base.lr_theta}]
    if learn_omega:
        groups.append({"params": omega_params, "lr": base.lr_omega})
    optimizer = LaneAdam(groups)

    # Per-lane RNG streams: one variation model per lane (scenario-built,
    # legacy VariationModel for the default scenario), consumed only
    # while the lane is active — the serial loop's exact consumption.
    variations = [_training_variation(config) for config in configs]
    sample_variation = variations[0] is not None
    n_mc = base.n_mc_train if sample_variation else 1

    # Hoisted fixed validation ε per lane (seed + VALIDATION_SEED_OFFSET),
    # stacked once; compacted alongside the parameter stack.
    per_lane_val = [_validation_epsilons(pnns[0], config, None) for config in configs]
    val_epsilons = None
    if any(draws is not None for draws in per_lane_val):
        val_epsilons = stack_epsilons(per_lane_val)

    stoppers = [EarlyStopping(patience=base.patience) for _ in range(n_lanes)]
    histories: List[List[Tuple[int, float, float]]] = [[] for _ in range(n_lanes)]
    epochs_run = [0] * n_lanes
    final_states: List[Optional[Dict[str, np.ndarray]]] = [None] * n_lanes
    active: List[int] = list(range(n_lanes))

    def layer_arrays():
        # The optimizer rebinds ``param.data`` every step (and compaction
        # gathers it), so the stacked view is re-derived on demand.
        return [
            [theta_params[i].data, omega_params[2 * i].data, omega_params[2 * i + 1].data]
            for i in range(n_layers)
        ]

    def capture_state(position: int) -> Dict[str, np.ndarray]:
        # One lane's slice of every stacked parameter, keyed like a
        # module state dict (position = index into the *current* stack).
        return {p.name: p.data[position].copy() for p in all_params}

    tel = telemetry.get()
    trace = tel.enabled
    t_fwd_bwd = t_opt = t_val = 0.0
    lane_epochs = 0
    shrink_events = 0
    train_start = perf_counter()

    epoch = -1
    for epoch in range(base.max_epochs):
        optimizer.zero_grad()
        epsilons = None
        if sample_variation:
            epsilons = stack_epsilons(
                [draw_epoch_epsilons(variations[lane], n_mc, pnns[0]) for lane in active]
            )
        arrays = layer_arrays()
        if trace:
            t0 = perf_counter()
        train_losses, grads = lane_net.loss_and_grads(
            arrays, x_train, y_train, loss=base.loss, epsilons=epsilons,
            need_omega_grads=learn_omega,
        )
        for i, layer_grads in enumerate(grads):
            theta_params[i].grad = layer_grads.theta
            omega_params[2 * i].grad = layer_grads.w_act
            omega_params[2 * i + 1].grad = layer_grads.w_neg
        if trace:
            t1 = perf_counter()
        optimizer.step()
        if trace:
            t2 = perf_counter()
        val_losses = lane_net.loss_values(
            layer_arrays(), x_val, y_val, loss=base.loss, epsilons=val_epsilons,
            tag="lanes.val",
        )
        if trace:
            t3 = perf_counter()
            t_fwd_bwd += t1 - t0
            t_opt += t2 - t1
            t_val += t3 - t2
        lane_epochs += len(active)

        stopped_positions: List[int] = []
        for position, lane in enumerate(active):
            epochs_run[lane] = epoch + 1
            train_loss = float(train_losses[position])
            val_loss = float(val_losses[position])
            histories[lane].append((epoch, train_loss, val_loss))
            stoppers[lane].update(
                val_loss, epoch, state_fn=lambda position=position: capture_state(position)
            )
            if stoppers[lane].should_stop:
                stopped_positions.append(position)

        if stopped_positions:
            for position in stopped_positions:
                lane = active[position]
                # NaN-loss fallback: a lane that never improved keeps its
                # final arrays (the serial loop's end-of-training capture).
                if stoppers[lane].best_state is None:
                    final_states[lane] = capture_state(position)
                if trace:
                    tel.event(
                        "train.early_stop",
                        epoch=epoch,
                        best_epoch=stoppers[lane].best_epoch,
                        patience=base.patience,
                        lane=lane,
                        seed=configs[lane].seed,
                    )
            stopped = set(stopped_positions)
            keep = [i for i in range(len(active)) if i not in stopped]
            active = [active[i] for i in keep]
            shrink_events += 1
            if trace:
                tel.event(
                    "lanes.shrink",
                    epoch=epoch,
                    active=len(active),
                    stopped=len(stopped),
                )
            if not active:
                break
            for param in all_params:
                param.data = param.data[keep]         # gather: a copy per survivor
            optimizer.compact(keep)
            val_epsilons = compact_epsilons(val_epsilons, keep)

    # Lanes still active at max_epochs: capture their final arrays for the
    # never-improved fallback (mirrors the serial loop's final capture).
    for position, lane in enumerate(active):
        if stoppers[lane].best_state is None:
            final_states[lane] = capture_state(position)

    if trace:
        tel.event(
            "lanes.run",
            n_lanes=n_lanes,
            backend=base.backend,
            epochs_run=epoch + 1,
            lane_epochs=lane_epochs,
            shrink_events=shrink_events,
            dur_s=perf_counter() - train_start,
            fwd_bwd_s=t_fwd_bwd,
            optimizer_s=t_opt,
            validation_s=t_val,
        )
        tel.event(
            "train.run",
            engine="lanes",
            backend=base.backend,
            epochs_run=epoch + 1,
            best_epoch=max(s.best_epoch for s in stoppers),
            best_val_loss=min(s.best_value for s in stoppers),
            dur_s=perf_counter() - train_start,
            fwd_bwd_s=t_fwd_bwd,
            optimizer_s=t_opt,
            validation_s=t_val,
        )
        tel.count("train.epochs", lane_epochs)
        tel.count("lanes.trained", n_lanes)

    results = []
    for lane in range(n_lanes):
        stopper = stoppers[lane]
        state = stopper.best_state if stopper.best_state is not None else final_states[lane]
        assert state is not None
        pnns[lane].load_state_dict(state)
        results.append(
            TrainResult(
                best_epoch=stopper.best_epoch,
                best_val_loss=stopper.best_value,
                epochs_run=epochs_run[lane],
                history=histories[lane],
            )
        )
    return results
