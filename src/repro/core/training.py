"""Nominal and variation-aware pNN training (Sec. III-C, IV-A).

Hyperparameters mirror the paper:

- Adam with default settings, but distinct learning rates per parameter
  kind: ``α_θ = 0.1`` for the crossbar conductances and ``α_ω = 0.005`` for
  the nonlinear-circuit parameters (``α_ω = 0`` — i.e. frozen — reproduces
  the non-learnable baseline);
- full-batch training with the Monte-Carlo expected loss, ``N_train = 20``
  variation samples per epoch (1 sample when ϵ = 0, which *is* nominal
  training);
- early stopping on the validation loss with configurable patience (the
  paper uses 5000 epochs; the benchmark profiles scale this down), keeping
  the best epoch's parameters — those are the circuits that "would be
  printed".

Three execution engines implement the identical optimization:

- ``engine="kernel"`` (default) — the autograd-free fast path: one
  :class:`repro.core.grad_kernels.KernelNetwork` executes hand-derived
  forward/backward kernels over raw parameter arrays
  (:class:`repro.optim.RawParameter`), with preallocated workspaces and no
  per-epoch graph, Tensor wrapper, or state-dict copy;
- ``engine="autograd"`` — the original taped loop over the live
  :class:`~repro.core.pnn.PrintedNeuralNetwork` module, kept as the slow
  cross-check;
- ``engine="lanes"`` — the kernel path run through the lane-batched
  engine (:mod:`repro.core.lanes`) as a single-lane stack.  Its real use
  is :func:`repro.core.lanes.train_pnn_lanes`, which trains ``L``
  compatible jobs in lockstep, *bitwise* equal per lane to ``L`` serial
  ``engine="kernel"`` runs.

All engines consume the train-variation RNG stream in the same canonical
per-layer (θ, activation ω, negweight ω) order and produce per-epoch loss
histories that agree to float64 rounding — and kernel vs lanes agree
*bitwise* (pinned by ``tests/core/test_training_engine.py`` and
``tests/core/test_lane_engine.py``).  See ``docs/TRAINING.md`` for the
full training-path contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Tuple

import numpy as np

from repro import telemetry
from repro.autograd.tensor import Tensor, no_grad
from repro.core import kernels
from repro.core.backends import get_backend
from repro.core.grad_kernels import KernelNetwork, ce_loss_fwd, margin_loss_fwd
from repro.core.losses import MarginLoss, VoltageCrossEntropy, make_loss
from repro.core.params import snapshot_params
from repro.core.pnn import PrintedNeuralNetwork
from repro.core.variation import (
    DEFAULT_SCENARIO,
    VariationModel,
    build_scenario_model,
    model_has_overrides,
    sample_role,
)
from repro.optim import Adam, EarlyStopping, RawParameter

#: Seed offset separating the fixed validation ε stream from training draws.
VALIDATION_SEED_OFFSET = 104729


@dataclass
class TrainConfig:
    """Hyperparameters of one pNN training run.

    ``seed`` drives both RNG streams of the run — the per-epoch training
    draws and the frozen validation sample at
    ``seed + VALIDATION_SEED_OFFSET`` (see ``docs/TRAINING.md`` §2).  In
    the lane tier every field except ``seed`` must agree across the
    stacked configs (``repro.core.lanes.LANE_SHARED_FIELDS``).

    ``scenario`` names the non-ideality configuration to train under
    (``repro.core.variation.SCENARIOS``).  The ``"default"`` scenario is
    the legacy ε-only path — bit-identical to pre-scenario behavior; named
    scenarios build their model through the registry (and may be
    non-nominal even at ε = 0, e.g. stuck-at defects).
    """

    lr_theta: float = 0.1
    lr_omega: float = 0.005
    learnable_nonlinear: bool = True
    epsilon: float = 0.0
    n_mc_train: int = 20
    max_epochs: int = 3000
    patience: int = 500
    loss: str = "margin"
    seed: int = 0
    verbose: bool = False
    scenario: str = DEFAULT_SCENARIO
    #: Kernel execution backend (``repro.core.backends``).  Every backend
    #: is bitwise-equal to ``"numpy"``, so — like ``engine`` — it is an
    #: execution detail, deliberately excluded from
    #: ``ExperimentConfig.training_fingerprint`` and the result-cache
    #: digest: switching backends must not invalidate recorded results.
    backend: str = "numpy"

    @property
    def variation_aware(self) -> bool:
        return self.epsilon > 0.0


@dataclass
class TrainResult:
    """Outcome of :func:`train_pnn` (one per lane from the lane engine).

    ``history`` holds one ``(epoch, train_loss, val_loss)`` tuple per
    epoch actually run; all fields are bitwise comparable across engines
    (the lane-vs-kernel tests assert them with ``==``, not ``allclose``).
    """

    best_epoch: int
    best_val_loss: float
    epochs_run: int
    history: List[Tuple[int, float, float]] = field(default_factory=list)


def draw_epoch_epsilons(variation, n_mc: int, pnn: PrintedNeuralNetwork):
    """Draw one epoch's variation factors in the canonical stream order.

    One ``(ε_θ, ε_act, ε_neg)`` triple per layer, exactly the shapes and
    order :meth:`PrintedNeuralNetwork.forward` samples internally — so
    pre-drawing (for the kernel engine, or to freeze the validation set)
    consumes the RNG identically to the taped path.

    Scenario models are sampled through ``sample_perturbation`` with the
    canonical (θ, act, neg) role hints; duck-typed legacy models keep the
    bare ``sample`` surface — the RNG stream order is identical either way
    (``tests/core/test_sampling_order.py``).
    """
    return [
        (
            sample_role(
                variation, n_mc, (layer.in_features + 2, layer.out_features), "theta"
            ),
            sample_role(variation, n_mc, (layer.activation.n_circuits, 7), "act"),
            sample_role(variation, n_mc, (layer.negation.n_circuits, 7), "neg"),
        )
        for layer in pnn.layers
    ]


def _training_variation(config: TrainConfig):
    """The training-draw model for ``config``, or ``None`` for nominal runs.

    The default scenario reproduces the legacy behavior byte for byte: a
    ``VariationModel(config.epsilon, seed=config.seed)`` when ε > 0, no
    sampling at all otherwise.  Named scenarios build their model through
    the registry; a scenario model that is non-nominal even at ε = 0
    (e.g. stuck-at defects) turns Monte-Carlo sampling on.
    """
    model = build_scenario_model(config.scenario, config.epsilon, seed=config.seed)
    if model is None:
        if not config.variation_aware:
            return None
        return VariationModel(config.epsilon, seed=config.seed)
    return None if model.is_nominal else model


def _validation_variation(config: TrainConfig):
    """The validation-draw model at ``seed + VALIDATION_SEED_OFFSET``."""
    val_seed = config.seed + VALIDATION_SEED_OFFSET
    model = build_scenario_model(config.scenario, config.epsilon, seed=val_seed)
    if model is None:
        if not config.variation_aware:
            return None
        return VariationModel(config.epsilon, seed=val_seed)
    return None if model.is_nominal else model


def _validation_epsilons(pnn: PrintedNeuralNetwork, config: TrainConfig, val_variation):
    """The *fixed* validation ε samples, drawn once before the epoch loop.

    Historically a fresh ``VariationModel(seed + VALIDATION_SEED_OFFSET)``
    was reconstructed every epoch, which re-drew the identical samples each
    time; hoisting the draw preserves those exact arrays (regression-pinned
    in ``tests/core/test_training_evaluation.py``) while doing the work
    once.  An explicit ``val_variation`` override (e.g. an aging model) is
    sampled once up front for the same reason: the early-stopping signal
    must compare parameter progress, not fresh sampling noise.
    """
    variation = val_variation
    if variation is None:
        variation = _validation_variation(config)
    if variation is None or variation.is_nominal:
        return None
    return draw_epoch_epsilons(variation, config.n_mc_train, pnn)


def train_pnn(
    pnn: PrintedNeuralNetwork,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: TrainConfig,
    variation=None,
    val_variation=None,
    engine: str = "kernel",
) -> TrainResult:
    """Train a pNN in place and restore its best-validation parameters.

    ``variation`` / ``val_variation`` optionally override the uniform
    printing-variation model built from ``config.epsilon`` with any object
    exposing the same ``sample``/``is_nominal`` interface (e.g. an
    :class:`~repro.core.aging.AgingModel` for aging-aware training).

    ``engine`` selects the execution path: ``"kernel"`` (default) runs the
    hand-derived backward kernels of :mod:`repro.core.grad_kernels` on raw
    arrays; ``"autograd"`` runs the original taped loop; ``"lanes"`` runs
    the lane-batched engine as a width-1 stack (bitwise equal to
    ``"kernel"``; variation overrides are not supported there).  All
    engines consume the same variation stream and agree to float64
    rounding.
    """
    if engine not in ("kernel", "autograd", "lanes"):
        raise ValueError(
            f"unknown engine {engine!r}; expected 'kernel', 'autograd' or 'lanes'"
        )
    get_backend(config.backend)  # fail fast on unknown backend names
    if engine == "autograd" and config.backend != "numpy":
        # The taped cross-check has no fused tier; record the silent
        # downgrade so CI can assert it never happens on the fast paths.
        telemetry.get().count(
            "backend.fallback", engine="autograd", backend=config.backend
        )
    if engine == "lanes":
        if variation is not None or val_variation is not None:
            raise ValueError(
                "engine='lanes' does not support variation overrides; "
                "use engine='kernel' for aging-aware training"
            )
        from repro.core.lanes import train_pnn_lanes

        return train_pnn_lanes(
            [pnn], x_train, y_train, x_val, y_val, [config]
        )[0]

    train_variation = variation
    if train_variation is None:
        train_variation = _training_variation(config)
    if engine == "autograd" and (
        model_has_overrides(train_variation) or model_has_overrides(val_variation)
    ):
        raise ValueError(
            "engine='autograd' supports multiplicative non-idealities only; "
            "override-carrying models (stuck-at defects) need engine='kernel' "
            "or engine='lanes'"
        )
    n_mc = 1
    if train_variation is not None and not train_variation.is_nominal:
        n_mc = config.n_mc_train

    val_epsilons = _validation_epsilons(pnn, config, val_variation)

    if engine == "autograd":
        return _train_autograd(
            pnn, x_train, y_train, x_val, y_val, config, train_variation, n_mc,
            val_epsilons,
        )
    return _train_kernel(
        pnn, x_train, y_train, x_val, y_val, config, train_variation, n_mc,
        val_epsilons,
    )


# --------------------------------------------------------------------- #
# kernel engine (default)                                               #
# --------------------------------------------------------------------- #


def _train_kernel(
    pnn: PrintedNeuralNetwork,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: TrainConfig,
    train_variation,
    n_mc: int,
    val_epsilons,
) -> TrainResult:
    """The autograd-free epoch loop over raw parameter arrays.

    The module is read once up front (structure + parameter values) and
    written once at the end (the best epoch's state) — the steady-state
    epoch touches only ndarrays.
    """
    net = KernelNetwork.from_pnn(pnn, backend=config.backend)
    theta_params: List[RawParameter] = []
    omega_params: List[RawParameter] = []
    for index, (theta, w_act, w_neg) in enumerate(KernelNetwork.extract_arrays(pnn)):
        theta_name, act_name, neg_name = KernelNetwork.state_names(index)
        theta_params.append(RawParameter(theta, theta_name))
        omega_params.append(RawParameter(w_act, act_name))
        omega_params.append(RawParameter(w_neg, neg_name))

    learn_omega = config.learnable_nonlinear and config.lr_omega > 0
    groups = [{"params": theta_params, "lr": config.lr_theta}]
    if learn_omega:
        groups.append({"params": omega_params, "lr": config.lr_omega})
    optimizer = Adam(groups)
    stopper = EarlyStopping(patience=config.patience)

    def layer_arrays():
        # Adam rebinds ``param.data`` on every step, so the flat array view
        # is re-derived from the parameters each time it is needed.
        return [
            [theta_params[i].data, omega_params[2 * i].data, omega_params[2 * i + 1].data]
            for i in range(len(net.layers))
        ]

    def capture_state():
        params = theta_params + omega_params
        return {p.name: p.data.copy() for p in params}

    sample_variation = train_variation is not None and not train_variation.is_nominal
    history: List[Tuple[int, float, float]] = []
    epochs_run = 0

    # Per-epoch phase timings (pure observation; gated so the disabled
    # cost is one bool check per epoch).
    tel = telemetry.get()
    trace = tel.enabled
    t_fwd_bwd = t_opt = t_val = 0.0
    m_fwd_bwd = m_opt = m_val = 0.0
    train_start = perf_counter()

    for epoch in range(config.max_epochs):
        epochs_run = epoch + 1
        optimizer.zero_grad()
        epsilons = None
        if sample_variation:
            epsilons = draw_epoch_epsilons(train_variation, n_mc, pnn)
        arrays = layer_arrays()
        if trace:
            t0 = perf_counter()
        train_loss, grads = net.loss_and_grads(
            arrays, x_train, y_train, loss=config.loss, epsilons=epsilons,
            need_omega_grads=learn_omega,
        )
        for i, layer_grads in enumerate(grads):
            theta_params[i].grad = layer_grads.theta
            omega_params[2 * i].grad = layer_grads.w_act
            omega_params[2 * i + 1].grad = layer_grads.w_neg
        if trace:
            t1 = perf_counter()
        optimizer.step()
        if trace:
            t2 = perf_counter()

        val_loss = net.loss_value(
            layer_arrays(), x_val, y_val, loss=config.loss, epsilons=val_epsilons,
            tag="val",
        )
        if trace:
            t3 = perf_counter()
            dt = t1 - t0
            t_fwd_bwd += dt
            m_fwd_bwd = max(m_fwd_bwd, dt)
            dt = t2 - t1
            t_opt += dt
            m_opt = max(m_opt, dt)
            dt = t3 - t2
            t_val += dt
            m_val = max(m_val, dt)
        history.append((epoch, train_loss, val_loss))
        stopper.update(val_loss, epoch, state_fn=capture_state)
        if config.verbose and epoch % 100 == 0:
            print(f"[train] epoch {epoch}: train {train_loss:.4f} val {val_loss:.4f}")
        if stopper.should_stop:
            if trace:
                tel.event(
                    "train.early_stop",
                    epoch=epoch,
                    best_epoch=stopper.best_epoch,
                    patience=config.patience,
                )
            break

    if trace:
        tel.event(
            "train.run",
            engine="kernel",
            backend=config.backend,
            epochs_run=epochs_run,
            best_epoch=stopper.best_epoch,
            best_val_loss=stopper.best_value,
            dur_s=perf_counter() - train_start,
            fwd_bwd_s=t_fwd_bwd,
            optimizer_s=t_opt,
            validation_s=t_val,
            fwd_bwd_max_s=m_fwd_bwd,
            optimizer_max_s=m_opt,
            validation_max_s=m_val,
        )
        tel.count("train.epochs", epochs_run)

    # Write the winning design back into the live module (falling back to
    # the final arrays when no epoch ever improved, e.g. NaN losses).
    state = stopper.best_state if stopper.best_state is not None else capture_state()
    pnn.load_state_dict(state)
    return TrainResult(
        best_epoch=stopper.best_epoch,
        best_val_loss=stopper.best_value,
        epochs_run=epochs_run,
        history=history,
    )


# --------------------------------------------------------------------- #
# autograd engine (slow cross-check)                                    #
# --------------------------------------------------------------------- #


def _train_autograd(
    pnn: PrintedNeuralNetwork,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: TrainConfig,
    train_variation,
    n_mc: int,
    val_epsilons,
) -> TrainResult:
    """The original taped epoch loop over the live module."""
    loss_fn = make_loss(config.loss)
    groups = [{"params": pnn.theta_parameters(), "lr": config.lr_theta}]
    if config.learnable_nonlinear and config.lr_omega > 0:
        groups.append({"params": pnn.nonlinear_parameters(), "lr": config.lr_omega})
    optimizer = Adam(groups)
    stopper = EarlyStopping(patience=config.patience)

    history: List[Tuple[int, float, float]] = []
    epochs_run = 0
    for epoch in range(config.max_epochs):
        epochs_run = epoch + 1
        optimizer.zero_grad()
        outputs = pnn.forward(x_train, variation=train_variation, n_mc=n_mc)
        loss = loss_fn(outputs, y_train)
        loss.backward()
        optimizer.step()

        val_loss = _validation_loss(
            pnn, x_val, y_val, loss_fn, config, epsilons=val_epsilons
        )
        history.append((epoch, loss.item(), val_loss))
        stopper.update(val_loss, epoch, state_fn=pnn.state_dict)
        if config.verbose and epoch % 100 == 0:
            print(f"[train] epoch {epoch}: train {loss.item():.4f} val {val_loss:.4f}")
        if stopper.should_stop:
            break

    if stopper.best_state is not None:
        pnn.load_state_dict(stopper.best_state)
    return TrainResult(
        best_epoch=stopper.best_epoch,
        best_val_loss=stopper.best_value,
        epochs_run=epochs_run,
        history=history,
    )


def _validation_loss(
    pnn,
    x_val,
    y_val,
    loss_fn,
    config: TrainConfig,
    val_variation=None,
    epsilons=None,
) -> float:
    """Validation loss; under variation, uses a *fixed* set of ε samples.

    Keeping the validation samples identical across epochs makes the
    early-stopping signal compare parameter progress instead of mixing it
    with fresh sampling noise.  Callers inside the epoch loop pass the
    hoisted ``epsilons``; when omitted, the historical per-call behaviour
    (a fresh ``VariationModel(seed + VALIDATION_SEED_OFFSET)``, which draws
    those same samples) is reproduced.

    The forward pass runs through the autograd-free snapshot path
    (:func:`repro.core.kernels.network_forward`) with the numpy loss
    kernels; unrecognized loss callables fall back to the Tensor path.
    """
    if epsilons is None:
        variation = val_variation
        if variation is None:
            variation = _validation_variation(config)
        if variation is not None and not variation.is_nominal:
            epsilons = draw_epoch_epsilons(variation, config.n_mc_train, pnn)

    with no_grad():
        params = snapshot_params(pnn)
    voltages = kernels.network_forward(params, x_val, epsilons=epsilons)
    if isinstance(loss_fn, MarginLoss):
        value, _ = margin_loss_fwd(voltages, y_val, margin=loss_fn.margin)
        return value
    if isinstance(loss_fn, VoltageCrossEntropy):
        value, _ = ce_loss_fwd(voltages, y_val, temperature=loss_fn.temperature)
        return value
    with no_grad():
        return loss_fn(Tensor(voltages), y_val).item()
