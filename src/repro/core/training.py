"""Nominal and variation-aware pNN training (Sec. III-C, IV-A).

Hyperparameters mirror the paper:

- Adam with default settings, but distinct learning rates per parameter
  kind: ``α_θ = 0.1`` for the crossbar conductances and ``α_ω = 0.005`` for
  the nonlinear-circuit parameters (``α_ω = 0`` — i.e. frozen — reproduces
  the non-learnable baseline);
- full-batch training with the Monte-Carlo expected loss, ``N_train = 20``
  variation samples per epoch (1 sample when ϵ = 0, which *is* nominal
  training);
- early stopping on the validation loss with configurable patience (the
  paper uses 5000 epochs; the benchmark profiles scale this down), keeping
  the best epoch's parameters — those are the circuits that "would be
  printed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import no_grad
from repro.core.losses import make_loss
from repro.core.pnn import PrintedNeuralNetwork
from repro.core.variation import VariationModel
from repro.optim import Adam, EarlyStopping


@dataclass
class TrainConfig:
    """Hyperparameters of one pNN training run."""

    lr_theta: float = 0.1
    lr_omega: float = 0.005
    learnable_nonlinear: bool = True
    epsilon: float = 0.0
    n_mc_train: int = 20
    max_epochs: int = 3000
    patience: int = 500
    loss: str = "margin"
    seed: int = 0
    verbose: bool = False

    @property
    def variation_aware(self) -> bool:
        return self.epsilon > 0.0


@dataclass
class TrainResult:
    """Outcome of :func:`train_pnn`."""

    best_epoch: int
    best_val_loss: float
    epochs_run: int
    history: List[Tuple[int, float, float]] = field(default_factory=list)


def train_pnn(
    pnn: PrintedNeuralNetwork,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: TrainConfig,
    variation=None,
    val_variation=None,
) -> TrainResult:
    """Train a pNN in place and restore its best-validation parameters.

    ``variation`` / ``val_variation`` optionally override the uniform
    printing-variation model built from ``config.epsilon`` with any object
    exposing the same ``sample``/``is_nominal`` interface (e.g. an
    :class:`~repro.core.aging.AgingModel` for aging-aware training).
    """
    loss_fn = make_loss(config.loss)
    groups = [{"params": pnn.theta_parameters(), "lr": config.lr_theta}]
    if config.learnable_nonlinear and config.lr_omega > 0:
        groups.append({"params": pnn.nonlinear_parameters(), "lr": config.lr_omega})
    optimizer = Adam(groups)
    stopper = EarlyStopping(patience=config.patience)

    train_variation = variation
    if train_variation is None and config.variation_aware:
        train_variation = VariationModel(config.epsilon, seed=config.seed)
    n_mc = 1
    if train_variation is not None and not train_variation.is_nominal:
        n_mc = config.n_mc_train

    history: List[Tuple[int, float, float]] = []
    epochs_run = 0
    for epoch in range(config.max_epochs):
        epochs_run = epoch + 1
        optimizer.zero_grad()
        outputs = pnn.forward(x_train, variation=train_variation, n_mc=n_mc)
        loss = loss_fn(outputs, y_train)
        loss.backward()
        optimizer.step()

        val_loss = _validation_loss(pnn, x_val, y_val, loss_fn, config, val_variation)
        history.append((epoch, loss.item(), val_loss))
        stopper.update(val_loss, epoch, state=pnn.state_dict())
        if config.verbose and epoch % 100 == 0:
            print(f"[train] epoch {epoch}: train {loss.item():.4f} val {val_loss:.4f}")
        if stopper.should_stop:
            break

    if stopper.best_state is not None:
        pnn.load_state_dict(stopper.best_state)
    return TrainResult(
        best_epoch=stopper.best_epoch,
        best_val_loss=stopper.best_value,
        epochs_run=epochs_run,
        history=history,
    )


def _validation_loss(
    pnn, x_val, y_val, loss_fn, config: TrainConfig, val_variation=None
) -> float:
    """Validation loss; under variation, uses a *fixed* set of ε samples.

    Re-seeding the validation sampler each epoch keeps the early-stopping
    signal comparable across epochs instead of mixing parameter progress
    with fresh sampling noise.
    """
    variation = val_variation
    if variation is None and config.variation_aware:
        variation = VariationModel(config.epsilon, seed=config.seed + 104729)
    n_mc = 1
    if variation is not None and not variation.is_nominal:
        n_mc = config.n_mc_train
    with no_grad():
        outputs = pnn.forward(x_val, variation=variation, n_mc=n_mc)
        return loss_fn(outputs, y_val).item()
