"""Structural validation of netlists using a connectivity graph."""

from __future__ import annotations

import networkx as nx

from repro.spice.netlist import GROUND, Netlist


class NetlistError(ValueError):
    """Raised when a netlist is structurally unsound."""


def connectivity_graph(netlist: Netlist) -> nx.Graph:
    """Undirected device-connectivity graph over node names.

    Transistor gates connect capacitively (no DC path), but for reachability
    purposes a gate must still be driven, so gate edges are included.
    """
    graph = nx.Graph()
    graph.add_node(GROUND)
    for resistor in netlist.resistors:
        graph.add_edge(resistor.node_a, resistor.node_b, device=resistor.name)
    for source in netlist.sources:
        graph.add_edge(source.node_plus, source.node_minus, device=source.name)
    for egt in netlist.transistors:
        graph.add_edge(egt.drain, egt.source, device=egt.name)
        graph.add_edge(egt.gate, egt.source, device=f"{egt.name}.gate")
    return graph


def validate_netlist(netlist: Netlist) -> None:
    """Check that the netlist can be solved.

    Raises
    ------
    NetlistError
        If the netlist is empty, has no ground reference, or contains nodes
        unreachable from ground (which would make the MNA system singular up
        to ``gmin``).
    """
    if not netlist.devices:
        raise NetlistError("netlist contains no devices")

    graph = connectivity_graph(netlist)
    if graph.number_of_nodes() <= 1:
        raise NetlistError("netlist has no nodes besides ground")
    if GROUND not in graph or graph.degree(GROUND) == 0:
        raise NetlistError("no device is connected to ground")

    reachable = nx.node_connected_component(graph, GROUND)
    floating = set(graph.nodes) - reachable
    if floating:
        raise NetlistError(f"nodes not connected to ground: {sorted(floating)}")
