"""Compact model for printed electrolyte-gated transistors (EGTs).

The paper's nonlinear circuits use inorganic electrolyte-gated FETs
characterized in the printed PDK of Rasheed et al. [12].  That PDK is
proprietary, so this module provides a *synthetic* compact model with the
same qualitative behaviour:

- n-type, normally-off, operating below 1 V supply;
- drain current scaling with the printed geometry ``W/L``;
- smooth triode-to-saturation transition and subthreshold roll-off (so that
  Newton-Raphson converges and transfer curves are C¹);
- channel-length modulation.

The drain current for ``Vds >= 0`` is

    Veff = phi * ln(1 + exp((Vgs - Vt) / phi))          (smooth overdrive)
    Id   = 0.5 * k' * (W/L) * Veff^2
           * tanh(Vds / Veff) * (1 + lambda * Vds)

and the model is made symmetric for ``Vds < 0`` by exchanging the roles of
drain and source.  All constants are chosen so that the inverter stages of
the ptanh circuit switch within the 0–1 V input range across the whole
Table-I design space.

The evaluation is array-in/array-out (:func:`id_gm_gds`): the batched DC
engine stamps whole ``(lanes, devices)`` blocks per Newton iteration, and
the scalar solver routes through the same numpy kernels so both paths
produce bit-identical companion models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def id_gm_gds(
    vgs: np.ndarray,
    vds: np.ndarray,
    beta: np.ndarray,
    v_threshold: float,
    phi: float,
    channel_lambda: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized drain current and small-signal derivatives.

    All voltage/β inputs broadcast together; the returned ``(id, gm, gds)``
    arrays share the broadcast shape.  ``vds < 0`` elements are treated
    symmetrically (drain and source exchanged), exactly like the scalar
    :meth:`EGTModel.ids` — which delegates here, so scalar and batched
    solves agree to the last bit.
    """
    vgs = np.asarray(vgs, dtype=np.float64)
    vds = np.asarray(vds, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)

    reverse = vds < 0.0
    # Swap drain and source: Id(vgs, vds) = -Id'(vgd, -vds).
    vgs_fwd = np.where(reverse, vgs - vds, vgs)
    vds_fwd = np.where(reverse, -vds, vds)

    # --- smooth overdrive (three numerically-safe regimes) ------------- #
    z = (vgs_fwd - v_threshold) / phi
    high = z > 30.0
    low = z < -30.0
    # Clipping keeps exp() in range; mid-regime values are unchanged by it.
    z_mid = np.clip(z, -30.0, 30.0)
    exp_low = np.exp(np.minimum(z, -30.0))
    veff = np.where(
        high,
        vgs_fwd - v_threshold,
        np.where(low, phi * exp_low, phi * np.log1p(np.exp(z_mid))),
    )
    dveff = np.where(high, 1.0, np.where(low, exp_low, 1.0 / (1.0 + np.exp(-z_mid))))

    # --- forward drain current and derivatives ------------------------- #
    veff_safe = veff + 1e-12
    shape = np.tanh(vds_fwd / veff_safe)
    sech2 = 1.0 - shape * shape
    clm = 1.0 + channel_lambda * vds_fwd
    id0 = 0.5 * beta * veff * veff

    current_fwd = id0 * shape * clm
    gm_fwd = (
        beta * veff * dveff * shape * clm
        + id0 * sech2 * (-vds_fwd / (veff_safe * veff_safe)) * dveff * clm
    )
    gds_fwd = id0 * sech2 / veff_safe * clm + id0 * shape * channel_lambda

    # --- undo the drain/source exchange -------------------------------- #
    current = np.where(reverse, -current_fwd, current_fwd)
    gm = np.where(reverse, -gm_fwd, gm_fwd)
    gds = np.where(reverse, gm_fwd + gds_fwd, gds_fwd)
    return current, gm, gds


@dataclass(frozen=True)
class EGTModel:
    """Parameter set of the synthetic printed EGT.

    Attributes
    ----------
    k_prime:
        Process transconductance ``mu * C_ox`` in A/V².
    v_threshold:
        Threshold voltage in volts.
    phi:
        Subthreshold smoothing scale in volts (larger = softer turn-on).
    channel_lambda:
        Channel-length modulation coefficient in 1/V.
    """

    k_prime: float = 3.0e-5
    v_threshold: float = 0.03
    phi: float = 0.06
    channel_lambda: float = 0.05

    def beta(self, width: float, length: float) -> float:
        """Device transconductance factor ``k' * W / L``."""
        if width <= 0 or length <= 0:
            raise ValueError("transistor dimensions must be positive")
        return self.k_prime * width / length

    def id_gm_gds(
        self, vgs: np.ndarray, vds: np.ndarray, beta: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-in/array-out evaluation at this model's parameters."""
        return id_gm_gds(
            vgs, vds, beta, self.v_threshold, self.phi, self.channel_lambda
        )

    def ids(
        self, vgs: float, vds: float, width: float, length: float
    ) -> Tuple[float, float, float]:
        """Drain current and small-signal derivatives at a bias point.

        Returns
        -------
        (id, gm, gds):
            Drain-to-source current (A), transconductance ``dId/dVgs`` (S)
            and output conductance ``dId/dVds`` (S).  For ``vds < 0`` the
            device is treated symmetrically (drain and source exchanged).
        """
        beta = self.beta(width, length)
        current, gm, gds = self.id_gm_gds(vgs, vds, beta)
        return float(current), float(gm), float(gds)
