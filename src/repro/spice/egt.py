"""Compact model for printed electrolyte-gated transistors (EGTs).

The paper's nonlinear circuits use inorganic electrolyte-gated FETs
characterized in the printed PDK of Rasheed et al. [12].  That PDK is
proprietary, so this module provides a *synthetic* compact model with the
same qualitative behaviour:

- n-type, normally-off, operating below 1 V supply;
- drain current scaling with the printed geometry ``W/L``;
- smooth triode-to-saturation transition and subthreshold roll-off (so that
  Newton-Raphson converges and transfer curves are C¹);
- channel-length modulation.

The drain current for ``Vds >= 0`` is

    Veff = phi * ln(1 + exp((Vgs - Vt) / phi))          (smooth overdrive)
    Id   = 0.5 * k' * (W/L) * Veff^2
           * tanh(Vds / Veff) * (1 + lambda * Vds)

and the model is made symmetric for ``Vds < 0`` by exchanging the roles of
drain and source.  All constants are chosen so that the inverter stages of
the ptanh circuit switch within the 0–1 V input range across the whole
Table-I design space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class EGTModel:
    """Parameter set of the synthetic printed EGT.

    Attributes
    ----------
    k_prime:
        Process transconductance ``mu * C_ox`` in A/V².
    v_threshold:
        Threshold voltage in volts.
    phi:
        Subthreshold smoothing scale in volts (larger = softer turn-on).
    channel_lambda:
        Channel-length modulation coefficient in 1/V.
    """

    k_prime: float = 3.0e-5
    v_threshold: float = 0.03
    phi: float = 0.06
    channel_lambda: float = 0.05

    def beta(self, width: float, length: float) -> float:
        """Device transconductance factor ``k' * W / L``."""
        if width <= 0 or length <= 0:
            raise ValueError("transistor dimensions must be positive")
        return self.k_prime * width / length

    def _overdrive(self, vgs: float) -> Tuple[float, float]:
        """Smooth overdrive voltage and its derivative w.r.t. ``vgs``."""
        z = (vgs - self.v_threshold) / self.phi
        if z > 30.0:
            return vgs - self.v_threshold, 1.0
        if z < -30.0:
            expz = math.exp(z)
            return self.phi * expz, expz
        veff = self.phi * math.log1p(math.exp(z))
        dveff = 1.0 / (1.0 + math.exp(-z))
        return veff, dveff

    def ids(
        self, vgs: float, vds: float, width: float, length: float
    ) -> Tuple[float, float, float]:
        """Drain current and small-signal derivatives at a bias point.

        Returns
        -------
        (id, gm, gds):
            Drain-to-source current (A), transconductance ``dId/dVgs`` (S)
            and output conductance ``dId/dVds`` (S).  For ``vds < 0`` the
            device is treated symmetrically (drain and source exchanged).
        """
        beta = self.beta(width, length)
        if vds < 0.0:
            # Swap drain and source: Id(vgs, vds) = -Id'(vgd, -vds).
            vgd = vgs - vds
            current_s, gm_s, gds_s = self._ids_forward(vgd, -vds, beta)
            # d/dVgs: vgd depends on vgs with slope 1, vds' does not.
            gm = -gm_s
            # d/dVds: vgd slope -1, vds' slope -1.
            gds = gm_s + gds_s
            return -current_s, gm, gds
        return self._ids_forward(vgs, vds, beta)

    def _ids_forward(
        self, vgs: float, vds: float, beta: float
    ) -> Tuple[float, float, float]:
        veff, dveff = self._overdrive(vgs)
        veff_safe = veff + 1e-12
        shape = math.tanh(vds / veff_safe)
        sech2 = 1.0 - shape * shape
        clm = 1.0 + self.channel_lambda * vds
        id0 = 0.5 * beta * veff * veff

        current = id0 * shape * clm
        gm = (
            beta * veff * dveff * shape * clm
            + id0 * sech2 * (-vds / (veff_safe * veff_safe)) * dveff * clm
        )
        gds = id0 * sech2 / veff_safe * clm + id0 * shape * self.channel_lambda
        return current, gm, gds
