"""Vectorized Newton-Raphson: B independent DC operating points per solve.

``solve_dc_batch`` stacks ``B`` operating points of one compiled
:class:`~repro.spice.plan.StampPlan` into a ``(B, n, n)`` MNA system and
runs all Newton iterations as array operations: one vectorized EGT
companion-model evaluation, one stacked ``np.linalg.solve`` per iteration,
per-lane damping, and per-lane convergence masks that remove converged
lanes from the active set (so slow lanes never make fast lanes pay).

Every floating-point operation mirrors the scalar solver
(:func:`repro.spice.mna.solve_dc`) in the same order — stamps accumulate
device-by-device, the EGT model routes through the same numpy kernels —
so a batched lane reproduces the scalar solution *bit for bit*, not just
to tolerance.  Lanes that exhaust ``max_iter`` are retried through the
scalar path (``fallback=True``) and reported in ``converged``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from repro import telemetry
from repro.spice.egt import id_gm_gds
from repro.spice.mna import ConvergenceError, OperatingPoint, solve_dc
from repro.spice.netlist import GROUND
from repro.spice.plan import ParamBatch, StampPlan


@dataclass
class BatchOperatingPoint:
    """DC solutions of ``B`` lanes sharing one stamp plan.

    ``converged`` marks lanes whose Newton iteration finished within
    ``max_iter`` (scalar-equivalent lanes would have raised
    :class:`ConvergenceError` where it is ``False``); their ``voltages``
    rows are NaN.
    """

    plan: StampPlan
    voltages: np.ndarray          # (B, n_nodes)
    source_currents: np.ndarray   # (B, n_sources)
    iterations: np.ndarray        # (B,) int
    converged: np.ndarray         # (B,) bool

    def __len__(self) -> int:
        return len(self.voltages)

    def voltage(self, node: str) -> np.ndarray:
        """Per-lane voltage of ``node`` (zeros for ground)."""
        if node == GROUND:
            return np.zeros(len(self), dtype=np.float64)
        return self.voltages[:, self.plan.node_index(node)]

    def operating_point(self, lane: int) -> OperatingPoint:
        """Bridge one lane to the scalar :class:`OperatingPoint` API."""
        if not self.converged[lane]:
            raise ConvergenceError(f"lane {lane} did not converge")
        return OperatingPoint(
            voltages={
                name: float(self.voltages[lane, i])
                for i, name in enumerate(self.plan.nodes)
            },
            source_currents={
                name: float(self.source_currents[lane, k])
                for k, name in enumerate(self.plan.source_names)
            },
            iterations=int(self.iterations[lane]),
        )


def _infer_batch_size(
    plan: StampPlan,
    params: Optional[ParamBatch],
    vin_batch: Optional[Mapping[str, Union[float, np.ndarray]]],
    initial: Optional[np.ndarray],
    batch_size: Optional[int],
) -> int:
    candidates = []
    if batch_size is not None:
        candidates.append(int(batch_size))
    if params is not None and params.batch_size is not None:
        candidates.append(params.batch_size)
    if vin_batch:
        for value in vin_batch.values():
            array = np.asarray(value, dtype=np.float64)
            if array.ndim == 1:
                candidates.append(int(array.shape[0]))
    if initial is not None:
        candidates.append(int(np.asarray(initial).shape[0]))
    if not candidates:
        raise ValueError(
            "cannot infer the batch size: pass param_batch, vin_batch, "
            "initial, or an explicit batch_size"
        )
    if len(set(candidates)) > 1:
        raise ValueError(f"inconsistent batch sizes: {sorted(set(candidates))}")
    return candidates[0]


def _assemble_base(
    plan: StampPlan,
    batch: int,
    conductances: np.ndarray,
    source_voltages: np.ndarray,
):
    """Constant (linear) stamps for every lane, in scalar stamp order."""
    n_nodes, size = plan.n_nodes, plan.size
    base_matrix = np.zeros((batch, size, size))
    base_rhs = np.zeros((batch, size))

    diag = np.arange(n_nodes)
    base_matrix[:, diag, diag] += plan.gmin

    for j in range(plan.n_resistors):
        g = conductances[:, j]
        a, b = int(plan.res_a[j]), int(plan.res_b[j])
        if a >= 0:
            base_matrix[:, a, a] += g
        if b >= 0:
            base_matrix[:, b, b] += g
        if a >= 0 and b >= 0:
            base_matrix[:, a, b] -= g
            base_matrix[:, b, a] -= g

    for k in range(plan.n_sources):
        row = n_nodes + k
        p, m = int(plan.src_p[k]), int(plan.src_m[k])
        if p >= 0:
            base_matrix[:, p, row] += 1.0
            base_matrix[:, row, p] += 1.0
        if m >= 0:
            base_matrix[:, m, row] -= 1.0
            base_matrix[:, row, m] -= 1.0
        base_rhs[:, row] = source_voltages[:, k]
    return base_matrix, base_rhs


def _solve_lanes(matrix: np.ndarray, rhs: np.ndarray):
    """Stacked linear solve with per-lane singularity isolation.

    Returns ``(solution, ok)``; singular lanes get NaN rows instead of
    poisoning the whole stack with ``LinAlgError``.
    """
    try:
        return np.linalg.solve(matrix, rhs[..., None])[..., 0], np.ones(
            len(matrix), dtype=bool
        )
    except np.linalg.LinAlgError:
        solution = np.full_like(rhs, np.nan)
        ok = np.zeros(len(matrix), dtype=bool)
        for lane in range(len(matrix)):
            try:
                solution[lane] = np.linalg.solve(matrix[lane], rhs[lane])
                ok[lane] = True
            except np.linalg.LinAlgError:
                pass
        return solution, ok


def solve_dc_batch(
    plan: StampPlan,
    param_batch: Optional[ParamBatch] = None,
    vin_batch: Optional[Mapping[str, Union[float, np.ndarray]]] = None,
    initial: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 200,
    damping: float = 0.5,
    fallback: bool = True,
    batch_size: Optional[int] = None,
) -> BatchOperatingPoint:
    """Solve ``B`` DC operating points of ``plan`` in lockstep.

    Parameters
    ----------
    param_batch:
        Per-lane element values (``None`` fields use the plan's template).
    vin_batch:
        Per-lane voltage-source overrides, ``{source_name: (B,) or float}``.
    initial:
        Optional ``(B, n_nodes)`` warm-start voltages (used by sweeps).
    tol / max_iter / damping:
        As in :func:`~repro.spice.mna.solve_dc`; ``damping`` may also be a
        ``(B,)`` array for per-lane step limits.
    fallback:
        Retry lanes that exhaust ``max_iter`` through the scalar solver
        before reporting them unconverged.
    """
    batch = _infer_batch_size(plan, param_batch, vin_batch, initial, batch_size)
    n_nodes, n_sources = plan.n_nodes, plan.n_sources
    n_egt = plan.n_egts

    # Telemetry accumulators (pure observers: never touch the numerics).
    tel = telemetry.get()
    trace = tel.enabled
    active_trajectory: list = []
    total_lane_iters = 0
    n_damped_steps = 0
    n_singular = 0
    n_fallback = 0
    n_fallback_recovered = 0

    # --- per-lane element values --------------------------------------- #
    if param_batch is not None and param_batch.resistances is not None:
        resistances = param_batch.resistances
        if resistances.shape != (batch, plan.n_resistors):
            raise ValueError(
                f"resistances must have shape {(batch, plan.n_resistors)}, "
                f"got {resistances.shape}"
            )
        if np.any(resistances <= 0):
            raise ValueError("resistances must be positive")
    else:
        resistances = np.broadcast_to(plan.res_resistance, (batch, plan.n_resistors))
    conductances = 1.0 / resistances

    widths = plan.egt_width
    lengths = plan.egt_length
    if param_batch is not None and param_batch.widths is not None:
        widths = param_batch.widths
        if widths.shape != (batch, n_egt):
            raise ValueError(f"widths must have shape {(batch, n_egt)}")
    if param_batch is not None and param_batch.lengths is not None:
        lengths = param_batch.lengths
        if lengths.shape != (batch, n_egt):
            raise ValueError(f"lengths must have shape {(batch, n_egt)}")
    if n_egt and (np.any(widths <= 0) or np.any(lengths <= 0)):
        raise ValueError("transistor dimensions must be positive")
    # beta = k' * W / L, the same expression the scalar model evaluates.
    betas = np.broadcast_to(
        plan.egt_k_prime * widths / lengths, (batch, n_egt)
    ) if n_egt else np.zeros((batch, 0))

    source_voltages = np.broadcast_to(plan.src_voltage, (batch, n_sources)).copy()
    if vin_batch:
        for name, value in vin_batch.items():
            source_voltages[:, plan.source_index(name)] = np.asarray(
                value, dtype=np.float64
            )

    base_matrix, base_rhs = _assemble_base(plan, batch, conductances, source_voltages)

    if initial is not None:
        voltages = np.array(initial, dtype=np.float64, copy=True)
        if voltages.shape != (batch, n_nodes):
            raise ValueError(f"initial must have shape {(batch, n_nodes)}")
    else:
        voltages = np.full((batch, n_nodes), 0.5)

    damping = np.asarray(damping, dtype=np.float64)
    lane_damping = np.broadcast_to(damping, (batch,))[:, None]

    # EGT terminal gather indices into a ground-padded voltage array.
    d_pad = np.where(plan.egt_d >= 0, plan.egt_d, n_nodes)
    g_pad = np.where(plan.egt_g >= 0, plan.egt_g, n_nodes)
    s_pad = np.where(plan.egt_s >= 0, plan.egt_s, n_nodes)

    # --- outputs -------------------------------------------------------- #
    out_voltages = np.full((batch, n_nodes), np.nan)
    out_currents = np.full((batch, n_sources), np.nan)
    out_iterations = np.full(batch, max_iter, dtype=np.int64)
    out_converged = np.zeros(batch, dtype=bool)

    # --- Newton iteration over the shrinking active set ----------------- #
    active = np.arange(batch)
    act_base, act_rhs, act_v = base_matrix, base_rhs, voltages
    act_betas, act_damping = betas, lane_damping
    if n_nodes == 0:
        # Degenerate source-only systems converge in a single linear solve.
        solution, ok = _solve_lanes(act_base, act_rhs)
        out_currents[:] = solution[:, n_nodes:]
        out_iterations[:] = 1
        out_converged[:] = ok
        active = active[:0]

    for iteration in range(1, max_iter + 1):
        if not len(active):
            break
        if trace:
            active_trajectory.append(int(len(active)))
            total_lane_iters += int(len(active))
        matrix = act_base.copy()
        rhs = act_rhs.copy()

        if n_egt:
            padded = np.concatenate(
                [act_v, np.zeros((len(active), 1))], axis=1
            )
            vgs = padded[:, g_pad] - padded[:, s_pad]
            vds = padded[:, d_pad] - padded[:, s_pad]
            current, gm, gds = id_gm_gds(
                vgs,
                vds,
                act_betas,
                plan.egt_v_threshold,
                plan.egt_phi,
                plan.egt_channel_lambda,
            )
            # Companion model: I = Ieq + gm*Vgs + gds*Vds flowing drain→source.
            ieq = current - gm * vgs - gds * vds
            gm_plus_gds = gm + gds
            for k in range(n_egt):
                d = int(plan.egt_d[k])
                g_node = int(plan.egt_g[k])
                s = int(plan.egt_s[k])
                for row, polarity in ((d, 1.0), (s, -1.0)):
                    if row < 0:
                        continue
                    rhs[:, row] -= polarity * ieq[:, k]
                    if g_node >= 0:
                        matrix[:, row, g_node] += polarity * gm[:, k]
                    if s >= 0:
                        matrix[:, row, s] -= polarity * gm_plus_gds[:, k]
                    if d >= 0:
                        matrix[:, row, d] += polarity * gds[:, k]

        solution, solvable = _solve_lanes(matrix, rhs)
        if not solvable.all():
            # Singular lanes mirror the scalar ConvergenceError; drop them.
            if trace:
                n_singular += int(np.sum(~solvable))
            failed = active[~solvable]
            out_iterations[failed] = iteration
            keep = solvable
            active = active[keep]
            act_base, act_rhs, act_v = act_base[keep], act_rhs[keep], act_v[keep]
            act_betas, act_damping = act_betas[keep], act_damping[keep]
            solution = solution[keep]
            if not len(active):
                break

        new_voltages = solution[:, :n_nodes]
        delta = new_voltages - act_v
        step = np.clip(delta, -act_damping, act_damping)
        if trace:
            # Lanes whose Newton step got clipped by the damping limit.
            n_damped_steps += int(
                np.sum(np.any(np.abs(delta) > act_damping, axis=1))
            )
        act_v = act_v + step
        done = np.max(np.abs(delta), axis=1) < tol

        if done.any():
            lanes = active[done]
            out_voltages[lanes] = act_v[done]
            out_currents[lanes] = solution[done, n_nodes:]
            out_iterations[lanes] = iteration
            out_converged[lanes] = True
            keep = ~done
            active = active[keep]
            act_base, act_rhs, act_v = act_base[keep], act_rhs[keep], act_v[keep]
            act_betas, act_damping = act_betas[keep], act_damping[keep]

    if len(active) and fallback:
        # Scalar retry for lanes that exhausted max_iter, under identical
        # conditions (same warm start, tolerances and damping).
        n_fallback = int(len(active))
        for lane in active:
            netlist = plan.realize(
                param_batch,
                lane=int(lane),
                source_voltages={
                    name: source_voltages[lane, k]
                    for k, name in enumerate(plan.source_names)
                },
            )
            warm = None
            if initial is not None:
                warm = {
                    name: float(initial[lane, i])
                    for i, name in enumerate(plan.nodes)
                }
            try:
                point = solve_dc(
                    netlist,
                    initial=warm,
                    gmin=plan.gmin,
                    tol=tol,
                    max_iter=max_iter,
                    damping=float(np.broadcast_to(damping, (batch,))[lane]),
                    validate=False,
                )
            except ConvergenceError:
                continue
            out_voltages[lane] = [point.voltages[name] for name in plan.nodes]
            out_currents[lane] = [
                point.source_currents[name] for name in plan.source_names
            ]
            out_iterations[lane] = point.iterations
            out_converged[lane] = True
            n_fallback_recovered += 1

    if trace:
        tel.event(
            "spice.solve_dc_batch",
            batch=int(batch),
            n_converged=int(np.sum(out_converged)),
            n_iterations=len(active_trajectory),
            total_lane_iters=total_lane_iters,
            active_trajectory=active_trajectory,
            n_damped_steps=n_damped_steps,
            n_singular=n_singular,
            n_fallback=n_fallback,
            n_fallback_recovered=n_fallback_recovered,
        )
        tel.count("spice.lanes_solved", int(batch))
        tel.count("spice.newton_lane_iters", total_lane_iters)
        if n_fallback:
            tel.count("spice.scalar_fallbacks", n_fallback)

    return BatchOperatingPoint(
        plan=plan,
        voltages=out_voltages,
        source_currents=out_currents,
        iterations=out_iterations,
        converged=out_converged,
    )
