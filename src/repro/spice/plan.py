"""Compiled stamp plans: a ``Netlist`` lowered to index arrays.

The scalar solver re-derives node indices, string-keyed dictionaries and a
fresh device walk on every DC solve.  For the surrogate pipeline — hundreds
of thousands of solves over the *same topology* with different element
values — that bookkeeping dominates.  :func:`compile_netlist` performs it
once: the netlist is lowered into flat integer index arrays (resistor node
pairs, voltage-source rows, EGT terminal triples) plus template element
values, so the batched Newton-Raphson loop (:mod:`repro.spice.batch`)
never touches a string or a dict.

A :class:`ParamBatch` carries per-lane element overrides (resistances and
EGT geometries) for ``B`` independent operating points sharing the plan's
topology; :meth:`StampPlan.realize` reconstructs an ordinary ``Netlist``
for any single lane, which is how the batched solver falls back to the
scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.spice.egt import EGTModel
from repro.spice.netlist import GROUND, Netlist
from repro.spice.validate import validate_netlist

#: Index used for the ground node in compiled index arrays.
GROUND_INDEX = -1


@dataclass(frozen=True, eq=False)
class StampPlan:
    """A ``Netlist`` lowered to index arrays for the batched solver.

    Node indices follow ``Netlist.nodes()`` order; ``-1`` marks ground.
    Device columns follow netlist insertion order, so the batched stamps
    accumulate matrix entries in exactly the scalar solver's order (which
    keeps the two paths bit-identical).
    """

    title: str
    nodes: Tuple[str, ...]
    gmin: float

    # resistors: node pair + template conductance-defining resistance
    resistor_names: Tuple[str, ...]
    res_a: np.ndarray          # (n_res,) int64, -1 = ground
    res_b: np.ndarray          # (n_res,) int64
    res_resistance: np.ndarray  # (n_res,) template values in ohms

    # ideal voltage sources: node pair + template voltage
    source_names: Tuple[str, ...]
    src_p: np.ndarray          # (n_src,) int64
    src_m: np.ndarray          # (n_src,) int64
    src_voltage: np.ndarray    # (n_src,)

    # EGTs: terminal triples + template geometry + per-device model params
    egt_names: Tuple[str, ...]
    egt_d: np.ndarray          # (n_egt,) int64
    egt_g: np.ndarray          # (n_egt,) int64
    egt_s: np.ndarray          # (n_egt,) int64
    egt_width: np.ndarray      # (n_egt,)
    egt_length: np.ndarray     # (n_egt,)
    egt_k_prime: np.ndarray    # (n_egt,)
    egt_v_threshold: np.ndarray  # (n_egt,)
    egt_phi: np.ndarray        # (n_egt,)
    egt_channel_lambda: np.ndarray  # (n_egt,)
    egt_models: Tuple[EGTModel, ...]

    # original node names per device, kept for realize()
    res_nodes: Tuple[Tuple[str, str], ...]
    src_nodes: Tuple[Tuple[str, str], ...]
    egt_nodes: Tuple[Tuple[str, str, str], ...]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_sources(self) -> int:
        return len(self.source_names)

    @property
    def n_resistors(self) -> int:
        return len(self.resistor_names)

    @property
    def n_egts(self) -> int:
        return len(self.egt_names)

    @property
    def size(self) -> int:
        """MNA system size: node voltages plus source branch currents."""
        return self.n_nodes + self.n_sources

    def node_index(self, name: str) -> int:
        if name == GROUND:
            return GROUND_INDEX
        return self.nodes.index(name)

    def source_index(self, name: str) -> int:
        try:
            return self.source_names.index(name)
        except ValueError:
            raise KeyError(f"no voltage source named {name!r}") from None

    def resistor_index(self, name: str) -> int:
        try:
            return self.resistor_names.index(name)
        except ValueError:
            raise KeyError(f"no resistor named {name!r}") from None

    # ------------------------------------------------------------------ #
    # lane realization (scalar fallback)                                 #
    # ------------------------------------------------------------------ #

    def realize(
        self,
        params: Optional["ParamBatch"] = None,
        lane: int = 0,
        source_voltages: Optional[Mapping[str, float]] = None,
    ) -> Netlist:
        """Reconstruct a scalar ``Netlist`` for one lane of a batch."""
        netlist = Netlist(self.title)
        for k, name in enumerate(self.source_names):
            voltage = float(self.src_voltage[k])
            if source_voltages is not None and name in source_voltages:
                voltage = float(source_voltages[name])
            plus, minus = self.src_nodes[k]
            netlist.add_voltage_source(name, plus, minus, voltage)
        for j, name in enumerate(self.resistor_names):
            value = float(self.res_resistance[j])
            if params is not None and params.resistances is not None:
                value = float(params.resistances[lane, j])
            a, b = self.res_nodes[j]
            netlist.add_resistor(name, a, b, value)
        for k, name in enumerate(self.egt_names):
            width = float(self.egt_width[k])
            length = float(self.egt_length[k])
            if params is not None and params.widths is not None:
                width = float(params.widths[lane, k])
            if params is not None and params.lengths is not None:
                length = float(params.lengths[lane, k])
            d, g, s = self.egt_nodes[k]
            netlist.add_egt(name, d, g, s, width, length, self.egt_models[k])
        return netlist

    def __repr__(self) -> str:
        return (
            f"StampPlan({self.title!r}, nodes={self.n_nodes}, "
            f"R={self.n_resistors}, V={self.n_sources}, T={self.n_egts})"
        )


@dataclass
class ParamBatch:
    """Per-lane element values for ``B`` operating points on one plan.

    Any field left as ``None`` falls back to the plan's template values.
    Column order follows the plan's device order (``resistor_names`` /
    ``egt_names``).
    """

    resistances: Optional[np.ndarray] = None  # (B, n_res) ohms
    widths: Optional[np.ndarray] = None       # (B, n_egt) µm
    lengths: Optional[np.ndarray] = None      # (B, n_egt) µm

    def __post_init__(self):
        for field_name in ("resistances", "widths", "lengths"):
            value = getattr(self, field_name)
            if value is not None:
                array = np.asarray(value, dtype=np.float64)
                if array.ndim != 2:
                    raise ValueError(f"{field_name} must be a (B, n_devices) array")
                setattr(self, field_name, array)
        sizes = {a.shape[0] for a in self._arrays()}
        if len(sizes) > 1:
            raise ValueError(f"inconsistent batch sizes in ParamBatch: {sorted(sizes)}")

    def _arrays(self):
        return [
            a for a in (self.resistances, self.widths, self.lengths) if a is not None
        ]

    @property
    def batch_size(self) -> Optional[int]:
        arrays = self._arrays()
        return int(arrays[0].shape[0]) if arrays else None

    def take(self, lanes: np.ndarray) -> "ParamBatch":
        """Sub-batch restricted to ``lanes`` (used by sweeps to drop lanes)."""
        pick = lambda a: None if a is None else a[lanes]
        return ParamBatch(
            resistances=pick(self.resistances),
            widths=pick(self.widths),
            lengths=pick(self.lengths),
        )


def compile_netlist(
    netlist: Netlist, gmin: float = 1e-12, validate: bool = True
) -> StampPlan:
    """Lower ``netlist`` into a :class:`StampPlan` (strings → index arrays).

    ``gmin`` is baked into the plan because it is part of the constant
    linear stamps; use the same value as the scalar solves being replaced.
    """
    if validate:
        validate_netlist(netlist)

    nodes = tuple(netlist.nodes())
    index: Dict[str, int] = {name: i for i, name in enumerate(nodes)}

    def node_idx(name: str) -> int:
        return GROUND_INDEX if name == GROUND else index[name]

    res_a = np.array([node_idx(r.node_a) for r in netlist.resistors], dtype=np.int64)
    res_b = np.array([node_idx(r.node_b) for r in netlist.resistors], dtype=np.int64)
    src_p = np.array([node_idx(s.node_plus) for s in netlist.sources], dtype=np.int64)
    src_m = np.array([node_idx(s.node_minus) for s in netlist.sources], dtype=np.int64)
    egt_d = np.array([node_idx(t.drain) for t in netlist.transistors], dtype=np.int64)
    egt_g = np.array([node_idx(t.gate) for t in netlist.transistors], dtype=np.int64)
    egt_s = np.array([node_idx(t.source) for t in netlist.transistors], dtype=np.int64)

    return StampPlan(
        title=netlist.title,
        nodes=nodes,
        gmin=float(gmin),
        resistor_names=tuple(r.name for r in netlist.resistors),
        res_a=res_a,
        res_b=res_b,
        res_resistance=np.array(
            [r.resistance for r in netlist.resistors], dtype=np.float64
        ),
        source_names=tuple(s.name for s in netlist.sources),
        src_p=src_p,
        src_m=src_m,
        src_voltage=np.array([s.voltage for s in netlist.sources], dtype=np.float64),
        egt_names=tuple(t.name for t in netlist.transistors),
        egt_d=egt_d,
        egt_g=egt_g,
        egt_s=egt_s,
        egt_width=np.array([t.width for t in netlist.transistors], dtype=np.float64),
        egt_length=np.array([t.length for t in netlist.transistors], dtype=np.float64),
        egt_k_prime=np.array(
            [t.model.k_prime for t in netlist.transistors], dtype=np.float64
        ),
        egt_v_threshold=np.array(
            [t.model.v_threshold for t in netlist.transistors], dtype=np.float64
        ),
        egt_phi=np.array([t.model.phi for t in netlist.transistors], dtype=np.float64),
        egt_channel_lambda=np.array(
            [t.model.channel_lambda for t in netlist.transistors], dtype=np.float64
        ),
        egt_models=tuple(t.model for t in netlist.transistors),
        res_nodes=tuple((r.node_a, r.node_b) for r in netlist.resistors),
        src_nodes=tuple((s.node_plus, s.node_minus) for s in netlist.sources),
        egt_nodes=tuple((t.drain, t.gate, t.source) for t in netlist.transistors),
    )
