"""Netlist container: named nodes, devices, and convenience builders."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.spice.components import EGT, Resistor, VoltageSource
from repro.spice.egt import EGTModel

GROUND = "0"


class Netlist:
    """A flat netlist of resistors, voltage sources and EGTs.

    Node names are free-form strings; ``"0"`` is ground.  Device names must
    be unique across the netlist.
    """

    def __init__(self, title: str = ""):
        self.title = title
        self.resistors: List[Resistor] = []
        self.sources: List[VoltageSource] = []
        self.transistors: List[EGT] = []
        self._names: set = set()

    # ------------------------------------------------------------------ #
    # builders                                                           #
    # ------------------------------------------------------------------ #

    def _register(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"duplicate device name: {name}")
        self._names.add(name)

    def add_resistor(self, name: str, node_a: str, node_b: str, resistance: float) -> Resistor:
        self._register(name)
        device = Resistor(name, node_a, node_b, resistance)
        self.resistors.append(device)
        return device

    def add_voltage_source(
        self, name: str, node_plus: str, node_minus: str, voltage: float
    ) -> VoltageSource:
        self._register(name)
        device = VoltageSource(name, node_plus, node_minus, voltage)
        self.sources.append(device)
        return device

    def add_egt(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        width: float,
        length: float,
        model: Optional[EGTModel] = None,
    ) -> EGT:
        self._register(name)
        device = EGT(name, drain, gate, source, width, length, model or EGTModel())
        self.transistors.append(device)
        return device

    # ------------------------------------------------------------------ #
    # queries                                                            #
    # ------------------------------------------------------------------ #

    @property
    def devices(self):
        return [*self.resistors, *self.sources, *self.transistors]

    def nodes(self) -> List[str]:
        """All node names, ground excluded, in deterministic order."""
        seen: Dict[str, None] = {}
        for device in self.resistors:
            seen.setdefault(device.node_a)
            seen.setdefault(device.node_b)
        for device in self.sources:
            seen.setdefault(device.node_plus)
            seen.setdefault(device.node_minus)
        for device in self.transistors:
            seen.setdefault(device.drain)
            seen.setdefault(device.gate)
            seen.setdefault(device.source)
        seen.pop(GROUND, None)
        return list(seen)

    def source(self, name: str) -> VoltageSource:
        for device in self.sources:
            if device.name == name:
                return device
        raise KeyError(f"no voltage source named {name!r}")

    def __repr__(self) -> str:
        return (
            f"Netlist({self.title!r}, R={len(self.resistors)}, "
            f"V={len(self.sources)}, T={len(self.transistors)})"
        )
