"""Circuit devices understood by the MNA solver."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spice.egt import EGTModel


@dataclass
class Resistor:
    """Linear resistor between two named nodes."""

    name: str
    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self):
        if self.resistance <= 0:
            raise ValueError(f"resistor {self.name}: resistance must be positive")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclass
class VoltageSource:
    """Ideal DC voltage source; ``node_plus`` is held at ``voltage`` above ``node_minus``."""

    name: str
    node_plus: str
    node_minus: str
    voltage: float


@dataclass
class EGT:
    """Printed electrolyte-gated transistor instance.

    The gate draws no DC current (the electrolyte gate is capacitive); the
    drain-source current follows :class:`~repro.spice.egt.EGTModel`.
    """

    name: str
    drain: str
    gate: str
    source: str
    width: float
    length: float
    model: EGTModel = field(default_factory=EGTModel)

    def __post_init__(self):
        if self.width <= 0 or self.length <= 0:
            raise ValueError(f"EGT {self.name}: W and L must be positive")
