"""A nonlinear DC circuit solver standing in for Cadence Virtuoso + pPDK.

The paper generates its surrogate-model dataset with SPICE simulations of
printed inverter circuits.  Neither the commercial simulator nor the printed
process design kit is available here, so this package implements the
required subset from scratch:

- :mod:`~repro.spice.netlist` — circuit description (named nodes, devices).
- :mod:`~repro.spice.components` — resistors, voltage sources, EGTs.
- :mod:`~repro.spice.egt` — a smooth compact model for printed
  electrolyte-gated transistors (synthetic pPDK, calibrated so that the
  two-inverter circuit of the paper produces tanh-like transfer curves).
- :mod:`~repro.spice.mna` — modified nodal analysis with Newton-Raphson
  iteration for the nonlinear devices.
- :mod:`~repro.spice.plan` — compiled stamp plans: a netlist lowered once
  into index arrays so hot loops never touch strings or dicts.
- :mod:`~repro.spice.batch` — vectorized Newton-Raphson over ``(B, n, n)``
  stacked MNA systems (bit-identical to the scalar solver per lane).
- :mod:`~repro.spice.sweep` — DC sweeps with warm starting (scalar and
  batched).
- :mod:`~repro.spice.validate` — connectivity checks (networkx based).
"""

from repro.spice.netlist import Netlist
from repro.spice.components import Resistor, VoltageSource, EGT
from repro.spice.egt import EGTModel, id_gm_gds
from repro.spice.mna import ConvergenceError, OperatingPoint, solve_dc
from repro.spice.plan import ParamBatch, StampPlan, compile_netlist
from repro.spice.batch import BatchOperatingPoint, solve_dc_batch
from repro.spice.sweep import dc_sweep, dc_sweep_batch
from repro.spice.validate import validate_netlist, NetlistError

__all__ = [
    "Netlist",
    "Resistor",
    "VoltageSource",
    "EGT",
    "EGTModel",
    "id_gm_gds",
    "ConvergenceError",
    "OperatingPoint",
    "solve_dc",
    "StampPlan",
    "ParamBatch",
    "compile_netlist",
    "BatchOperatingPoint",
    "solve_dc_batch",
    "dc_sweep",
    "dc_sweep_batch",
    "validate_netlist",
    "NetlistError",
]
