"""Modified nodal analysis with Newton-Raphson iteration.

Unknowns are the non-ground node voltages plus one branch current per ideal
voltage source.  Linear devices are stamped once; each Newton iteration
re-stamps the transistors with their linearized companion model

    Id ≈ Id* + gm (Vgs − Vgs*) + gds (Vds − Vds*)

until the node voltages stop moving.  A small ``gmin`` conductance from
every node to ground keeps the system well conditioned, and per-iteration
voltage damping keeps the iteration inside the model's smooth region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.spice.netlist import GROUND, Netlist
from repro.spice.validate import validate_netlist


class ConvergenceError(RuntimeError):
    """Raised when Newton-Raphson fails to converge."""


@dataclass
class OperatingPoint:
    """DC solution: node voltages and voltage-source branch currents."""

    voltages: Dict[str, float]
    source_currents: Dict[str, float]
    iterations: int

    def voltage(self, node: str) -> float:
        if node == GROUND:
            return 0.0
        return self.voltages[node]


def solve_dc(
    netlist: Netlist,
    initial: Optional[Dict[str, float]] = None,
    gmin: float = 1e-12,
    tol: float = 1e-10,
    max_iter: int = 200,
    damping: float = 0.5,
    validate: bool = True,
) -> OperatingPoint:
    """Solve the DC operating point of ``netlist``.

    Parameters
    ----------
    initial:
        Optional warm-start node voltages (used by sweeps).
    gmin:
        Conductance added from every node to ground.
    tol:
        Convergence threshold on the max node-voltage update (volts).
    max_iter:
        Newton iteration limit.
    damping:
        Maximum per-iteration node-voltage step (volts).
    """
    if validate:
        validate_netlist(netlist)

    nodes = netlist.nodes()
    index = {name: i for i, name in enumerate(nodes)}
    n_nodes = len(nodes)
    n_sources = len(netlist.sources)
    size = n_nodes + n_sources

    def node_idx(name: str) -> int:
        return -1 if name == GROUND else index[name]

    # --- constant (linear) stamps ------------------------------------- #
    base_matrix = np.zeros((size, size))
    base_rhs = np.zeros(size)

    for i in range(n_nodes):
        base_matrix[i, i] += gmin

    for resistor in netlist.resistors:
        g = resistor.conductance
        a, b = node_idx(resistor.node_a), node_idx(resistor.node_b)
        if a >= 0:
            base_matrix[a, a] += g
        if b >= 0:
            base_matrix[b, b] += g
        if a >= 0 and b >= 0:
            base_matrix[a, b] -= g
            base_matrix[b, a] -= g

    for k, source in enumerate(netlist.sources):
        row = n_nodes + k
        p, m = node_idx(source.node_plus), node_idx(source.node_minus)
        if p >= 0:
            base_matrix[p, row] += 1.0
            base_matrix[row, p] += 1.0
        if m >= 0:
            base_matrix[m, row] -= 1.0
            base_matrix[row, m] -= 1.0
        base_rhs[row] = source.voltage

    # --- Newton iteration --------------------------------------------- #
    voltages = np.full(n_nodes, 0.5)
    if initial:
        for name, value in initial.items():
            if name in index:
                voltages[index[name]] = value

    def v_of(i: int) -> float:
        return 0.0 if i < 0 else voltages[i]

    iterations = 0
    for iterations in range(1, max_iter + 1):
        matrix = base_matrix.copy()
        rhs = base_rhs.copy()

        for egt in netlist.transistors:
            d, g_node, s = node_idx(egt.drain), node_idx(egt.gate), node_idx(egt.source)
            vgs = v_of(g_node) - v_of(s)
            vds = v_of(d) - v_of(s)
            current, gm, gds = egt.model.ids(vgs, vds, egt.width, egt.length)
            # Companion model: I = Ieq + gm*Vgs + gds*Vds flowing drain→source.
            ieq = current - gm * vgs - gds * vds
            for row, polarity in ((d, +1.0), (s, -1.0)):
                if row < 0:
                    continue
                rhs[row] -= polarity * ieq
                if g_node >= 0:
                    matrix[row, g_node] += polarity * gm
                if s >= 0:
                    matrix[row, s] -= polarity * (gm + gds)
                if d >= 0:
                    matrix[row, d] += polarity * gds

        try:
            solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
            raise ConvergenceError(f"singular MNA matrix: {exc}") from exc

        new_voltages = solution[:n_nodes]
        if n_nodes:
            delta = new_voltages - voltages
            step = np.clip(delta, -damping, damping)
            voltages = voltages + step
            if np.max(np.abs(delta)) < tol:
                break
        else:
            break
    else:
        raise ConvergenceError(
            f"Newton-Raphson did not converge within {max_iter} iterations"
        )

    # Final consistent solve for source currents at the converged voltages.
    currents = solution[n_nodes:]
    return OperatingPoint(
        voltages={name: float(voltages[index[name]]) for name in nodes},
        source_currents={
            source.name: float(currents[k]) for k, source in enumerate(netlist.sources)
        },
        iterations=iterations,
    )
