"""DC sweeps with warm-started Newton iterations (scalar and batched)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.spice.mna import OperatingPoint, solve_dc
from repro.spice.netlist import GROUND, Netlist
from repro.spice.batch import solve_dc_batch
from repro.spice.plan import ParamBatch, StampPlan


def dc_sweep(
    netlist: Netlist,
    source_name: str,
    values: Iterable[float],
    output_node: Optional[str] = None,
    **solver_kwargs,
):
    """Sweep a voltage source and solve the DC operating point at each step.

    Each solve is warm-started from the previous solution, which makes the
    sweep both faster and more robust near high-gain transitions.

    Returns
    -------
    If ``output_node`` is given: ``(values, outputs)`` as float arrays.
    Otherwise: the list of :class:`OperatingPoint` objects.
    """
    values = [float(v) for v in values]
    source = netlist.source(source_name)
    original = source.voltage
    points: List[OperatingPoint] = []
    warm = None
    validated = False
    try:
        for value in values:
            source.voltage = value
            point = solve_dc(netlist, initial=warm, validate=not validated, **solver_kwargs)
            validated = True
            warm = point.voltages
            points.append(point)
    finally:
        source.voltage = original

    if output_node is None:
        return points
    xs = np.asarray(values, dtype=np.float64)
    ys = np.asarray([p.voltage(output_node) for p in points], dtype=np.float64)
    return xs, ys


def dc_sweep_batch(
    plan: StampPlan,
    param_batch: Optional[ParamBatch],
    source_name: str,
    values: Iterable[float],
    output_node: Optional[str] = None,
    batch_size: Optional[int] = None,
    **solver_kwargs,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sweep one voltage source across ``B`` lanes simultaneously.

    All lanes advance through the sweep in lockstep; each sweep column is
    warm-started from the previous column's solutions, exactly like the
    scalar :func:`dc_sweep`.  Lanes whose Newton iteration fails at some
    column are dropped from the remaining columns (the scalar path would
    have raised :class:`~repro.spice.mna.ConvergenceError` there) and
    reported in the returned mask.

    Returns
    -------
    ``(values, outputs, ok)`` where ``values`` is the ``(n_steps,)`` sweep
    axis, ``outputs`` is ``(B, n_steps)`` voltages of ``output_node`` (or
    ``(B, n_steps, n_nodes)`` node voltages when ``output_node`` is None)
    with NaN from the first failed column on, and ``ok`` is the ``(B,)``
    per-lane success mask.
    """
    values = np.asarray([float(v) for v in values], dtype=np.float64)
    if param_batch is not None and param_batch.batch_size is not None:
        batch = param_batch.batch_size
    elif batch_size is not None:
        batch = int(batch_size)
    else:
        raise ValueError("pass a ParamBatch or an explicit batch_size")

    n_nodes = plan.n_nodes
    volts = np.full((batch, len(values), n_nodes), np.nan)
    ok = np.ones(batch, dtype=bool)

    active = np.arange(batch)
    params = param_batch
    warm: Optional[np.ndarray] = None
    for j, value in enumerate(values):
        if not len(active):
            break
        solution = solve_dc_batch(
            plan,
            params,
            vin_batch={source_name: value},
            initial=warm,
            batch_size=len(active),
            **solver_kwargs,
        )
        good = solution.converged
        if not good.all():
            ok[active[~good]] = False
            active = active[good]
            if params is not None:
                params = params.take(good)
            if not len(active):
                break
        warm = solution.voltages[good]
        volts[active, j] = warm

    if output_node is None:
        return values, volts, ok
    if output_node == GROUND:
        outputs = np.zeros((batch, len(values)))
    else:
        outputs = volts[:, :, plan.node_index(output_node)]
    return values, outputs, ok
