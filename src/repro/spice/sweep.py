"""DC sweeps with warm-started Newton iterations."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.spice.mna import OperatingPoint, solve_dc
from repro.spice.netlist import Netlist


def dc_sweep(
    netlist: Netlist,
    source_name: str,
    values: Iterable[float],
    output_node: Optional[str] = None,
    **solver_kwargs,
):
    """Sweep a voltage source and solve the DC operating point at each step.

    Each solve is warm-started from the previous solution, which makes the
    sweep both faster and more robust near high-gain transitions.

    Returns
    -------
    If ``output_node`` is given: ``(values, outputs)`` as float arrays.
    Otherwise: the list of :class:`OperatingPoint` objects.
    """
    values = [float(v) for v in values]
    source = netlist.source(source_name)
    original = source.voltage
    points: List[OperatingPoint] = []
    warm = None
    validated = False
    try:
        for value in values:
            source.voltage = float(value)
            point = solve_dc(netlist, initial=warm, validate=not validated, **solver_kwargs)
            validated = True
            warm = point.voltages
            points.append(point)
    finally:
        source.voltage = original

    if output_node is None:
        return points
    xs = np.asarray(list(values), dtype=np.float64)
    ys = np.asarray([p.voltage(output_node) for p in points], dtype=np.float64)
    return xs, ys
