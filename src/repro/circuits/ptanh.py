"""The printed tanh-like (ptanh) circuit: two cascaded inverter stages.

The paper's Fig. 1 (right) shows an inverter-based nonlinear circuit with
five resistors R1..R5 and electrolyte-gated transistors whose geometry
(W, L) is a design parameter; cascading two inverters yields the tanh-like
transfer of Eq. 2.  The exact pPDK topology is proprietary, so the netlist
built here is a faithful synthetic equivalent with the same parameter
roles:

- ``R1``/``R2`` form the input voltage divider driving the first gate (the
  inequality R1 > R2 from Table I keeps its ratio below one half);
- stage 1 is an EGT (W, L) with load resistor ``R5`` from VDD;
- ``R3``/``R4`` form the inter-stage divider driving the second gate (this
  divider visibly loads stage 1, which is exactly the "surrounding circuit
  elements" interaction the paper mentions);
- stage 2 is an identical EGT with a fixed load, restoring the signal
  polarity so the overall transfer rises with the input.

Sweeping the input source through 0..VDD produces the characteristic curves
of Fig. 2 (left).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.spice.egt import EGTModel
from repro.spice.netlist import GROUND, Netlist
from repro.spice.sweep import dc_sweep

#: Supply voltage of the printed circuits (the paper works on a 1 V rail).
VDD = 1.0

#: Load resistance of the restoring second stage (fixed, not part of ω).
SECOND_STAGE_LOAD = 100e3

#: Node names used by the builder, for tests and documentation.
PTANH_NODES = {
    "input": "vin",
    "gate1": "g1",
    "drain1": "d1",
    "gate2": "g2",
    "output": "out",
}


def build_ptanh_netlist(
    omega: np.ndarray,
    vin: float = 0.0,
    model: Optional[EGTModel] = None,
) -> Netlist:
    """Build the two-stage nonlinear circuit for one design point ω.

    Parameters
    ----------
    omega:
        Physical parameters ``[R1, R2, R3, R4, R5, W, L]`` in SI units
        (ohms and micrometres, matching Table I).
    vin:
        Initial input-source voltage (swept afterwards).
    model:
        EGT compact model; defaults to the synthetic pPDK.
    """
    omega = np.asarray(omega, dtype=np.float64)
    if omega.shape != (7,):
        raise ValueError("omega must be [R1, R2, R3, R4, R5, W, L]")
    r1, r2, r3, r4, r5, width, length = (float(v) for v in omega)
    if min(r1, r2, r3, r4, r5) <= 0:
        raise ValueError("resistances must be positive")
    model = model or EGTModel()

    netlist = Netlist("ptanh")
    netlist.add_voltage_source("Vdd", "vdd", GROUND, VDD)
    netlist.add_voltage_source("Vin", PTANH_NODES["input"], GROUND, vin)

    # Input divider R1/R2.
    netlist.add_resistor("R1", PTANH_NODES["input"], PTANH_NODES["gate1"], r1)
    netlist.add_resistor("R2", PTANH_NODES["gate1"], GROUND, r2)

    # Stage 1: EGT with load R5.
    netlist.add_resistor("R5", "vdd", PTANH_NODES["drain1"], r5)
    netlist.add_egt(
        "T1", PTANH_NODES["drain1"], PTANH_NODES["gate1"], GROUND, width, length, model
    )

    # Inter-stage divider R3/R4 (loads stage 1).
    netlist.add_resistor("R3", PTANH_NODES["drain1"], PTANH_NODES["gate2"], r3)
    netlist.add_resistor("R4", PTANH_NODES["gate2"], GROUND, r4)

    # Stage 2: restoring inverter with a fixed load.
    netlist.add_resistor("RL2", "vdd", PTANH_NODES["output"], SECOND_STAGE_LOAD)
    netlist.add_egt(
        "T2", PTANH_NODES["output"], PTANH_NODES["gate2"], GROUND, width, length, model
    )
    return netlist


def simulate_ptanh_curve(
    omega: np.ndarray,
    n_points: int = 41,
    model: Optional[EGTModel] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sweep the ptanh circuit input and return ``(V_in, V_out)`` arrays.

    This is the reproduction's stand-in for a Cadence DC sweep: the output
    rises tanh-like from near 0 V to near VDD as the input sweeps 0..VDD.
    """
    netlist = build_ptanh_netlist(omega, model=model)
    values = np.linspace(0.0, VDD, n_points)
    return dc_sweep(netlist, "Vin", values, output_node=PTANH_NODES["output"])
