"""The printed tanh-like (ptanh) circuit: two cascaded inverter stages.

The paper's Fig. 1 (right) shows an inverter-based nonlinear circuit with
five resistors R1..R5 and electrolyte-gated transistors whose geometry
(W, L) is a design parameter; cascading two inverters yields the tanh-like
transfer of Eq. 2.  The exact pPDK topology is proprietary, so the netlist
built here is a faithful synthetic equivalent with the same parameter
roles:

- ``R1``/``R2`` form the input voltage divider driving the first gate (the
  inequality R1 > R2 from Table I keeps its ratio below one half);
- stage 1 is an EGT (W, L) with load resistor ``R5`` from VDD;
- ``R3``/``R4`` form the inter-stage divider driving the second gate (this
  divider visibly loads stage 1, which is exactly the "surrounding circuit
  elements" interaction the paper mentions);
- stage 2 is an identical EGT with a fixed load, restoring the signal
  polarity so the overall transfer rises with the input.

Sweeping the input source through 0..VDD produces the characteristic curves
of Fig. 2 (left).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.spice.egt import EGTModel
from repro.spice.netlist import GROUND, Netlist
from repro.spice.plan import ParamBatch, StampPlan, compile_netlist
from repro.spice.sweep import dc_sweep, dc_sweep_batch

#: Supply voltage of the printed circuits (the paper works on a 1 V rail).
VDD = 1.0

#: Load resistance of the restoring second stage (fixed, not part of ω).
SECOND_STAGE_LOAD = 100e3

#: Node names used by the builder, for tests and documentation.
PTANH_NODES = {
    "input": "vin",
    "gate1": "g1",
    "drain1": "d1",
    "gate2": "g2",
    "output": "out",
}


def build_ptanh_netlist(
    omega: np.ndarray,
    vin: float = 0.0,
    model: Optional[EGTModel] = None,
) -> Netlist:
    """Build the two-stage nonlinear circuit for one design point ω.

    Parameters
    ----------
    omega:
        Physical parameters ``[R1, R2, R3, R4, R5, W, L]`` in SI units
        (ohms and micrometres, matching Table I).
    vin:
        Initial input-source voltage (swept afterwards).
    model:
        EGT compact model; defaults to the synthetic pPDK.
    """
    omega = np.asarray(omega, dtype=np.float64)
    if omega.shape != (7,):
        raise ValueError("omega must be [R1, R2, R3, R4, R5, W, L]")
    r1, r2, r3, r4, r5, width, length = (float(v) for v in omega)
    if min(r1, r2, r3, r4, r5) <= 0:
        raise ValueError("resistances must be positive")
    model = model or EGTModel()

    netlist = Netlist("ptanh")
    netlist.add_voltage_source("Vdd", "vdd", GROUND, VDD)
    netlist.add_voltage_source("Vin", PTANH_NODES["input"], GROUND, vin)

    # Input divider R1/R2.
    netlist.add_resistor("R1", PTANH_NODES["input"], PTANH_NODES["gate1"], r1)
    netlist.add_resistor("R2", PTANH_NODES["gate1"], GROUND, r2)

    # Stage 1: EGT with load R5.
    netlist.add_resistor("R5", "vdd", PTANH_NODES["drain1"], r5)
    netlist.add_egt(
        "T1", PTANH_NODES["drain1"], PTANH_NODES["gate1"], GROUND, width, length, model
    )

    # Inter-stage divider R3/R4 (loads stage 1).
    netlist.add_resistor("R3", PTANH_NODES["drain1"], PTANH_NODES["gate2"], r3)
    netlist.add_resistor("R4", PTANH_NODES["gate2"], GROUND, r4)

    # Stage 2: restoring inverter with a fixed load.
    netlist.add_resistor("RL2", "vdd", PTANH_NODES["output"], SECOND_STAGE_LOAD)
    netlist.add_egt(
        "T2", PTANH_NODES["output"], PTANH_NODES["gate2"], GROUND, width, length, model
    )
    return netlist


def simulate_ptanh_curve(
    omega: np.ndarray,
    n_points: int = 41,
    model: Optional[EGTModel] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sweep the ptanh circuit input and return ``(V_in, V_out)`` arrays.

    This is the reproduction's stand-in for a Cadence DC sweep: the output
    rises tanh-like from near 0 V to near VDD as the input sweeps 0..VDD.
    """
    netlist = build_ptanh_netlist(omega, model=model)
    values = np.linspace(0.0, VDD, n_points)
    return dc_sweep(netlist, "Vin", values, output_node=PTANH_NODES["output"])


# --------------------------------------------------------------------- #
# batched simulation (Fig. 3 hot path)                                  #
# --------------------------------------------------------------------- #

#: A representative mid-space design used only to compile the topology.
_TEMPLATE_OMEGA = np.array([200.0, 80.0, 100e3, 40e3, 100e3, 500.0, 30.0])

_PLAN_CACHE: Dict[EGTModel, StampPlan] = {}


def ptanh_stamp_plan(model: Optional[EGTModel] = None) -> StampPlan:
    """The compiled stamp plan shared by every ptanh design point.

    All Table-I designs share one topology, so the netlist is lowered once
    per EGT model and reused by every batched sweep.
    """
    model = model or EGTModel()
    plan = _PLAN_CACHE.get(model)
    if plan is None:
        plan = compile_netlist(build_ptanh_netlist(_TEMPLATE_OMEGA, model=model))
        _PLAN_CACHE[model] = plan
    return plan


def ptanh_param_batch(omega_batch: np.ndarray, plan: StampPlan) -> ParamBatch:
    """Per-lane element values for a ``(B, 7)`` stack of design points."""
    omega_batch = np.asarray(omega_batch, dtype=np.float64)
    if omega_batch.ndim != 2 or omega_batch.shape[1] != 7:
        raise ValueError("omega_batch must be a (B, 7) array of design points")
    if np.any(omega_batch[:, :5] <= 0):
        raise ValueError("resistances must be positive")
    batch = len(omega_batch)
    by_name = {
        "R1": omega_batch[:, 0],
        "R2": omega_batch[:, 1],
        "R3": omega_batch[:, 2],
        "R4": omega_batch[:, 3],
        "R5": omega_batch[:, 4],
        "RL2": np.full(batch, SECOND_STAGE_LOAD),
    }
    resistances = np.stack([by_name[name] for name in plan.resistor_names], axis=1)
    widths = np.repeat(omega_batch[:, 5:6], plan.n_egts, axis=1)
    lengths = np.repeat(omega_batch[:, 6:7], plan.n_egts, axis=1)
    return ParamBatch(resistances=resistances, widths=widths, lengths=lengths)


def simulate_ptanh_curve_batch(
    omega_batch: np.ndarray,
    n_points: int = 41,
    model: Optional[EGTModel] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sweep many ptanh designs per DC solve (Fig. 3 hot path).

    Returns ``(V_in, V_out, ok)``: the shared ``(n_points,)`` input axis,
    the ``(B, n_points)`` output curves, and the ``(B,)`` success mask
    (``False`` where the scalar path would raise ``ConvergenceError``).
    Converged lanes match :func:`simulate_ptanh_curve` bit for bit.
    """
    plan = ptanh_stamp_plan(model)
    params = ptanh_param_batch(omega_batch, plan)
    values = np.linspace(0.0, VDD, n_points)
    return dc_sweep_batch(
        plan, params, "Vin", values, output_node=PTANH_NODES["output"]
    )
