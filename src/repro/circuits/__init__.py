"""Printed neuromorphic circuit primitives (Fig. 1 of the paper).

- :mod:`~repro.circuits.crossbar`: the resistor crossbar implementing the
  weighted sum of Eq. 1, both as an analytic model and as a netlist whose
  solved output cross-checks the analytic expression.
- :mod:`~repro.circuits.ptanh`: the two-stage inverter circuit whose
  transfer curve is tanh-like (Eq. 2), parameterized by
  ω = [R1, R2, R3, R4, R5, W, L].
- :mod:`~repro.circuits.negweight`: the negative-weight circuit (Eq. 3).
"""

from repro.circuits.crossbar import CrossbarColumn, crossbar_netlist, crossbar_output
from repro.circuits.ptanh import (
    PTANH_NODES,
    build_ptanh_netlist,
    ptanh_param_batch,
    ptanh_stamp_plan,
    simulate_ptanh_curve,
    simulate_ptanh_curve_batch,
)
from repro.circuits.negweight import (
    simulate_negweight_curve,
    simulate_negweight_curve_batch,
)

__all__ = [
    "CrossbarColumn",
    "crossbar_netlist",
    "crossbar_output",
    "PTANH_NODES",
    "build_ptanh_netlist",
    "ptanh_stamp_plan",
    "ptanh_param_batch",
    "simulate_ptanh_curve",
    "simulate_ptanh_curve_batch",
    "simulate_negweight_curve",
    "simulate_negweight_curve_batch",
]
