"""Resistor crossbar: the weighted-sum primitive (Eq. 1).

A crossbar column connects every input voltage ``V_i`` through a printed
resistor ``R_i^C`` to a shared output node ``V_z``, together with a bias
resistor to ``V_b`` and a "down" resistor to ground.  Kirchhoff's current
law gives

    V_z = Σ_i (g_i / G) V_i + (g_b / G) V_b,     G = Σ_i g_i + g_b + g_d

which is the weighted sum (with bias) the pNN training treats as a linear
layer.  This module provides both the analytic expression (used by the pNN
forward pass) and a netlist builder so the analytic model can be verified
against the circuit solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.spice.netlist import GROUND, Netlist


@dataclass
class CrossbarColumn:
    """One output column of a printed resistor crossbar.

    Attributes
    ----------
    input_conductances:
        Conductances ``g_i^C`` (S) from each input line to the output node.
    bias_conductance:
        Conductance ``g_b^C`` from the bias rail ``V_b`` to the output node.
    down_conductance:
        Conductance ``g_d^C`` from the output node to ground.
    bias_voltage:
        Bias rail voltage ``V_b`` (1 V by default, as in the paper).
    """

    input_conductances: Sequence[float]
    bias_conductance: float
    down_conductance: float
    bias_voltage: float = 1.0

    def __post_init__(self):
        self.input_conductances = np.asarray(self.input_conductances, dtype=np.float64)
        if np.any(self.input_conductances < 0):
            raise ValueError("conductances must be non-negative")
        if self.bias_conductance < 0 or self.down_conductance < 0:
            raise ValueError("conductances must be non-negative")

    @property
    def total_conductance(self) -> float:
        """The normalizer G = Σ g_i + g_b + g_d."""
        return float(
            self.input_conductances.sum() + self.bias_conductance + self.down_conductance
        )

    def weights(self) -> np.ndarray:
        """Effective weights ``g_i / G`` of the weighted sum."""
        return self.input_conductances / self.total_conductance

    def bias_weight(self) -> float:
        return self.bias_conductance / self.total_conductance


def crossbar_output(column: CrossbarColumn, input_voltages: Sequence[float]) -> float:
    """Analytic output voltage of one crossbar column (Eq. 1)."""
    inputs = np.asarray(input_voltages, dtype=np.float64)
    if inputs.shape != column.input_conductances.shape:
        raise ValueError("number of input voltages must match number of conductances")
    return float(inputs @ column.weights() + column.bias_weight() * column.bias_voltage)


def crossbar_netlist(
    column: CrossbarColumn,
    input_voltages: Sequence[float],
    output_node: str = "vz",
) -> Netlist:
    """Build the crossbar column as a netlist for solver cross-checks.

    Zero conductances mean "not printed" and are omitted from the netlist.
    """
    inputs = np.asarray(input_voltages, dtype=np.float64)
    netlist = Netlist("crossbar-column")
    for i, (g, v) in enumerate(zip(column.input_conductances, inputs)):
        node = f"in{i}"
        netlist.add_voltage_source(f"Vin{i}", node, GROUND, float(v))
        if g > 0:
            netlist.add_resistor(f"Rc{i}", node, output_node, 1.0 / g)
    netlist.add_voltage_source("Vb", "bias", GROUND, column.bias_voltage)
    if column.bias_conductance > 0:
        netlist.add_resistor("Rb", "bias", output_node, 1.0 / column.bias_conductance)
    if column.down_conductance > 0:
        netlist.add_resistor("Rd", output_node, GROUND, 1.0 / column.down_conductance)
    return netlist
