"""The printed negative-weight circuit (Eq. 3).

The paper uses "the same circuit as the ptanh circuit" for negative
weights: a single inverting stage whose falling transfer curve, referenced
to the supply rail, realizes the mathematical negation

    inv(V) = −(η1 + η2 · tanh((V − η3) · η4)).

In the pNN abstraction (as in the original printed-NN work) the
negative-weight transform produces *negative* values; physically the
circuit output lies in 0..VDD and the sign is absorbed by the crossbar
reformulation.  We therefore simulate the first inverter stage of the
shared netlist and report ``V_stage − VDD``, a falling curve in
(−VDD, 0) exactly as plotted in Fig. 2 (right).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits.ptanh import (
    PTANH_NODES,
    VDD,
    build_ptanh_netlist,
    ptanh_param_batch,
    ptanh_stamp_plan,
)
from repro.spice.egt import EGTModel
from repro.spice.sweep import dc_sweep, dc_sweep_batch


def simulate_negweight_curve(
    omega: np.ndarray,
    n_points: int = 41,
    model: Optional[EGTModel] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sweep the negative-weight circuit; return ``(V_in, inv(V_in))``.

    Uses the same physical netlist as the ptanh circuit (the paper's
    shortcut) with the output taken after the first, inverting stage and
    referenced to the supply rail, so the returned values are negative and
    fall with the input.
    """
    netlist = build_ptanh_netlist(omega, model=model)
    values = np.linspace(0.0, VDD, n_points)
    xs, stage1 = dc_sweep(netlist, "Vin", values, output_node=PTANH_NODES["gate2"])
    # Reference to the rail: the divider-tapped inverter output, shifted so
    # the curve expresses subtraction in the crossbar reformulation.
    return xs, stage1 - VDD


def simulate_negweight_curve_batch(
    omega_batch: np.ndarray,
    n_points: int = 41,
    model: Optional[EGTModel] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sweep many negative-weight designs per DC solve.

    Returns ``(V_in, inv(V_in), ok)`` with ``(B, n_points)`` curves and a
    ``(B,)`` success mask; converged lanes match
    :func:`simulate_negweight_curve` bit for bit.
    """
    plan = ptanh_stamp_plan(model)
    params = ptanh_param_batch(omega_batch, plan)
    values = np.linspace(0.0, VDD, n_points)
    xs, stage1, ok = dc_sweep_batch(
        plan, params, "Vin", values, output_node=PTANH_NODES["gate2"]
    )
    return xs, stage1 - VDD, ok
