"""The §IV-D improvement analysis derived from the Table-III grid.

The paper reports, for each test variation level:

- the relative accuracy improvement of the proposed method (learnable +
  variation-aware) over the baseline (neither);
- the relative robustness improvement (reduction of the accuracy std);
- the *contribution split*: how much of the accuracy improvement is
  attributable to the learnable nonlinear circuit vs. variation-aware
  training, measured from the two single-technique ablation rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import TEST_EPSILONS
from repro.experiments.runner import CellResult
from repro.experiments.tables import summarize_table3


@dataclass
class ImprovementSummary:
    """Improvements of the proposed method over the baseline at one ϵ."""

    eps: float
    accuracy_gain: float          # relative mean-accuracy improvement
    robustness_gain: float        # relative std reduction
    learnable_share: float        # contribution of the learnable circuit
    variation_share: float        # contribution of variation-aware training

    def __str__(self) -> str:
        return (
            f"ϵ={self.eps:.0%}: accuracy +{self.accuracy_gain:.0%}, "
            f"robustness +{self.robustness_gain:.0%} "
            f"(contributions: learnable {self.learnable_share:.0%}, "
            f"variation-aware {self.variation_share:.0%})"
        )


def improvement_summary(results: List[CellResult]) -> Dict[float, ImprovementSummary]:
    """Compute the §IV-D numbers from a full Table-II result set."""
    summary = summarize_table3(results)
    out: Dict[float, ImprovementSummary] = {}
    for eps in TEST_EPSILONS:
        baseline = summary[(False, False, eps)]
        proposed = summary[(True, True, eps)]
        only_learnable = summary[(True, False, eps)]
        only_variation = summary[(False, True, eps)]

        accuracy_gain = (proposed[0] - baseline[0]) / baseline[0]
        robustness_gain = (baseline[1] - proposed[1]) / baseline[1] if baseline[1] > 0 else 0.0

        delta_learnable = max(only_learnable[0] - baseline[0], 0.0)
        delta_variation = max(only_variation[0] - baseline[0], 0.0)
        total = delta_learnable + delta_variation
        learnable_share = delta_learnable / total if total > 0 else 0.5

        out[eps] = ImprovementSummary(
            eps=eps,
            accuracy_gain=accuracy_gain,
            robustness_gain=robustness_gain,
            learnable_share=learnable_share,
            variation_share=1.0 - learnable_share,
        )
    return out
