"""Data series for the paper's data figures (Fig. 2 and Fig. 4).

The harness produces the *numbers behind the plots* (series of curves and
scatter data) plus lightweight ASCII renderings, since the evaluation
environment is headless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.circuits.negweight import simulate_negweight_curve
from repro.circuits.ptanh import simulate_ptanh_curve
from repro.surrogate.dataset_builder import SurrogateDataset
from repro.surrogate.features import extend_with_ratios
from repro.surrogate.fitting import fit_ptanh, ptanh_curve
from repro.surrogate.sampling import sample_design_points
from repro.surrogate.training import SurrogateTrainingResult


@dataclass
class CharacteristicCurves:
    """Fig. 2: characteristic curves for a handful of design points."""

    omegas: np.ndarray
    v_in: np.ndarray
    ptanh_curves: np.ndarray      # (n_curves, n_points)
    negweight_curves: np.ndarray  # (n_curves, n_points)


def figure2_series(
    n_curves: int = 5, n_points: int = 41, seed: int = 3
) -> CharacteristicCurves:
    """Simulate the Fig. 2 curve families (left: ptanh, right: inv)."""
    omegas = sample_design_points(max(n_curves * 4, 16), seed=seed)
    kept_omegas, ptanh_curves, neg_curves, v_in = [], [], [], None
    for omega in omegas:
        x, y = simulate_ptanh_curve(omega, n_points=n_points)
        if y.max() - y.min() < 0.15:
            continue  # show expressive curves, as the paper's figure does
        _, y_neg = simulate_negweight_curve(omega, n_points=n_points)
        v_in = x
        kept_omegas.append(omega)
        ptanh_curves.append(y)
        neg_curves.append(y_neg)
        if len(kept_omegas) == n_curves:
            break
    return CharacteristicCurves(
        omegas=np.asarray(kept_omegas),
        v_in=v_in,
        ptanh_curves=np.asarray(ptanh_curves),
        negweight_curves=np.asarray(neg_curves),
    )


@dataclass
class Figure4Left:
    """Fig. 4 left: one simulated sweep and its fitted tanh curve."""

    v_in: np.ndarray
    v_out: np.ndarray
    eta: np.ndarray
    fitted: np.ndarray
    rmse: float


def figure4_left(seed: int = 5, n_points: int = 41) -> Figure4Left:
    """Pick an expressive design point, sweep it, fit η (Eq. 2)."""
    for omega in sample_design_points(64, seed=seed):
        v_in, v_out = simulate_ptanh_curve(omega, n_points=n_points)
        if v_out.max() - v_out.min() >= 0.3:
            fit = fit_ptanh(v_in, v_out)
            return Figure4Left(
                v_in=v_in,
                v_out=v_out,
                eta=fit.eta,
                fitted=ptanh_curve(fit.eta, v_in),
                rmse=fit.rmse,
            )
    raise RuntimeError("no expressive curve found; check the EGT calibration")


@dataclass
class Figure4Right:
    """Fig. 4 right: predicted vs. true normalized η per split."""

    true: Dict[str, np.ndarray]
    predicted: Dict[str, np.ndarray]
    r2_test: np.ndarray


def figure4_right(
    dataset: SurrogateDataset, result: SurrogateTrainingResult
) -> Figure4Right:
    """Scatter data (train / val / test) for a trained surrogate."""
    features = extend_with_ratios(dataset.omega)
    x = result.input_normalizer.normalize(features)
    y = result.eta_normalizer.normalize(dataset.eta)
    true, predicted = {}, {}
    for split, idx in result.splits.items():
        true[split] = y[idx]
        predicted[split] = result.model.predict(x[idx])
    return Figure4Right(true=true, predicted=predicted, r2_test=result.r2_per_eta)


def ascii_curves(
    v_in: np.ndarray, curves: np.ndarray, height: int = 12, width: int = 61
) -> str:
    """Render a curve family as ASCII art (for headless benches)."""
    lo = float(np.min(curves))
    hi = float(np.max(curves))
    span = max(hi - lo, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghij"
    for c, curve in enumerate(curves):
        xs = np.linspace(0, width - 1, len(v_in)).round().astype(int)
        ys = ((curve - lo) / span * (height - 1)).round().astype(int)
        for x_pix, y_pix in zip(xs, ys):
            grid[height - 1 - y_pix][x_pix] = markers[c % len(markers)]
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"Vin: {v_in[0]:.2f} .. {v_in[-1]:.2f} V    Vout: {lo:.2f} .. {hi:.2f} V")
    return "\n".join(lines)
