"""Experiment harness reproducing the paper's evaluation (Sec. IV).

- :mod:`~repro.experiments.config` — experiment profiles (paper-scale and
  scaled-down budgets) and the 2×2 ablation grid of setups.
- :mod:`~repro.experiments.runner` — trains pNNs per (dataset, setup, ϵ),
  selects the best seed by validation loss and evaluates with Monte-Carlo
  sampling, exactly following Sec. IV-C.
- :mod:`~repro.experiments.jobs` — the protocol decomposed into
  independent, hashable training jobs (dataset, setup, train ϵ, seed),
  plus the lane tier stacking same-group seeds for lockstep training.
- :mod:`~repro.experiments.cache` — SHA-256-keyed on-disk result cache
  plus the JSONL run journal.
- :mod:`~repro.experiments.parallel` — two-tier scheduler (lane batches
  first, process pool across batches); bit-for-bit identical to the
  serial runner at any worker count and lane width.
- :mod:`~repro.experiments.tables` — renders Table II and Table III.
- :mod:`~repro.experiments.report` — aggregate summary of a recorded
  :mod:`repro.telemetry` run (slowest jobs, cache hit ratio, SPICE
  fallback rates).
- :mod:`~repro.experiments.figures` — data series for Fig. 2 and Fig. 4.
- :mod:`~repro.experiments.ablation` — the §IV-D improvement summary.
"""

from repro.experiments.config import (
    ExperimentConfig,
    Setup,
    SETUPS,
    PROFILES,
    profile_from_env,
)
from repro.experiments.runner import (
    CellResult,
    mc_evaluation_seed,
    run_cell,
    run_dataset,
    run_table2,
)
from repro.experiments.jobs import (
    JobKey,
    JobOutcome,
    enumerate_jobs,
    execute_job,
    execute_job_lanes,
    group_jobs_into_lanes,
)
from repro.experiments.cache import ResultCache, RunJournal, job_digest
from repro.experiments.parallel import run_table2_parallel
from repro.experiments.report import render_telemetry_report
from repro.experiments.tables import (
    render_scenario_grid,
    render_table2,
    render_table3,
    split_by_scenario,
    summarize_table3,
)
from repro.experiments.ablation import improvement_summary

__all__ = [
    "JobKey",
    "JobOutcome",
    "enumerate_jobs",
    "execute_job",
    "execute_job_lanes",
    "group_jobs_into_lanes",
    "ResultCache",
    "RunJournal",
    "job_digest",
    "run_table2_parallel",
    "mc_evaluation_seed",
    "ExperimentConfig",
    "Setup",
    "SETUPS",
    "PROFILES",
    "profile_from_env",
    "CellResult",
    "run_cell",
    "run_dataset",
    "run_table2",
    "render_table2",
    "render_table3",
    "render_scenario_grid",
    "split_by_scenario",
    "render_telemetry_report",
    "summarize_table3",
    "improvement_summary",
]
