"""Experiment configurations and profiles.

The paper's full budget (10 seeds, early-stopping patience 5000,
N_train = 20, N_test = 100) takes GPU-days in the original; the profiles
below scale the budget while keeping the protocol identical, so the *shape*
of Table II/III (ordering of the four setups, robustness gains) is
preserved.  Select a profile with the ``REPRO_BENCH_PROFILE`` environment
variable (``smoke`` | ``fast`` | ``paper``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Setup:
    """One column group of Table II."""

    learnable: bool
    variation_aware: bool

    @property
    def label(self) -> str:
        nl = "learnable" if self.learnable else "non-learnable"
        tr = "variation-aware" if self.variation_aware else "nominal"
        return f"{nl} / {tr}"


#: The 2×2 ablation grid (Table III rows, Table II column groups).
SETUPS: Tuple[Setup, ...] = (
    Setup(learnable=False, variation_aware=False),   # baseline
    Setup(learnable=False, variation_aware=True),
    Setup(learnable=True, variation_aware=False),
    Setup(learnable=True, variation_aware=True),     # proposed
)

#: Variation levels at which every circuit is *tested* (Table II columns).
TEST_EPSILONS: Tuple[float, ...] = (0.05, 0.10)


@dataclass(frozen=True)
class ExperimentConfig:
    """Budget and protocol knobs for one experiment sweep."""

    seeds: Tuple[int, ...] = tuple(range(1, 11))   # the paper's seeds 1..10
    max_epochs: int = 30_000
    patience: int = 5_000
    n_mc_train: int = 20
    n_test: int = 100
    lr_theta: float = 0.1
    lr_omega: float = 0.005
    loss: str = "margin"
    hidden: int = 3                                 # the #input-3-#output topology
    max_train: Optional[int] = None                 # subsample cap for big datasets
    per_neuron_activation: bool = False
    mc_shards: int = 1                              # MC-evaluation shards (results invariant)

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        from dataclasses import replace

        return replace(self, **kwargs)

    def training_fingerprint(self) -> Dict[str, object]:
        """Fields that determine the outcome of one *training* job.

        Used by :mod:`repro.experiments.cache` to build the on-disk cache
        key.  Three fields are deliberately excluded:

        - ``seeds`` — the per-job seed is part of the job key itself, so a
          run with more seeds can reuse every job already trained;
        - ``n_test`` — Monte-Carlo *evaluation* budget; it never affects
          the trained design, only how it is measured afterwards;
        - ``mc_shards`` — evaluation parallelism; sharded and serial MC
          evaluation are bitwise identical, so shard counts share one
          cache.

        Any change to a field listed here invalidates cached designs.
        """
        return {
            "max_epochs": self.max_epochs,
            "patience": self.patience,
            "n_mc_train": self.n_mc_train,
            "lr_theta": self.lr_theta,
            "lr_omega": self.lr_omega,
            "loss": self.loss,
            "hidden": self.hidden,
            "max_train": self.max_train,
            "per_neuron_activation": self.per_neuron_activation,
        }


PROFILES: Dict[str, ExperimentConfig] = {
    "paper": ExperimentConfig(),
    "fast": ExperimentConfig(
        seeds=(1, 2, 3),
        max_epochs=1200,
        patience=300,
        n_mc_train=10,
        n_test=100,
        max_train=1500,
    ),
    "smoke": ExperimentConfig(
        seeds=(1,),
        max_epochs=150,
        patience=150,
        n_mc_train=5,
        n_test=20,
        max_train=400,
    ),
}


def profile_from_env(default: str = "smoke") -> ExperimentConfig:
    """Resolve the profile named by ``REPRO_BENCH_PROFILE``."""
    name = os.environ.get("REPRO_BENCH_PROFILE", default).lower()
    if name not in PROFILES:
        raise KeyError(
            f"unknown profile {name!r}; choose one of {', '.join(PROFILES)}"
        )
    return PROFILES[name]
