"""Rendering of Table II and Table III from cell results."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.variation import DEFAULT_SCENARIO, SCENARIOS
from repro.datasets.registry import DISPLAY_NAMES
from repro.experiments.config import TEST_EPSILONS
from repro.experiments.runner import CellResult

#: Column order of Table II: (learnable, variation-aware, eps).
TABLE2_COLUMNS: Tuple[Tuple[bool, bool, float], ...] = tuple(
    (learnable, variation_aware, eps)
    for learnable in (False, True)
    for variation_aware in (False, True)
    for eps in TEST_EPSILONS
)


def _cell_index(results: List[CellResult]) -> Dict[Tuple[str, bool, bool, float], CellResult]:
    index = {}
    for cell in results:
        key = (cell.dataset, cell.setup.learnable, cell.setup.variation_aware, cell.eps_test)
        index[key] = cell
    return index


def render_table2(results: List[CellResult]) -> str:
    """Format results like Table II (datasets × 8 columns, plus the average)."""
    index = _cell_index(results)
    datasets = list(dict.fromkeys(cell.dataset for cell in results))

    header_groups = (
        "Non-learnable/Nominal", "Non-learnable/Var-aware",
        "Learnable/Nominal", "Learnable/Var-aware",
    )
    lines = []
    title = f"{'Dataset':26s}"
    for group in header_groups:
        title += f"{group + ' 5%':>22s}{group + ' 10%':>23s}"
    lines.append(title)
    lines.append("-" * len(title))

    sums = np.zeros((len(TABLE2_COLUMNS), 2))
    counts = np.zeros(len(TABLE2_COLUMNS))
    for dataset in datasets:
        row = f"{DISPLAY_NAMES.get(dataset, dataset):26s}"
        for j, (learnable, variation_aware, eps) in enumerate(TABLE2_COLUMNS):
            cell = index.get((dataset, learnable, variation_aware, eps))
            if cell is None:
                row += f"{'—':>22s}"
                continue
            row += f"{cell.mean:>14.3f} ± {cell.std:.3f}"
            sums[j] += (cell.mean, cell.std)
            counts[j] += 1
        lines.append(row)

    lines.append("-" * len(title))
    average = f"{'Average':26s}"
    for j in range(len(TABLE2_COLUMNS)):
        if counts[j]:
            mean, std = sums[j] / counts[j]
            average += f"{mean:>14.3f} ± {std:.3f}"
        else:
            average += f"{'—':>22s}"
    lines.append(average)
    return "\n".join(lines)


def split_by_scenario(results: List[CellResult]) -> Dict[str, List[CellResult]]:
    """Partition cell results by scenario, preserving first-appearance order.

    Results produced before scenarios existed (or by the serial runner)
    all carry the default scenario and land in one bucket, so the split
    is a no-op for historical result sets.
    """
    buckets: Dict[str, List[CellResult]] = {}
    for cell in results:
        buckets.setdefault(cell.scenario, []).append(cell)
    return buckets


def render_scenario_grid(results: List[CellResult]) -> str:
    """Table-II-style robustness grid, one section per scenario.

    A single-scenario result set renders exactly like
    :func:`render_table2` (no section headers), so default runs keep
    their historical output byte for byte.
    """
    buckets = split_by_scenario(results)
    if list(buckets) == [DEFAULT_SCENARIO]:
        return render_table2(results)
    sections = []
    for scenario, cells in buckets.items():
        described = SCENARIOS.get(scenario)
        header = f"=== scenario: {scenario} ==="
        if described is not None:
            header += f"  ({described.description})"
        sections.append(header + "\n" + render_table2(cells))
    return "\n\n".join(sections)


def summarize_table3(results: List[CellResult]) -> Dict[Tuple[bool, bool, float], Tuple[float, float]]:
    """Average accuracy and std per (learnable, variation-aware, ϵ) setup."""
    buckets: Dict[Tuple[bool, bool, float], List[Tuple[float, float]]] = {}
    for cell in results:
        key = (cell.setup.learnable, cell.setup.variation_aware, cell.eps_test)
        buckets.setdefault(key, []).append((cell.mean, cell.std))
    summary = {}
    for key, values in buckets.items():
        arr = np.asarray(values)
        summary[key] = (float(arr[:, 0].mean()), float(arr[:, 1].mean()))
    return summary


def render_table3(results: List[CellResult]) -> str:
    """Format the ablation grid like Table III."""
    summary = summarize_table3(results)
    lines = [
        f"{'Learnable':>10s}{'Var-aware':>11s}{'ϵ=5%':>18s}{'ϵ=10%':>18s}",
        "-" * 57,
    ]
    for learnable, variation_aware in ((True, True), (True, False), (False, True), (False, False)):
        row = f"{'✓' if learnable else '✗':>10s}{'✓' if variation_aware else '✗':>11s}"
        for eps in TEST_EPSILONS:
            value = summary.get((learnable, variation_aware, eps))
            row += f"{value[0]:>9.3f} ± {value[1]:.3f}" if value else f"{'—':>18s}"
        lines.append(row)
    return "\n".join(lines)
