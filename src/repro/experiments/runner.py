"""Training/evaluation runner implementing the Sec. IV protocol.

For each (dataset, setup) cell:

1. train one pNN per random seed — nominal setups train once with ϵ = 0,
   variation-aware setups train separately per test ϵ (the paper tests VA
   circuits "with variation according to the respective training ε");
2. select the best pNN by validation loss (those are "the ones to be
   printed");
3. evaluate it on the test split with ``N_test`` Monte-Carlo fabrication
   samples and report mean ± std accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro import telemetry
from repro.core import (
    PrintedNeuralNetwork,
    TrainConfig,
    evaluate_mc,
    train_pnn,
)
from repro.core.variation import DEFAULT_SCENARIO
from repro.datasets import load_splits
from repro.datasets.base import DatasetSplits
from repro.experiments.config import SETUPS, TEST_EPSILONS, ExperimentConfig, Setup
from repro.surrogate.analytic import AnalyticSurrogate
from repro.surrogate.pipeline import SurrogateBundle

Surrogates = Union[SurrogateBundle, tuple]


@dataclass
class CellResult:
    """One Table-II cell: a setup evaluated at one test ϵ.

    ``scenario`` names the non-ideality scenario the cell was trained and
    evaluated under (:data:`repro.core.variation.SCENARIOS`); the serial
    runner only produces the default ε-only scenario, the parallel engine
    can sweep a scenario grid.
    """

    dataset: str
    setup: Setup
    eps_test: float
    mean: float
    std: float
    best_seed: int
    best_val_loss: float
    scenario: str = DEFAULT_SCENARIO

    def __str__(self) -> str:
        tag = "" if self.scenario == DEFAULT_SCENARIO else f" ({self.scenario})"
        return (
            f"{self.dataset} [{self.setup.label}] ϵ={self.eps_test:.0%}{tag}: "
            f"{self.mean:.3f} ± {self.std:.3f}"
        )


def default_surrogates() -> Tuple[AnalyticSurrogate, AnalyticSurrogate]:
    """Calibration-free fallback used when no NN bundle is supplied."""
    return (AnalyticSurrogate("ptanh"), AnalyticSurrogate("negweight"))


def mc_evaluation_seed(best_seed: int) -> int:
    """Seed of the Monte-Carlo *test* evaluation for a trained design.

    The protocol evaluates the best-of-seeds design with ``N_test``
    fabrication samples drawn from ``VariationModel(ϵ_test, seed)``.  That
    seed is derived — explicitly and deterministically — from the winning
    *training* seed, so (a) re-evaluating a design always reproduces the
    same accuracy distribution, and (b) the parallel engine
    (:mod:`repro.experiments.parallel`), the persistent result cache and
    this serial runner all agree bit-for-bit on every Table-II cell.

    The derivation is currently the identity.  It is factored out so any
    future change to the evaluation-noise stream happens in exactly one
    place (and visibly invalidates recorded results).
    """
    return int(best_seed)


def _train_best(
    splits: DatasetSplits,
    setup: Setup,
    train_eps: float,
    config: ExperimentConfig,
    surrogates: Surrogates,
) -> Tuple[PrintedNeuralNetwork, int, float]:
    """Train one pNN per seed; return the best one by validation loss."""
    best: Optional[Tuple[PrintedNeuralNetwork, int, float]] = None
    topology = [splits.n_features, config.hidden, splits.n_classes]
    for seed in config.seeds:
        pnn = PrintedNeuralNetwork(
            topology,
            surrogates,
            per_neuron_activation=config.per_neuron_activation,
            rng=np.random.default_rng(seed),
        )
        train_config = TrainConfig(
            lr_theta=config.lr_theta,
            lr_omega=config.lr_omega,
            learnable_nonlinear=setup.learnable,
            epsilon=train_eps,
            n_mc_train=config.n_mc_train,
            max_epochs=config.max_epochs,
            patience=config.patience,
            loss=config.loss,
            seed=seed,
        )
        result = train_pnn(
            pnn, splits.x_train, splits.y_train, splits.x_val, splits.y_val, train_config
        )
        if best is None or result.best_val_loss < best[2]:
            best = (pnn, seed, result.best_val_loss)
    assert best is not None
    return best


def run_cell(
    dataset: str,
    setup: Setup,
    eps_test: float,
    config: ExperimentConfig,
    surrogates: Optional[Surrogates] = None,
    splits: Optional[DatasetSplits] = None,
    trained: Optional[Dict] = None,
) -> CellResult:
    """Run one Table-II cell.

    Parameters
    ----------
    trained:
        Optional *in-process* memo dict keyed by the hashable tuple
        ``(learnable, variation_aware, train ϵ)``.  Nominal setups train
        once with ϵ = 0 and share that training across both test ϵ
        columns, so passing the same dict to all cells of one dataset
        (as :func:`run_dataset` does) avoids redundant trainings.

        This memo lives and dies with one Python process.  Its
        *persistent* counterpart is the on-disk result cache
        (:mod:`repro.experiments.cache`) used by
        :func:`repro.experiments.parallel.run_table2_parallel`: same
        sharing rule, but keyed additionally by dataset, config
        fingerprint, surrogate fingerprint and seed, and it survives
        interrupted runs.  The two compose — a cache-hit design is simply
        never re-trained, whichever layer it lands in.
    """
    surrogates = surrogates if surrogates is not None else default_surrogates()
    if splits is None:
        splits = load_splits(dataset, seed=0, max_train=config.max_train)
    train_eps = eps_test if setup.variation_aware else 0.0
    key = (bool(setup.learnable), bool(setup.variation_aware), float(train_eps))
    assert isinstance(hash(key), int), "trained-memo keys must be hashable tuples"
    tel = telemetry.get()
    with tel.span("cell.run", dataset=dataset, setup=setup.label,
                  eps_test=eps_test):
        if trained is not None and key in trained:
            pnn, seed, val_loss = trained[key]
        else:
            pnn, seed, val_loss = _train_best(splits, setup, train_eps, config, surrogates)
            if trained is not None:
                trained[key] = (pnn, seed, val_loss)
        with tel.span("cell.evaluate_mc", dataset=dataset, eps_test=eps_test):
            accuracy = evaluate_mc(
                pnn, splits.x_test, splits.y_test,
                epsilon=eps_test, n_test=config.n_test, seed=mc_evaluation_seed(seed),
            )
    return CellResult(
        dataset=dataset,
        setup=setup,
        eps_test=eps_test,
        mean=accuracy.mean,
        std=accuracy.std,
        best_seed=seed,
        best_val_loss=val_loss,
    )


def run_dataset(
    dataset: str,
    config: ExperimentConfig,
    surrogates: Optional[Surrogates] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[CellResult]:
    """All 8 Table-II cells (4 setups × 2 test ϵ) for one dataset."""
    surrogates = surrogates if surrogates is not None else default_surrogates()
    splits = load_splits(dataset, seed=0, max_train=config.max_train)
    results: List[CellResult] = []
    trained: Dict = {}
    for setup in SETUPS:
        for eps_test in TEST_EPSILONS:
            if progress is not None:
                progress(f"{dataset}: {setup.label} @ ϵ={eps_test:.0%}")
            results.append(
                run_cell(
                    dataset, setup, eps_test, config,
                    surrogates=surrogates, splits=splits, trained=trained,
                )
            )
    return results


def run_table2(
    datasets: List[str],
    config: ExperimentConfig,
    surrogates: Optional[Surrogates] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[CellResult]:
    """Run the full Table-II grid over ``datasets``."""
    surrogates = surrogates if surrogates is not None else default_surrogates()
    results: List[CellResult] = []
    for dataset in datasets:
        results.extend(run_dataset(dataset, config, surrogates=surrogates, progress=progress))
    return results
