"""Decomposition of the Table-II protocol into independent training jobs.

The Sec. IV grid is embarrassingly parallel: every cell trains one pNN per
random seed, and each training owns its own ``default_rng(seed)``, so jobs
can run in any order — or concurrently — without changing a single bit of
the result.  This module defines the unit of work:

- :class:`JobKey` — a frozen, hashable identifier
  ``(dataset, setup, train ϵ, seed, scenario)`` for one training run;
- :func:`enumerate_jobs` — the deduplicated job list for a set of
  datasets (nominal setups train once with ϵ = 0 and are shared across
  both test ϵ columns, exactly like the serial runner's ``trained`` dict);
- :func:`execute_job` — train one pNN and return a picklable
  :class:`JobOutcome` carrying the frozen
  :class:`~repro.core.params.PNNParams` inference snapshot (plain arrays
  and metadata, no live module or surrogate objects);
- :func:`group_jobs_into_lanes` / :func:`execute_job_lanes` — the lane
  tier: all seeds of one training group (same dataset, setup and
  training ϵ — see :attr:`JobKey.group`) are stacked on a leading lane
  axis and trained in lockstep by
  :func:`repro.core.lanes.train_pnn_lanes`, producing outcomes *bitwise*
  identical to per-job :func:`execute_job` calls at a fraction of the
  dispatch cost.

The snapshot *is* the design artifact: the parent process evaluates it
directly through the autograd-free kernel path
(:func:`repro.core.evaluation.evaluate_mc` accepts it as-is) — no module
reconstruction needed.

:mod:`repro.experiments.parallel` schedules these jobs across processes
and :mod:`repro.experiments.cache` persists their outcomes on disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.core import PrintedNeuralNetwork, TrainConfig, train_pnn
from repro.core.lanes import train_pnn_lanes
from repro.core.params import PNNParams, snapshot_params
from repro.core.variation import DEFAULT_SCENARIO
from repro.datasets import load_splits
from repro.datasets.base import DatasetSplits
from repro.experiments.config import SETUPS, TEST_EPSILONS, ExperimentConfig, Setup

#: The dataset split seed used by the whole Table-II protocol
#: (``run_dataset`` has always called ``load_splits(dataset, seed=0)``).
SPLIT_SEED = 0


@dataclass(frozen=True, order=True)
class JobKey:
    """Identity of one training job: ``(dataset, setup, train ϵ, seed)``.

    Frozen (hence hashable) and totally ordered, so job lists enumerate
    deterministically and keys can serve as dict/cache keys directly.

    Attributes
    ----------
    dataset:
        Registry name of the benchmark dataset (e.g. ``"iris"``).
    learnable, variation_aware:
        The :class:`~repro.experiments.config.Setup` flags, flattened so
        the key is a plain tuple of primitives.
    train_eps:
        Training variation level: the cell's test ϵ for variation-aware
        setups, ``0.0`` for nominal ones.
    seed:
        The random seed owning this training run (network init +
        variation sampling).
    scenario:
        Named non-ideality scenario from
        :data:`repro.core.variation.SCENARIOS`.  Appended with a default
        so pre-scenario call sites (and cached 5-element key metadata)
        keep working positionally.
    """

    dataset: str
    learnable: bool
    variation_aware: bool
    train_eps: float
    seed: int
    scenario: str = DEFAULT_SCENARIO

    @property
    def setup(self) -> Setup:
        """The 2×2-grid setup this job belongs to."""
        return Setup(learnable=self.learnable, variation_aware=self.variation_aware)

    @property
    def group(self) -> Tuple[str, bool, bool, float, str]:
        """Training-group key: all seeds of one ``(dataset, setup, train ϵ, scenario)``.

        The best-of-seeds selection and the serial runner's ``trained``
        dict both operate at this granularity.
        """
        return (
            self.dataset, self.learnable, self.variation_aware,
            self.train_eps, self.scenario,
        )

    def astuple(self) -> Tuple[str, bool, bool, float, int, str]:
        """The key as a plain tuple (stable field order, scenario last)."""
        return tuple(getattr(self, f.name) for f in fields(self))


@dataclass
class JobOutcome:
    """Everything a finished training job hands back to the scheduler.

    Deliberately contains only primitives and numpy arrays so it crosses
    process boundaries (and the on-disk cache) without dragging along live
    surrogate or autograd objects.

    Attributes
    ----------
    key:
        The job's :class:`JobKey`.
    topology:
        Layer sizes of the trained network, ``(n_features, hidden,
        n_classes)``.
    per_neuron_activation:
        Structural flag the network was built with.
    params:
        The frozen :class:`~repro.core.params.PNNParams` inference
        snapshot of the trained design; ``None`` when the outcome was
        restored from the persistent cache and the design has not been
        materialized yet (see
        :meth:`~repro.experiments.cache.ResultCache.load_design`).
    val_loss:
        Best validation loss reached (the best-of-seeds criterion).
    best_epoch, epochs_run:
        Early-stopping bookkeeping, journaled for observability.
    wall_time:
        Training wall time in seconds (0.0 for cache hits).
    cache_hit:
        Whether this outcome was served from the persistent cache.
    digest:
        The cache digest the outcome is stored under (``None`` when
        caching is disabled).
    backend:
        Kernel execution backend the job trained with
        (:mod:`repro.core.backends`).  Attribution metadata only —
        backends are bitwise-equal, so it is *not* part of the digest.
    """

    key: JobKey
    topology: Tuple[int, ...]
    per_neuron_activation: bool
    val_loss: float
    best_epoch: int
    epochs_run: int
    wall_time: float
    params: Optional[PNNParams] = None
    cache_hit: bool = False
    digest: Optional[str] = None
    backend: str = "numpy"


def train_epsilon(setup: Setup, eps_test: float) -> float:
    """The training ϵ a cell uses: its test ϵ if variation-aware, else 0."""
    return eps_test if setup.variation_aware else 0.0


def iter_cells(datasets: List[str]) -> Iterator[Tuple[str, Setup, float]]:
    """Yield Table-II cells ``(dataset, setup, test ϵ)`` in render order.

    The order matches the serial :func:`~repro.experiments.runner.run_table2`
    exactly, so results assembled from job outcomes line up row for row.
    """
    for dataset in datasets:
        for setup in SETUPS:
            for eps_test in TEST_EPSILONS:
                yield dataset, setup, eps_test


def enumerate_jobs(
    datasets: List[str],
    config: ExperimentConfig,
    scenarios: Tuple[str, ...] = (DEFAULT_SCENARIO,),
) -> List[JobKey]:
    """The deduplicated training jobs behind a Table-II run.

    Nominal setups share a single ϵ = 0 training across both test ϵ
    columns — the on-disk analogue of the serial runner's ``trained``
    dict — so 4 setups × 2 test ϵ collapse to 6 training groups per
    dataset, each fanned out over ``config.seeds``.  Each scenario gets
    its own full grid (scenario-major order), since a scenario changes
    what the training optimizes against.

    Returns
    -------
    list of JobKey
        In deterministic scenario order, then cell order, then seed
        order; every key is hashable and unique.
    """
    jobs: List[JobKey] = []
    seen = set()
    for scenario in scenarios:
        for dataset, setup, eps_test in iter_cells(datasets):
            group = (
                dataset, setup.learnable, setup.variation_aware,
                train_epsilon(setup, eps_test), scenario,
            )
            if group in seen:
                continue
            seen.add(group)
            for seed in config.seeds:
                key = JobKey(
                    dataset=dataset,
                    learnable=setup.learnable,
                    variation_aware=setup.variation_aware,
                    train_eps=train_epsilon(setup, eps_test),
                    seed=int(seed),
                    scenario=scenario,
                )
                assert isinstance(hash(key), int) and key.astuple() == (
                    key.dataset, key.learnable, key.variation_aware,
                    key.train_eps, key.seed, key.scenario,
                ), "job keys must be hashable dataclass tuples"
                jobs.append(key)
    return jobs


def _train_config(
    key: JobKey, config: ExperimentConfig, backend: str = "numpy"
) -> TrainConfig:
    """The :class:`TrainConfig` a job trains with (single source of truth).

    Shared by :func:`execute_job` and :func:`execute_job_lanes` so the
    serial and lane tiers can never drift apart on hyperparameters.
    """
    return TrainConfig(
        lr_theta=config.lr_theta,
        lr_omega=config.lr_omega,
        learnable_nonlinear=key.learnable,
        epsilon=key.train_eps,
        n_mc_train=config.n_mc_train,
        max_epochs=config.max_epochs,
        patience=config.patience,
        loss=config.loss,
        seed=key.seed,
        scenario=key.scenario,
        backend=backend,
    )


def execute_job(
    key: JobKey,
    config: ExperimentConfig,
    surrogates,
    splits: Optional[DatasetSplits] = None,
    engine: str = "kernel",
    backend: str = "numpy",
) -> JobOutcome:
    """Train one pNN for ``key`` — bit-identical to the serial runner.

    The network is seeded with ``default_rng(key.seed)`` and trained with
    the same :class:`~repro.core.training.TrainConfig` the serial
    ``_train_best`` loop builds, so executing jobs out of order (or in
    other processes) reproduces the serial results exactly.

    Parameters
    ----------
    key:
        The job identity.
    config:
        The experiment profile; only its training fields (see
        :meth:`ExperimentConfig.training_fingerprint`) influence the
        outcome.
    surrogates:
        Surrogate bundle or analytic pair; *read-only* during training.
    splits:
        Optional pre-loaded dataset splits; when ``None`` they are loaded
        with the protocol's fixed :data:`SPLIT_SEED`.
    engine:
        Training execution engine, forwarded to
        :func:`~repro.core.training.train_pnn` (``"kernel"`` fast path by
        default, ``"autograd"`` as the cross-check).  Both engines consume
        the same RNG streams and agree to float64 rounding, so the engine
        choice is deliberately *not* part of the cache fingerprint
        (:meth:`ExperimentConfig.training_fingerprint`) — switching it must
        not invalidate recorded results.
    backend:
        Kernel execution backend (:mod:`repro.core.backends`), forwarded
        through :attr:`TrainConfig.backend`.  Bitwise-equal across
        backends, hence — like ``engine`` — outside the cache fingerprint.

    Returns
    -------
    JobOutcome
        With the trained design's frozen ``params`` snapshot attached.
    """
    if splits is None:
        splits = load_splits(key.dataset, seed=SPLIT_SEED, max_train=config.max_train)
    topology = (splits.n_features, config.hidden, splits.n_classes)
    tel = telemetry.get()
    start = time.perf_counter()
    cpu_start = time.process_time()
    with tel.span(
        "job.execute",
        dataset=key.dataset,
        learnable=key.learnable,
        variation_aware=key.variation_aware,
        train_eps=key.train_eps,
        seed=key.seed,
        scenario=key.scenario,
        engine=engine,
        backend=backend,
    ):
        pnn = PrintedNeuralNetwork(
            list(topology),
            surrogates,
            per_neuron_activation=config.per_neuron_activation,
            rng=np.random.default_rng(key.seed),
        )
        train_config = _train_config(key, config, backend=backend)
        result = train_pnn(
            pnn, splits.x_train, splits.y_train, splits.x_val, splits.y_val,
            train_config, engine=engine,
        )
    wall_time = time.perf_counter() - start
    if tel.enabled:
        tel.event(
            "job.done",
            dataset=key.dataset,
            learnable=key.learnable,
            variation_aware=key.variation_aware,
            train_eps=key.train_eps,
            seed=key.seed,
            scenario=key.scenario,
            wall_s=wall_time,
            cpu_s=time.process_time() - cpu_start,
            epochs_run=result.epochs_run,
            best_epoch=result.best_epoch,
            val_loss=result.best_val_loss,
        )
    return JobOutcome(
        key=key,
        topology=topology,
        per_neuron_activation=config.per_neuron_activation,
        val_loss=result.best_val_loss,
        best_epoch=result.best_epoch,
        epochs_run=result.epochs_run,
        wall_time=wall_time,
        params=snapshot_params(pnn),
        backend=backend,
    )


def group_jobs_into_lanes(
    jobs: List[JobKey], lane_width: int
) -> List[List[JobKey]]:
    """Chunk a job list into lane batches of at most ``lane_width``.

    Jobs sharing a :attr:`JobKey.group` (same dataset, setup and training
    ϵ — hence the same splits, topology and shared hyperparameters) are
    lane-compatible; they are batched in input order, and batches are
    emitted in first-appearance order of their group, so the schedule is
    deterministic for a deterministic job list.  ``lane_width <= 1``
    degenerates to one singleton batch per job (the serial tier).

    Because lane execution is bitwise identical to serial execution, the
    chunking policy affects wall time only — never results.
    """
    if lane_width <= 1:
        return [[key] for key in jobs]
    buckets: "dict[tuple, List[JobKey]]" = {}
    order: List[tuple] = []
    for key in jobs:
        group = key.group
        if group not in buckets:
            buckets[group] = []
            order.append(group)
        buckets[group].append(key)
    batches: List[List[JobKey]] = []
    for group in order:
        members = buckets[group]
        for start in range(0, len(members), lane_width):
            batches.append(members[start:start + lane_width])
    return batches


def execute_job_lanes(
    keys: List[JobKey],
    config: ExperimentConfig,
    surrogates,
    splits: Optional[DatasetSplits] = None,
    backend: str = "numpy",
) -> List[JobOutcome]:
    """Train one lane batch in lockstep — bitwise equal to serial jobs.

    All ``keys`` must share a :attr:`JobKey.group`; each key becomes one
    lane of a :func:`repro.core.lanes.train_pnn_lanes` run.  Every lane's
    network is seeded with ``default_rng(key.seed)`` exactly as
    :func:`execute_job` does, and the lane engine is bitwise equal to the
    serial kernel engine per lane, so the returned outcomes carry the
    same losses, epochs and parameter snapshots as ``L`` separate
    :func:`execute_job` calls (pinned by
    ``tests/experiments/test_lane_jobs.py``).

    A width-1 batch falls through to :func:`execute_job` unchanged.  The
    reported ``wall_time`` is the batch wall time divided evenly across
    lanes (the scheduler-visible amortized cost); telemetry gets one
    ``job.lanes`` span for the batch plus the usual per-job ``job.done``
    events tagged with ``lanes=len(keys)``.
    """
    keys = list(keys)
    if not keys:
        return []
    first = keys[0]
    if any(key.group != first.group for key in keys):
        raise ValueError("lane batch must share one training group")
    if splits is None:
        splits = load_splits(first.dataset, seed=SPLIT_SEED, max_train=config.max_train)
    if len(keys) == 1:
        return [execute_job(first, config, surrogates, splits=splits, backend=backend)]

    topology = (splits.n_features, config.hidden, splits.n_classes)
    tel = telemetry.get()
    start = time.perf_counter()
    cpu_start = time.process_time()
    with tel.span(
        "job.lanes",
        dataset=first.dataset,
        learnable=first.learnable,
        variation_aware=first.variation_aware,
        train_eps=first.train_eps,
        scenario=first.scenario,
        n_lanes=len(keys),
        seeds=[key.seed for key in keys],
        backend=backend,
    ):
        pnns = [
            PrintedNeuralNetwork(
                list(topology),
                surrogates,
                per_neuron_activation=config.per_neuron_activation,
                rng=np.random.default_rng(key.seed),
            )
            for key in keys
        ]
        results = train_pnn_lanes(
            pnns,
            splits.x_train, splits.y_train, splits.x_val, splits.y_val,
            [_train_config(key, config, backend=backend) for key in keys],
        )
    wall_time = time.perf_counter() - start
    cpu_time = time.process_time() - cpu_start
    wall_share = wall_time / len(keys)
    cpu_share = cpu_time / len(keys)

    outcomes: List[JobOutcome] = []
    for key, pnn, result in zip(keys, pnns, results):
        if tel.enabled:
            tel.event(
                "job.done",
                dataset=key.dataset,
                learnable=key.learnable,
                variation_aware=key.variation_aware,
                train_eps=key.train_eps,
                seed=key.seed,
                scenario=key.scenario,
                wall_s=wall_share,
                cpu_s=cpu_share,
                epochs_run=result.epochs_run,
                best_epoch=result.best_epoch,
                val_loss=result.best_val_loss,
                lanes=len(keys),
            )
        outcomes.append(
            JobOutcome(
                key=key,
                topology=topology,
                per_neuron_activation=config.per_neuron_activation,
                val_loss=result.best_val_loss,
                best_epoch=result.best_epoch,
                epochs_run=result.epochs_run,
                wall_time=wall_share,
                params=snapshot_params(pnn),
                backend=backend,
            )
        )
    return outcomes
