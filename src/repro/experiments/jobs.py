"""Decomposition of the Table-II protocol into independent training jobs.

The Sec. IV grid is embarrassingly parallel: every cell trains one pNN per
random seed, and each training owns its own ``default_rng(seed)``, so jobs
can run in any order — or concurrently — without changing a single bit of
the result.  This module defines the unit of work:

- :class:`JobKey` — a frozen, hashable identifier
  ``(dataset, setup, train ϵ, seed)`` for one training run;
- :func:`enumerate_jobs` — the deduplicated job list for a set of
  datasets (nominal setups train once with ϵ = 0 and are shared across
  both test ϵ columns, exactly like the serial runner's ``trained`` dict);
- :func:`execute_job` — train one pNN and return a picklable
  :class:`JobOutcome` carrying the frozen
  :class:`~repro.core.params.PNNParams` inference snapshot (plain arrays
  and metadata, no live module or surrogate objects).

The snapshot *is* the design artifact: the parent process evaluates it
directly through the autograd-free kernel path
(:func:`repro.core.evaluation.evaluate_mc` accepts it as-is) — no module
reconstruction needed.

:mod:`repro.experiments.parallel` schedules these jobs across processes
and :mod:`repro.experiments.cache` persists their outcomes on disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.core import PrintedNeuralNetwork, TrainConfig, train_pnn
from repro.core.params import PNNParams, snapshot_params
from repro.datasets import load_splits
from repro.datasets.base import DatasetSplits
from repro.experiments.config import SETUPS, TEST_EPSILONS, ExperimentConfig, Setup

#: The dataset split seed used by the whole Table-II protocol
#: (``run_dataset`` has always called ``load_splits(dataset, seed=0)``).
SPLIT_SEED = 0


@dataclass(frozen=True, order=True)
class JobKey:
    """Identity of one training job: ``(dataset, setup, train ϵ, seed)``.

    Frozen (hence hashable) and totally ordered, so job lists enumerate
    deterministically and keys can serve as dict/cache keys directly.

    Attributes
    ----------
    dataset:
        Registry name of the benchmark dataset (e.g. ``"iris"``).
    learnable, variation_aware:
        The :class:`~repro.experiments.config.Setup` flags, flattened so
        the key is a plain tuple of primitives.
    train_eps:
        Training variation level: the cell's test ϵ for variation-aware
        setups, ``0.0`` for nominal ones.
    seed:
        The random seed owning this training run (network init +
        variation sampling).
    """

    dataset: str
    learnable: bool
    variation_aware: bool
    train_eps: float
    seed: int

    @property
    def setup(self) -> Setup:
        """The 2×2-grid setup this job belongs to."""
        return Setup(learnable=self.learnable, variation_aware=self.variation_aware)

    @property
    def group(self) -> Tuple[str, bool, bool, float]:
        """Training-group key: all seeds of one ``(dataset, setup, train ϵ)``.

        The best-of-seeds selection and the serial runner's ``trained``
        dict both operate at this granularity.
        """
        return (self.dataset, self.learnable, self.variation_aware, self.train_eps)

    def astuple(self) -> Tuple[str, bool, bool, float, int]:
        """The key as a plain tuple (stable field order)."""
        return tuple(getattr(self, f.name) for f in fields(self))


@dataclass
class JobOutcome:
    """Everything a finished training job hands back to the scheduler.

    Deliberately contains only primitives and numpy arrays so it crosses
    process boundaries (and the on-disk cache) without dragging along live
    surrogate or autograd objects.

    Attributes
    ----------
    key:
        The job's :class:`JobKey`.
    topology:
        Layer sizes of the trained network, ``(n_features, hidden,
        n_classes)``.
    per_neuron_activation:
        Structural flag the network was built with.
    params:
        The frozen :class:`~repro.core.params.PNNParams` inference
        snapshot of the trained design; ``None`` when the outcome was
        restored from the persistent cache and the design has not been
        materialized yet (see
        :meth:`~repro.experiments.cache.ResultCache.load_design`).
    val_loss:
        Best validation loss reached (the best-of-seeds criterion).
    best_epoch, epochs_run:
        Early-stopping bookkeeping, journaled for observability.
    wall_time:
        Training wall time in seconds (0.0 for cache hits).
    cache_hit:
        Whether this outcome was served from the persistent cache.
    digest:
        The cache digest the outcome is stored under (``None`` when
        caching is disabled).
    """

    key: JobKey
    topology: Tuple[int, ...]
    per_neuron_activation: bool
    val_loss: float
    best_epoch: int
    epochs_run: int
    wall_time: float
    params: Optional[PNNParams] = None
    cache_hit: bool = False
    digest: Optional[str] = None


def train_epsilon(setup: Setup, eps_test: float) -> float:
    """The training ϵ a cell uses: its test ϵ if variation-aware, else 0."""
    return eps_test if setup.variation_aware else 0.0


def iter_cells(datasets: List[str]) -> Iterator[Tuple[str, Setup, float]]:
    """Yield Table-II cells ``(dataset, setup, test ϵ)`` in render order.

    The order matches the serial :func:`~repro.experiments.runner.run_table2`
    exactly, so results assembled from job outcomes line up row for row.
    """
    for dataset in datasets:
        for setup in SETUPS:
            for eps_test in TEST_EPSILONS:
                yield dataset, setup, eps_test


def enumerate_jobs(datasets: List[str], config: ExperimentConfig) -> List[JobKey]:
    """The deduplicated training jobs behind a Table-II run.

    Nominal setups share a single ϵ = 0 training across both test ϵ
    columns — the on-disk analogue of the serial runner's ``trained``
    dict — so 4 setups × 2 test ϵ collapse to 6 training groups per
    dataset, each fanned out over ``config.seeds``.

    Returns
    -------
    list of JobKey
        In deterministic cell order, then seed order; every key is
        hashable and unique.
    """
    jobs: List[JobKey] = []
    seen = set()
    for dataset, setup, eps_test in iter_cells(datasets):
        group = (dataset, setup.learnable, setup.variation_aware, train_epsilon(setup, eps_test))
        if group in seen:
            continue
        seen.add(group)
        for seed in config.seeds:
            key = JobKey(
                dataset=dataset,
                learnable=setup.learnable,
                variation_aware=setup.variation_aware,
                train_eps=train_epsilon(setup, eps_test),
                seed=int(seed),
            )
            assert isinstance(hash(key), int) and key.astuple() == (
                key.dataset, key.learnable, key.variation_aware, key.train_eps, key.seed,
            ), "job keys must be hashable dataclass tuples"
            jobs.append(key)
    return jobs


def execute_job(
    key: JobKey,
    config: ExperimentConfig,
    surrogates,
    splits: Optional[DatasetSplits] = None,
    engine: str = "kernel",
) -> JobOutcome:
    """Train one pNN for ``key`` — bit-identical to the serial runner.

    The network is seeded with ``default_rng(key.seed)`` and trained with
    the same :class:`~repro.core.training.TrainConfig` the serial
    ``_train_best`` loop builds, so executing jobs out of order (or in
    other processes) reproduces the serial results exactly.

    Parameters
    ----------
    key:
        The job identity.
    config:
        The experiment profile; only its training fields (see
        :meth:`ExperimentConfig.training_fingerprint`) influence the
        outcome.
    surrogates:
        Surrogate bundle or analytic pair; *read-only* during training.
    splits:
        Optional pre-loaded dataset splits; when ``None`` they are loaded
        with the protocol's fixed :data:`SPLIT_SEED`.
    engine:
        Training execution engine, forwarded to
        :func:`~repro.core.training.train_pnn` (``"kernel"`` fast path by
        default, ``"autograd"`` as the cross-check).  Both engines consume
        the same RNG streams and agree to float64 rounding, so the engine
        choice is deliberately *not* part of the cache fingerprint
        (:meth:`ExperimentConfig.training_fingerprint`) — switching it must
        not invalidate recorded results.

    Returns
    -------
    JobOutcome
        With the trained design's frozen ``params`` snapshot attached.
    """
    if splits is None:
        splits = load_splits(key.dataset, seed=SPLIT_SEED, max_train=config.max_train)
    topology = (splits.n_features, config.hidden, splits.n_classes)
    tel = telemetry.get()
    start = time.perf_counter()
    cpu_start = time.process_time()
    with tel.span(
        "job.execute",
        dataset=key.dataset,
        learnable=key.learnable,
        variation_aware=key.variation_aware,
        train_eps=key.train_eps,
        seed=key.seed,
        engine=engine,
    ):
        pnn = PrintedNeuralNetwork(
            list(topology),
            surrogates,
            per_neuron_activation=config.per_neuron_activation,
            rng=np.random.default_rng(key.seed),
        )
        train_config = TrainConfig(
            lr_theta=config.lr_theta,
            lr_omega=config.lr_omega,
            learnable_nonlinear=key.learnable,
            epsilon=key.train_eps,
            n_mc_train=config.n_mc_train,
            max_epochs=config.max_epochs,
            patience=config.patience,
            loss=config.loss,
            seed=key.seed,
        )
        result = train_pnn(
            pnn, splits.x_train, splits.y_train, splits.x_val, splits.y_val,
            train_config, engine=engine,
        )
    wall_time = time.perf_counter() - start
    if tel.enabled:
        tel.event(
            "job.done",
            dataset=key.dataset,
            learnable=key.learnable,
            variation_aware=key.variation_aware,
            train_eps=key.train_eps,
            seed=key.seed,
            wall_s=wall_time,
            cpu_s=time.process_time() - cpu_start,
            epochs_run=result.epochs_run,
            best_epoch=result.best_epoch,
            val_loss=result.best_val_loss,
        )
    return JobOutcome(
        key=key,
        topology=topology,
        per_neuron_activation=config.per_neuron_activation,
        val_loss=result.best_val_loss,
        best_epoch=result.best_epoch,
        epochs_run=result.epochs_run,
        wall_time=wall_time,
        params=snapshot_params(pnn),
    )
