"""Command-line interface for the experiment harness.

Examples
--------
Build (or refresh) the shared surrogate bundle::

    python -m repro.experiments.cli surrogate --points 4096

Run one Table-II cell::

    python -m repro.experiments.cli cell --dataset iris --learnable \
        --variation-aware --epsilon 0.10 --profile fast

Regenerate the full Table II / Table III at a profile::

    python -m repro.experiments.cli table2 --profile smoke --datasets iris seeds

Fan the trainings out over 4 processes with the on-disk result cache (a
re-run — or a run interrupted and restarted — re-trains nothing)::

    python -m repro.experiments.cli table2 --profile smoke --datasets iris \
        --workers 4 --cache-dir artifacts/table2_cache

Sweep non-ideality scenarios (each trains + evaluates its own grid; the
``gaussian`` scenario swaps the uniform ε model for the Gaussian one,
``stuck-1pct`` adds ~1% stuck-at conductance defects, ``correlated``
applies spatially-correlated printing variation)::

    python -m repro.experiments.cli table2 --profile smoke --datasets iris \
        --scenario default --scenario stuck-1pct

Record structured telemetry while running, then inspect it::

    python -m repro.experiments.cli table2 --profile smoke --datasets iris \
        --workers 2 --telemetry artifacts/telemetry/run1
    python -m repro.experiments.cli report --telemetry artifacts/telemetry/run1
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import default_artifacts_dir, get_default_bundle, telemetry
from repro.core.backends import DEFAULT_BACKEND, backend_names, numba_version
from repro.core.variation import DEFAULT_SCENARIO, scenario_names
from repro.datasets import DATASET_NAMES
from repro.experiments.ablation import improvement_summary
from repro.experiments.cache import ResultCache
from repro.experiments.config import PROFILES, Setup
from repro.experiments.parallel import run_table2_parallel
from repro.experiments.report import render_telemetry_report
from repro.experiments.runner import run_cell
from repro.experiments.tables import (
    render_scenario_grid,
    render_table3,
    split_by_scenario,
)


def _add_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="smoke",
        help="experiment budget (default: smoke)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.experiments", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    surrogate = commands.add_parser("surrogate", help="build the shared surrogate bundle")
    surrogate.add_argument("--points", type=int, default=4096, help="QMC design points")
    surrogate.add_argument("--seed", type=int, default=0)

    cell = commands.add_parser("cell", help="run one Table-II cell")
    cell.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    cell.add_argument("--learnable", action="store_true",
                      help="learn the nonlinear circuits (α_ω = 0.005)")
    cell.add_argument("--variation-aware", action="store_true",
                      help="train with the Monte-Carlo expected loss")
    cell.add_argument("--epsilon", type=float, default=0.10, help="test variation level")
    _add_profile(cell)

    table2 = commands.add_parser("table2", help="regenerate Table II and Table III")
    table2.add_argument("--datasets", nargs="*", choices=DATASET_NAMES,
                        default=list(DATASET_NAMES))
    _add_profile(table2)
    table2.add_argument("--workers", type=int, default=1, metavar="N",
                        help="training processes; 1 is serial and bit-identical "
                             "to higher counts (default: 1)")
    table2.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="on-disk result cache directory "
                             "(default: artifacts/table2_cache)")
    table2.add_argument("--no-cache", action="store_true",
                        help="disable the result cache (always re-train)")
    table2.add_argument("--resume", action="store_true",
                        help="require an existing cache directory and resume "
                             "it (resuming is otherwise automatic whenever "
                             "the cache is enabled)")
    table2.add_argument("--telemetry", metavar="DIR", default=None,
                        help="record structured telemetry (JSONL events + run "
                             "manifest) into DIR; results are bit-identical "
                             "with or without it")
    table2.add_argument("--lane-width", type=int, default=8, metavar="L",
                        help="max same-group seeds trained in one lockstep "
                             "lane batch; results are bit-identical for any "
                             "width (default: 8)")
    table2.add_argument("--lane-grouping", choices=("setup", "off"),
                        default="setup",
                        help="'setup' stacks all seeds of one (dataset, "
                             "setup, ϵ_train) group into lanes; 'off' "
                             "recovers the historical per-job scheduling "
                             "(default: setup)")
    table2.add_argument("--scenario", action="append", dest="scenarios",
                        choices=scenario_names(), metavar="NAME", default=None,
                        help="non-ideality scenario to sweep (repeatable); "
                             "choices: " + ", ".join(scenario_names()) + " "
                             "(default: default ε-only)")
    table2.add_argument("--backend", choices=backend_names(),
                        default=DEFAULT_BACKEND,
                        help="kernel execution backend for training and MC "
                             "evaluation; every backend is bitwise-identical "
                             "to 'numpy' and shares its cache entries "
                             "(default: numpy)")
    table2.add_argument("--mc-shards", type=int, default=None, metavar="S",
                        help="split each cell's Monte-Carlo test evaluation "
                             "into S shards over the shared-memory data "
                             "plane; results are bit-identical for any S "
                             "(default: profile setting)")
    table2.add_argument("--deploy-verify", metavar="ROWSxCOLS", default=None,
                        help="after assembly, tile every selected design "
                             "onto ROWSxCOLS crossbar arrays and re-simulate "
                             "it through the batched SPICE engine (advisory "
                             "check; results are unchanged). Example: 8x8")

    export = commands.add_parser(
        "export",
        help="hardware-deploy export: tile a trained snapshot onto physical "
             "crossbar arrays, emit the netlist, and (optionally) verify it "
             "closed-loop through the batched SPICE engine",
    )
    export.add_argument("--params", required=True, metavar="FILE",
                        help="PNNParams snapshot (.npz from save_params)")
    export.add_argument("--output", metavar="FILE", default=None,
                        help="write the netlist here (default: stdout is "
                             "report-only, no netlist dump)")
    export.add_argument("--title", default="pnn", help="netlist title comment")
    export.add_argument("--tile-rows", type=int, default=None, metavar="R",
                        help="max physical rows per crossbar tile, incl. 2 "
                             "bias/ground rail rows (default: unbounded)")
    export.add_argument("--tile-cols", type=int, default=None, metavar="C",
                        help="max output columns per crossbar tile "
                             "(default: unbounded)")
    export.add_argument("--bias-policy", choices=("first", "split"),
                        default="first",
                        help="rail devices in the first row-block only, or "
                             "conductance-split across all row blocks "
                             "(default: first)")
    export.add_argument("--inverter-budget", type=int, default=None, metavar="N",
                        help="max negation circuits per tile (default: unbounded)")
    export.add_argument("--verify", action="store_true",
                        help="re-simulate the tiled design through "
                             "solve_dc_batch and gate on kernel agreement")
    export.add_argument("--verify-samples", type=int, default=8, metavar="B",
                        help="input samples for verification (default: 8)")
    export.add_argument("--scenario", action="append", dest="scenarios",
                        choices=("nominal",) + scenario_names(), metavar="NAME",
                        default=None,
                        help="verification scenario (repeatable; default: "
                             "nominal + default ε-variation)")
    export.add_argument("--epsilon", type=float, default=0.10,
                        help="variation level for non-nominal scenarios "
                             "(default: 0.10)")
    export.add_argument("--n-mc", type=int, default=2, metavar="N",
                        help="Monte-Carlo draws per non-nominal scenario "
                             "(default: 2)")
    export.add_argument("--seed", type=int, default=0,
                        help="seed for verification inputs and variation draws")
    export.add_argument("--telemetry", metavar="DIR", default=None,
                        help="record telemetry (export.tile / export.verify "
                             "spans, deploy counters) into DIR")

    report = commands.add_parser(
        "report", help="aggregate summary of a recorded telemetry run"
    )
    report.add_argument("--telemetry", metavar="DIR", required=True,
                        help="telemetry directory of a previous run")
    report.add_argument("--top", type=int, default=10, metavar="N",
                        help="slowest jobs to list (default: 10)")

    return parser


def _parse_tile(value: Optional[str]):
    """``"8x8"`` → ``(8, 8)``; ``None`` stays ``None``."""
    if value is None:
        return None
    try:
        rows, cols = value.lower().split("x")
        return (int(rows), int(cols))
    except ValueError:
        raise SystemExit(f"error: expected ROWSxCOLS (e.g. 8x8), got {value!r}")


def _run_export(args) -> int:
    from repro.core.serialization import load_params
    from repro.exporting import (
        TileSpec,
        TilingError,
        compile_tiling,
        deploy_report,
        export_tiled_netlist_text,
    )

    if args.telemetry:
        telemetry.enable(args.telemetry, manifest={
            "command": "export",
            "params": str(args.params),
            "tile_rows": args.tile_rows,
            "tile_cols": args.tile_cols,
            "bias_policy": args.bias_policy,
            "verify": bool(args.verify),
            "scenarios": list(args.scenarios or ("nominal", "default")),
            "seed": args.seed,
        })

    params = load_params(args.params)
    try:
        spec = TileSpec(
            max_rows=args.tile_rows,
            max_cols=args.tile_cols,
            bias_policy=args.bias_policy,
            inverter_budget=args.inverter_budget,
        )
        tiled = compile_tiling(params, spec)
    except TilingError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.output:
        text = export_tiled_netlist_text(tiled, title=args.title)
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"netlist written: {out}", file=sys.stderr)

    scenarios = tuple(dict.fromkeys(args.scenarios or ("nominal", "default")))
    report = deploy_report(
        params, spec,
        tiled=tiled,
        verify=args.verify,
        scenarios=scenarios,
        epsilon=args.epsilon,
        n_mc=args.n_mc,
        seed=args.seed,
        n_samples=args.verify_samples,
    )
    print(report.summary())
    if args.telemetry:
        telemetry.get().merge()
    if args.verify and not report.passed:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "report":
        print(render_telemetry_report(args.telemetry, top=args.top), end="")
        return 0

    if args.command == "export":
        return _run_export(args)

    if args.command == "surrogate":
        bundle = get_default_bundle(n_points=args.points, seed=args.seed, verbose=True)
        print(f"bundle ready: ptanh test MSE {bundle.ptanh.test_mse:.2e}, "
              f"negweight test MSE {bundle.negweight.test_mse:.2e}")
        return 0

    bundle = get_default_bundle()
    profile = PROFILES[args.profile]

    if args.command == "cell":
        setup = Setup(learnable=args.learnable, variation_aware=args.variation_aware)
        result = run_cell(args.dataset, setup, args.epsilon, profile, surrogates=bundle)
        print(result)
        return 0

    if args.command == "table2":
        if args.no_cache and args.resume:
            print("error: --resume requires the cache; drop --no-cache", file=sys.stderr)
            return 2
        cache = None
        if not args.no_cache:
            cache_dir = (
                Path(args.cache_dir) if args.cache_dir
                else default_artifacts_dir() / "table2_cache"
            )
            if args.resume and not cache_dir.is_dir():
                print(f"error: --resume given but no cache at {cache_dir}", file=sys.stderr)
                return 2
            cache = ResultCache(cache_dir)
        lane_width = 1 if args.lane_grouping == "off" else max(1, args.lane_width)
        scenarios = tuple(dict.fromkeys(args.scenarios or (DEFAULT_SCENARIO,)))
        mc_shards = (
            profile.mc_shards if args.mc_shards is None else max(1, args.mc_shards)
        )
        if args.telemetry:
            telemetry.enable(args.telemetry, manifest={
                "command": "table2",
                "profile": args.profile,
                "datasets": list(args.datasets),
                "workers": args.workers,
                "seeds": list(profile.seeds),
                "lane_width": lane_width,
                "scenarios": list(scenarios),
                "backend": args.backend,
                "mc_shards": mc_shards,
                "deploy_verify": args.deploy_verify,
                "numba": numba_version(),
            })
        results = run_table2_parallel(
            args.datasets, profile, surrogates=bundle,
            workers=args.workers, cache=cache,
            progress=lambda msg: print(f"[run] {msg}", file=sys.stderr),
            lane_width=lane_width,
            scenarios=scenarios,
            backend=args.backend,
            mc_shards=mc_shards,
            deploy_tile=_parse_tile(args.deploy_verify),
        )
        print(render_scenario_grid(results))
        print()
        # Table III and the §IV-D summary are per-scenario analyses.
        for scenario, cells in split_by_scenario(results).items():
            if len(scenarios) > 1:
                print(f"=== scenario: {scenario} ===")
            print(render_table3(cells))
            for summary in improvement_summary(cells).values():
                print(summary)
        return 0

    return 1   # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":
    raise SystemExit(main())
